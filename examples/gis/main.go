// GIS point-of-interest lookups: the paper's other §1 scenario. A city
// broadcasts records for points of interest; mobile clients ask for
// specific places — and often for places that are not in the broadcast at
// all ("is there a vegan restaurant near this exit?"). Failed searches are
// the norm, which is exactly the data-availability axis of the paper's §5.1:
// this example sweeps availability and shows why the index-tree schemes
// are the right choice for lookup services with frequent misses.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/airindex/airindex/internal/core"
)

func main() {
	const (
		pois      = 3000
		poiRecord = 500 // name, category, coordinates, description
		poiKey    = 25
	)
	schemes := []string{"flat", "signature", "(1,m)", "distributed", "hashing"}

	fmt.Printf("GIS broadcast: %d points of interest, %d-byte records\n", pois, poiRecord)
	fmt.Println("sweeping the fraction of queries that can be answered at all")
	fmt.Println()

	for _, avail := range []float64{1.0, 0.5, 0.1} {
		fmt.Printf("--- %.0f%% of queried places are in the broadcast ---\n", avail*100)
		w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "scheme\taccess (KB)\ttuning (KB)\tprobes\t")
		best, bestTuning := "", 0.0
		for _, scheme := range schemes {
			cfg := core.DefaultConfig(scheme, pois)
			cfg.Data.RecordSize = poiRecord
			cfg.Data.KeySize = poiKey
			cfg.Availability = avail
			cfg.Accuracy = 0.02
			cfg.MinRequests = 2000
			cfg.MaxRequests = 20000
			res, err := core.RunOne(cfg)
			if err != nil {
				log.Fatalf("%s: %v", scheme, err)
			}
			fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.1f\t\n",
				scheme, res.Access.Mean()/1024, res.Tuning.Mean()/1024, res.Probes.Mean())
			if scheme != "flat" && (best == "" || res.Tuning.Mean() < bestTuning) {
				best, bestTuning = scheme, res.Tuning.Mean()
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lowest power draw at this availability: %s\n\n", best)
	}

	fmt.Println("takeaway (paper §5.3, criterion 4): under frequent search failures the")
	fmt.Println("(1,m) and distributed indexing schemes determine absence from the index")
	fmt.Println("alone — a handful of probes — while every serial scheme scans the full")
	fmt.Println("cycle just to learn the answer is 'no'.")
}
