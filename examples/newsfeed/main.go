// News feed: a broadcast-disks scenario beyond the paper's scheme set. A
// station pushes news articles; a handful of breaking stories draw most of
// the requests (Zipf demand). Flat broadcast treats every article equally;
// broadcast disks put the hot stories on a fast "disk" that repeats four
// times per major cycle — cutting the typical reader's wait while paying
// with a longer cycle that mostly penalizes the cold tail.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/airindex/airindex/internal/core"
)

func main() {
	const articles = 3000

	fmt.Printf("news feed: %d articles, request popularity follows a Zipf law\n\n", articles)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "demand skew\tflat wait (KB)\tbdisk wait (KB)\tbdisk p99 (KB)\tverdict\t")
	for _, zipf := range []float64{0, 1.2, 2.0} {
		row := map[string]*core.Result{}
		for _, scheme := range []string{"flat", "broadcast-disks"} {
			cfg := core.DefaultConfig(scheme, articles)
			cfg.ZipfS = zipf
			cfg.Accuracy = 0.02
			cfg.MinRequests = 3000
			cfg.MaxRequests = 20000
			res, err := core.RunOne(cfg)
			if err != nil {
				log.Fatalf("%s: %v", scheme, err)
			}
			row[scheme] = res
		}
		flat := row["flat"].Access.Mean()
		bd := row["broadcast-disks"].Access.Mean()
		verdict := "flat wins"
		if bd < flat {
			verdict = fmt.Sprintf("bdisk wins %.1fx", flat/bd)
		}
		label := fmt.Sprintf("zipf %.1f", zipf)
		if zipf == 0 {
			label = "uniform"
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%s\t\n",
			label, flat/1024, bd/1024, row["broadcast-disks"].AccessP99/1024, verdict)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnote the p99 column: the cold tail still pays the longer major cycle —")
	fmt.Println("broadcast disks trade worst-case wait for typical-case wait, which is the")
	fmt.Println("right trade exactly when demand is skewed.")
}
