// Custom scheme: the testbed's adaptability claim (paper §3) in practice.
// This example implements a data access method the paper never evaluated —
// interpolation search over the key-sorted flat broadcast — entirely
// outside the scheme packages, registers it with the testbed, and runs it
// head-to-head against the built-in methods.
//
// The idea: records are broadcast in key order and every bucket announces
// its own key, so a client that knows the key range (broadcast metadata)
// can estimate the target position, doze straight to a point slightly
// before it, and scan a handful of buckets — hashing-like tuning time with
// zero added broadcast overhead.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// interpolation wraps the flat broadcast with a smarter client.
type interpolation struct {
	access.Broadcast // the flat cycle: layout and Contains are reused
	ds               *datagen.Dataset
}

const schemeName = "interpolation"

// slack is how many buckets early the client aims to compensate for
// non-uniform key spacing; overshooting would cost a full extra cycle.
const slack = 8

func (ip *interpolation) Name() string { return schemeName }

// NewClient returns the interpolation-search state machine.
func (ip *interpolation) NewClient(key uint64) access.Client {
	return &ipClient{ip: ip, key: key}
}

type ipClient struct {
	ip      *interpolation
	key     uint64
	aimed   bool
	scanned int
}

// estimate maps a key to an expected record position from the broadcast's
// published key range.
func (c *ipClient) estimate() int {
	ds := c.ip.ds
	lo, hi := ds.MinKey(), ds.MaxKey()
	if c.key <= lo {
		return 0
	}
	if c.key >= hi {
		return ds.Len() - 1
	}
	pos := int(float64(c.key-lo) / float64(hi-lo) * float64(ds.Len()-1))
	pos -= slack
	if pos < 0 {
		pos = 0
	}
	return pos
}

func (c *ipClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	ds := c.ip.ds
	c.scanned++
	if c.scanned > ds.Len()+1 {
		return access.Done(false) // safety net: a full cycle examined
	}
	k := ds.KeyAt(int(i))
	switch {
	case k == c.key:
		return access.Done(true)
	case !c.aimed:
		// First read: jump to the interpolated position.
		c.aimed = true
		target := units.Index(c.estimate())
		ch := c.ip.Channel()
		return access.DozeAt(target, ch.NextOccurrence(target, end))
	case k < c.key:
		// Aimed short (by design): scan forward.
		return access.Next()
	default:
		// Key passed without a match: it is not in the broadcast. (With
		// the early-aim slack this is almost always a true miss, not an
		// overshoot; a production client would re-aim further back.)
		return access.Done(false)
	}
}

func main() {
	err := core.Register(schemeName, func(ds *datagen.Dataset, _ core.Config) (access.Broadcast, error) {
		fb, err := flat.Build(ds)
		if err != nil {
			return nil, err
		}
		return &interpolation{Broadcast: fb, ds: ds}, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("registered custom scheme:", schemeName)
	fmt.Println("comparing against the paper's schemes on the default workload:")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "scheme\tcycle (KB)\taccess (KB)\ttuning (KB)\tprobes\t")
	for _, scheme := range []string{"flat", "hashing", "distributed", schemeName} {
		cfg := core.DefaultConfig(scheme, 3000)
		cfg.Accuracy = 0.02
		cfg.MinRequests = 2000
		cfg.MaxRequests = 20000
		res, err := core.RunOne(cfg)
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.2f\t%.1f\t\n",
			scheme, float64(res.CycleBytes)/1024,
			res.Access.Mean()/1024, res.Tuning.Mean()/1024, res.Probes.Mean())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterpolation search gets hashing-class tuning time with a flat-broadcast")
	fmt.Println("cycle (no index overhead), because the generator's keys are near-uniform —")
	fmt.Println("exactly the kind of what-if the paper's adaptive testbed was built to answer.")
}
