// Quickstart: build a broadcast cycle for one access method, run a few
// individual client queries against it by hand, then let the testbed run a
// full accuracy-controlled simulation — the two levels of the public API.
package main

import (
	"fmt"
	"log"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/dist"
)

func main() {
	// 1. A synthetic dictionary database: 2,000 records of 500 bytes with
	// 25-byte keys (the paper's Table 1 geometry, scaled down).
	ds, err := datagen.Generate(datagen.Default(2000))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The broadcast server organizes it with distributed indexing at
	// the optimal replication depth.
	bc, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ch := bc.Channel()
	fmt.Printf("broadcast cycle: %d buckets, %d bytes (%.1f%% index overhead)\n",
		ch.NumBuckets(), ch.CycleLen(),
		100*float64(int(ch.NumBuckets())-ds.Len())/float64(ch.NumBuckets()))
	fmt.Printf("index tree: fanout %d, %d levels, replication depth %d\n\n",
		bc.Tree().Fanout, bc.Tree().Levels, bc.R())

	// 3. Drive three individual queries: a key near the cycle start, one
	// near the end, and one that is not being broadcast at all.
	queries := []struct {
		label string
		key   uint64
	}{
		{"first record", ds.KeyAt(0)},
		{"last record", ds.KeyAt(ds.Len() - 1)},
		{"missing key", ds.MissingKeyNear(1000)},
	}
	for _, q := range queries {
		res, err := access.Walk(ch, bc.NewClient(q.key), 12345, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s found=%-5v access=%7d bytes  tuning=%5d bytes  probes=%d\n",
			q.label, res.Found, res.Access, res.Tuning, res.Probes)
	}

	// 4. A full simulation: exponential request arrivals, 0.99/0.02
	// confidence-accuracy stopping rule, means over all requests.
	cfg := core.DefaultConfig("distributed", 2000)
	cfg.Accuracy = 0.02
	cfg.MinRequests = 2000
	res, err := core.RunOne(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation: %d requests, %d rounds, converged=%v\n",
		res.Requests, res.Rounds, res.Converged)
	fmt.Printf("mean access time %.0f bytes (about %.2f of a cycle)\n",
		res.Access.Mean(), res.Access.Mean()/float64(res.CycleBytes))
	fmt.Printf("mean tuning time %.0f bytes (%.1f bucket reads — clients doze %.4f%% of the wait)\n",
		res.Tuning.Mean(), res.Probes.Mean(),
		100*(1-res.Tuning.Mean()/res.Access.Mean()))
}
