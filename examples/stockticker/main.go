// Stock ticker: the paper's §1 motivating scenario of wireless stock
// market delivery. A base station broadcasts quotes for a few thousand
// instruments; handheld clients look up single symbols. Quotes are small
// (the record/key ratio is low), updates matter (waiting time counts), and
// handhelds are battery-bound (tuning time counts) — so this example runs
// every indexing scheme over the same ticker feed and reports both
// criteria plus a battery estimate.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/airindex/airindex/internal/core"
)

func main() {
	const (
		instruments = 4000
		quoteBytes  = 250 // symbol, bid/ask, volume, depth, timestamp
		symbolBytes = 12  // exchange-qualified ticker symbol
		// A 19.2 kbit/s wireless broadcast channel (typical for the
		// paper's era) moves 2,400 bytes per second.
		bytesPerSecond = 2400.0
		// Receiving costs roughly 130 mW on a contemporary wireless NIC.
		receiveWatts = 0.130
	)

	fmt.Printf("stock ticker: %d instruments, %d-byte quotes, %d-byte symbols (ratio %d)\n\n",
		instruments, quoteBytes, symbolBytes, quoteBytes/symbolBytes)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "scheme\tcycle (s)\twait (s)\tlisten (ms)\tmJ/query\tqueries per Wh\t")
	for _, scheme := range []string{"flat", "(1,m)", "distributed", "hashing", "signature"} {
		cfg := core.DefaultConfig(scheme, instruments)
		cfg.Data.RecordSize = quoteBytes
		cfg.Data.KeySize = symbolBytes
		cfg.Data.NumAttributes = 3
		cfg.Accuracy = 0.02
		cfg.MinRequests = 2000
		cfg.MaxRequests = 20000
		res, err := core.RunOne(cfg)
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		waitSec := res.Access.Mean() / bytesPerSecond
		listenSec := res.Tuning.Mean() / bytesPerSecond
		joules := listenSec * receiveWatts
		perWh := 3600.0 / joules
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.0f\t%.2f\t%.0f\t\n",
			scheme,
			float64(res.CycleBytes)/bytesPerSecond,
			waitSec, listenSec*1000, joules*1000, perWh)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("- flat broadcast minimizes waiting but burns the battery listening to every quote")
	fmt.Println("- hashing and the tree schemes listen for milliseconds: orders of magnitude more queries per Wh")
	fmt.Println("- at this low record/key ratio the tree schemes pay a visible cycle-length penalty (paper §5.2)")
}
