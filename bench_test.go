// Package airindex's benchmark suite regenerates every table and figure of
// the paper (one Benchmark per artifact, in fast mode — run cmd/airbench
// without -fast for the full Table 1 settings) and measures the hot paths
// of the simulator itself.
//
// The experiment benchmarks are macro-benchmarks: a single iteration runs a
// whole parameter sweep, so expect them to self-limit at b.N == 1. Custom
// metrics report the headline values the paper plots.
package airindex

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/experiments"
	"github.com/airindex/airindex/internal/schemes/bdisk"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/hybrid"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/stats"
)

var benchOpt = experiments.Options{Fast: true}

// runExperiment executes one experiment per iteration and reports the last
// row of the selected table's first column as a custom metric.
func runExperiment(b *testing.B, id, tableID, column string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if t.ID != tableID {
				continue
			}
			if col, ok := t.Column(column); ok && len(col) > 0 {
				b.ReportMetric(col[len(col)-1], "bytes_at_max_x")
			}
			if len(t.Rows) == 0 {
				b.Fatalf("%s produced no rows", tableID)
			}
		}
	}
}

func BenchmarkTable1Settings(b *testing.B)       { runExperiment(b, "table1", "table1", "record_bytes") }
func BenchmarkFig4aAccessVsRecords(b *testing.B) { runExperiment(b, "fig4", "fig4a", "flat (S)") }
func BenchmarkFig4bTuningVsRecords(b *testing.B) { runExperiment(b, "fig4", "fig4b", "hashing (S)") }
func BenchmarkFig5aAccessVsAvailability(b *testing.B) {
	runExperiment(b, "fig5", "fig5a", "distributed")
}
func BenchmarkFig5bTuningVsAvailability(b *testing.B) {
	runExperiment(b, "fig5", "fig5b", "distributed")
}
func BenchmarkFig6aAccessVsRatio(b *testing.B) { runExperiment(b, "fig6", "fig6a", "distributed") }
func BenchmarkFig6bTuningVsRatio(b *testing.B) { runExperiment(b, "fig6", "fig6b", "distributed") }
func BenchmarkAblationReplicationDepth(b *testing.B) {
	runExperiment(b, "ablate-r", "ablate-r", "access (S)")
}
func BenchmarkAblationIndexReplication(b *testing.B) {
	runExperiment(b, "ablate-m", "ablate-m", "access (S)")
}
func BenchmarkAblationSignatureLength(b *testing.B) {
	runExperiment(b, "ablate-sig", "ablate-sig", "tuning (S)")
}
func BenchmarkAblationHashAllocation(b *testing.B) {
	runExperiment(b, "ablate-hash", "ablate-hash", "tuning (S)")
}
func BenchmarkAblationErrorRate(b *testing.B) {
	runExperiment(b, "ablate-errors", "ablate-errors", "distributed tuning")
}
func BenchmarkExtSignatureFamily(b *testing.B) {
	runExperiment(b, "ext-signatures", "ext-signatures", "hybrid tuning")
}
func BenchmarkExtBroadcastDisks(b *testing.B) {
	runExperiment(b, "ext-bdisk", "ext-bdisk", "bdisk/flat ratio")
}
func BenchmarkExtMultiAttribute(b *testing.B) {
	runExperiment(b, "ext-multiattr", "ext-multiattr", "tuning ratio")
}

// --- micro-benchmarks: per-query protocol walks -------------------------

const benchRecords = 5000

func benchDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.Generate(datagen.Default(benchRecords))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// walkBench drives one query per iteration with rotating keys and arrival
// times, measuring the client protocol and channel arithmetic.
func walkBench(b *testing.B, bc access.Broadcast, ds *datagen.Dataset) {
	b.Helper()
	rng := sim.NewRNG(1)
	cycle := int64(bc.Channel().CycleLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		arrival := sim.Time(rng.Int63n(cycle))
		res, err := access.Walk(bc.Channel(), bc.NewClient(key), arrival, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("query failed")
		}
	}
}

func BenchmarkWalkFlat(b *testing.B) {
	ds := benchDataset(b)
	bc, err := flat.Build(ds)
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkOneM(b *testing.B) {
	ds := benchDataset(b)
	bc, err := onem.Build(ds, onem.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkDistributed(b *testing.B) {
	ds := benchDataset(b)
	bc, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkHashing(b *testing.B) {
	ds := benchDataset(b)
	bc, err := hashing.Build(ds, hashing.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkSignature(b *testing.B) {
	ds := benchDataset(b)
	bc, err := signature.Build(ds, signature.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkHybrid(b *testing.B) {
	ds := benchDataset(b)
	bc, err := hybrid.Build(ds, hybrid.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

func BenchmarkWalkBroadcastDisks(b *testing.B) {
	ds := benchDataset(b)
	bc, err := bdisk.Build(ds, bdisk.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	walkBench(b, bc, ds)
}

// --- micro-benchmarks: broadcast construction ---------------------------

func BenchmarkBuildDistributed(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Build(ds, dist.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHashing(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hashing.Build(ds, hashing.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSignature(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signature.Build(ds, signature.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks: testbed internals --------------------------------

func BenchmarkSimulationRound(b *testing.B) {
	cfg := core.DefaultConfig("distributed", 2000)
	cfg.RoundSize = 250
	cfg.MinRequests = 250
	cfg.MaxRequests = 250
	cfg.Accuracy = 0.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOne(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats.TQuantile(0.995, float64(499+i%10))
	}
}

func BenchmarkSignatureGeneration(b *testing.B) {
	fields := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta"), []byte("epsilon")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signature.RecordSig(fields, 16, 8)
	}
}
