GO ?= go

.PHONY: all build vet lint test test-race bench experiments experiments-fast faults-sweep examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project static analysis: determinism, floatcompare, confinement, and
# //airlint:allow directive checking (see internal/lint and DESIGN.md §7).
lint:
	$(GO) run ./cmd/airlint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at Table 1 settings (a few minutes).
experiments:
	$(GO) run ./cmd/airbench -csv results all

experiments-fast:
	$(GO) run ./cmd/airbench -fast all

# Unreliable-channel degradation sweep: error rate 0-10% over all schemes
# (results/faults-at.csv, faults-tt.csv, faults-recovery.csv).
faults-sweep:
	$(GO) run ./cmd/airbench -csv results faults

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stockticker
	$(GO) run ./examples/gis
	$(GO) run ./examples/customscheme
	$(GO) run ./examples/newsfeed

clean:
	rm -rf results
