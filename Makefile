GO ?= go

.PHONY: all build vet test bench experiments experiments-fast examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at Table 1 settings (a few minutes).
experiments:
	$(GO) run ./cmd/airbench -csv results all

experiments-fast:
	$(GO) run ./cmd/airbench -fast all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stockticker
	$(GO) run ./examples/gis
	$(GO) run ./examples/customscheme
	$(GO) run ./examples/newsfeed

clean:
	rm -rf results
