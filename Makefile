GO ?= go

.PHONY: all build vet lint lint-only lint-flow lint-escape test test-race cover bench bench-gate bench-baseline experiments experiments-fast scenarios scenarios-check faults-sweep multich-sweep examples aircast-demo aircast-e2e clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project static analysis: determinism, floatcompare, confinement,
# unitsafety, exhaustive, mergecomplete, rngdiscipline, byteclock,
# hotalloc, maporder and seedtaint, plus //airlint:allow /
# //airlint:hotpath directive checking (see internal/lint and
# DESIGN.md §7). escapecheck needs compiler output; see lint-escape.
lint:
	$(GO) run ./cmd/airlint ./...

# One analyzer at a time, for iterating on a fix:
#   make lint-only A=rngdiscipline
lint-only:
	$(GO) run ./cmd/airlint -only $(A) ./...

# Just the flow-sensitive pair (CFG + taint), for iterating on dataflow
# fixes without the rest of the suite.
lint-flow:
	$(GO) run ./cmd/airlint -only maporder,seedtaint ./...

# Cross-check //airlint:hotpath functions against the compiler's escape
# analysis: builds the module with -gcflags='-m -m' and fails on any
# heap escape inside a marked function (see DESIGN.md §7).
lint-escape:
	$(GO) run ./cmd/airlint -escape ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark-regression gate: fail if the cohort engine's throughput
# advantage over the reference event engine regresses >15% against
# ci/bench-baseline.json. The gate pins the engines' speed *ratio*, not
# raw req/s, so it holds on slower CI machines.
bench-gate:
	$(GO) run ./cmd/airgate

# Re-measure and rewrite the gate baseline (after a deliberate change
# to either engine's performance profile).
bench-baseline:
	$(GO) run ./cmd/airgate -update

# Regenerate every paper table/figure at Table 1 settings (a few minutes).
experiments:
	$(GO) run ./cmd/airbench -csv results all

experiments-fast:
	$(GO) run ./cmd/airbench -fast all

# Compile and run every scenarios/*.airql at the full paper profile,
# rewriting results/ in place. CI's airql-regen job runs the same thing
# into a scratch directory and byte-diffs it against the committed CSVs.
scenarios:
	$(GO) run ./cmd/airql -out . scenarios/*.airql

# Type-check every scenario script without running anything (the same
# gate CI runs before airql-regen).
scenarios-check:
	$(GO) run ./cmd/airql -check scenarios/*.airql

# Unreliable-channel degradation sweep: error rate 0-10% over all schemes
# (results/faults-at.csv, faults-tt.csv, faults-recovery.csv).
faults-sweep:
	$(GO) run ./cmd/airbench -csv results faults

# K-channel allocation sweep: K=1..8 replicated channels, free and
# one-page switch costs, over all schemes (results/multich-at.csv,
# multich-tt.csv). The K=1 rows match fig4a/fig5a exactly (CI gate).
multich-sweep:
	$(GO) run ./cmd/airbench -csv results multich

# Live broadcast daemon demo: serve one reconfiguration cycle
# in-process (epoch 1 -> 2 at a cycle boundary), resolve keys on both
# epochs, and scrape the daemon's own /metrics (see DESIGN.md §10).
aircast-demo:
	$(GO) run ./cmd/aircast -demo

# The daemon's end-to-end suite under the race detector: in-process,
# TCP and chaos-injected UDP transports against the simulator's
# byte-clock accounting.
aircast-e2e:
	$(GO) test -race -count=2 ./internal/aircast/ ./cmd/aircast/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stockticker
	$(GO) run ./examples/gis
	$(GO) run ./examples/customscheme
	$(GO) run ./examples/newsfeed

clean:
	rm -rf results
