// Cross-scheme integration tests: every access method, driven through the
// same public surfaces the examples use, against one shared dataset. These
// complement the per-package unit tests with properties that must hold for
// any scheme the testbed accepts.
package airindex

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// buildAll constructs every registered scheme over one dataset.
func buildAll(t *testing.T, records int) (*datagen.Dataset, map[string]access.Broadcast) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(records))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]access.Broadcast)
	for _, name := range core.SchemeNames() {
		cfg := core.DefaultConfig(name, records)
		bc, err := core.BuildBroadcast(ds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = bc
	}
	return ds, out
}

func TestEverySchemeCorrectness(t *testing.T) {
	ds, schemes := buildAll(t, 700)
	rng := sim.NewRNG(2026)
	for name, bc := range schemes {
		name, bc := name, bc
		t.Run(name, func(t *testing.T) {
			cycle := int64(bc.Channel().CycleLen())
			for i := 0; i < ds.Len(); i += 7 {
				arrival := sim.Time(rng.Int63n(2 * cycle))
				res, err := access.Walk(bc.Channel(), bc.NewClient(ds.KeyAt(i)), arrival, 0)
				if err != nil {
					t.Fatalf("key %d: %v", ds.KeyAt(i), err)
				}
				if !res.Found {
					t.Fatalf("present key %d not found", ds.KeyAt(i))
				}
				if res.Tuning > res.Access {
					t.Fatalf("tuning %d exceeds access %d (cannot listen longer than you wait)", res.Tuning, res.Access)
				}
				if res.Access > units.Bytes64(3*cycle) {
					t.Fatalf("access %d exceeds three cycles", res.Access)
				}
				// A present key is never "found" without downloading at
				// least its own record's bytes.
				if res.Tuning < units.Bytes(ds.Config().RecordSize) {
					t.Fatalf("tuning %d below one record size", res.Tuning)
				}
			}
			for i := 3; i < ds.Len(); i += 31 {
				arrival := sim.Time(rng.Int63n(2 * cycle))
				res, err := access.Walk(bc.Channel(), bc.NewClient(ds.MissingKeyNear(i)), arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Found {
					t.Fatalf("missing key near %d reported found", i)
				}
			}
		})
	}
}

func TestEverySchemeWireSizes(t *testing.T) {
	_, schemes := buildAll(t, 300)
	for name, bc := range schemes {
		ch := bc.Channel()
		var total int64
		for i := 0; i < int(ch.NumBuckets()); i++ {
			bk := ch.Bucket(units.Index(i))
			enc := bk.Encode()
			if units.Bytes(len(enc)) != bk.Size() {
				t.Fatalf("%s bucket %d: Encode()=%d bytes, Size()=%d", name, i, len(enc), bk.Size())
			}
			total += int64(len(enc))
		}
		if units.Bytes64(total) != ch.CycleLen() {
			t.Fatalf("%s: encoded cycle %d bytes, channel says %d", name, total, ch.CycleLen())
		}
	}
}

func TestEverySchemeParamsAndContains(t *testing.T) {
	ds, schemes := buildAll(t, 300)
	for name, bc := range schemes {
		if bc.Name() != name {
			t.Fatalf("registry name %q != scheme name %q", name, bc.Name())
		}
		p := bc.Params()
		if p["records"] != float64(ds.Len()) || p["cycle_bytes"] != float64(bc.Channel().CycleLen()) {
			t.Fatalf("%s params incomplete: %v", name, p)
		}
		if !bc.Contains(ds.KeyAt(42)) || bc.Contains(ds.MissingKeyNear(42)) {
			t.Fatalf("%s Contains wrong", name)
		}
	}
}

// TestSchemeTradeoffsOnCommonWorkload pins the paper's central qualitative
// claim on one shared dataset: indexing buys orders of magnitude of tuning
// time for a bounded access-time overhead.
func TestSchemeTradeoffsOnCommonWorkload(t *testing.T) {
	const records = 2500
	means := map[string][2]float64{}
	for _, name := range []string{"flat", "(1,m)", "distributed", "hashing", "signature"} {
		cfg := core.DefaultConfig(name, records)
		cfg.Accuracy = 0.03
		cfg.MinRequests = 1500
		cfg.MaxRequests = 15000
		res, err := core.RunOne(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		means[name] = [2]float64{res.Access.Mean(), res.Tuning.Mean()}
	}
	flatMeans := means["flat"]
	for _, name := range []string{"(1,m)", "distributed", "hashing"} {
		m := means[name]
		if m[1] > flatMeans[1]/50 {
			t.Errorf("%s tuning %.0f should be >50x below flat's %.0f", name, m[1], flatMeans[1])
		}
		if m[0] > 3*flatMeans[0] {
			t.Errorf("%s access %.0f pays more than 3x flat's %.0f", name, m[0], flatMeans[0])
		}
	}
	if sig := means["signature"]; sig[0] < flatMeans[0] {
		t.Logf("signature access %.0f below flat %.0f (within noise)", sig[0], flatMeans[0])
	}
}

// TestFaultyWalkAcrossSchemes injects bucket errors into every scheme and
// checks the recovery invariants.
func TestFaultyWalkAcrossSchemes(t *testing.T) {
	ds, schemes := buildAll(t, 400)
	for name, bc := range schemes {
		rng := sim.NewRNG(7)
		found := 0
		for i := 0; i < 60; i++ {
			key := ds.KeyAt(rng.Intn(ds.Len()))
			res, err := access.WalkFaulty(bc.Channel(),
				func() access.Client { return bc.NewClient(key) },
				sim.Time(rng.Int63n(int64(bc.Channel().CycleLen()))), 0.05, rng.Float64, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Found {
				found++
			}
			if res.Tuning > res.Access {
				t.Fatalf("%s: faulty walk accounting broken", name)
			}
		}
		// Restarting clients must eventually succeed for present keys.
		if found < 55 {
			t.Fatalf("%s: only %d/60 faulty queries succeeded", name, found)
		}
	}
}
