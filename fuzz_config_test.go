// Randomized configuration sweeps: every scheme must stay correct for any
// plausible record-count/key-size geometry, not just the paper's defaults.
package airindex

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/analytical"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// TestRandomGeometries builds every scheme over randomized dataset shapes
// and checks the fundamental contracts: present keys are found, absent
// keys are not, tuning never exceeds access, and no query takes more than
// three cycles.
func TestRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	schemes := core.SchemeNames()
	const iterations = 60
	for it := 0; it < iterations; it++ {
		cfg := datagen.Config{
			NumRecords:    50 + rng.Intn(800),
			RecordSize:    300 + rng.Intn(500),
			KeySize:       8 + rng.Intn(40),
			NumAttributes: 1 + rng.Intn(5),
			Seed:          rng.Int63(),
		}
		ds, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		scheme := schemes[rng.Intn(len(schemes))]
		runCfg := core.DefaultConfig(scheme, cfg.NumRecords)
		runCfg.Data = cfg
		bc, err := core.BuildBroadcast(ds, runCfg)
		if err != nil {
			// Tree schemes legitimately reject keys too large for any
			// fanout; nothing else may fail.
			if strings.Contains(err.Error(), "too large") {
				continue
			}
			t.Fatalf("iter %d %s %+v: %v", it, scheme, cfg, err)
		}
		cycle := int64(bc.Channel().CycleLen())
		for q := 0; q < 8; q++ {
			rec := rng.Intn(ds.Len())
			arrival := sim.Time(rng.Int63n(3 * cycle))
			res, err := access.Walk(bc.Channel(), bc.NewClient(ds.KeyAt(rec)), arrival, 0)
			if err != nil {
				t.Fatalf("iter %d %s: %v", it, scheme, err)
			}
			if !res.Found {
				t.Fatalf("iter %d %s %+v: key %d (record %d) not found", it, scheme, cfg, ds.KeyAt(rec), rec)
			}
			if res.Tuning > res.Access || res.Access > units.Bytes64(3*cycle) {
				t.Fatalf("iter %d %s: implausible accounting %+v (cycle %d)", it, scheme, res, cycle)
			}
		}
		for q := 0; q < 3; q++ {
			rec := rng.Intn(ds.Len())
			res, err := access.Walk(bc.Channel(), bc.NewClient(ds.MissingKeyNear(rec)), sim.Time(rng.Int63n(cycle)), 0)
			if err != nil {
				t.Fatalf("iter %d %s: %v", it, scheme, err)
			}
			if res.Found {
				t.Fatalf("iter %d %s: phantom record for missing key", it, scheme)
			}
		}
	}
}

// TestSimulationTracksAnalyticalModels cross-validates the simulator
// against the paper's closed forms at a mid-size workload: each scheme's
// simulated mean access time must sit within 20% of its model (the paper's
// Figure 4 claim), and tuning within the documented constant offsets.
func TestSimulationTracksAnalyticalModels(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation cross-check")
	}
	const records = 4000
	run := func(scheme string) *core.Result {
		cfg := core.DefaultConfig(scheme, records)
		cfg.Accuracy = 0.02
		cfg.MinRequests = 3000
		cfg.MaxRequests = 30000
		res, err := core.RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Flat: At = Tt = (Nr+1)/2 buckets.
	flatRes := run("flat")
	flatBucket := float64(flatRes.CycleBytes) / float64(records)
	wantFlat := analytical.FlatAccess(records) * flatBucket
	if r := flatRes.Access.Mean() / wantFlat; r < 0.9 || r > 1.1 {
		t.Errorf("flat access %v vs model %v", flatRes.Access.Mean(), wantFlat)
	}

	// Distributed: access within 20% of the model at the optimal r.
	distRes := run("distributed")
	tp := analytical.TreeParams{
		Fanout:     int(distRes.Params["fanout"]),
		Levels:     analytical.LevelsFor(int(distRes.Params["fanout"]), records),
		Replicated: int(distRes.Params["r"]),
		Records:    records,
	}
	wantDist := analytical.DistAccess(tp) * distRes.Params["bucket_size"]
	if r := distRes.Access.Mean() / wantDist; r < 0.8 || r > 1.2 {
		t.Errorf("distributed access %v vs model %v", distRes.Access.Mean(), wantDist)
	}
	// Tuning: model undercounts by a documented ~1-1.5 buckets.
	wantDistT := analytical.DistTuning(tp) * distRes.Params["bucket_size"]
	diffBuckets := (distRes.Tuning.Mean() - wantDistT) / distRes.Params["bucket_size"]
	if diffBuckets < 0 || diffBuckets > 2.5 {
		t.Errorf("distributed tuning %v vs model %v: offset %v buckets outside [0, 2.5]",
			distRes.Tuning.Mean(), wantDistT, diffBuckets)
	}

	// Hashing: both metrics within 15%.
	hashRes := run("hashing")
	hp := analytical.HashParams{
		Allocated: hashRes.Params["Na"],
		Colliding: hashRes.Params["Nc"],
		Records:   records,
	}
	hashBucket := float64(hashRes.CycleBytes) / (hp.Allocated + hp.Colliding)
	if r := hashRes.Access.Mean() / (analytical.HashingAccess(hp) * hashBucket); r < 0.85 || r > 1.15 {
		t.Errorf("hashing access off model by factor %v", r)
	}
	if r := hashRes.Tuning.Mean() / (analytical.HashingTuning(hp) * hashBucket); r < 0.8 || r > 1.25 {
		t.Errorf("hashing tuning off model by factor %v", r)
	}

	// Signature: both metrics within 10% (its model is nearly exact).
	sigRes := run("signature")
	sigBytes := 21.0 // header + 16-byte signature
	dataBytes := 505.0
	if r := sigRes.Access.Mean() / analytical.SignatureAccess(records, dataBytes, sigBytes); r < 0.9 || r > 1.1 {
		t.Errorf("signature access off model by factor %v", r)
	}
	fd := analytical.SignatureExpectedFalseDrops(records, 16, 8, 5)
	if r := sigRes.Tuning.Mean() / analytical.SignatureTuning(records, dataBytes, sigBytes, fd); r < 0.9 || r > 1.1 {
		t.Errorf("signature tuning off model by factor %v", r)
	}

	// (1,m): access within 20% at the optimal m.
	onemRes := run("(1,m)")
	otp := analytical.TreeParams{
		Fanout:  int(onemRes.Params["fanout"]),
		Levels:  analytical.LevelsFor(int(onemRes.Params["fanout"]), records),
		Records: records,
	}
	wantOnem := analytical.OneMAccess(otp, int(onemRes.Params["m"])) * onemRes.Params["bucket_size"]
	if r := onemRes.Access.Mean() / wantOnem; r < 0.8 || r > 1.2 {
		t.Errorf("(1,m) access %v vs model %v", onemRes.Access.Mean(), wantOnem)
	}
}
