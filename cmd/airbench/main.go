// Command airbench regenerates the paper's evaluation artifacts — Table 1
// and every series of Figures 4, 5 and 6 — plus the ablation studies
// documented in DESIGN.md. Each experiment prints the same rows the paper
// plots, with simulated (S) and analytical (A) columns side by side.
//
// Examples:
//
//	airbench all              # the full suite at paper settings
//	airbench fig4 fig5        # specific experiments
//	airbench -fast all        # reduced workloads (seconds, not minutes)
//	airbench -csv out/ fig6   # also write out/fig6a.csv, out/fig6b.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/airindex/airindex/internal/experiments"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airbench", flag.ContinueOnError)
	fast := fs.Bool("fast", false, "reduced workloads and relaxed stopping rule")
	csvDir := fs.String("csv", "", "directory to write one CSV file per table")
	md := fs.Bool("md", false, "render tables as markdown instead of aligned text")
	plot := fs.Bool("plot", false, "also render each table as an ASCII chart")
	seed := fs.Int64("seed", 0, "seed override (0 = default)")
	shards := fs.Int("shards", 0, "shards per simulation run; results depend on (seed, shards) only (0 = sequential)")
	engine := fs.String("engine", "", "request engine for every point: events (default) or cohort; results are bit-identical")
	quiet := fs.Bool("quiet", false, "suppress per-point progress lines")
	faultModel := fs.String("fault-model", "none", "apply an unreliable-channel error model to every point: none, iid, ge, drop")
	faultRate := fs.Float64("fault-rate", 0, "headline error rate for -fault-model [0,1): per-bucket loss (drop), per-bit BER (iid), bad-state corruption rate (ge)")
	faultRetries := fs.Int("fault-retries", 0, "corrupted reads tolerated per request (0 = unbounded)")
	faultRecovery := fs.String("fault-recovery", "restart", "re-tune policy after a corrupted read: restart, cycle")
	channels := fs.Int("channels", 0, "apply a K-channel allocation to every point (0 = single channel); the multich experiment sweeps its own")
	switchCost := fs.Int("switch-cost", 0, "channel-switch cost in bytes, dozed through (needs -channels)")
	alloc := fs.String("alloc", "replicated", "K-channel allocation policy: replicated, indexdata, skewed")
	indexChannels := fs.Int("index-channels", 0, "indexdata policy: dedicated index channels (0 = 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given; use 'all' or any of: %s", strings.Join(experiments.IDs(), " "))
	}

	opt := experiments.Options{Fast: *fast, Seed: *seed, Shards: *shards, Engine: *engine}
	model, err := faults.ParseModel(*faultModel)
	if err != nil {
		return err
	}
	recovery, err := faults.ParseRecovery(*faultRecovery)
	if err != nil {
		return err
	}
	opt.Faults = faults.FromRate(model, *faultRate)
	opt.Faults.Recovery = recovery
	opt.Faults.MaxRetries = *faultRetries
	if err := opt.Faults.Validate(); err != nil {
		return err
	}
	policy, err := multichannel.ParsePolicy(*alloc)
	if err != nil {
		return err
	}
	opt.Multi = multichannel.Config{
		Channels:      *channels,
		SwitchCost:    units.Bytes(*switchCost),
		Policy:        policy,
		IndexChannels: *indexChannels,
	}
	if err := opt.Multi.Validate(); err != nil {
		return err
	}
	if !*quiet {
		opt.Progress = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", a...)
		}
	}

	var tables []*experiments.Table
	//airlint:allow determinism wall-clock timing of the CLI itself, not of simulated runs
	start := time.Now()
	for _, id := range ids {
		var (
			ts  []*experiments.Table
			err error
		)
		if id == "all" {
			ts, err = experiments.RunAll(opt)
		} else {
			ts, err = experiments.Run(id, opt)
		}
		if err != nil {
			return err
		}
		tables = append(tables, ts...)
	}

	for _, t := range tables {
		var err error
		if *md {
			err = t.WriteMarkdown(out)
		} else {
			err = t.WriteText(out)
		}
		if err != nil {
			return err
		}
		if *plot {
			if err := t.WritePlot(out, 72, 20); err != nil {
				return err
			}
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(*csvDir, t.ID+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	//airlint:allow determinism wall-clock timing of the CLI itself, not of simulated runs
	fmt.Fprintf(os.Stderr, "airbench: %d tables in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
	return nil
}
