package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "-csv", dir, "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Simulation settings") {
		t.Fatalf("missing table text:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "confidence") {
		t.Fatalf("csv incomplete: %s", data)
	}
}

// TestRunShardsDeterministic: the -shards flag is accepted, table aliases
// resolve, and two identical sharded invocations emit identical bytes.
func TestRunShardsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-fast", "-quiet", "-shards", "2", "fig4a"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sharded runs differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "Access time vs. number of data records") {
		t.Fatalf("fig4a alias did not produce the access table:\n%s", a.String())
	}
	if strings.Contains(a.String(), "Tuning time vs. number of data records") {
		t.Fatalf("fig4a alias leaked the tuning table:\n%s", a.String())
	}
}

// TestRunZeroRateFaultsIdenticalOutput is the CLI-level differential
// check mirrored by CI: a zero-rate fault model must not change a single
// output byte of an existing figure.
func TestRunZeroRateFaultsIdenticalOutput(t *testing.T) {
	var base, zero bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "fig4a"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fast", "-quiet", "-fault-model", "drop", "-fault-rate", "0", "fig4a"}, &zero); err != nil {
		t.Fatal(err)
	}
	if base.String() != zero.String() {
		t.Fatalf("zero-rate faults changed fig4a output:\n%s\nvs\n%s", base.String(), zero.String())
	}
}

// TestRunFaultsExperiment: the faults family runs end to end from the CLI
// and its aliases resolve.
func TestRunFaultsExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "faults-at"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Access time vs. bucket error rate") {
		t.Fatalf("faults-at alias did not produce the access table:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Recovery cost") {
		t.Fatalf("faults-at alias leaked the recovery table:\n%s", out.String())
	}
}

func TestRunRejectsBadFaultFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "-fault-model", "bogus", "table1"}, &out); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run([]string{"-fast", "-fault-rate", "1.5", "-fault-model", "drop", "table1"}, &out); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

func TestRunRequiresExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast"}, &out); err == nil {
		t.Fatal("no experiment ids accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "bogus"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
