package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "-csv", dir, "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Simulation settings") {
		t.Fatalf("missing table text:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "confidence") {
		t.Fatalf("csv incomplete: %s", data)
	}
}

// TestRunShardsDeterministic: the -shards flag is accepted, table aliases
// resolve, and two identical sharded invocations emit identical bytes.
func TestRunShardsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-fast", "-quiet", "-shards", "2", "fig4a"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sharded runs differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "Access time vs. number of data records") {
		t.Fatalf("fig4a alias did not produce the access table:\n%s", a.String())
	}
	if strings.Contains(a.String(), "Tuning time vs. number of data records") {
		t.Fatalf("fig4a alias leaked the tuning table:\n%s", a.String())
	}
}

// TestRunZeroRateFaultsIdenticalOutput is the CLI-level differential
// check mirrored by CI: a zero-rate fault model must not change a single
// output byte of an existing figure.
func TestRunZeroRateFaultsIdenticalOutput(t *testing.T) {
	var base, zero bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "fig4a"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fast", "-quiet", "-fault-model", "drop", "-fault-rate", "0", "fig4a"}, &zero); err != nil {
		t.Fatal(err)
	}
	if base.String() != zero.String() {
		t.Fatalf("zero-rate faults changed fig4a output:\n%s\nvs\n%s", base.String(), zero.String())
	}
}

// TestRunFaultsExperiment: the faults family runs end to end from the CLI
// and its aliases resolve.
func TestRunFaultsExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "faults-at"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Access time vs. bucket error rate") {
		t.Fatalf("faults-at alias did not produce the access table:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Recovery cost") {
		t.Fatalf("faults-at alias leaked the recovery table:\n%s", out.String())
	}
}

// TestRunOneChannelIdenticalOutput is the CLI-level K=1 differential
// check mirrored by CI: a one-channel replicated allocation with zero
// switch cost must not change a single output byte of an existing figure.
func TestRunOneChannelIdenticalOutput(t *testing.T) {
	var base, one bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "fig5a"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fast", "-quiet", "-channels", "1", "-alloc", "replicated", "fig5a"}, &one); err != nil {
		t.Fatal(err)
	}
	if base.String() != one.String() {
		t.Fatalf("K=1 allocation changed fig5a output:\n%s\nvs\n%s", base.String(), one.String())
	}
}

// TestRunMultichExperiment: the multich family runs end to end from the
// CLI and its aliases resolve.
func TestRunMultichExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the multich sweep")
	}
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "multich-at"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Access time vs. number of broadcast channels") {
		t.Fatalf("multich-at alias did not produce the access table:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Tuning time vs. number of broadcast channels") {
		t.Fatalf("multich-at alias leaked the tuning table:\n%s", out.String())
	}
}

// TestRunRejectsBadChannelFlags: unknown allocation names and invalid
// channel counts are refused before any experiment runs.
func TestRunRejectsBadChannelFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "-channels", "2", "-alloc", "bogus", "table1"}, &out); err == nil {
		t.Fatal("unknown allocation policy accepted")
	}
	if err := run([]string{"-fast", "-channels", "-3", "table1"}, &out); err == nil {
		t.Fatal("negative channel count accepted")
	}
}

func TestRunRejectsBadFaultFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "-fault-model", "bogus", "table1"}, &out); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run([]string{"-fast", "-fault-rate", "1.5", "-fault-model", "drop", "table1"}, &out); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

func TestRunRequiresExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast"}, &out); err == nil {
		t.Fatal("no experiment ids accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "bogus"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
