package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-fast", "-quiet", "-csv", dir, "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Simulation settings") {
		t.Fatalf("missing table text:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "confidence") {
		t.Fatalf("csv incomplete: %s", data)
	}
}

func TestRunRequiresExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast"}, &out); err == nil {
		t.Fatal("no experiment ids accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fast", "bogus"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
