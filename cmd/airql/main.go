// Command airql compiles and runs airql scenario scripts — the pipeline
// DSL (SWEEP | RUN | TABLE | EMIT) that generates every experiment
// family in this repository. Scripts name knobs from the simulator's
// real configuration surface; the compiler type-checks every one against
// it and reports misuse with line:column positions before anything runs.
//
// Examples:
//
//	airql -run scenarios/fig4.airql     # compile, run, honour EMIT sinks
//	airql -check scenarios/*.airql      # compile only; report errors
//	airql -list                         # list the embedded scenarios
//	airql -fast -out /tmp fig5          # embedded script, fast profile
//
// A script argument is a path if it exists on disk; otherwise it names
// an embedded scenario ("fig4" or "fig4.airql"). EMIT csv(...) paths are
// joined to -out; summary(stdout) sinks write to standard output. A
// script with no EMIT stage prints its tables as aligned text.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/airindex/airindex/internal/airql"
	"github.com/airindex/airindex/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airql:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airql", flag.ContinueOnError)
	check := fs.Bool("check", false, "compile the scripts and report errors, but do not run them")
	list := fs.Bool("list", false, "list the embedded scenario scripts and exit")
	runMode := fs.Bool("run", false, "compile and run the scripts (the default mode)")
	fast := fs.Bool("fast", false, "reduced workloads and relaxed stopping rule (selects the scripts' fast(...) variants)")
	seed := fs.Int64("seed", 0, "seed override; wins over a script's RUN seed (0 = default)")
	shards := fs.Int("shards", 0, "shards per simulation run; results depend on (seed, shards) only (0 = script or sequential)")
	engine := fs.String("engine", "", "request engine for every point: events (default) or cohort; results are bit-identical")
	outDir := fs.String("out", ".", "root directory EMIT csv(...) paths are resolved against")
	quiet := fs.Bool("quiet", false, "suppress per-point progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range scenarios.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no scripts given; use -list for the embedded scenarios or pass *.airql paths")
	}
	if *check && *runMode {
		return fmt.Errorf("-check and -run are mutually exclusive")
	}

	opt := airql.Options{Fast: *fast, Seed: *seed, Shards: *shards, Engine: *engine}
	if !*quiet {
		opt.Progress = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", a...)
		}
	}

	failed := 0
	for _, arg := range files {
		file, src, err := load(arg)
		if err != nil {
			return err
		}
		prog, err := airql.Compile(file, src)
		if err != nil {
			if !*check {
				return err
			}
			failed++
			fmt.Fprintln(out, err)
			continue
		}
		if *check {
			fmt.Fprintf(out, "%s: ok\n", file)
			continue
		}
		tables, err := airql.Execute(prog, opt)
		if err != nil {
			return err
		}
		if err := airql.Emit(prog, tables, *outDir, out); err != nil {
			return err
		}
		if !hasSinks(prog) {
			for _, tb := range tables {
				if err := tb.WriteText(out); err != nil {
					return err
				}
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scripts failed to compile", failed, len(files))
	}
	return nil
}

// load resolves a script argument: an on-disk path wins; otherwise the
// argument names an embedded scenario, with ".airql" optional.
func load(arg string) (file, src string, err error) {
	if b, err := os.ReadFile(arg); err == nil {
		return arg, string(b), nil
	} else if !os.IsNotExist(err) {
		return "", "", err
	}
	name := arg
	if !strings.HasSuffix(name, ".airql") {
		name += ".airql"
	}
	src, serr := scenarios.Source(name)
	if serr != nil {
		return "", "", fmt.Errorf("%s: not a file and not an embedded scenario (have: %s)",
			arg, strings.Join(scenarios.Names(), " "))
	}
	return name, src, nil
}

func hasSinks(prog *airql.Program) bool {
	if len(prog.LooseSinks) > 0 {
		return true
	}
	for _, t := range prog.Tables {
		if len(t.Sinks) > 0 {
			return true
		}
	}
	return false
}
