// Command airtrace prints a probe-by-probe walkthrough of one client query
// under any access method: every tune-in, every doze, and the final
// access/tuning accounting. It is the fastest way to see *why* each scheme
// has the cost profile the paper reports.
//
// Examples:
//
//	airtrace -scheme distributed -records 2000 -pick 1500
//	airtrace -scheme hashing -records 500 -missing
//	airtrace -scheme signature -arrival 123456
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airtrace", flag.ContinueOnError)
	scheme := fs.String("scheme", "distributed", "access method: "+strings.Join(core.SchemeNames(), ", "))
	records := fs.Int("records", 2000, "number of broadcast records")
	pick := fs.Int("pick", -1, "record index to query (-1 = middle)")
	missing := fs.Bool("missing", false, "query a key that is not broadcast")
	arrival := fs.Int64("arrival", 12345, "request arrival time in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig(*scheme, *records)
	ds, err := datagen.Generate(cfg.Data)
	if err != nil {
		return err
	}
	bc, err := core.BuildBroadcast(ds, cfg)
	if err != nil {
		return err
	}

	idx := *pick
	if idx < 0 || idx >= ds.Len() {
		idx = ds.Len() / 2
	}
	key := ds.KeyAt(idx)
	what := fmt.Sprintf("record %d", idx)
	if *missing {
		key = ds.MissingKeyNear(idx)
		what = fmt.Sprintf("a key absent near record %d", idx)
	}

	ch := bc.Channel()
	fmt.Fprintf(out, "scheme %s: %d buckets per cycle, %d bytes; querying %s\n\n",
		bc.Name(), ch.NumBuckets(), ch.CycleLen(), what)
	tr, err := trace.Run(bc, key, sim.Time(*arrival))
	if err != nil {
		return err
	}
	return tr.Write(out)
}
