package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTraceEverySchemeKind(t *testing.T) {
	for _, scheme := range []string{"flat", "(1,m)", "distributed", "hashing", "signature", "hybrid", "broadcast-disks"} {
		var out bytes.Buffer
		err := run([]string{"-scheme", scheme, "-records", "200", "-pick", "100"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !strings.Contains(out.String(), "=> found=true") {
			t.Fatalf("%s trace did not find the record:\n%s", scheme, out.String())
		}
	}
}

func TestRunTraceMissing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "distributed", "-records", "150", "-missing"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=> found=false") {
		t.Fatalf("missing-key trace should fail:\n%s", out.String())
	}
}

func TestRunTraceBadScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "nope"}, &out); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunTracePickOutOfRangeDefaultsToMiddle(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "flat", "-records", "50", "-pick", "999"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "record 25") {
		t.Fatalf("out-of-range pick should default to the middle:\n%s", out.String())
	}
}
