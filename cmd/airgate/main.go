// Command airgate is the benchmark-regression gate for the columnar
// cohort engine. It times a pinned flat-broadcast workload on both
// request engines, computes the cohort/reference throughput ratio, and
// fails when that ratio has regressed by more than the allowed fraction
// against the checked-in baseline (ci/bench-baseline.json).
//
// The gate compares the *ratio* between the two engines rather than raw
// requests/sec, so it tolerates slower or faster CI machines: both
// engines run on the same hardware in the same process, and only their
// relative speed is pinned. The workload forces MinRequests ==
// MaxRequests so every run executes exactly the same request count (the
// stopping rule is only consulted once the cap is reached).
//
// Usage:
//
//	airgate                 # gate against ci/bench-baseline.json
//	airgate -update         # re-measure and rewrite the baseline
//	airgate -trials 5       # more trials (best-of-N wall clock)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/airindex/airindex/internal/core"
)

// The pinned workload. Flat over 2,000 records keeps a trial under a
// second while exercising the cohort engine's resolver fast path and the
// reference engine's full event loop; the request counts are sized so
// setup cost is amortised for each engine at its own speed.
const (
	gateScheme       = "flat"
	gateRecords      = 2000
	gateSeed         = 42
	gateRefRequests  = 40000
	gateCohRequests  = 400000
	defaultTrials    = 3
	defaultBaseline  = "ci/bench-baseline.json"
	defaultTolerance = 0.15 // fail on >15% ratio regression
)

// baseline is the checked-in measurement the gate compares against.
type baseline struct {
	Scheme            string  `json:"scheme"`
	Records           int     `json:"records"`
	ReferenceRequests int     `json:"reference_requests"`
	CohortRequests    int     `json:"cohort_requests"`
	Trials            int     `json:"trials"`
	ReferenceRPS      float64 `json:"reference_rps"`
	CohortRPS         float64 `json:"cohort_rps"`
	Ratio             float64 `json:"ratio"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "airgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("airgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", defaultBaseline, "baseline JSON to gate against")
	update := fs.Bool("update", false, "re-measure and rewrite the baseline instead of gating")
	trials := fs.Int("trials", defaultTrials, "wall-clock trials per engine (best of N)")
	tolerance := fs.Float64("tolerance", defaultTolerance, "allowed cohort/reference ratio regression fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials < 1 {
		return fmt.Errorf("need at least one trial, got %d", *trials)
	}
	if *tolerance <= 0 || *tolerance >= 1 {
		return fmt.Errorf("tolerance must be in (0,1), got %g", *tolerance)
	}

	refRPS, err := measure(core.EngineEvents, gateRefRequests, *trials)
	if err != nil {
		return err
	}
	cohRPS, err := measure(core.EngineCohort, gateCohRequests, *trials)
	if err != nil {
		return err
	}
	ratio := cohRPS / refRPS
	fmt.Printf("reference  %12.0f req/s  (%s, %d records, %d requests, best of %d)\n",
		refRPS, gateScheme, gateRecords, gateRefRequests, *trials)
	fmt.Printf("cohort     %12.0f req/s  (%s, %d records, %d requests, best of %d)\n",
		cohRPS, gateScheme, gateRecords, gateCohRequests, *trials)
	fmt.Printf("ratio      %12.2fx\n", ratio)

	if *update {
		b := baseline{
			Scheme:            gateScheme,
			Records:           gateRecords,
			ReferenceRequests: gateRefRequests,
			CohortRequests:    gateCohRequests,
			Trials:            *trials,
			ReferenceRPS:      refRPS,
			CohortRPS:         cohRPS,
			Ratio:             ratio,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline   wrote %s\n", *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("no baseline (run with -update to create one): %w", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}
	if base.Ratio <= 0 {
		return fmt.Errorf("%s has no positive ratio; rerun with -update", *baselinePath)
	}
	floor := base.Ratio * (1 - *tolerance)
	fmt.Printf("baseline   %12.2fx  (floor %.2fx at %g tolerance)\n", base.Ratio, floor, *tolerance)
	if ratio < floor {
		return fmt.Errorf("cohort/reference throughput ratio %.2fx regressed below %.2fx (baseline %.2fx - %g%%)",
			ratio, floor, base.Ratio, *tolerance*100)
	}
	fmt.Println("gate       PASS")
	return nil
}

// measure returns the best requests/sec over n trials of the pinned
// workload on the given engine. Each trial builds a fresh simulator
// outside the timed region, so datagen and cycle construction do not
// dilute the engine's own throughput.
func measure(engine string, requests, n int) (float64, error) {
	cfg := core.DefaultConfig(gateScheme, gateRecords)
	cfg.Seed = gateSeed
	cfg.Engine = engine
	cfg.RoundSize = 500
	// MinRequests == MaxRequests forces the exact request count: the
	// stopping rule cannot fire before the cap.
	cfg.MinRequests = requests
	cfg.MaxRequests = requests
	best := 0.0
	for i := 0; i < n; i++ {
		s, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		//airlint:allow determinism wall-clock timing of the CLI itself, not of simulated runs
		start := time.Now()
		res, err := s.Run()
		if err != nil {
			return 0, err
		}
		//airlint:allow determinism wall-clock timing of the CLI itself, not of simulated runs
		elapsed := time.Since(start)
		if res.Requests != int64(requests) {
			return 0, fmt.Errorf("%s engine ran %d requests, want exactly %d", engine, res.Requests, requests)
		}
		if rps := float64(requests) / elapsed.Seconds(); rps > best {
			best = rps
		}
	}
	return best, nil
}
