// Package clean is a known-good fixture for the airlint smoke test.
package clean

import "sort"

// Keys returns m's keys in deterministic order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
