// Package dirty is a known-bad fixture for the airlint smoke test: it
// reads the wall clock and spawns a goroutine outside the sanctioned
// concurrency layer.
package dirty

import "time"

func Stamp() int64 {
	done := make(chan int64, 1)
	go func() { done <- time.Now().UnixNano() }()
	return <-done
}
