// Command airlint runs the project's static-analysis suite: the
// determinism, floatcompare, confinement, unitsafety, exhaustive,
// mergecomplete, rngdiscipline, byteclock, hotalloc, maporder,
// seedtaint, and escapecheck analyzers plus `//airlint:allow` /
// `//airlint:hotpath` directive checking (see internal/lint).
//
// Usage:
//
//	airlint ./...                 # lint the whole module
//	airlint ./internal/sim        # lint one package
//	airlint -only rngdiscipline,hotalloc ./...  # a subset, for iteration
//	airlint -escape ./...         # also cross-check hotpaths vs the compiler
//	airlint -json ./...           # one JSON object per finding
//	airlint -list                 # describe the analyzers
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. Findings print as file:line:col: [analyzer] msg,
// or with -json as one {"file","line","col","analyzer","message"} object
// per line (no summary line), for machine consumers such as the CI
// problem matcher in .github/problem-matchers/airlint.json.
//
// All selected packages are checked in one batch so the module-wide
// rules see every call site at once (rngdiscipline's duplicate-label
// check spans packages).
//
// The escapecheck analyzer needs the compiler's escape diagnostics:
// -escape shells out to `go build -gcflags='-m -m'` over the selected
// packages (the Go build cache replays the output for unchanged code,
// so repeat runs stay fast). Selecting it with -only escapecheck
// implies -escape. Without escape data the analyzer is skipped and its
// suppressions are ignored rather than reported stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/airindex/airindex/internal/lint"
)

// finding is the JSON shape of one diagnostic under -json.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "airlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("airlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding instead of text")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all; directive checking always runs)")
	escape := fs.Bool("escape", false, "build with -gcflags='-m -m' and cross-check //airlint:hotpath functions against the compiler's escape analysis")
	dir := fs.String("C", ".", "change to this directory before resolving patterns")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "%-14s %s\n", "directive", "check //airlint:allow suppressions and //airlint:hotpath markers (unknown, unused or misplaced ones are errors)")
		return 0, nil
	}
	var names []string
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
				if n == "escapecheck" {
					// Selecting the analyzer is asking for the build.
					*escape = true
				}
			}
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := lint.FindModule(*dir)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(root, modPath)
	rels, err := loader.Expand(patterns)
	if err != nil {
		return 2, err
	}
	if len(rels) == 0 {
		return 2, fmt.Errorf("no packages match %v", patterns)
	}

	pkgs := make([]*lint.Package, 0, len(rels))
	for _, rel := range rels {
		pkg, err := loader.Load(rel)
		if err != nil {
			return 2, err
		}
		pkgs = append(pkgs, pkg)
	}
	opts := lint.Options{Only: names}
	if *escape {
		opts.Escapes, err = lint.RunEscapeBuild(root, rels)
		if err != nil {
			return 2, err
		}
	}
	diags, err := lint.CheckWith(pkgs, opts)
	if err != nil {
		return 2, err
	}

	enc := json.NewEncoder(out)
	findings := 0
	for _, d := range diags {
		findings++
		if *jsonOut {
			if err := enc.Encode(finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				return 2, err
			}
		} else {
			fmt.Fprintln(out, d)
		}
	}
	if findings > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "airlint: %d finding(s)\n", findings)
		}
		return 1, nil
	}
	return 0, nil
}
