// Command airlint runs the project's static-analysis suite: the
// determinism, floatcompare, and confinement analyzers plus
// `//airlint:allow` directive checking (see internal/lint).
//
// Usage:
//
//	airlint ./...                 # lint the whole module
//	airlint ./internal/sim        # lint one package
//	airlint -list                 # describe the analyzers
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. Findings print as file:line:col: [analyzer] msg.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/airindex/airindex/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "airlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("airlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "describe the analyzers and exit")
	dir := fs.String("C", ".", "change to this directory before resolving patterns")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "%-14s %s\n", "directive", "check //airlint:allow suppressions (unknown or unused ones are errors)")
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := lint.FindModule(*dir)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(root, modPath)
	rels, err := loader.Expand(patterns)
	if err != nil {
		return 2, err
	}
	if len(rels) == 0 {
		return 2, fmt.Errorf("no packages match %v", patterns)
	}

	findings := 0
	for _, rel := range rels {
		pkg, err := loader.Load(rel)
		if err != nil {
			return 2, err
		}
		for _, d := range lint.Check(pkg) {
			findings++
			fmt.Fprintln(out, d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(out, "airlint: %d finding(s)\n", findings)
		return 1, nil
	}
	return 0, nil
}
