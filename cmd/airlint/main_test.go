package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCleanFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./cmd/airlint/testdata/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean fixture: exit %d, output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean fixture should print nothing, got:\n%s", out.String())
	}
}

func TestRunDirtyFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./cmd/airlint/testdata/dirty"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("dirty fixture: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{"dirty.go:", "[determinism]", "[confinement]", "time.Now", "go statement", "channel construction"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("dirty fixture output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunListsAnalyzers(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code %d err %v", code, err)
	}
	for _, want := range []string{"determinism", "floatcompare", "confinement", "unitsafety", "exhaustive", "mergecomplete", "rngdiscipline", "byteclock", "hotalloc", "maporder", "seedtaint", "escapecheck", "directive", "hotpath"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunEscapeCleanFixture drives the full -escape path: a real
// `go build -gcflags='-m -m'` over the fixture package, escape data
// attached, no hotpath functions there, so nothing to report.
func TestRunEscapeCleanFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	var out bytes.Buffer
	code, err := run([]string{"-escape", "./cmd/airlint/testdata/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean fixture under -escape: exit %d, output:\n%s", code, out.String())
	}
}

// TestRunOnlyEscapeCheckImpliesBuild: naming escapecheck in -only turns
// the escape build on instead of erroring out for missing data.
func TestRunOnlyEscapeCheckImpliesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	var out bytes.Buffer
	code, err := run([]string{"-only", "escapecheck", "./cmd/airlint/testdata/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("-only escapecheck on clean fixture: exit %d, output:\n%s", code, out.String())
	}
}

func TestRunOnlySubset(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-only", "determinism", "./cmd/airlint/testdata/dirty"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("-only determinism on dirty fixture: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Fatalf("-only determinism output missing its findings:\n%s", out.String())
	}
	if strings.Contains(out.String(), "[confinement]") {
		t.Fatalf("-only determinism must drop other analyzers' findings:\n%s", out.String())
	}
}

func TestRunOnlyUnknownName(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-only", "nosuchanalyzer", "./cmd/airlint/testdata/dirty"}, &out); err == nil {
		t.Fatal("unknown -only analyzer accepted")
	}
}

func TestRunJSONDirtyFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-json", "./cmd/airlint/testdata/dirty"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("dirty fixture: exit %d, want 1; output:\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("-json printed no findings")
	}
	seen := make(map[string]bool)
	for _, line := range lines {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", line, err)
		}
		if !strings.HasSuffix(f.File, "dirty.go") || f.Line <= 0 || f.Col <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("incomplete finding %+v", f)
		}
		seen[f.Analyzer] = true
	}
	if !seen["determinism"] || !seen["confinement"] {
		t.Fatalf("-json findings missing expected analyzers: %v", seen)
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("-json output should not carry the text summary:\n%s", out.String())
	}
}

func TestRunJSONCleanFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-json", "./cmd/airlint/testdata/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("clean fixture under -json: exit %d, output:\n%s", code, out.String())
	}
}

func TestRunRejectsMissingDir(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"./no/such/dir"}, &out); err == nil {
		t.Fatal("missing directory accepted")
	}
}
