package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCleanFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./cmd/airlint/testdata/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean fixture: exit %d, output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean fixture should print nothing, got:\n%s", out.String())
	}
}

func TestRunDirtyFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./cmd/airlint/testdata/dirty"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("dirty fixture: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{"dirty.go:", "[determinism]", "[confinement]", "time.Now", "go statement", "channel construction"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("dirty fixture output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunListsAnalyzers(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code %d err %v", code, err)
	}
	for _, want := range []string{"determinism", "floatcompare", "confinement", "directive"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsMissingDir(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"./no/such/dir"}, &out); err == nil {
		t.Fatal("missing directory accepted")
	}
}
