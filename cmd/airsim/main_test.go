package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "distributed", "-records", "300",
		"-min-requests", "300", "-max-requests", "600", "-accuracy", "0.1", "-round", "150",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme            distributed", "access time", "tuning time", "found/not found"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithErrorInjection(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "hashing", "-records", "200", "-ber", "0.1",
		"-min-requests", "200", "-max-requests", "400", "-accuracy", "0.2", "-round", "100",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "error restarts") {
		t.Fatalf("error injection run should report restarts:\n%s", out.String())
	}
}

// TestRunWithFaultFlags: the -fault-* flags reach the faults layer and
// the run reports the recovery counters.
func TestRunWithFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "distributed", "-records", "200",
		"-fault-model", "drop", "-fault-rate", "0.1", "-fault-retries", "3", "-fault-recovery", "cycle",
		"-min-requests", "200", "-max-requests", "400", "-accuracy", "0.2", "-round", "100",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"error restarts", "model=drop", "recovery=cycle", "wasted tuning", "unrecovered"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("faulty run output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsBadFaultFlags: unknown model and recovery names, and
// mixing the legacy -ber layer with -fault-model, are refused.
func TestRunRejectsBadFaultFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fault-model", "bogus", "-records", "100"}, &out); err == nil {
		t.Fatal("unknown fault model accepted")
	}
	if err := run([]string{"-fault-model", "drop", "-fault-rate", "0.1", "-fault-recovery", "bogus", "-records", "100"}, &out); err == nil {
		t.Fatal("unknown recovery policy accepted")
	}
	if err := run([]string{"-fault-model", "drop", "-fault-rate", "0.1", "-ber", "0.1", "-records", "100"}, &out); err == nil {
		t.Fatal("legacy -ber combined with -fault-model accepted")
	}
}

// TestRunShardsFlag: -shards reaches the engine and the run reports the
// same request accounting as a sequential run.
func TestRunShardsFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "distributed", "-records", "300", "-shards", "4",
		"-min-requests", "300", "-max-requests", "600", "-accuracy", "0.1", "-round", "150",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "requests") {
		t.Fatalf("sharded run output incomplete:\n%s", out.String())
	}
	if err := run([]string{"-shards", "-2", "-records", "100"}, &out); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestRunWithChannelFlags: the -channels/-switch-cost/-alloc flags reach
// the multichannel layer and the run reports the switch counters.
func TestRunWithChannelFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "distributed", "-records", "300", "-channels", "2", "-switch-cost", "64",
		"-min-requests", "300", "-max-requests", "600", "-accuracy", "0.1", "-round", "150",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"channels          2 (replicated allocation, switch cost 64B)", "channel switches"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("multichannel run output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsBadChannelFlags: unknown policies and invalid
// combinations are refused before the simulation starts.
func TestRunRejectsBadChannelFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-channels", "2", "-alloc", "bogus", "-records", "100"}, &out); err == nil {
		t.Fatal("unknown allocation policy accepted")
	}
	if err := run([]string{"-channels", "-2", "-records", "100"}, &out); err == nil {
		t.Fatal("negative channel count accepted")
	}
	if err := run([]string{"-scheme", "flat", "-channels", "3", "-alloc", "indexdata", "-records", "100"}, &out); err == nil {
		t.Fatal("index/data allocation accepted for an index-less scheme")
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "nope", "-records", "100"}, &out); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-records", "not-a-number"}, &out); err == nil {
		t.Fatal("bad flag value accepted")
	}
}
