// Command airsim runs one wireless-broadcast simulation: it builds the
// chosen access method's broadcast cycle over a synthetic dictionary
// database and drives exponentially arriving client requests through it
// until the accuracy controller is satisfied, then reports access time and
// tuning time in bytes (the paper's two evaluation criteria).
//
// Examples:
//
//	airsim -scheme distributed -records 17500
//	airsim -scheme hashing -records 34000 -load 3
//	airsim -scheme signature -records 7000 -sig-bytes 8 -availability 0.5
//	airsim -scheme "(1,m)" -records 17500 -channels 4 -switch-cost 1024
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airsim", flag.ContinueOnError)
	scheme := fs.String("scheme", "distributed", "access method: "+strings.Join(core.SchemeNames(), ", "))
	records := fs.Int("records", 17500, "number of broadcast records")
	recordSize := fs.Int("record-size", 500, "record payload bytes (includes the key)")
	keySize := fs.Int("key-size", 25, "encoded key bytes")
	availability := fs.Float64("availability", 1, "probability a request's key is broadcast [0,1]")
	seed := fs.Int64("seed", 42, "random seed")
	shards := fs.Int("shards", 1, "event-loop shards; the result depends on (seed, shards) only")
	engine := fs.String("engine", "", "request engine: "+strings.Join(core.EngineNames(), ", ")+" (default events); cohort batches requests through the columnar kernels, bit-identical results")
	accuracy := fs.Float64("accuracy", 0.01, "confidence accuracy H/Y stopping threshold")
	confidence := fs.Float64("confidence", 0.99, "confidence level")
	minReq := fs.Int("min-requests", 5000, "minimum requests before stopping")
	round := fs.Int("round", 500, "requests per accuracy-control round")
	maxReq := fs.Int("max-requests", 100000, "request cap")
	ber := fs.Float64("ber", 0, "bucket corruption probability [0,1); legacy layer, prefer -fault-model")
	faultModel := fs.String("fault-model", "none", "unreliable-channel error model: none, iid, ge, drop")
	faultRate := fs.Float64("fault-rate", 0, "headline error rate for -fault-model [0,1): per-bucket loss (drop), per-bit BER (iid), bad-state corruption rate (ge)")
	faultRetries := fs.Int("fault-retries", 0, "corrupted reads tolerated per request (0 = unbounded)")
	faultRecovery := fs.String("fault-recovery", "restart", "re-tune policy after a corrupted read: restart, cycle")
	channels := fs.Int("channels", 0, "broadcast channels K (0 = the single-channel path)")
	switchCost := fs.Int("switch-cost", 0, "channel-switch cost in bytes, dozed through (needs -channels)")
	alloc := fs.String("alloc", "replicated", "K-channel allocation policy: replicated, indexdata, skewed")
	indexChannels := fs.Int("index-channels", 0, "indexdata policy: dedicated index channels (0 = 1)")
	m := fs.Int("m", 0, "(1,m) indexing: tree copies per cycle (0 = optimal)")
	r := fs.Int("r", -1, "distributed indexing: replicated levels (-1 = optimal)")
	load := fs.Float64("load", 3, "hashing: target records per hash position")
	sigBytes := fs.Int("sig-bytes", 16, "signature schemes: record signature bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig(*scheme, *records)
	cfg.Data.RecordSize = *recordSize
	cfg.Data.KeySize = *keySize
	cfg.Availability = *availability
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.Engine = *engine
	cfg.Accuracy = *accuracy
	cfg.Confidence = *confidence
	cfg.MinRequests = *minReq
	cfg.RoundSize = *round
	cfg.MaxRequests = *maxReq
	cfg.BitErrorRate = *ber
	model, err := faults.ParseModel(*faultModel)
	if err != nil {
		return err
	}
	recovery, err := faults.ParseRecovery(*faultRecovery)
	if err != nil {
		return err
	}
	cfg.Faults = faults.FromRate(model, *faultRate)
	cfg.Faults.Recovery = recovery
	cfg.Faults.MaxRetries = *faultRetries
	policy, err := multichannel.ParsePolicy(*alloc)
	if err != nil {
		return err
	}
	cfg.Multi = multichannel.Config{
		Channels:      *channels,
		SwitchCost:    units.Bytes(*switchCost),
		Policy:        policy,
		IndexChannels: *indexChannels,
	}
	cfg.Onem.M = *m
	cfg.Dist.R = *r
	cfg.Hashing.LoadFactor = *load
	cfg.Signature.SigBytes = *sigBytes

	res, err := core.RunOne(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scheme            %s\n", res.Scheme)
	fmt.Fprintf(out, "records           %d (record %dB, key %dB)\n", *records, *recordSize, *keySize)
	fmt.Fprintf(out, "cycle             %d bytes\n", res.CycleBytes)
	keys := make([]string, 0, len(res.Params))
	for k := range res.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "param %-12s %g\n", k, res.Params[k])
	}
	fmt.Fprintf(out, "requests          %d (%d rounds, converged=%v)\n", res.Requests, res.Rounds, res.Converged)
	fmt.Fprintf(out, "found/not found   %d / %d\n", res.Found, res.NotFound)
	accH := res.Access.HalfWidth(cfg.Confidence)
	tunH := res.Tuning.HalfWidth(cfg.Confidence)
	fmt.Fprintf(out, "access time       %.0f bytes  (±%.0f at %.0f%% confidence; min %.0f max %.0f)\n",
		res.Access.Mean(), accH, cfg.Confidence*100, res.Access.Min(), res.Access.Max())
	fmt.Fprintf(out, "tuning time       %.0f bytes  (±%.0f; min %.0f max %.0f)\n",
		res.Tuning.Mean(), tunH, res.Tuning.Min(), res.Tuning.Max())
	fmt.Fprintf(out, "tail latencies    access p95/p99 %.0f/%.0f, tuning p95/p99 %.0f/%.0f\n",
		res.AccessP95, res.AccessP99, res.TuningP95, res.TuningP99)
	fmt.Fprintf(out, "bucket probes     %.2f per request\n", res.Probes.Mean())
	if res.Restarts > 0 {
		fmt.Fprintf(out, "error restarts    %d (%.3f per request)\n", res.Restarts, float64(res.Restarts)/float64(res.Requests))
	}
	if cfg.Multi.Enabled() {
		fmt.Fprintf(out, "channels          %d (%s allocation, switch cost %dB)\n",
			cfg.Multi.Channels, cfg.Multi.Policy, cfg.Multi.SwitchCost)
		fmt.Fprintf(out, "channel switches  %.2f per request (%.1f dozed bytes per request)\n",
			float64(res.Switches)/float64(res.Requests),
			float64(res.SwitchWaitBytes)/float64(res.Requests))
	}
	if cfg.Faults.Enabled() {
		fmt.Fprintf(out, "faults            model=%s rate=%g recovery=%s retries=%d\n",
			cfg.Faults.Model, cfg.Faults.Rate(), cfg.Faults.Recovery, cfg.Faults.MaxRetries)
		fmt.Fprintf(out, "wasted tuning     %d bytes (%.1f per request)\n",
			res.WastedBytes, float64(res.WastedBytes)/float64(res.Requests))
		fmt.Fprintf(out, "unrecovered       %d requests\n", res.Unrecovered)
	}
	return nil
}
