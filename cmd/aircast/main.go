// Command aircast serves a broadcast program as a live datagram stream:
// the daemon builds one scheme's broadcast image, frames every bucket
// into a sequenced datagram (epoch + cycle offset + bucket index +
// CRC32C) and repeats the cycle at a configured bandwidth over UDP,
// with a length-prefixed TCP fallback for catch-up readers and
// Prometheus-style /metrics + /healthz endpoints.
//
// Examples:
//
//	aircast -scheme "(1,m)" -records 5000 -udp 239.1.2.3:9999
//	aircast -scheme flat -tcp 127.0.0.1:7447 -rate 1048576
//	aircast -demo                    # one reconfig cycle in-process
//	aircast -chaos-model drop -chaos-rate 0.05 -udp 127.0.0.1:9999
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/aircast"
	"github.com/airindex/airindex/internal/airborne"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aircast:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aircast", flag.ContinueOnError)
	fs.SetOutput(out)
	scheme := fs.String("scheme", "flat", `broadcast scheme: flat, "(1,m)", distributed, hashing, signature`)
	records := fs.Int("records", 1000, "records in the broadcast image")
	seed := fs.Int64("seed", 1, "dataset seed; the image is a pure function of (scheme, records, seed)")
	rate := fs.Int64("rate", 1<<20, "broadcast bandwidth in bytes/sec (0 = unpaced)")
	udp := fs.String("udp", "", "UDP datagram target (unicast or multicast group); empty = no UDP leg")
	tcp := fs.String("tcp", "", "TCP catch-up listener address; empty = no TCP leg")
	httpAddr := fs.String("http", "", "metrics/health listener address; empty = no HTTP endpoints (-demo always serves them on an ephemeral port)")
	queue := fs.Int("queue", 0, "per-TCP-reader frame queue depth before slow-reader drops (0 = default)")
	chaosModel := fs.String("chaos-model", "none", "transport chaos proxy model at the datagram layer: none, iid, ge, drop")
	chaosRate := fs.Float64("chaos-rate", 0, "headline chaos rate [0,1): per-datagram loss (drop) or per-bit BER (iid, ge)")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos proxy seed; per-datagram fates replay exactly from it")
	transport := fs.String("transport", "inmem", "-demo client transport: inmem, udp, tcp")
	demo := fs.Bool("demo", false, "serve one reconfiguration cycle in-process: resolve keys, swap the image at the cycle boundary, scrape /metrics, exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	cfg := aircast.Config{
		BytesPerSec: *rate,
		UDPAddr:     *udp,
		TCPAddr:     *tcp,
		HTTPAddr:    *httpAddr,
		ReaderQueue: *queue,
	}
	model, err := faults.ParseModel(*chaosModel)
	if err != nil {
		return err
	}
	if model != faults.ModelNone {
		cfg.Chaos = aircast.ChaosOn
		cfg.ChaosFaults = faults.FromRate(model, *chaosRate)
		cfg.ChaosSeed = *chaosSeed
	}

	if *demo {
		kind, err := aircast.ParseTransport(*transport)
		if err != nil {
			return err
		}
		return runDemo(out, cfg, kind, *scheme, *records, *seed)
	}
	return runDaemon(out, cfg, *scheme, *records, *seed)
}

// buildProgram constructs one scheme's broadcast and the program a
// network client would be handed out of band (mirrors the e2e harness).
func buildProgram(scheme string, records int, seed int64) (access.Broadcast, *datagen.Dataset, aircast.Program, error) {
	cfg := core.DefaultConfig(scheme, records)
	cfg.Data.Seed = seed
	ds, err := datagen.Generate(cfg.Data)
	if err != nil {
		return nil, nil, aircast.Program{}, err
	}
	bc, err := core.BuildBroadcast(ds, cfg)
	if err != nil {
		return nil, nil, aircast.Program{}, err
	}
	c := airborne.Contract{
		RecordSize:   cfg.Data.RecordSize,
		KeySize:      cfg.Data.KeySize,
		NumRecords:   cfg.Data.NumRecords,
		SigBytes:     cfg.Signature.SigBytes,
		BitsPerField: cfg.Signature.BitsPerField,
	}
	switch b := bc.(type) {
	case *dist.Broadcast:
		c.TreeLayout = b.Layout()
	case *onem.Broadcast:
		c.TreeLayout = b.Layout()
	case *hashing.Broadcast:
		c.HashPositions = int(b.Params()["Na"])
	}
	return bc, ds, aircast.Program{Scheme: scheme, Contract: c}, nil
}

// runDaemon serves until SIGINT/SIGTERM.
func runDaemon(out io.Writer, cfg aircast.Config, scheme string, records int, seed int64) error {
	bc, _, prog, err := buildProgram(scheme, records, seed)
	if err != nil {
		return err
	}
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		return err
	}
	srv, err := aircast.NewServer(cfg, img)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Stop()
	prog = srv.Program()
	fmt.Fprintf(out, "aircast: serving %s, %d buckets, %d bytes/cycle, epoch 1\n",
		prog.Scheme, prog.NumBuckets, prog.CycleLen)
	if cfg.UDPAddr != "" {
		fmt.Fprintf(out, "aircast: udp datagrams -> %s\n", cfg.UDPAddr)
	}
	if addr := srv.TCPAddr(); addr != "" {
		fmt.Fprintf(out, "aircast: tcp catch-up on %s\n", addr)
	}
	if addr := srv.HTTPAddr(); addr != "" {
		fmt.Fprintf(out, "aircast: metrics on http://%s/metrics\n", addr)
	}

	sigs := make(chan os.Signal, 1) //airlint:allow confinement the daemon CLI's shutdown signal; no simulation state crosses it
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	select {
	case sig := <-sigs:
		fmt.Fprintf(out, "aircast: %v, stopping\n", sig)
	case <-srv.Done():
	}
	srv.Stop()
	m := srv.Metrics()
	fmt.Fprintf(out, "aircast: served %d cycles, %d datagrams, %d bytes\n",
		m.Cycles.Load(), m.Datagrams.Load(), m.BytesSent.Load())
	return nil
}

// runDemo exercises the full daemon surface in-process: a client
// resolves keys from the first image, the image is swapped at a cycle
// boundary (epoch 1 -> 2), an in-flight request observes the
// reconfiguration and recovers, and the run ends with a /metrics
// scrape.
func runDemo(out io.Writer, cfg aircast.Config, kind aircast.TransportKind, scheme string, records int, seed int64) error {
	bcA, dsA, prog, err := buildProgram(scheme, records, seed)
	if err != nil {
		return err
	}
	bcB, dsB, progB, err := buildProgram(scheme, records, seed+1)
	if err != nil {
		return err
	}
	// The demo client keeps its out-of-band program across the swap, so
	// both images must share the clock geometry it was handed (always
	// true for flat; index layouts can shift with the data).
	if bcA.Channel().CycleLen() != bcB.Channel().CycleLen() {
		return fmt.Errorf("demo needs images with identical cycle length; seeds %d and %d disagree for %s", seed, seed+1, scheme)
	}
	imgA, err := aircast.BuildImage(1, prog, bcA.Channel())
	if err != nil {
		return err
	}
	imgB, err := aircast.BuildImage(2, progB, bcB.Channel())
	if err != nil {
		return err
	}

	// The demo always serves metrics, on an ephemeral port so runs never
	// collide; a UDP demo listens first so the server has a target.
	cfg.HTTPAddr = "127.0.0.1:0"
	var udpRx *aircast.UDPReceiver
	if kind == aircast.TransportUDP && cfg.UDPAddr == "" {
		udpRx, err = aircast.ListenUDP("127.0.0.1:0")
		if err != nil {
			return err
		}
		cfg.UDPAddr = udpRx.Addr()
	}
	if kind == aircast.TransportTCP && cfg.TCPAddr == "" {
		cfg.TCPAddr = "127.0.0.1:0"
	}
	srv, err := aircast.NewServer(cfg, imgA)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Stop()
	prog = srv.Program()
	fmt.Fprintf(out, "aircast demo: %s over %s, %d buckets, %d bytes/cycle\n",
		prog.Scheme, kind, prog.NumBuckets, prog.CycleLen)

	var rx aircast.Receiver
	if udpRx != nil {
		rx = udpRx
	} else if rx, err = aircast.Dial(kind, srv); err != nil {
		return err
	}
	sess := aircast.NewSession(rx, prog)
	sess.Policy = access.RecoverPolicy{MaxRetries: 1000}
	defer sess.Close()

	resolve := func(label string, key uint64) (aircast.NetResult, error) {
		res, err := sess.ResolveKey(key)
		if err != nil {
			return res, err
		}
		fmt.Fprintf(out, "  %-10s key=%-12d found=%-5v access=%-6d tuning=%-5d restarts=%d epoch-restarts=%d\n",
			label, key, res.Found, res.Access, res.Tuning, res.Restarts, res.EpochRestarts)
		return res, nil
	}
	for i, q := range []int{0, dsA.Len() / 2, dsA.Len() - 1} {
		if _, err := resolve(fmt.Sprintf("epoch1[%d]", i), dsA.KeyAt(q)); err != nil {
			return err
		}
	}

	if err := srv.Swap(imgB); err != nil {
		return err
	}
	fmt.Fprintln(out, "aircast demo: queued image swap (epoch 1 -> 2) for the next cycle boundary")
	// The swap lands at a cycle boundary; keep resolving old-image keys
	// until the transmitter reports the new epoch on the air (each
	// resolve consumes frames, so this also drives the blocking inmem
	// transport forward).
	for i := 0; srv.Metrics().Epoch.Load() < 2 && i < 8; i++ {
		if _, err := resolve(fmt.Sprintf("drain[%d]", i), dsA.KeyAt((i*37+11)%dsA.Len())); err != nil {
			return err
		}
	}
	for i, q := range []int{0, dsB.Len() / 2} {
		key := dsB.KeyAt(q)
		// A first attempt can still ride frames queued before the
		// boundary and conclude against the old image; any attempt that
		// reaches the new epoch's frames restarts and must find the key.
		for attempt := 0; ; attempt++ {
			res, err := resolve(fmt.Sprintf("epoch2[%d]", i), key)
			if err != nil {
				return err
			}
			if res.Found {
				break
			}
			if attempt == 3 {
				return fmt.Errorf("key %d not found on the new image after %d attempts", key, attempt+1)
			}
		}
	}

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "aircast demo: /metrics")
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if !strings.HasPrefix(line, "#") {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}
	return nil
}
