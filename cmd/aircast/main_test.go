package main

import (
	"strings"
	"testing"
)

// TestDemoInmem runs the full demo surface in-process: both epochs
// resolve, the swap is queued, and the /metrics scrape reports the
// reconfiguration.
func TestDemoInmem(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-records", "120", "-rate", "0"}, &out)
	if err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"epoch1[0]",
		"epoch2[0]",
		"queued image swap (epoch 1 -> 2)",
		"aircast_reconfigs_total 1",
		"aircast_epoch 2",
		"aircast_datagrams_sent_total",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("demo output missing %q:\n%s", want, got)
		}
	}
	// Pre-swap resolves ride the first image losslessly: every key found.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "epoch1[") && !strings.Contains(line, "found=true") {
			t.Fatalf("pre-swap resolve missed: %s", line)
		}
	}
	// The demo itself fails unless every epoch-2 key is eventually found,
	// so reaching here with the swap recorded means recovery worked.
}

// TestDemoTCP rides the catch-up transport end to end.
func TestDemoTCP(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-demo", "-transport", "tcp", "-records", "80", "-rate", "4194304"}, &out)
	if err != nil {
		t.Fatalf("tcp demo failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "over tcp") {
		t.Fatalf("tcp demo output:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-transport", "osmosis"}, &out); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if err := run([]string{"-chaos-model", "gremlins"}, &out); err == nil {
		t.Fatal("unknown chaos model accepted")
	}
	if err := run([]string{"stray"}, &out); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"-demo", "-scheme", "mystery"}, &out); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
