package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-from", "1000", "-to", "3000", "-step", "1000"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "dist At") || !strings.Contains(lines[0], "sig Tt") {
		t.Fatalf("header incomplete: %s", lines[0])
	}
}

func TestRunDerivedFanout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-from", "1000", "-to", "1000", "-step", "1", "-fanout", "0"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSweep(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-from", "0"},
		{"-from", "100", "-to", "50"},
		{"-from", "100", "-to", "200", "-step", "0"},
		{"-fanout", "0", "-key-size", "400", "-record-size", "500"},
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
