// Command airmodel prints the paper's analytical model curves (§2) without
// running any simulation: access time and tuning time in bytes for each
// scheme over a record-count sweep. Useful for sanity-checking simulation
// output and for exploring parameter choices instantly.
//
// Example:
//
//	airmodel -from 7000 -to 34000 -step 4500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"github.com/airindex/airindex/internal/analytical"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "airmodel:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("airmodel", flag.ContinueOnError)
	from := fs.Int("from", 7000, "sweep start (records)")
	to := fs.Int("to", 34000, "sweep end (records)")
	step := fs.Int("step", 4500, "sweep step")
	recordSize := fs.Int("record-size", 500, "record bytes")
	keySize := fs.Int("key-size", 25, "key bytes")
	fanout := fs.Int("fanout", 12, "tree fanout n (0 = derive from record/key geometry)")
	repl := fs.Int("r", 2, "distributed indexing replicated levels")
	load := fs.Float64("load", 3, "hashing load factor Nr/Na")
	sigBytes := fs.Int("sig-bytes", 16, "signature bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from <= 0 || *to < *from || *step <= 0 {
		return fmt.Errorf("invalid sweep %d..%d step %d", *from, *to, *step)
	}

	n := *fanout
	if n == 0 {
		// Mirror the treeidx layout: entries of key+offset bytes in the
		// space left after fixed index-bucket fields.
		n = (*recordSize - *keySize - 76) / (*keySize + 8)
		if n < 2 {
			return fmt.Errorf("key size %d too large for record size %d", *keySize, *recordSize)
		}
	}
	dataBucket := float64(wire.HeaderSize + units.Bytes(*recordSize))
	treeBucket := float64(wire.HeaderSize + wire.OffsetSize + units.Bytes(*recordSize))
	hashBucket := float64(wire.HeaderSize + 13 + units.Bytes(*recordSize))
	sigBucket := float64(wire.HeaderSize + units.Bytes(*sigBytes))

	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "records\tflat At\tflat Tt\tdist At\tdist Tt\t(1,m) At\t(1,m) Tt\thash At\thash Tt\tsig At\tsig Tt\t")
	for nr := *from; nr <= *to; nr += *step {
		k := analytical.LevelsFor(n, nr)
		tp := analytical.TreeParams{Fanout: n, Levels: k, Replicated: *repl, Records: nr}
		m := analytical.OneMOptimal(tp)
		hp := analytical.HashParams{
			Allocated: float64(nr) / *load,
			Colliding: float64(nr) * (1 - 1 / *load),
			Records:   float64(nr),
		}
		fd := analytical.SignatureExpectedFalseDrops(nr, *sigBytes, 8, 5)
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t\n",
			nr,
			analytical.FlatAccess(nr)*dataBucket,
			analytical.FlatTuning(nr)*dataBucket,
			analytical.DistAccess(tp)*treeBucket,
			analytical.DistTuning(tp)*treeBucket,
			analytical.OneMAccess(tp, m)*treeBucket,
			analytical.OneMTuning(tp)*treeBucket,
			analytical.HashingAccess(hp)*hashBucket,
			analytical.HashingTuning(hp)*hashBucket,
			analytical.SignatureAccess(nr, dataBucket, sigBucket),
			analytical.SignatureTuning(nr, dataBucket, sigBucket, fd),
		)
	}
	return w.Flush()
}
