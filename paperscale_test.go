// Paper-scale structural checks: the full ~35,000-record dictionary
// database of the paper's §4.1, every scheme built over it, and spot
// queries. Kept out of -short runs.
package airindex

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func TestPaperScaleBroadcasts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every scheme at 35,000 records")
	}
	const records = 35000
	ds, err := datagen.Generate(datagen.Default(records))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	for _, scheme := range core.SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			cfg := core.DefaultConfig(scheme, records)
			bc, err := core.BuildBroadcast(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ch := bc.Channel()
			if int(ch.NumBuckets()) < records {
				t.Fatalf("cycle has %d buckets for %d records", ch.NumBuckets(), records)
			}
			// The data payload alone is 17.5 MB; overhead must stay within
			// a small factor for every scheme.
			if ch.CycleLen() > units.Bytes(records).Times(4*500) {
				t.Fatalf("cycle %d bytes is implausibly large", ch.CycleLen())
			}
			for q := 0; q < 25; q++ {
				rec := rng.Intn(records)
				arrival := sim.Time(rng.Int63n(int64(ch.CycleLen())))
				res, err := access.Walk(ch, bc.NewClient(ds.KeyAt(rec)), arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Found {
					t.Fatalf("key %d not found at paper scale", ds.KeyAt(rec))
				}
			}
			res, err := access.Walk(ch, bc.NewClient(ds.MissingKeyNear(17000)), 99, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found {
				t.Fatal("missing key found at paper scale")
			}
		})
	}
}

// TestPaperScaleTreeGeometry pins the concrete index geometry the default
// Table 1 settings induce at full scale, so accidental layout changes are
// visible in review.
func TestPaperScaleTreeGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("builds tree schemes at 35,000 records")
	}
	ds, err := datagen.Generate(datagen.Default(35000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig("distributed", 35000)
	bc, err := core.BuildBroadcast(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := bc.Params()
	// The fanout/depth fixpoint lands on 13 entries per bucket and a
	// 5-level tree for 35,000 records.
	if p["fanout"] != 13 || p["levels"] != 5 {
		t.Errorf("500B records / 25B keys should give fanout 13, 5 levels; got %v/%v (update EXPERIMENTS.md if intentional)",
			p["fanout"], p["levels"])
	}
	if p["bucket_size"] != 513 {
		t.Errorf("bucket size %v, want 513", p["bucket_size"])
	}
}

// TestPaperScaleCohortMillionClients is the cohort engine's acceptance
// point: one million requests at the Figure-4 midpoint geometry run to
// completion through the columnar kernels in a couple of seconds, with
// the exact request count the cap forces and the flat half-cycle means.
// The bit-identity with the event engine at this scale is checked
// offline (BENCH.md); in-tree the differential suite pins it at small N
// where the reference engine is affordable.
func TestPaperScaleCohortMillionClients(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 1,000,000 requests")
	}
	cfg := core.DefaultConfig("flat", 17500)
	cfg.Engine = core.EngineCohort
	cfg.MinRequests = 1_000_000
	cfg.MaxRequests = 1_000_000
	res, err := core.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1_000_000 || res.Found != res.Requests {
		t.Fatalf("ran %d requests, found %d; want exactly 1,000,000 found", res.Requests, res.Found)
	}
	half := float64(res.CycleBytes) / 2
	if got := res.Access.Mean(); got < 0.99*half || got > 1.01*half {
		t.Fatalf("flat mean access %v at 10^6 requests, want within 1%% of half cycle %v", got, half)
	}
}
