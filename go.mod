module github.com/airindex/airindex

go 1.22
