package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/bdisk"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/hybrid"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
)

// Builder constructs a broadcast for a dataset under a run configuration.
// This is the testbed's extension point: the paper's adaptability claim
// (§3) that new data access methods can be added without touching the
// Simulator.
type Builder func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error)

var (
	registryMu sync.RWMutex
	builders   = map[string]Builder{
		flat.Name: func(ds *datagen.Dataset, _ Config) (access.Broadcast, error) {
			return flat.Build(ds)
		},
		onem.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return onem.Build(ds, cfg.Onem)
		},
		dist.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return dist.Build(ds, cfg.Dist)
		},
		hashing.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return hashing.Build(ds, cfg.Hashing)
		},
		signature.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return signature.Build(ds, cfg.Signature)
		},
		signature.IntegratedName: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return signature.BuildIntegrated(ds, cfg.Signature)
		},
		signature.MultiLevelName: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return signature.BuildMultiLevel(ds, cfg.Signature)
		},
		hybrid.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return hybrid.Build(ds, cfg.Hybrid)
		},
		bdisk.Name: func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
			return bdisk.Build(ds, cfg.Bdisk)
		},
	}
)

// Register adds a new access method to the testbed. It fails on duplicate
// or empty names.
func Register(name string, b Builder) error {
	if name == "" || b == nil {
		return fmt.Errorf("core: scheme name and builder must be non-empty")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := builders[name]; dup {
		return fmt.Errorf("core: scheme %q already registered", name)
	}
	builders[name] = b
	return nil
}

// hasScheme reports whether a scheme name is registered.
func hasScheme(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := builders[name]
	return ok
}

// SchemeNames lists the registered access methods, sorted.
func SchemeNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildBroadcast constructs the broadcast for a configuration.
func BuildBroadcast(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
	registryMu.RLock()
	b, ok := builders[cfg.Scheme]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q", cfg.Scheme)
	}
	return b(ds, cfg)
}
