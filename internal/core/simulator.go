package core

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/stats"
	"github.com/airindex/airindex/internal/units"
)

// Result aggregates one simulation run. Access and tuning times are in
// bytes, following the paper's measurement model (§4.1).
type Result struct {
	// Scheme is the access method that ran.
	Scheme string
	// Requests is the number of completed requests.
	Requests int64
	// Found and NotFound split requests by search outcome.
	Found, NotFound int64
	// Access and Tuning are the per-request byte samples.
	Access, Tuning stats.Sample
	// Energy is the per-request energy sample in active-listening byte
	// equivalents: tuning bytes plus DozePowerRatio times the dozed bytes.
	Energy stats.Sample
	// Probes is the per-request bucket-read count sample.
	Probes stats.Sample
	// Rounds is how many accuracy-control rounds ran.
	Rounds int
	// Converged reports whether the AccuracyController's stopping rule was
	// met (rather than the request cap).
	Converged bool
	// Restarts counts protocol restarts caused by injected bucket errors
	// (each restart is one retry of the access protocol).
	Restarts int64
	// WastedBytes is the tuning spent on reads that turned out corrupted,
	// summed over all requests.
	WastedBytes int64
	// Unrecovered counts requests abandoned after exhausting the faults
	// retry budget — unrecoverable misses, a subset of NotFound.
	Unrecovered int64
	// Switches counts receiver channel hops across all requests (K-channel
	// runs only; zero on a single channel).
	Switches int64
	// SwitchWaitBytes is the total channel-switch retune cost in bytes,
	// dozed through — included in access time, never in tuning time.
	SwitchWaitBytes int64
	// AccessP95 and AccessP99 are online P2 estimates of the access-time
	// tail, in bytes; TuningP95/TuningP99 likewise for tuning time.
	AccessP95, AccessP99 float64
	TuningP95, TuningP99 float64
	// CycleBytes is the broadcast cycle length.
	CycleBytes units.ByteCount
	// Params echoes the scheme's structural parameters.
	Params map[string]float64
	// Events is the number of simulator events processed.
	Events int64
}

// Simulator coordinates one run: it owns the data source, the broadcast
// server's channel, the request generator and the result handler, exactly
// mirroring the object architecture of the paper's Figure 3.
type Simulator struct {
	cfg  Config
	ds   *datagen.Dataset
	bc   access.Broadcast
	set  *multichannel.Set // K-channel allocation; nil on the single-channel path
	rng  *sim.RNG
	zipf func() int // nil for the uniform workload
}

// New validates the configuration, generates the data source and lets the
// broadcast server construct the scheme's channel.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ds, err := datagen.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	bc, err := BuildBroadcast(ds, cfg)
	if err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, ds: ds, bc: bc, rng: sim.NewRNG(cfg.Seed)}
	if cfg.Multi.Enabled() {
		mcfg := cfg.Multi
		if mcfg.Policy == multichannel.PolicySkewed && mcfg.Skew == 0 {
			// The skewed partition defaults to the workload's own skew, so
			// the hot channel matches the hot requests.
			mcfg.Skew = cfg.ZipfS
		}
		set, err := multichannel.Build(bc.Channel(), mcfg)
		if err != nil {
			return nil, err
		}
		s.set = set
	}
	if cfg.ZipfS > 1 {
		s.zipf = s.rng.Zipf(cfg.ZipfS, ds.Len())
	}
	return s, nil
}

// Multichannel exposes the K-channel allocation (nil on the
// single-channel path), for tests and experiment labels.
func (s *Simulator) Multichannel() *multichannel.Set { return s.set }

// resultParams echoes the scheme's structural parameters, augmented with
// the multichannel allocation when it is active.
func (s *Simulator) resultParams() map[string]float64 {
	p := s.bc.Params()
	if s.set != nil {
		p["channels"] = float64(s.set.K())
		p["switch_cost"] = float64(s.set.SwitchCost())
		p["policy"] = float64(s.set.Config().Policy)
	}
	return p
}

// Broadcast exposes the constructed broadcast (for tests and examples).
func (s *Simulator) Broadcast() access.Broadcast { return s.bc }

// Dataset exposes the generated data source.
func (s *Simulator) Dataset() *datagen.Dataset { return s.ds }

// pickKey draws a request key from the given RNG stream: a stored key
// with probability Availability, otherwise a key provably absent from the
// broadcast. zipf may be nil for the uniform workload. The stream is a
// parameter so each shard of a sharded run can drive its own substream.
func (s *Simulator) pickKey(rng *sim.RNG, zipf func() int) uint64 {
	var i int
	if zipf != nil {
		i = zipf()
	} else {
		i = rng.Intn(s.ds.Len())
	}
	if s.cfg.Availability >= 1 || rng.Float64() < s.cfg.Availability {
		return s.ds.KeyAt(i)
	}
	return s.ds.MissingKeyNear(i)
}

// Run executes the simulation until the accuracy controller is satisfied
// (both access-time and tuning-time samples within the configured
// confidence accuracy, and at least MinRequests served) or MaxRequests is
// reached.
//
// Requests are independent processes: because the broadcast schedule is
// deterministic and periodic, each request's full interaction with the
// channel is resolved by direct channel arithmetic at its arrival event —
// an observably equivalent optimization over scheduling one event per
// bucket read. The event queue carries arrivals and round boundaries.
//
// With Config.Shards > 1 the run is delegated to the round-sharded engine
// (engine.go), which exploits exactly this independence across shards.
// Config.Engine == EngineCohort selects the batched columnar engine
// (cohort.go) instead; it reproduces the same Result bit for bit.
func (s *Simulator) Run() (*Result, error) {
	if s.cfg.useCohort() {
		return s.runCohort()
	}
	if s.cfg.Shards > 1 {
		return s.runSharded()
	}
	return s.runSequential()
}

// newInjector returns the fault injector for one shard's substream, or
// nil when fault injection is disabled. The sequential path is shard 0,
// matching the one-shard engine so the two stay byte-identical.
func (s *Simulator) newInjector(shard int) *faults.Injector {
	if !s.cfg.Faults.Enabled() {
		return nil
	}
	return faults.New(s.cfg.Faults, s.cfg.Seed, shard)
}

// recoverPolicy maps the faults configuration onto the access layer's
// retry policy.
func (s *Simulator) recoverPolicy() access.RecoverPolicy {
	pol := access.RecoverPolicy{MaxRetries: s.cfg.Faults.MaxRetries}
	switch s.cfg.Faults.Recovery {
	case faults.RecoverRestart:
	case faults.RecoverNextCycle:
		pol.NextCycle = true
	default:
	}
	return pol
}

// runSequential is the single-stream path: one event loop, one RNG, the
// stopping rule applied inline at each round boundary.
func (s *Simulator) runSequential() (*Result, error) {
	res := &Result{
		Scheme:     s.cfg.Scheme,
		CycleBytes: s.bc.Channel().CycleLen(),
		Params:     s.resultParams(),
	}
	engine := sim.New()
	accessP95 := stats.MustQuantile(0.95)
	accessP99 := stats.MustQuantile(0.99)
	tuningP95 := stats.MustQuantile(0.95)
	tuningP99 := stats.MustQuantile(0.99)
	var walkErr error
	inRound := 0
	inj := s.newInjector(0)

	var arrive func(*sim.Simulator)
	arrive = func(eng *sim.Simulator) {
		key := s.pickKey(s.rng, s.zipf)
		r, err := s.runRequest(s.rng, inj, key, eng.Now())
		if err != nil {
			walkErr = err
			eng.Stop()
			return
		}
		res.Requests++
		if r.Found {
			res.Found++
		} else {
			res.NotFound++
		}
		res.Access.Add(float64(r.Access))
		res.Tuning.Add(float64(r.Tuning))
		res.Energy.Add(float64(r.Tuning) + s.cfg.DozePowerRatio*float64(r.Access-r.Tuning))
		res.Probes.Add(float64(r.Probes))
		res.Restarts += int64(r.Restarts)
		res.WastedBytes += int64(r.Wasted)
		if r.Unrecovered {
			res.Unrecovered++
		}
		res.Switches += int64(r.Switches)
		res.SwitchWaitBytes += int64(r.SwitchWait)
		accessP95.Add(float64(r.Access))
		accessP99.Add(float64(r.Access))
		tuningP95.Add(float64(r.Tuning))
		tuningP99.Add(float64(r.Tuning))

		inRound++
		if inRound >= s.cfg.RoundSize {
			inRound = 0
			res.Rounds++
			if s.accuracyMet(res) && res.Requests >= int64(s.cfg.MinRequests) {
				res.Converged = true
				return // stop scheduling arrivals; queue drains
			}
		}
		if res.Requests >= int64(s.cfg.MaxRequests) {
			// Bugfix: the stopping rule also applies when the cap lands
			// mid-round — the sample is complete either way, so a run
			// that meets the accuracy rule at the cap has converged.
			// Mirrors the sharded engine's budget-exhaustion exit.
			res.Converged = s.accuracyMet(res) && res.Requests >= int64(s.cfg.MinRequests)
			return
		}
		eng.After(s.rng.Exponential(s.cfg.RequestMean), arrive)
	}
	engine.After(s.rng.Exponential(s.cfg.RequestMean), arrive)

	if err := engine.Run(0); err != nil && err != sim.ErrStopped {
		return nil, err
	}
	if walkErr != nil {
		return nil, walkErr
	}
	res.Events = engine.Processed
	res.AccessP95 = accessP95.Value()
	res.AccessP99 = accessP99.Value()
	res.TuningP95 = tuningP95.Value()
	res.TuningP99 = tuningP99.Value()
	return res, nil
}

// accuracyMet applies the paper's stopping rule to both criteria.
func (s *Simulator) accuracyMet(res *Result) bool {
	return res.Access.Converged(s.cfg.Confidence, s.cfg.Accuracy) &&
		res.Tuning.Converged(s.cfg.Confidence, s.cfg.Accuracy)
}

// runRequest executes one request process. The faults injector (nil on a
// perfect channel) carries the shard's dedicated corruption substream;
// rng is the shard's arrival stream, used only by the legacy
// BitErrorRate path. With the multichannel subsystem active the
// channel-hopping walkers take over; they consume no RNG, so the arrival
// and fault streams are identical to the single-channel run's.
func (s *Simulator) runRequest(rng *sim.RNG, inj *faults.Injector, key uint64, arrival sim.Time) (access.MultiResult, error) {
	if s.set != nil {
		if inj != nil {
			inj.StartRequest()
			return access.WalkRecoverMulti(
				s.set,
				func() access.Client { return s.bc.NewClient(key) },
				arrival, inj, s.recoverPolicy(), 0,
			)
		}
		return access.WalkMulti(s.set, s.bc.NewClient(key), arrival, 0)
	}
	if inj != nil {
		inj.StartRequest()
		r, err := access.WalkRecover(
			s.bc.Channel(),
			func() access.Client { return s.bc.NewClient(key) },
			arrival, inj, s.recoverPolicy(), 0,
		)
		return access.MultiResult{FaultyResult: r}, err
	}
	if s.cfg.BitErrorRate > 0 {
		r, err := access.WalkFaulty(
			s.bc.Channel(),
			func() access.Client { return s.bc.NewClient(key) },
			arrival, s.cfg.BitErrorRate, rng.Float64, 0,
		)
		return access.MultiResult{FaultyResult: r}, err
	}
	r, err := access.Walk(s.bc.Channel(), s.bc.NewClient(key), arrival, 0)
	return access.MultiResult{FaultyResult: access.FaultyResult{Result: r}}, err
}

// RunOne builds a simulator for cfg and runs it; a convenience for the
// experiment harness and examples.
func RunOne(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s.Run()
}
