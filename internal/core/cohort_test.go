package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/sim"
)

// runEngines runs the same configuration on the event-driven reference
// engine and on the columnar cohort engine.
func runEngines(t *testing.T, cfg Config) (events, cohort *Result) {
	t.Helper()
	ref := cfg
	ref.Engine = EngineEvents
	events, err := RunOne(ref)
	if err != nil {
		t.Fatal(err)
	}
	coh := cfg
	coh.Engine = EngineCohort
	cohort, err = RunOne(coh)
	if err != nil {
		t.Fatal(err)
	}
	return events, cohort
}

// TestCohortMatchesEventEngineAllSchemes is the cohort engine's
// differential anchor: for every registered scheme the columnar engine
// must reproduce the event engine's Result byte for byte — same request
// stream, same Welford moments, same P² tail states, same event count.
// This exercises the closed-form resolver kernel (flat, broadcast
// disks), the stepped columnar kernel with client-arena rewind
// (distributed, (1,m), hashing) and the allocate-fresh fallback
// (signature, hybrid).
func TestCohortMatchesEventEngineAllSchemes(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			events, cohort := runEngines(t, smallConfig(scheme, 300))
			if !reflect.DeepEqual(events, cohort) {
				t.Fatalf("cohort engine diverged from event engine:\nevents: %+v\ncohort: %+v", events, cohort)
			}
		})
	}
}

// TestCohortMatchesEventEngineVariants sweeps the workload and channel
// configurations — skew, partial availability, both fault models,
// multichannel K ∈ {2,4}, faults-over-multichannel — across one and four
// shards. Every cell must be bit-identical between the engines,
// including the fault counters and Switches/SwitchWaitBytes.
func TestCohortMatchesEventEngineVariants(t *testing.T) {
	cases := map[string]func(*Config){
		"zipf":         func(c *Config) { c.ZipfS = 1.3 },
		"partialavail": func(c *Config) { c.Availability = 0.7 },
		"faults-drop":  func(c *Config) { c.Faults = faults.FromRate(faults.ModelDrop, 0.05) },
		"faults-ge": func(c *Config) {
			c.Faults = faults.FromRate(faults.ModelGilbertElliott, 0.4)
			c.Faults.Recovery = faults.RecoverNextCycle
			c.Faults.MaxRetries = 4
		},
		"multi-k2": func(c *Config) { c.Multi = multichannel.Config{Channels: 2} },
		"multi-k4": func(c *Config) { c.Multi = multichannel.Config{Channels: 4, SwitchCost: 256} },
		"multi-k2-faults": func(c *Config) {
			c.Multi = multichannel.Config{Channels: 2}
			c.Faults = faults.FromRate(faults.ModelDrop, 0.05)
			c.Faults.MaxRetries = 6
		},
	}
	for _, shards := range []int{1, 4} {
		for name, mutate := range cases {
			t.Run(name, func(t *testing.T) {
				cfg := smallConfig("distributed", 300)
				cfg.Shards = shards
				mutate(&cfg)
				events, cohort := runEngines(t, cfg)
				if !reflect.DeepEqual(events, cohort) {
					t.Fatalf("shards=%d: cohort engine diverged from event engine:\nevents: %+v\ncohort: %+v", shards, events, cohort)
				}
			})
		}
	}
}

// TestCohortResolverSchemesUnderVariants pins the serial-scan schemes —
// whose clean path takes the closed-form resolver — under skew and
// partial availability, where the key mix (present, missing) stresses
// the resolvers' absence arithmetic.
func TestCohortResolverSchemesUnderVariants(t *testing.T) {
	for _, scheme := range []string{"flat", "broadcast-disks"} {
		for name, mutate := range map[string]func(*Config){
			"zipf":         func(c *Config) { c.ZipfS = 1.5 },
			"partialavail": func(c *Config) { c.Availability = 0.6 },
		} {
			t.Run(scheme+"/"+name, func(t *testing.T) {
				cfg := smallConfig(scheme, 300)
				mutate(&cfg)
				events, cohort := runEngines(t, cfg)
				if !reflect.DeepEqual(events, cohort) {
					t.Fatalf("cohort engine diverged from event engine:\nevents: %+v\ncohort: %+v", events, cohort)
				}
			})
		}
	}
}

// TestCohortDeterministic: the cohort engine's Result is a pure function
// of (Seed, Shards, config), like the engines it mirrors.
func TestCohortDeterministic(t *testing.T) {
	cfg := smallConfig("hashing", 300)
	cfg.Engine = EngineCohort
	cfg.Shards = 3
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical cohort configurations produced different Results")
	}
}

// TestCohortRejectsLegacyBER: the legacy BitErrorRate layer draws from
// the arrival RNG mid-walk, which the pre-drawn cohort streams cannot
// replay; Validate must reject the combination with a pointer at Faults.
func TestCohortRejectsLegacyBER(t *testing.T) {
	cfg := smallConfig("flat", 100)
	cfg.Engine = EngineCohort
	cfg.BitErrorRate = 0.01
	err := cfg.Validate()
	if err == nil {
		t.Fatal("cohort engine with BitErrorRate accepted")
	}
	if !strings.Contains(err.Error(), "Faults") {
		t.Fatalf("rejection should point at the Faults layer: %v", err)
	}
	if _, err := RunOne(cfg); err == nil {
		t.Fatal("RunOne accepted the invalid combination")
	}
}

// TestCohortUnknownEngineRejected covers the Engine name validation.
func TestCohortUnknownEngineRejected(t *testing.T) {
	cfg := smallConfig("flat", 100)
	cfg.Engine = "columnar"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown engine name accepted")
	}
	for _, ok := range []string{"", EngineEvents, EngineCohort} {
		cfg.Engine = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("engine %q rejected: %v", ok, err)
		}
	}
}

// TestRewindEquivalentToFreshClient pins the access.Rewinder contract
// the cohort engine's arena reuse depends on: for every scheme whose
// client implements Rewind, a rewound client must replay a walk exactly
// like a fresh one — after first being driven through an unrelated walk
// so residual state would surface.
func TestRewindEquivalentToFreshClient(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			s, err := New(smallConfig(scheme, 250))
			if err != nil {
				t.Fatal(err)
			}
			bc := s.Broadcast()
			ch := bc.Channel()
			probe := bc.NewClient(s.Dataset().KeyAt(0))
			rw, ok := probe.(access.Rewinder)
			if !ok {
				t.Skipf("%s clients are not rewindable; cohort engine allocates fresh", scheme)
			}
			for i := 0; i < 40; i++ {
				key := s.Dataset().KeyAt((i * 7) % s.Dataset().Len())
				if i%5 == 4 {
					key = s.Dataset().MissingKeyNear(i % s.Dataset().Len())
				}
				arrival := sim150(i)
				want, err := access.Walk(ch, bc.NewClient(key), arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				// Dirty the reused client on some other key, then rewind.
				if _, err := access.Walk(ch, func() access.Client { rw.Rewind(s.Dataset().KeyAt(0)); return probe }(), arrival/2, 0); err != nil {
					t.Fatal(err)
				}
				rw.Rewind(key)
				got, err := access.Walk(ch, probe, arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("key %d arrival %d: rewound client diverged: fresh %+v rewound %+v", key, arrival, want, got)
				}
			}
		})
	}
}

// TestResolverMatchesWalk pins the access.Resolver bit-identity
// obligation at the simulator level for the schemes that implement it:
// closed-form answers must equal the stepped walk for present and absent
// keys across arrival phases spanning several cycles.
func TestResolverMatchesWalk(t *testing.T) {
	for _, scheme := range []string{"flat", "broadcast-disks"} {
		t.Run(scheme, func(t *testing.T) {
			s, err := New(smallConfig(scheme, 230))
			if err != nil {
				t.Fatal(err)
			}
			bc := s.Broadcast()
			r, ok := bc.(access.Resolver)
			if !ok {
				t.Fatalf("%s should implement access.Resolver", scheme)
			}
			ch := bc.Channel()
			cyc := int64(ch.CycleLen())
			for i := 0; i < 180; i++ {
				key := s.Dataset().KeyAt((i * 13) % s.Dataset().Len())
				if i%4 == 3 {
					key = s.Dataset().MissingKeyNear(i % s.Dataset().Len())
				}
				// Arrivals sweep bucket-interior offsets, bucket edges and
				// multi-cycle bases.
				arrival := sim150(i) + sim150(int(cyc)%(i+1))
				want, err := access.Walk(ch, bc.NewClient(key), arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				got, ok := r.Resolve(key, arrival)
				if !ok {
					t.Fatalf("resolver declined key %d arrival %d", key, arrival)
				}
				if want != got {
					t.Fatalf("key %d arrival %d: resolver diverged from walk:\nwalk:    %+v\nresolve: %+v", key, arrival, want, got)
				}
			}
		})
	}
}

// sim150 spreads test arrivals over uneven offsets: bucket interiors,
// bucket edges, and bases several cycles out.
func sim150(i int) sim.Time {
	return sim.Time(i*151 + i*i*37 + 11)
}
