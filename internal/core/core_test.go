package core

import (
	"math"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
)

// smallConfig keeps unit-test runs fast.
func smallConfig(scheme string, records int) Config {
	cfg := DefaultConfig(scheme, records)
	cfg.RoundSize = 100
	cfg.MinRequests = 200
	cfg.MaxRequests = 5000
	cfg.Accuracy = 0.05
	return cfg
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := DefaultConfig("flat", 100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Scheme = "nope" },
		func(c *Config) { c.Availability = 1.5 },
		func(c *Config) { c.Availability = -0.1 },
		func(c *Config) { c.RequestMean = 0 },
		func(c *Config) { c.RoundSize = 1 },
		func(c *Config) { c.Confidence = 1 },
		func(c *Config) { c.Accuracy = 0 },
		func(c *Config) { c.MaxRequests = 10 },
		func(c *Config) { c.BitErrorRate = 1 },
		func(c *Config) { c.Data.NumRecords = 0 },
		func(c *Config) { c.Shards = -1 },
		func(c *Config) { c.Shards = c.MaxRequests + 1 },
		func(c *Config) { c.MinRequests = c.MaxRequests + 1 },
		func(c *Config) { c.Engine = "columnar" },
		func(c *Config) { c.Engine = EngineCohort; c.BitErrorRate = 0.1 },
		func(c *Config) { c.ZipfS = 1.5; c.Data.NumRecords = 1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig("flat", 100)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
}

func TestSchemeNamesComplete(t *testing.T) {
	names := SchemeNames()
	joined := strings.Join(names, ",")
	for _, want := range []string{"flat", "(1,m)", "distributed", "hashing", "signature", "signature-integrated", "signature-multilevel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scheme %q missing from registry (%s)", want, joined)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	if err := Register("flat", nil); err == nil {
		t.Fatal("nil builder accepted")
	}
	if err := Register("", func(*datagen.Dataset, Config) (access.Broadcast, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("flat", func(*datagen.Dataset, Config) (access.Broadcast, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestRunEverySchemeConverges(t *testing.T) {
	for _, scheme := range SchemeNames() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			res, err := RunOne(smallConfig(scheme, 400))
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests < 200 {
				t.Fatalf("only %d requests ran", res.Requests)
			}
			if res.Found != res.Requests {
				t.Fatalf("%d of %d requests failed at availability 1", res.NotFound, res.Requests)
			}
			if res.Access.Mean() <= 0 || res.Tuning.Mean() <= 0 {
				t.Fatal("zero means")
			}
			if res.Access.Mean() < res.Tuning.Mean() {
				t.Fatalf("mean access %v below mean tuning %v", res.Access.Mean(), res.Tuning.Mean())
			}
			if res.CycleBytes <= 0 || res.Rounds < 1 {
				t.Fatalf("result bookkeeping wrong: %+v", res)
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := smallConfig("distributed", 300)
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Access.Mean() != b.Access.Mean() || a.Tuning.Mean() != b.Tuning.Mean() {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 43
	c, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Access.Mean() == c.Access.Mean() && a.Requests == c.Requests {
		t.Fatal("different seed produced identical results (suspicious)")
	}
}

func TestAccuracyControllerTightensWithMoreRequests(t *testing.T) {
	cfg := smallConfig("flat", 200)
	cfg.Accuracy = 0.01
	cfg.MinRequests = 500
	cfg.MaxRequests = 100000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("flat run should converge at 1%% accuracy within %d requests (got %d)", cfg.MaxRequests, res.Requests)
	}
	acc, ok := res.Access.Accuracy(cfg.Confidence)
	if !ok || acc > cfg.Accuracy {
		t.Fatalf("reported accuracy %v exceeds target %v", acc, cfg.Accuracy)
	}
}

func TestAvailabilityZeroAllSearchesFail(t *testing.T) {
	cfg := smallConfig("distributed", 300)
	cfg.Availability = 0
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 0 || res.NotFound != res.Requests {
		t.Fatalf("availability 0: found=%d notfound=%d", res.Found, res.NotFound)
	}
}

func TestAvailabilityHalfRoughlySplits(t *testing.T) {
	cfg := smallConfig("hashing", 300)
	cfg.Availability = 0.5
	cfg.MinRequests = 2000
	cfg.MaxRequests = 4000
	cfg.Accuracy = 0.2
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Found) / float64(res.Requests)
	if math.Abs(frac-0.5) > 0.08 {
		t.Fatalf("found fraction %v, want about 0.5", frac)
	}
}

func TestFlatMeansMatchHalfCycle(t *testing.T) {
	cfg := smallConfig("flat", 500)
	cfg.MinRequests = 3000
	cfg.MaxRequests = 20000
	cfg.Accuracy = 0.02
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := float64(res.CycleBytes) / 2
	if got := res.Access.Mean(); math.Abs(got-half)/half > 0.1 {
		t.Fatalf("flat mean access %v, want about %v", got, half)
	}
	if got := res.Tuning.Mean(); math.Abs(got-half)/half > 0.1 {
		t.Fatalf("flat mean tuning %v, want about %v", got, half)
	}
}

func TestBitErrorInjectionCausesRestartsAndSlowdown(t *testing.T) {
	clean := smallConfig("distributed", 300)
	clean.MinRequests = 1000
	faulty := clean
	faulty.BitErrorRate = 0.2
	cr, err := RunOne(clean)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := RunOne(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Restarts != 0 {
		t.Fatalf("clean run had %d restarts", cr.Restarts)
	}
	if fr.Restarts == 0 {
		t.Fatal("20% error rate produced no restarts")
	}
	if fr.Tuning.Mean() <= cr.Tuning.Mean() {
		t.Fatalf("errors should raise tuning: clean %v faulty %v", cr.Tuning.Mean(), fr.Tuning.Mean())
	}
	if fr.Found != fr.Requests {
		t.Fatal("restarting clients must still find every present key")
	}
}

func TestRunOneRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig("flat", 100)
	cfg.Scheme = "bogus"
	if _, err := RunOne(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCustomSchemeRegistration(t *testing.T) {
	// The adaptability claim: plug in a trivial custom scheme and run it
	// through the same testbed.
	name := "test-custom"
	err := Register(name, func(ds *datagen.Dataset, cfg Config) (access.Broadcast, error) {
		return newEchoBroadcast(ds), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOne(smallConfig(name, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Found != res.Requests {
		t.Fatalf("custom scheme run broken: %+v", res)
	}
}

// echoBroadcast is a renamed flat broadcast used to exercise Register.
type echoBroadcast struct {
	access.Broadcast
}

func newEchoBroadcast(ds *datagen.Dataset) access.Broadcast {
	cfg := DefaultConfig("flat", ds.Len())
	cfg.Data = ds.Config()
	b, err := BuildBroadcast(ds, cfg)
	if err != nil {
		panic(err)
	}
	return &echoBroadcast{Broadcast: b}
}

func (e *echoBroadcast) Name() string { return "test-custom" }

func TestTailQuantilesPlausible(t *testing.T) {
	cfg := smallConfig("flat", 400)
	cfg.MinRequests = 2000
	cfg.MaxRequests = 4000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// For flat broadcast access is ~uniform over the cycle: p95 ~ 0.95 of
	// the cycle, p99 above p95, both above the mean and below the max.
	if !(res.Access.Mean() < res.AccessP95 && res.AccessP95 < res.AccessP99) {
		t.Fatalf("quantile ordering broken: mean=%v p95=%v p99=%v",
			res.Access.Mean(), res.AccessP95, res.AccessP99)
	}
	if res.AccessP99 > res.Access.Max()*1.01 {
		t.Fatalf("p99 %v above observed max %v", res.AccessP99, res.Access.Max())
	}
	want := 0.95 * float64(res.CycleBytes)
	if r := res.AccessP95 / want; r < 0.9 || r > 1.1 {
		t.Fatalf("flat access p95 %v, want about %v", res.AccessP95, want)
	}
	if !(res.TuningP95 > res.Tuning.Mean()) {
		t.Fatalf("tuning p95 %v not above mean %v", res.TuningP95, res.Tuning.Mean())
	}
}

func TestEnergyCriterion(t *testing.T) {
	base := smallConfig("distributed", 300)
	base.MinRequests = 1000

	// Pure tuning accounting (the paper's model): energy == tuning.
	r0, err := RunOne(base)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Energy.Mean() != r0.Tuning.Mean() {
		t.Fatalf("zero doze power: energy %v != tuning %v", r0.Energy.Mean(), r0.Tuning.Mean())
	}

	// 2% doze draw: energy sits strictly between tuning and access, and
	// for a tree scheme the doze term dominates (dozing spans almost the
	// whole wait).
	withDoze := base
	withDoze.DozePowerRatio = 0.02
	r1, err := RunOne(withDoze)
	if err != nil {
		t.Fatal(err)
	}
	if !(r1.Energy.Mean() > r1.Tuning.Mean() && r1.Energy.Mean() < r1.Access.Mean()) {
		t.Fatalf("energy %v outside (tuning %v, access %v)", r1.Energy.Mean(), r1.Tuning.Mean(), r1.Access.Mean())
	}
	if r1.Energy.Mean() < 1.5*r1.Tuning.Mean() {
		t.Fatalf("2%% doze draw should add materially to a tree scheme's energy: %v vs tuning %v",
			r1.Energy.Mean(), r1.Tuning.Mean())
	}

	bad := base
	bad.DozePowerRatio = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("doze power ratio above 1 accepted")
	}
}
