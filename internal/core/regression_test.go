package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestValidateRejectsMinAboveMax is the regression test for the
// validation gap where MinRequests > MaxRequests was accepted: the cap
// fires before the stopping rule can hold, silently making Converged
// unreachable. The boundary case MinRequests == MaxRequests stays legal
// — it forces an exact request count, which the bench gate relies on.
func TestValidateRejectsMinAboveMax(t *testing.T) {
	cfg := DefaultConfig("flat", 100)
	cfg.MinRequests = cfg.MaxRequests + 1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("MinRequests > MaxRequests accepted")
	}
	if !strings.Contains(err.Error(), "min requests") || !strings.Contains(err.Error(), "max requests") {
		t.Fatalf("rejection should name both bounds: %v", err)
	}
	cfg.MinRequests = cfg.MaxRequests
	if err := cfg.Validate(); err != nil {
		t.Fatalf("MinRequests == MaxRequests should be legal: %v", err)
	}
}

// TestValidateShardsMessage is the regression test for the shards
// validation message, which claimed "must be positive (or 0 ...)" while
// only firing for negatives and conflating 0 with 1: 0 and 1 are both
// legal and equivalent, and the message must say what the check does.
func TestValidateShardsMessage(t *testing.T) {
	cfg := DefaultConfig("flat", 100)
	cfg.Shards = -1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("negative shards accepted")
	}
	if !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative-shards rejection should say non-negative: %v", err)
	}
	for _, ok := range []int{0, 1, 2} {
		cfg.Shards = ok
		if err := cfg.Validate(); err != nil {
			t.Fatalf("shards=%d should be legal: %v", ok, err)
		}
	}
}

// capConfig lands the request cap mid-round: RoundSize 500 with the cap
// at 1800 means the final 300 requests never reach a round boundary, so
// only the budget-exhaustion exit can report convergence.
func capConfig(accuracy float64) Config {
	cfg := DefaultConfig("flat", 300)
	cfg.RoundSize = 500
	cfg.MinRequests = 1800
	cfg.MaxRequests = 1800
	cfg.Accuracy = accuracy
	return cfg
}

// TestSequentialCapExitAppliesStoppingRule is the regression test for
// the stopping-rule gap on the cap exit: a run whose complete sample
// meets the accuracy rule exactly when the budget runs out used to
// report Converged=false. The loose-accuracy run must now converge; the
// tight-accuracy control must still not.
func TestSequentialCapExitAppliesStoppingRule(t *testing.T) {
	res, err := RunOne(capConfig(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1800 {
		t.Fatalf("cap should stop the run at 1800 requests, got %d", res.Requests)
	}
	if !res.Converged {
		t.Fatal("sample met the accuracy rule at the cap but Converged is false")
	}
	tight, err := RunOne(capConfig(0.0001))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Converged {
		t.Fatal("cap exit reported convergence for a sample far outside the accuracy target")
	}
}

// TestShardedCapExitAppliesStoppingRule covers the same bugfix on the
// sharded engine's budget-exhaustion exit, where the final incomplete
// wave (budgets 667/667/666 against 500-request rounds) can never set
// waveComplete and the old code skipped the rule entirely.
func TestShardedCapExitAppliesStoppingRule(t *testing.T) {
	cfg := capConfig(0.1)
	cfg.MinRequests = 2000
	cfg.MaxRequests = 2000
	cfg.Shards = 3
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2000 {
		t.Fatalf("budgets should sum to the cap, got %d requests", res.Requests)
	}
	if !res.Converged {
		t.Fatal("merged sample met the accuracy rule at the cap but Converged is false")
	}
	tight := cfg
	tight.Accuracy = 0.0001
	ctrl, err := RunOne(tight)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Converged {
		t.Fatal("sharded cap exit reported convergence outside the accuracy target")
	}
}

// TestCapExitOneShardIdentity pins the symmetry of the fix: applying
// the stopping rule on both engines' cap exits must preserve the
// one-shard differential identity even when the cap lands mid-round —
// the samples are bit-identical, so the verdicts are too.
func TestCapExitOneShardIdentity(t *testing.T) {
	cfg := capConfig(0.1)
	cfg.Shards = 1
	seq, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded := runShardedFresh(t, cfg)
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("cap-exit run diverged between engines:\nseq:     %+v\nsharded: %+v", seq, sharded)
	}
	if !seq.Converged {
		t.Fatal("cap-exit run should converge under the loose accuracy target")
	}
	coh := cfg
	coh.Engine = EngineCohort
	cohres, err := RunOne(coh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, cohres) {
		t.Fatalf("cap-exit run diverged between event and cohort engines:\nevents: %+v\ncohort: %+v", seq, cohres)
	}
}
