package core_test

import (
	"fmt"

	"github.com/airindex/airindex/internal/core"
)

// A complete testbed run: Table 1 geometry scaled down, distributed
// indexing, accuracy-controlled stopping. Seeded runs are reproducible, so
// the headline numbers are stable.
func Example() {
	cfg := core.DefaultConfig("distributed", 1000)
	cfg.RoundSize = 250
	cfg.Accuracy = 0.05
	cfg.MinRequests = 500
	cfg.MaxRequests = 2000
	res, err := core.RunOne(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("all found:", res.Found == res.Requests)
	fmt.Println("tuning under 8 bucket reads:", res.Probes.Mean() < 8)
	fmt.Println("dozes through >99% of the wait:", res.Tuning.Mean() < 0.01*res.Access.Mean())
	// Output:
	// scheme: distributed
	// all found: true
	// tuning under 8 bucket reads: true
	// dozes through >99% of the wait: true
}
