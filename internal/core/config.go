// Package core implements the paper's adaptive testbed (§3): the
// Simulator that coordinates a run, the BroadcastServer that constructs
// and cycles the channel, the RequestGenerator that injects queries with
// exponentially distributed inter-arrival times, per-request processes,
// the ResultHandler that accumulates access/tuning statistics, and the
// AccuracyController that keeps the simulation running until the requested
// confidence level and accuracy are met.
//
// The testbed is adaptive in the three ways the paper claims: new data
// access methods plug in through the scheme registry (Register), different
// application environments are a Config away (record counts, record/key
// geometry, data availability, error rates), and new evaluation criteria
// can be derived from the per-request Results the handler sees.
package core

import (
	"fmt"

	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/schemes/bdisk"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/hybrid"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
)

// Config describes one simulation run. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Scheme is the registered access-method name.
	Scheme string
	// Data configures the synthetic dictionary database.
	Data datagen.Config

	// Availability is the probability that a generated request asks for a
	// key that is actually broadcast (paper §5.1). 1 means every search
	// succeeds.
	Availability float64
	// RequestMean is the mean of the exponential request inter-arrival
	// time, in bytes of broadcast progress (paper §3: request generation
	// "follows exponential distribution").
	RequestMean float64

	// RoundSize is the number of requests per accuracy-control round
	// (paper §4.1: 500 per simulation round).
	RoundSize int
	// Confidence is the confidence level for the stopping rule (0.99).
	Confidence float64
	// Accuracy is the target confidence accuracy H/Y (0.01).
	Accuracy float64
	// MinRequests keeps the run going even after convergence. It must
	// not exceed MaxRequests: the cap fires first in every engine, so a
	// larger MinRequests would silently make Converged unreachable.
	MinRequests int
	// MaxRequests bounds the run if convergence is slow.
	MaxRequests int

	// Seed makes the run reproducible.
	Seed int64

	// Engine selects the request engine. EngineEvents ("" or "events")
	// is the reference event-driven path (runSequential / runSharded);
	// EngineCohort ("cohort") is the batched columnar engine, which
	// advances whole rounds of requests through struct-of-arrays kernels
	// and closed-form resolvers while reproducing the reference engine's
	// Result bit for bit (see DESIGN.md). The legacy BitErrorRate layer
	// draws from the arrival RNG in the middle of a walk and is the one
	// configuration the cohort engine cannot replay; Validate rejects
	// that combination.
	Engine string

	// Shards splits the accuracy-control rounds across this many
	// independent event loops, each drawing its arrival process from the
	// SplitMix substream splitmix(Seed, shard) against the shared
	// immutable broadcast image. The stopping rule is applied to the
	// merged sample after every wave of rounds, so a run's Result is a
	// pure function of (Seed, Shards) — bit-identical regardless of
	// GOMAXPROCS or goroutine scheduling. The field must be
	// non-negative; 0 and 1 are equivalent and both select the
	// sequential single-stream path, whose request stream matches
	// pre-sharding runs.
	Shards int

	// BitErrorRate corrupts each bucket read independently with this
	// probability (error-prone channel extension; 0 disables). It draws
	// from the arrival RNG stream and predates the faults layer below;
	// prefer Faults, which keeps the arrival process untouched. The two
	// are mutually exclusive.
	BitErrorRate float64

	// Faults configures the deterministic unreliable-channel layer: the
	// error model applied to every bucket read and the client's recovery
	// policy. Each shard draws its fault process from the dedicated RNG
	// substream splitmix(Seed, shard, "faults"), so a faulty run's Result
	// is a pure function of (Seed, Shards, Faults) and a zero-rate model
	// reproduces the perfect-channel output byte for byte. The zero value
	// disables injection.
	Faults faults.Config

	// Multi configures the K-channel broadcast subsystem: the number of
	// physical channels, the allocation policy that maps the scheme's
	// logical cycle onto them, and the receiver's channel-switch cost
	// (dozed bytes — access time, never tuning time). The zero value keeps
	// the single-channel path the paper evaluates. A one-channel
	// replicated allocation with zero switch cost reproduces the
	// single-channel Result byte for byte, and a multichannel run's Result
	// is a pure function of (Seed, Shards, Multi); see DESIGN.md §8.
	Multi multichannel.Config

	// ZipfS skews request popularity over the records' popularity ranks
	// (record index 0 hottest) with a Zipf exponent s > 1; 0 keeps the
	// paper's uniform workload.
	ZipfS float64

	// DozePowerRatio is the doze-mode power draw relative to active
	// listening (real receivers doze at a few percent of active power, not
	// zero). It feeds the Energy criterion — an example of adding a new
	// evaluation criterion to the testbed (paper §3). Zero reproduces the
	// paper's pure tuning-time accounting.
	DozePowerRatio float64

	// Per-scheme options.
	Onem      onem.Options
	Dist      dist.Options
	Hashing   hashing.Options
	Signature signature.Options
	Hybrid    hybrid.Options
	Bdisk     bdisk.Options
}

// DefaultConfig returns the paper's Table 1 settings for a given scheme
// and record count: 500-byte records, 25-byte keys, exponential arrivals,
// confidence level 0.99, confidence accuracy 0.01, 500-request rounds.
func DefaultConfig(scheme string, records int) Config {
	return Config{
		Scheme:       scheme,
		Data:         datagen.Default(records),
		Availability: 1,
		RequestMean:  4096,
		RoundSize:    500,
		Confidence:   0.99,
		Accuracy:     0.01,
		MinRequests:  2000,
		MaxRequests:  200000,
		Seed:         42,
		Shards:       1,
		Onem:         onem.DefaultOptions(),
		Dist:         dist.DefaultOptions(),
		Hashing:      hashing.DefaultOptions(),
		Signature:    signature.DefaultOptions(),
		Hybrid:       hybrid.DefaultOptions(),
		Bdisk:        bdisk.DefaultOptions(),
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if !hasScheme(c.Scheme) {
		return fmt.Errorf("core: unknown scheme %q (have %v)", c.Scheme, SchemeNames())
	}
	if err := c.Data.Validate(); err != nil {
		return err
	}
	switch {
	case c.Availability < 0 || c.Availability > 1:
		return fmt.Errorf("core: availability %v outside [0,1]", c.Availability)
	case c.RequestMean <= 0:
		return fmt.Errorf("core: request mean %v must be positive", c.RequestMean)
	case c.RoundSize < 2:
		return fmt.Errorf("core: round size %d must be at least 2", c.RoundSize)
	case c.Confidence <= 0 || c.Confidence >= 1:
		return fmt.Errorf("core: confidence %v outside (0,1)", c.Confidence)
	case c.Accuracy <= 0 || c.Accuracy >= 1:
		return fmt.Errorf("core: accuracy %v outside (0,1)", c.Accuracy)
	case c.MaxRequests < c.RoundSize:
		return fmt.Errorf("core: max requests %d below one round of %d", c.MaxRequests, c.RoundSize)
	case c.MinRequests > c.MaxRequests:
		// The MaxRequests cap fires before MinRequests can be reached in
		// every engine, so this configuration silently makes Converged
		// unreachable instead of doing what it says.
		return fmt.Errorf("core: min requests %d exceeds max requests %d; the request cap would always fire before the stopping rule could hold", c.MinRequests, c.MaxRequests)
	case c.BitErrorRate < 0 || c.BitErrorRate >= 1:
		return fmt.Errorf("core: bit error rate %v outside [0,1)", c.BitErrorRate)
	case c.ZipfS != 0 && c.ZipfS <= 1:
		return fmt.Errorf("core: zipf exponent %v must exceed 1 (or be 0 for uniform)", c.ZipfS)
	case c.ZipfS > 1 && c.Data.NumRecords < 2:
		return fmt.Errorf("core: zipf workload (s=%v) needs at least 2 records, have %d: rank generation is undefined for a single record", c.ZipfS, c.Data.NumRecords)
	case c.Shards < 0:
		return fmt.Errorf("core: shards %d must be non-negative (0 and 1 both select the sequential single-stream path)", c.Shards)
	case c.Shards > c.MaxRequests:
		return fmt.Errorf("core: shards %d exceeds max requests %d; every shard needs at least one request of budget", c.Shards, c.MaxRequests)
	case c.DozePowerRatio < 0 || c.DozePowerRatio > 1:
		return fmt.Errorf("core: doze power ratio %v outside [0,1]", c.DozePowerRatio)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.BitErrorRate > 0 {
		return fmt.Errorf("core: Faults and the legacy BitErrorRate are mutually exclusive; pick one error layer")
	}
	if faultsCanCorrupt(c.Faults) && c.Faults.MaxRetries == 0 && c.Availability < 1 && serialScheme(c.Scheme) {
		// The access.RecoverPolicy caveat, enforced: a serial scheme can
		// only conclude a key is absent after a full clean pass of the
		// cycle, so with errors injected and keys that may be missing, an
		// unbounded retry budget can search forever and the walk dies on
		// its step budget instead of degrading gracefully.
		return fmt.Errorf("core: scheme %q is serial (concludes absence only after a full clean pass); with faults enabled and availability %v < 1, unbounded retries (Faults.MaxRetries=0) may never terminate on a missing key — set Faults.MaxRetries", c.Scheme, c.Availability)
	}
	if err := c.Multi.Validate(); err != nil {
		return err
	}
	if c.Multi.Enabled() && c.BitErrorRate > 0 {
		return fmt.Errorf("core: the legacy BitErrorRate layer predates multichannel and is single-channel only; use Faults with Multi")
	}
	switch c.Engine {
	case "", EngineEvents, EngineCohort:
	default:
		return fmt.Errorf("core: unknown engine %q (have %q, %q)", c.Engine, EngineEvents, EngineCohort)
	}
	if c.Engine == EngineCohort && c.BitErrorRate > 0 {
		return fmt.Errorf("core: the cohort engine cannot replay the legacy BitErrorRate layer (it draws from the arrival RNG mid-walk); use Faults instead")
	}
	return nil
}

// Engine names accepted by Config.Engine.
const (
	// EngineEvents is the reference event-driven engine; an empty
	// Config.Engine means the same thing.
	EngineEvents = "events"
	// EngineCohort is the batched columnar cohort engine (cohort.go),
	// bit-identical to EngineEvents for every configuration it accepts.
	EngineCohort = "cohort"
)

// EngineNames lists the accepted Config.Engine values, for CLI help.
func EngineNames() []string { return []string{EngineEvents, EngineCohort} }

// useCohort reports whether the run should go through the columnar
// cohort engine.
func (c Config) useCohort() bool { return c.Engine == EngineCohort }

// faultsCanCorrupt reports whether the fault configuration can actually
// corrupt a read: an enabled model at rate zero takes the injected code
// path but never corrupts, so unbounded retries stay safe (the zero-rate
// differential tests rely on exactly that).
func faultsCanCorrupt(f faults.Config) bool {
	return f.Enabled() && (f.Rate() > 0 || f.ErrGood > 0)
}

// serialScheme reports whether the named scheme finds records by serially
// scanning the cycle with no index to bound the search: flat and the
// signature family read every (signature) bucket until a match, and
// broadcast disks is a flat scan over the disk-frequency layout. These
// are the schemes whose missing-key searches need a full clean pass.
func serialScheme(name string) bool {
	switch name {
	case flat.Name, signature.Name, signature.IntegratedName, signature.MultiLevelName, bdisk.Name:
		return true
	default:
		return false
	}
}
