package core

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/faults"
)

// runSharded drives a fresh simulator's sharded engine for cfg directly,
// so tests can compare it against the public sequential path.
func runShardedFresh(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.runSharded()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestOneShardMatchesSequential is the differential anchor of the sharded
// engine: with a single shard it must reproduce the sequential path's
// Result byte for byte — same request stream, same accumulators, same
// tail estimates, same event count — across the uniform, faulty-channel
// and Zipf workloads.
func TestOneShardMatchesSequential(t *testing.T) {
	cases := map[string]func(*Config){
		"uniform":      func(c *Config) {},
		"faulty":       func(c *Config) { c.BitErrorRate = 0.1 },
		"zipf":         func(c *Config) { c.ZipfS = 1.3 },
		"partialavail": func(c *Config) { c.Availability = 0.7 },
		"faults-drop":  func(c *Config) { c.Faults = faults.FromRate(faults.ModelDrop, 0.05) },
		"faults-ge": func(c *Config) {
			c.Faults = faults.FromRate(faults.ModelGilbertElliott, 0.4)
			c.Faults.Recovery = faults.RecoverNextCycle
			c.Faults.MaxRetries = 4
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig("distributed", 300)
			cfg.Shards = 1
			mutate(&cfg)
			seq, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sharded := runShardedFresh(t, cfg)
			if !reflect.DeepEqual(seq, sharded) {
				t.Fatalf("one-shard engine diverged from sequential path:\nseq:     %+v\nsharded: %+v", seq, sharded)
			}
		})
	}
}

// TestFourShardsAgreeWithinAccuracy: different shard counts sample
// different request streams, so results differ — but both runs converged
// to the configured confidence accuracy, so their means must agree within
// the combined half-widths (2x the per-run accuracy bound).
func TestFourShardsAgreeWithinAccuracy(t *testing.T) {
	cfg := smallConfig("distributed", 300)
	cfg.Accuracy = 0.05
	cfg.MinRequests = 1000
	cfg.MaxRequests = 60000
	seq, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sharded, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Converged || !sharded.Converged {
		t.Fatalf("both runs should converge (seq %v, sharded %v)", seq.Converged, sharded.Converged)
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"access", seq.Access.Mean(), sharded.Access.Mean()},
		{"tuning", seq.Tuning.Mean(), sharded.Tuning.Mean()},
	} {
		if rel := math.Abs(c.a-c.b) / c.a; rel > 2*cfg.Accuracy {
			t.Errorf("%s means disagree beyond combined accuracy: seq %v vs sharded %v (rel %v)", c.name, c.a, c.b, rel)
		}
	}
	if sharded.Requests == 0 || sharded.Rounds < 4 {
		t.Fatalf("sharded bookkeeping wrong: %+v", sharded)
	}
}

// TestShardedDeterministicAcrossGOMAXPROCS pins the determinism contract:
// for a fixed (seed, shards) pair the Result is bit-identical however
// many OS threads schedule the shard goroutines, and across repeat runs.
func TestShardedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := smallConfig("distributed", 300)
	cfg.Shards = 4
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	narrow, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	wide, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(narrow, wide) {
		t.Fatalf("GOMAXPROCS changed the sharded result:\n1: %+v\n8: %+v", narrow, wide)
	}
	if !reflect.DeepEqual(wide, repeat) {
		t.Fatal("repeat sharded run differed")
	}
}

// TestShardedRequestCap: with convergence out of reach, shard budgets
// (which sum exactly to MaxRequests, even when it doesn't divide evenly)
// bound the run.
func TestShardedRequestCap(t *testing.T) {
	cfg := smallConfig("flat", 200)
	cfg.Accuracy = 0.001
	cfg.Confidence = 0.999
	cfg.MinRequests = 100
	cfg.MaxRequests = 1003 // not divisible by 4: budgets 251,251,251,250
	cfg.Shards = 4
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("0.1% accuracy should not converge within 1003 requests")
	}
	if res.Requests != 1003 {
		t.Fatalf("capped run served %d requests, want exactly 1003", res.Requests)
	}
}

// TestZipfSingleRecordRejected pins the validation bugfix: a Zipf
// workload over a 1-record dataset used to pass Validate and only fail at
// runtime; now it is rejected up front with a descriptive error.
func TestZipfSingleRecordRejected(t *testing.T) {
	cfg := smallConfig("flat", 1)
	cfg.ZipfS = 1.5
	err := cfg.Validate()
	if err == nil {
		t.Fatal("zipf over a single record accepted")
	}
	if !strings.Contains(err.Error(), "zipf") || !strings.Contains(err.Error(), "2 records") {
		t.Fatalf("error %q does not describe the zipf record-count requirement", err)
	}
	if _, rerr := RunOne(cfg); rerr == nil {
		t.Fatal("RunOne accepted the invalid zipf config")
	}
}

// TestZipfSmallestLegalConfig runs the smallest dataset a Zipf workload
// accepts (2 records) end to end, on both engine paths.
func TestZipfSmallestLegalConfig(t *testing.T) {
	cfg := smallConfig("flat", 2)
	cfg.ZipfS = 1.5
	cfg.Accuracy = 0.2
	cfg.MinRequests = 100
	cfg.MaxRequests = 1000
	for _, shards := range []int{1, 2} {
		cfg.Shards = shards
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Requests < 100 || res.Found != res.Requests {
			t.Fatalf("shards=%d: 2-record zipf run broken: %+v", shards, res)
		}
	}
}
