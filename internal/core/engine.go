package core

import (
	"sync"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/stats"
)

// This file is the round-sharded simulation engine — one of the two
// sanctioned concurrency sites in the repository (the other is the
// experiment harness's parallel.go; the airlint confinement analyzer
// rejects goroutines anywhere else).
//
// The paper's stopping rule (§4.1) runs the simulation in rounds of
// RoundSize requests and stops when the confidence half-width of the
// accumulated sample is small enough. Requests are independent processes
// over a deterministic periodic schedule, so rounds can run concurrently:
// each shard drives its own event loop and arrival process from the RNG
// substream splitmix(Seed, shard) against the shared immutable broadcast
// image. After every wave — one round per still-active shard — the engine
// merges the per-shard samples (parallel Welford for moments, weighted
// marker-CDF merge for the P² tails) and applies the stopping rule to the
// merged sample.
//
// Determinism: a shard's state is a pure function of (Seed, shard) and
// the wave count, goroutines never touch another shard's state, and the
// merge walks shards in index order — so the Result is bit-identical for
// a given (Seed, Shards) pair regardless of GOMAXPROCS or scheduling.

// shardAccum is one request stream's result accumulator. It is shared
// by the event-driven shard runner and the cohort engine's per-shard
// driver: both fold completed requests through addResult in arrival
// order, so a merged Result depends only on the request streams, never
// on which engine produced them (the cohort differential tests pin
// exactly this).
type shardAccum struct {
	requests, found, notFound int64
	restarts                  int64
	wasted                    int64
	unrecovered               int64
	switches                  int64
	switchWait                int64
	rounds                    int
	inRound                   int
	events                    int64 // engine events attributed to this stream

	access, tuning, energy, probes stats.Sample
	accessP95, accessP99           *stats.Quantile
	tuningP95, tuningP99           *stats.Quantile
}

// newShardAccum returns an accumulator with live tail estimators.
func newShardAccum() shardAccum {
	return shardAccum{
		accessP95: stats.MustQuantile(0.95),
		accessP99: stats.MustQuantile(0.99),
		tuningP95: stats.MustQuantile(0.95),
		tuningP99: stats.MustQuantile(0.99),
	}
}

// addResult folds one completed request into the accumulator, in the
// exact field order the sequential result handler uses — Welford and P²
// updates are order-sensitive, so this ordering is part of the
// determinism contract.
//
//airlint:hotpath
func (a *shardAccum) addResult(r *access.MultiResult, dozeRatio float64) {
	a.requests++
	if r.Found {
		a.found++
	} else {
		a.notFound++
	}
	a.access.Add(float64(r.Access))
	a.tuning.Add(float64(r.Tuning))
	a.energy.Add(float64(r.Tuning) + dozeRatio*float64(r.Access-r.Tuning))
	a.probes.Add(float64(r.Probes))
	a.restarts += int64(r.Restarts)
	a.wasted += int64(r.Wasted)
	if r.Unrecovered {
		a.unrecovered++
	}
	a.switches += int64(r.Switches)
	a.switchWait += int64(r.SwitchWait)
	a.accessP95.Add(float64(r.Access))
	a.accessP99.Add(float64(r.Access))
	a.tuningP95.Add(float64(r.Tuning))
	a.tuningP99.Add(float64(r.Tuning))
}

// shardRunner is one shard's private slice of a run: its own event loop,
// RNG substream, arrival process and accumulators. A wave's goroutine
// touches exactly one shardRunner; the wave barrier is the only
// synchronization.
type shardRunner struct {
	idx    int
	rng    *sim.RNG
	zipf   func() int       // nil for the uniform workload
	inj    *faults.Injector // shard's fault substream; nil on a perfect channel
	eng    *sim.Simulator
	budget int64 // request cap; shard budgets sum to MaxRequests

	done    bool  // budget exhausted; queue drained
	walkErr error // request-process failure, first wins by index
	runErr  error // event-loop result for the current wave

	shardAccum
}

// newShardRunner builds shard i of n for the run. A single shard reuses
// the base seed directly so that a one-shard engine run reproduces the
// sequential path's request stream byte for byte; multiple shards draw
// from SplitMix substreams.
func (s *Simulator) newShardRunner(i, n int) *shardRunner {
	rng := sim.NewRNG(s.cfg.Seed)
	if n > 1 {
		rng = sim.NewShardRNG(s.cfg.Seed, i)
	}
	sh := &shardRunner{
		idx:        i,
		rng:        rng,
		inj:        s.newInjector(i),
		eng:        sim.New(),
		budget:     int64(s.cfg.MaxRequests / n),
		shardAccum: newShardAccum(),
	}
	if i < s.cfg.MaxRequests%n {
		sh.budget++
	}
	if s.cfg.ZipfS > 1 {
		sh.zipf = rng.Zipf(s.cfg.ZipfS, s.ds.Len())
	}
	sh.eng.After(sh.rng.Exponential(s.cfg.RequestMean), s.shardArrival(sh))
	return sh
}

// shardArrival returns the shard's self-rescheduling arrival callback.
// The callback mirrors the sequential loop's order of operations —
// request, accumulate, round boundary, budget check, next draw — so that
// a one-shard run consumes the RNG stream identically. At a round
// boundary it schedules the next arrival and then stops the loop, leaving
// the pending arrival queued for the next wave.
//
//airlint:hotpath
func (s *Simulator) shardArrival(sh *shardRunner) func(*sim.Simulator) {
	//airlint:allow escapecheck one arrival closure per shard, heap-allocated at setup and reused every event
	var arrive func(*sim.Simulator)
	//airlint:allow escapecheck one arrival closure per shard, heap-allocated at setup and reused every event
	arrive = func(eng *sim.Simulator) { //airlint:allow hotalloc one arrival closure per shard, allocated at setup and reused every event
		key := s.pickKey(sh.rng, sh.zipf)
		r, err := s.runRequest(sh.rng, sh.inj, key, eng.Now())
		if err != nil {
			sh.walkErr = err
			eng.Stop()
			return
		}
		sh.addResult(&r, s.cfg.DozePowerRatio)

		boundary := false
		sh.inRound++
		if sh.inRound >= s.cfg.RoundSize {
			sh.inRound = 0
			sh.rounds++
			boundary = true
		}
		if sh.requests >= sh.budget {
			sh.done = true
			return // no reschedule; the queue drains and the wave ends
		}
		eng.After(sh.rng.Exponential(s.cfg.RequestMean), arrive)
		if boundary {
			eng.Stop()
		}
	}
	return arrive
}

// runSharded executes the run as waves of concurrent rounds. It is also
// valid for Shards <= 1 (the differential tests drive it directly), where
// it reproduces the sequential path's Result exactly.
func (s *Simulator) runSharded() (*Result, error) {
	n := s.cfg.Shards
	if n < 1 {
		n = 1
	}
	shards := make([]*shardRunner, n)
	for i := range shards {
		shards[i] = s.newShardRunner(i, n)
	}

	for {
		var active []*shardRunner
		for _, sh := range shards {
			if !sh.done {
				active = append(active, sh)
			}
		}
		if len(active) == 0 {
			break // every shard exhausted its budget without converging
		}
		startRounds := make([]int, len(active))
		for i, sh := range active {
			startRounds[i] = sh.rounds
		}

		var wg sync.WaitGroup
		for _, sh := range active {
			wg.Add(1)
			go func(sh *shardRunner) {
				defer wg.Done()
				sh.runErr = sh.eng.Run(0)
			}(sh)
		}
		wg.Wait()

		for _, sh := range active {
			if sh.runErr != nil && sh.runErr != sim.ErrStopped {
				return nil, sh.runErr
			}
			if sh.walkErr != nil {
				return nil, sh.walkErr
			}
		}

		merged := s.mergeShards(runnerAccums(shards))
		// The stopping rule only fires on a complete wave: every shard
		// that started the wave finished a full round, so the merged
		// sample is a whole number of rounds per shard — the sharded
		// analogue of the sequential rule's round boundary.
		waveComplete := true
		for i, sh := range active {
			if sh.rounds == startRounds[i] {
				waveComplete = false
			}
		}
		if waveComplete && s.accuracyMet(merged) && merged.Requests >= int64(s.cfg.MinRequests) {
			merged.Converged = true
			return merged, nil
		}
		if merged.Requests >= int64(s.cfg.MaxRequests) {
			// Bugfix: the stopping rule also applies on the
			// budget-exhaustion exit. A final wave cut short mid-round
			// (some shard's budget is not a whole number of rounds)
			// never sets waveComplete, but a merged sample that meets
			// the accuracy rule at the cap has converged all the same.
			// The samples are untouched — only the verdict changes —
			// and the sequential path applies the identical rule on its
			// own cap exit, keeping the one-shard identity exact.
			merged.Converged = s.accuracyMet(merged) && merged.Requests >= int64(s.cfg.MinRequests)
			return merged, nil
		}
	}
	final := s.mergeShards(runnerAccums(shards))
	final.Converged = s.accuracyMet(final) && final.Requests >= int64(s.cfg.MinRequests)
	return final, nil
}

// runnerAccums snapshots each runner's accumulator, in shard-index
// order, attributing the shard's processed event count to its stream.
func runnerAccums(shards []*shardRunner) []*shardAccum {
	accs := make([]*shardAccum, len(shards))
	for i, sh := range shards {
		sh.events = sh.eng.Processed
		accs[i] = &sh.shardAccum
	}
	return accs
}

// mergeShards folds every stream's accumulators, in index order, into a
// fresh Result. Rebuilding from scratch at each wave barrier keeps the
// merged state a pure function of the per-stream states; the cohort
// engine reuses exactly this merge so the two engines cannot drift.
func (s *Simulator) mergeShards(accs []*shardAccum) *Result {
	res := &Result{
		Scheme:     s.cfg.Scheme,
		CycleBytes: s.bc.Channel().CycleLen(),
		Params:     s.resultParams(),
	}
	a95 := stats.MustQuantile(0.95)
	a99 := stats.MustQuantile(0.99)
	t95 := stats.MustQuantile(0.95)
	t99 := stats.MustQuantile(0.99)
	for _, sh := range accs {
		res.Requests += sh.requests
		res.Found += sh.found
		res.NotFound += sh.notFound
		res.Restarts += sh.restarts
		res.WastedBytes += sh.wasted
		res.Unrecovered += sh.unrecovered
		res.Switches += sh.switches
		res.SwitchWaitBytes += sh.switchWait
		res.Rounds += sh.rounds
		res.Events += sh.events
		res.Access.Merge(&sh.access)
		res.Tuning.Merge(&sh.tuning)
		res.Energy.Merge(&sh.energy)
		res.Probes.Merge(&sh.probes)
		a95.Merge(sh.accessP95)
		a99.Merge(sh.accessP99)
		t95.Merge(sh.tuningP95)
		t99.Merge(sh.tuningP99)
	}
	res.AccessP95 = a95.Value()
	res.AccessP99 = a99.Value()
	res.TuningP95 = t95.Value()
	res.TuningP99 = t99.Value()
	return res
}
