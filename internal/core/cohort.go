package core

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/cohort"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/sim"
)

// This file is the columnar cohort engine (Config.Engine ==
// EngineCohort): the batched counterpart of the event-driven paths in
// simulator.go and engine.go, built to push 10⁶-client request
// populations through the unchanged scheme implementations. The run is
// organized exactly like the round-sharded engine's waves — one round of
// RoundSize requests per still-active stream, merge, stopping rule — but
// each round is a cohort.Batch: the stream pre-draws the round's
// (arrival, key) pairs into columns in the precise RNG order the event
// engine would have used, advances every lane with a batched kernel (or
// the ordinary walkers, lane by lane, when per-stream fault state forces
// arrival order), and folds the result columns into the same shardAccum
// that engine.go merges. Merging a single stream's accumulator into an
// empty Result is an exact copy, so the engines agree bit for bit at any
// shard count; the differential tests in cohort_test.go pin that.
//
// Unlike the sharded event engine the cohort engine is single-threaded:
// its throughput comes from batching (closed-form access.Resolver
// kernels, inlined walk loops, client-arena reuse, bulk Welford/P²
// folds), not from goroutines, so determinism is structural.

// cohortShard is one request stream of a cohort run: its own RNG
// substream, fault substream, budget, and batch arena. With one stream
// it reproduces the sequential path's request stream byte for byte; with
// n > 1 it mirrors shardRunner's SplitMix substreams.
type cohortShard struct {
	idx    int
	rng    *sim.RNG
	zipf   func() int       // nil for the uniform workload
	inj    *faults.Injector // stream's fault substream; nil on a perfect channel
	budget int64            // request cap; stream budgets sum to MaxRequests
	next   sim.Time         // the pending arrival time of the stream's next request
	done   bool             // budget exhausted

	batch *cohort.Batch
	// reuse is the stream's rewindable client for the lane-ordered
	// walker paths; it stays nil when the scheme does not implement
	// access.Rewinder, in which case renew allocates fresh per call.
	reuse  access.Client
	curKey uint64
	renew  func() access.Client

	acc shardAccum
}

// newCohortShard builds stream i of n. The RNG, zipf, injector, budget
// and first-arrival draw replicate newShardRunner's setup order exactly,
// so the generated request stream is identical to the event engine's.
func (s *Simulator) newCohortShard(i, n int) *cohortShard {
	rng := sim.NewRNG(s.cfg.Seed)
	if n > 1 {
		rng = sim.NewShardRNG(s.cfg.Seed, i)
	}
	sh := &cohortShard{
		idx:    i,
		rng:    rng,
		inj:    s.newInjector(i),
		budget: int64(s.cfg.MaxRequests / n),
		batch:  cohort.New(),
		acc:    newShardAccum(),
	}
	if i < s.cfg.MaxRequests%n {
		sh.budget++
	}
	if s.cfg.ZipfS > 1 {
		sh.zipf = rng.Zipf(s.cfg.ZipfS, s.ds.Len())
	}
	// One renew closure per stream, reused by every restart of every
	// lane: the recovery walkers discard their old client reference
	// before asking for a new one, so handing back the same rewound
	// object is indistinguishable from a fresh allocation.
	sh.renew = func() access.Client {
		if rw, ok := sh.reuse.(access.Rewinder); ok {
			rw.Rewind(sh.curKey)
			return sh.reuse
		}
		c := s.bc.NewClient(sh.curKey)
		if _, ok := c.(access.Rewinder); ok {
			sh.reuse = c
		}
		return c
	}
	// The event engine's setup schedules the first arrival before any
	// key is drawn; the pending-arrival draw keeps that stream order.
	sh.next = sh.rng.Exponential(s.cfg.RequestMean)
	return sh
}

// cohortGenerate pre-draws one round of requests into the batch columns.
// The per-request draw order matches the event engine's arrival handler
// — key first, then the exponential gap to the next arrival — with the
// already-pending arrival consumed as lane i's time. The final gap draw
// may not occur in the event engine when the run stops at this round's
// boundary; since the stream is never sampled again after a stop, the
// difference is unobservable.
func (s *Simulator) cohortGenerate(sh *cohortShard, n int) {
	b := sh.batch
	b.Reset(n)
	for i := 0; i < n; i++ {
		b.Arrival[i] = sh.next
		b.Key[i] = s.pickKey(sh.rng, sh.zipf)
		sh.next += sh.rng.Exponential(s.cfg.RequestMean)
	}
}

// primeCohortClients readies the Clients column for the stepped kernel:
// rewindable clients are reset in place (zero steady-state allocations),
// anything else is allocated fresh for its lane.
func (s *Simulator) primeCohortClients(b *cohort.Batch) {
	for i := 0; i < b.Len(); i++ {
		if rw, ok := b.Clients[i].(access.Rewinder); ok {
			rw.Rewind(b.Key[i])
			continue
		}
		b.Clients[i] = s.bc.NewClient(b.Key[i])
	}
}

// cohortAdvance resolves every lane of the current batch. Clean
// single-channel batches take the columnar kernels — the closed-form
// resolver when the scheme offers one, the inlined walk loop otherwise.
// Fault-injected and multichannel batches share mutable per-stream state
// (the corruption counter), so they walk lane by lane in arrival order
// through the exact entry points the event engine uses.
func (s *Simulator) cohortAdvance(sh *cohortShard, resolver access.Resolver) error {
	b := sh.batch
	if s.set == nil && sh.inj == nil {
		if resolver != nil && b.ResolveLanes(resolver) {
			return nil
		}
		s.primeCohortClients(b)
		if !b.AdvanceClean(s.bc.Channel(), 0) {
			return cohortFailErr(b)
		}
		return nil
	}
	return s.cohortWalkLanes(sh)
}

// cohortFailErr materializes a failed lane's error with the same message
// access.Walk would have returned, off the hot path.
func cohortFailErr(b *cohort.Batch) error {
	switch b.FailKind {
	case cohort.FailPastDoze:
		return fmt.Errorf("access: client dozed into the past: %d < %d", b.FailArg1, b.FailArg2)
	case cohort.FailBadStep:
		return fmt.Errorf("access: invalid step kind %d", b.FailArg1)
	default:
		return fmt.Errorf("access: query exceeded %d steps without terminating", b.FailArg1)
	}
}

// cohortWalkLanes drives each lane to completion in arrival order with
// the event engine's walkers, filling the result columns. Per-lane
// injector sequencing (StartRequest before the walk) matches runRequest,
// so the corruption stream lines up request for request.
func (s *Simulator) cohortWalkLanes(sh *cohortShard) error {
	b := sh.batch
	pol := s.recoverPolicy()
	for i := 0; i < b.Len(); i++ {
		sh.curKey = b.Key[i]
		arrival := b.Arrival[i]
		var r access.MultiResult
		var err error
		switch {
		case s.set != nil && sh.inj != nil:
			sh.inj.StartRequest()
			r, err = access.WalkRecoverMulti(s.set, sh.renew, arrival, sh.inj, pol, 0)
		case s.set != nil:
			r, err = access.WalkMulti(s.set, sh.renew(), arrival, 0)
		default: // sh.inj != nil: single-channel fault recovery
			sh.inj.StartRequest()
			var fr access.FaultyResult
			fr, err = access.WalkRecover(s.bc.Channel(), sh.renew, arrival, sh.inj, pol, 0)
			r = access.MultiResult{FaultyResult: fr}
		}
		if err != nil {
			return err
		}
		b.Access[i] = r.Access
		b.Tuning[i] = r.Tuning
		b.Probes[i] = r.Probes
		b.Found[i] = r.Found
		b.Restarts[i] = r.Restarts
		b.Wasted[i] = r.Wasted
		b.Unrecovered[i] = r.Unrecovered
		b.Switches[i] = r.Switches
		b.SwitchWait[i] = r.SwitchWait
		b.State[i] = cohort.LaneDone
	}
	return nil
}

// foldCohort folds the completed batch into the stream's accumulator.
// Scalar counters are order-free; the float columns go through the bulk
// Welford/P² folds, which append lane-by-lane in arrival order — the
// same per-estimator Add sequence the event engine produces, so the
// folded sample state is bit-identical. Each completed request counts as
// one engine event, matching the event engines' one-arrival-per-request
// accounting.
//
//airlint:hotpath
func (s *Simulator) foldCohort(sh *cohortShard) {
	b := sh.batch
	a := &sh.acc
	n := b.Len()
	for i := 0; i < n; i++ {
		if b.Found[i] {
			a.found++
		} else {
			a.notFound++
		}
		a.restarts += int64(b.Restarts[i])
		a.wasted += int64(b.Wasted[i])
		if b.Unrecovered[i] {
			a.unrecovered++
		}
		a.switches += int64(b.Switches[i])
		a.switchWait += int64(b.SwitchWait[i])
		b.AccessF[i] = float64(b.Access[i])
		b.TuningF[i] = float64(b.Tuning[i])
		b.EnergyF[i] = float64(b.Tuning[i]) + s.cfg.DozePowerRatio*float64(b.Access[i]-b.Tuning[i])
		b.ProbesF[i] = float64(b.Probes[i])
	}
	a.requests += int64(n)
	a.events += int64(n)
	a.access.AddAll(b.AccessF)
	a.tuning.AddAll(b.TuningF)
	a.energy.AddAll(b.EnergyF)
	a.probes.AddAll(b.ProbesF)
	a.accessP95.AddAll(b.AccessF)
	a.accessP99.AddAll(b.AccessF)
	a.tuningP95.AddAll(b.TuningF)
	a.tuningP99.AddAll(b.TuningF)
}

// cohortAccums collects the streams' accumulators in index order for the
// shared merge.
func cohortAccums(shards []*cohortShard) []*shardAccum {
	accs := make([]*shardAccum, len(shards))
	for i, sh := range shards {
		accs[i] = &sh.acc
	}
	return accs
}

// runCohort executes the run on the columnar engine, at any shard count
// (Shards <= 1 is a single stream reproducing the sequential path). The
// control flow mirrors runSharded wave for wave: each active stream runs
// one round — capped at its remaining budget, with the event engine's
// post-request budget check meaning even a zero-budget stream serves one
// request — then the merged sample faces the stopping rule on a complete
// wave and the cap rule otherwise.
func (s *Simulator) runCohort() (*Result, error) {
	resolver, _ := s.bc.(access.Resolver)
	n := s.cfg.Shards
	if n < 1 {
		n = 1
	}
	shards := make([]*cohortShard, n)
	for i := range shards {
		shards[i] = s.newCohortShard(i, n)
	}

	for {
		anyActive := false
		waveComplete := true
		for _, sh := range shards {
			if sh.done {
				continue
			}
			anyActive = true
			rem := sh.budget - sh.acc.requests
			if rem < 1 {
				rem = 1 // post-request budget check: a zero-budget stream still serves one
			}
			batchN := s.cfg.RoundSize
			if int64(batchN) > rem {
				batchN = int(rem)
				waveComplete = false
			}
			s.cohortGenerate(sh, batchN)
			if err := s.cohortAdvance(sh, resolver); err != nil {
				return nil, err
			}
			s.foldCohort(sh)
			if batchN == s.cfg.RoundSize {
				sh.acc.rounds++
			}
			if sh.acc.requests >= sh.budget {
				sh.done = true
			}
		}
		if !anyActive {
			break // every stream exhausted its budget without converging
		}
		merged := s.mergeShards(cohortAccums(shards))
		if waveComplete && s.accuracyMet(merged) && merged.Requests >= int64(s.cfg.MinRequests) {
			merged.Converged = true
			return merged, nil
		}
		if merged.Requests >= int64(s.cfg.MaxRequests) {
			merged.Converged = s.accuracyMet(merged) && merged.Requests >= int64(s.cfg.MinRequests)
			return merged, nil
		}
	}
	final := s.mergeShards(cohortAccums(shards))
	final.Converged = s.accuracyMet(final) && final.Requests >= int64(s.cfg.MinRequests)
	return final, nil
}
