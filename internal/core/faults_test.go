package core

import (
	"reflect"
	"testing"

	"github.com/airindex/airindex/internal/faults"
)

// TestZeroRateFaultsReproducePerfectChannel: an enabled model with every
// rate at zero takes the WalkRecover code path but must reproduce the
// perfect-channel Result byte for byte — the faults substream never
// touches the arrival RNG.
func TestZeroRateFaultsReproducePerfectChannel(t *testing.T) {
	for _, scheme := range []string{"flat", "distributed", "hashing", "signature", "(1,m)"} {
		t.Run(scheme, func(t *testing.T) {
			base := smallConfig(scheme, 300)
			perfect, err := RunOne(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range []faults.ModelKind{faults.ModelIID, faults.ModelGilbertElliott, faults.ModelDrop} {
				cfg := base
				cfg.Faults = faults.FromRate(model, 0)
				got, err := RunOne(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(perfect, got) {
					t.Fatalf("zero-rate %v model diverged from the perfect channel:\nperfect: %+v\nfaults:  %+v", model, perfect, got)
				}
			}
		})
	}
}

// TestFaultyRunDeterministic: for a fixed (seed, shards, faultcfg) the
// Result is bit-identical across repeated runs, sequentially and sharded.
func TestFaultyRunDeterministic(t *testing.T) {
	for _, shards := range []int{1, 3} {
		cfg := smallConfig("distributed", 300)
		cfg.Shards = shards
		cfg.Faults = faults.FromRate(faults.ModelDrop, 0.05)
		a, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: identical (seed, shards, faultcfg) produced different Results", shards)
		}
		if a.Restarts == 0 {
			t.Fatalf("shards=%d: drop rate 0.05 injected no faults", shards)
		}
	}
}

// TestFaultDegradationMonotone: mean access and tuning time must not
// improve as the drop rate rises.
func TestFaultDegradationMonotone(t *testing.T) {
	rates := []float64{0, 0.02, 0.05, 0.1}
	for _, scheme := range []string{"distributed", "hashing"} {
		var prevAt, prevTt float64
		for i, rate := range rates {
			cfg := smallConfig(scheme, 300)
			cfg.Faults = faults.FromRate(faults.ModelDrop, rate)
			res, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			at, tt := res.Access.Mean(), res.Tuning.Mean()
			if i > 0 && (at < prevAt || tt < prevTt) {
				t.Fatalf("%s: degradation not monotone at rate %v: At %v -> %v, Tt %v -> %v",
					scheme, rate, prevAt, at, prevTt, tt)
			}
			prevAt, prevTt = at, tt
		}
	}
}

// TestBoundedRetriesProduceUnrecoveredMisses: with a brutal error rate and
// a tight retry budget, some requests must be abandoned, and they must be
// counted as NotFound.
func TestBoundedRetriesProduceUnrecoveredMisses(t *testing.T) {
	cfg := smallConfig("distributed", 300)
	cfg.Faults = faults.Config{Model: faults.ModelDrop, DropRate: 0.5, MaxRetries: 2}
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unrecovered == 0 {
		t.Fatal("drop rate 0.5 with MaxRetries 2 abandoned no requests")
	}
	if res.Unrecovered > res.NotFound {
		t.Fatalf("Unrecovered %d exceeds NotFound %d; misses must be a subset", res.Unrecovered, res.NotFound)
	}
	if res.WastedBytes == 0 {
		t.Fatal("corrupted reads reported no wasted tuning bytes")
	}
}

// TestFaultsRejectedAlongsideLegacyBER: the two error layers are mutually
// exclusive.
func TestFaultsRejectedAlongsideLegacyBER(t *testing.T) {
	cfg := smallConfig("flat", 100)
	cfg.BitErrorRate = 0.01
	cfg.Faults = faults.FromRate(faults.ModelDrop, 0.01)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Faults together with BitErrorRate")
	}
	cfg.BitErrorRate = 0
	cfg.Faults.DropRate = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-range faults rate")
	}
}
