package core

import (
	"reflect"
	"testing"

	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
)

// stripMultiParams removes the multichannel echo keys so a K=1 Result can
// be compared field-for-field against the single-channel baseline, whose
// Params carry only the scheme's structural parameters.
func stripMultiParams(r *Result) *Result {
	c := *r
	c.Params = make(map[string]float64, len(r.Params))
	for k, v := range r.Params {
		if k == "channels" || k == "switch_cost" || k == "policy" {
			continue
		}
		c.Params[k] = v
	}
	return &c
}

// TestMultiK1ReproducesSingleChannel is the subsystem's differential
// gate at the simulator level: a one-channel replicated allocation with
// zero switch cost must reproduce the single-channel Result byte for
// byte for every scheme — the hopping walkers consume no RNG, so the
// arrival stream is untouched.
func TestMultiK1ReproducesSingleChannel(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			base := smallConfig(scheme, 300)
			want, err := RunOne(base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Multi = multichannel.Config{Channels: 1}
			got, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Params["channels"] != 1 || got.Switches != 0 {
				t.Fatalf("K=1 run: channels=%v switches=%d", got.Params["channels"], got.Switches)
			}
			if !reflect.DeepEqual(want, stripMultiParams(got)) {
				t.Fatalf("K=1 replicated diverged from the single channel:\nsingle: %+v\nmulti:  %+v", want, got)
			}
		})
	}
}

// TestMultiK1ReproducesFaultyChannel extends the K=1 identity to the
// recovering walker: same allocation, faults enabled.
func TestMultiK1ReproducesFaultyChannel(t *testing.T) {
	for _, pol := range []faults.RecoveryKind{faults.RecoverRestart, faults.RecoverNextCycle} {
		base := smallConfig("distributed", 300)
		base.Faults = faults.FromRate(faults.ModelDrop, 0.05)
		base.Faults.Recovery = pol
		want, err := RunOne(base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Multi = multichannel.Config{Channels: 1}
		got, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, stripMultiParams(got)) {
			t.Fatalf("recovery %v: K=1 faulty run diverged from the single channel", pol)
		}
	}
}

// TestMultiRunDeterministic: a multichannel Result is a pure function of
// (seed, shards, multichannel config), sequentially and sharded.
func TestMultiRunDeterministic(t *testing.T) {
	for _, shards := range []int{1, 3} {
		cfg := smallConfig("distributed", 300)
		cfg.Shards = shards
		cfg.Multi = multichannel.Config{Channels: 4, SwitchCost: 256}
		a, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: identical (seed, shards, multi) produced different Results", shards)
		}
	}
}

// TestMultiShardedMatchesSequentialShape: the sharded engine accumulates
// the hop counters; one shard must match the sequential path exactly.
func TestMultiShardedMatchesSequentialShape(t *testing.T) {
	cfg := smallConfig("(1,m)", 300)
	cfg.Multi = multichannel.Config{Channels: 2}
	seq, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := s.runSharded()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, sharded) {
		t.Fatalf("one-shard engine diverged from the sequential multichannel path:\nseq:     %+v\nsharded: %+v", seq, sharded)
	}
	if seq.Switches == 0 {
		t.Fatal("K=2 (1,m) run recorded no channel switches; hopping is not exercised")
	}
}

// TestMultiReplicatedSpeedsUpAccess: a K-channel replicated allocation
// must cut the mean access time roughly toward 1/K for an indexed scheme
// without touching tuning time.
func TestMultiReplicatedSpeedsUpAccess(t *testing.T) {
	base := smallConfig("distributed", 500)
	single, err := RunOne(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Multi = multichannel.Config{Channels: 4}
	multi, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Access.Mean() >= 0.8*single.Access.Mean() {
		t.Fatalf("K=4 replicated access %v not clearly below single-channel %v", multi.Access.Mean(), single.Access.Mean())
	}
	if multi.Tuning.Mean() > 1.05*single.Tuning.Mean() {
		t.Fatalf("K=4 replicated tuning %v grew past single-channel %v", multi.Tuning.Mean(), single.Tuning.Mean())
	}
}

// TestMultiSwitchCostSlowsAccess: raising the retune cost cannot improve
// access time, and the walker's cost gating keeps the expensive run no
// worse than staying on one channel.
func TestMultiSwitchCostSlowsAccess(t *testing.T) {
	base := smallConfig("distributed", 500)
	free := base
	free.Multi = multichannel.Config{Channels: 4}
	cheap, err := RunOne(free)
	if err != nil {
		t.Fatal(err)
	}
	costly := base
	costly.Multi = multichannel.Config{Channels: 4, SwitchCost: 4096}
	dear, err := RunOne(costly)
	if err != nil {
		t.Fatal(err)
	}
	if dear.Access.Mean() < cheap.Access.Mean() {
		t.Fatalf("switch cost 4096 improved access: %v < %v", dear.Access.Mean(), cheap.Access.Mean())
	}
	single, err := RunOne(base)
	if err != nil {
		t.Fatal(err)
	}
	if dear.Access.Mean() > 1.1*single.Access.Mean() {
		t.Fatalf("cost gating failed: costly K=4 access %v far above single-channel %v", dear.Access.Mean(), single.Access.Mean())
	}
	if dear.SwitchWaitBytes > 0 && dear.Switches == 0 {
		t.Fatal("switch wait recorded without switches")
	}
}

// TestMultiIndexDataRuns: the index/data split runs end to end for the
// indexed schemes and rejects the flat (all-data) cycle at build time.
func TestMultiIndexDataRuns(t *testing.T) {
	for _, scheme := range []string{"(1,m)", "distributed"} {
		cfg := smallConfig(scheme, 300)
		cfg.Multi = multichannel.Config{Channels: 3, Policy: multichannel.PolicyIndexData}
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found == 0 {
			t.Fatalf("%s: index/data run found nothing", scheme)
		}
		if res.Switches == 0 {
			t.Fatalf("%s: index/data run never hopped from index to data channel", scheme)
		}
	}
	cfg := smallConfig("flat", 300)
	cfg.Multi = multichannel.Config{Channels: 2, Policy: multichannel.PolicyIndexData}
	if _, err := RunOne(cfg); err == nil {
		t.Fatal("index/data policy accepted the flat all-data cycle")
	}
}

// TestMultiSkewedRuns: the skewed partition runs with a Zipf workload,
// inheriting the workload skew by default.
func TestMultiSkewedRuns(t *testing.T) {
	cfg := smallConfig("(1,m)", 300)
	cfg.ZipfS = 1.2
	cfg.Multi = multichannel.Config{Channels: 3, Policy: multichannel.PolicySkewed}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Multichannel().Config().Skew; got != 1.2 {
		t.Fatalf("skewed allocation inherited skew %v, want the workload's 1.2", got)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Found == 0 {
		t.Fatal("skewed run found nothing")
	}
}

// TestMultiValidation covers the config-level rules: the serial-scheme
// retry caveat and the multichannel cross-checks.
func TestMultiValidation(t *testing.T) {
	// Serial scheme + corrupting faults + availability < 1 + unbounded
	// retries must be rejected...
	cfg := smallConfig("flat", 100)
	cfg.Availability = 0.8
	cfg.Faults = faults.FromRate(faults.ModelDrop, 0.05)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted unbounded retries for a serial scheme with missing keys")
	}
	// ...and each escape hatch must re-admit it.
	for _, fix := range []func(*Config){
		func(c *Config) { c.Faults.MaxRetries = 3 },
		func(c *Config) { c.Availability = 1 },
		func(c *Config) { c.Faults.DropRate = 0 },
		func(c *Config) { c.Scheme = "distributed" },
	} {
		ok := cfg
		fix(&ok)
		if err := ok.Validate(); err != nil {
			t.Fatalf("escape hatch rejected: %v", err)
		}
	}

	bad := smallConfig("flat", 100)
	bad.Multi = multichannel.Config{Channels: 2}
	bad.BitErrorRate = 0.01
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted multichannel together with the legacy BitErrorRate")
	}
	bad = smallConfig("flat", 100)
	bad.Multi = multichannel.Config{Channels: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a negative channel count")
	}
}
