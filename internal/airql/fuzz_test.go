package airql

import (
	"strings"
	"testing"

	"github.com/airindex/airindex/scenarios"
)

// FuzzCompile drives the whole compiler front end — lexer, parser,
// validator — over arbitrary input. The contract under fuzzing: never
// panic, and every rejection is an *Error or ErrorList whose diagnostics
// all carry a 1-based line:col position. Run with
//
//	go test -fuzz=FuzzCompile ./internal/airql
func FuzzCompile(f *testing.F) {
	for _, name := range scenarios.Names() {
		src, err := scenarios.Source(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add(`SWEEP scheme=flat,bdisk,dist k=1,2,4,8 faultrate=0..0.10:0.02 | RUN seed=42 shards=4 engine=cohort | EMIT csv(results/multich-at.csv) summary(stdout)`)
	f.Add("SWEEP k=1..8:1 fast(1,2,4,8)\nSET records=10000 fast(2500)")
	f.Add(`TABLE "a-b" title("t") x(k) | COL "c" mean(access){scheme=flat} / requests`)
	f.Add("NOTE \"workload: {records} records; {count(k)} points\"")
	f.Add("SET switchcost=1KiB zipfs=1.5 # comment\n")
	f.Add("SWEEP x=\"")
	f.Add("SWEEP x=1..")
	f.Add("COL")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile("fuzz.airql", src)
		if err == nil {
			if prog == nil {
				t.Fatal("nil program with nil error")
			}
			return
		}
		var diags []*Error
		switch e := err.(type) {
		case *Error:
			diags = []*Error{e}
		case ErrorList:
			if len(e) == 0 {
				t.Fatal("empty ErrorList returned as an error")
			}
			diags = e
		default:
			t.Fatalf("Compile returned %T, want *Error or ErrorList", err)
		}
		for _, d := range diags {
			if d.Pos.Line < 1 || d.Pos.Col < 1 {
				t.Fatalf("diagnostic without a position: %+v", d)
			}
			if !strings.HasPrefix(d.Error(), "fuzz.airql:") {
				t.Fatalf("diagnostic %q does not lead with file:line:col", d.Error())
			}
		}
	})
}
