package airql

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/airindex/airindex/internal/core"
)

// runPoints executes one simulation per config concurrently (bounded by
// GOMAXPROCS) and returns results in input order. Every run is seeded by
// its own config, so the output is identical to a sequential sweep.
//
// This file and the round-sharded engine (internal/core/engine.go) are
// the testbed's only sanctioned concurrency layers: the confinement
// analyzer (internal/lint) rejects goroutines, WaitGroups and channel
// construction everywhere else, so the simulation kernel below this point
// is single-threaded by construction. It moved here with the executor
// when the experiment harness became a set of compiled scenarios.
func runPoints(opt Options, cfgs []core.Config) ([]*core.Result, error) {
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var progressMu sync.Mutex
	// The semaphore budgets CPU demand, not run count: a sharded run
	// occupies Shards slots (capped at the capacity) because the engine
	// drives that many event loops at once. Slots are acquired here in the
	// loop before spawning — never inside the goroutines — so acquisition
	// of multiple slots cannot deadlock, and the large per-run state
	// core.RunOne allocates (broadcast image, client pools) stays bounded.
	capacity := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, capacity)
	var wg sync.WaitGroup
	for i := range cfgs {
		weight := cfgs[i].Shards
		if weight < 1 {
			weight = 1
		}
		if weight > capacity {
			weight = capacity
		}
		for s := 0; s < weight; s++ {
			sem <- struct{}{}
		}
		wg.Add(1)
		go func(i, weight int) {
			defer wg.Done()
			defer func() {
				for s := 0; s < weight; s++ {
					<-sem
				}
			}()
			cfg := cfgs[i]
			res, err := core.RunOne(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s @ %d records: %w", cfg.Scheme, cfg.Data.NumRecords, err)
				return
			}
			results[i] = res
			progressMu.Lock()
			opt.progress("%-22s records=%-6d avail=%.0f%% access=%.0f tuning=%.0f requests=%d",
				cfg.Scheme, cfg.Data.NumRecords, cfg.Availability*100,
				res.Access.Mean(), res.Tuning.Mean(), res.Requests)
			progressMu.Unlock()
		}(i, weight)
	}
	wg.Wait()
	// errors.Join keeps input order, so the first failing point leads the
	// message and no failure is silently dropped.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}
