package airql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/units"
)

// formatFloat renders a float the way the CSV writer does: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// schemeAliases maps DSL-friendly spellings to registered scheme names.
// The canonical names "(1,m)", "broadcast-disks" and the signature
// variants contain characters the expression grammar claims (commas,
// parens, '-' is the minus operator), so bare identifiers get aliases;
// the canonical spellings are always accepted in quoted strings.
var schemeAliases = map[string]string{
	"flat":           "flat",
	"dist":           "distributed",
	"distributed":    "distributed",
	"hash":           "hashing",
	"hashing":        "hashing",
	"sig":            "signature",
	"signature":      "signature",
	"onem":           "(1,m)",
	"bdisk":          "broadcast-disks",
	"hybrid":         "hybrid",
	"sig_integrated": "signature-integrated",
	"sig_multilevel": "signature-multilevel",
}

// canonScheme resolves a scheme value (alias or canonical name) to its
// registered name.
func canonScheme(s string) (string, bool) {
	if c, ok := schemeAliases[s]; ok {
		return c, true
	}
	for _, name := range core.SchemeNames() {
		if s == name {
			return s, true
		}
	}
	return "", false
}

// schemeVocab lists every accepted scheme spelling, for error messages.
func schemeVocab() string {
	var names []string
	for alias := range schemeAliases {
		names = append(names, alias)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// sigFamily are the schemes that honour the signature.* knobs.
var sigFamily = []string{"signature", "signature-integrated", "signature-multilevel"}

// pointFaults stages the fault.* knobs of one point. The executor
// assembles cfg.Faults from it after all knobs are applied, mirroring
// how the Go experiment functions built faults.FromRate(model, rate)
// wholesale: setting fault.model in a script replaces any session fault
// config rather than patching it.
type pointFaults struct {
	modelSet bool
	model    faults.ModelKind
	rateSet  bool
	rate     float64
	retries  int
	retrySet bool
	recovery faults.RecoveryKind
	recovSet bool
}

// knob describes one assignable configuration key: its value type, its
// static range, the schemes it applies to, and how it lands on
// core.Config. This table IS the validator's knowledge of the config
// surface; DESIGN.md §11 renders it as documentation.
type knob struct {
	name string
	doc  string
	// isString marks vocabulary knobs (scheme, fault.model, ...); vocab
	// resolves and canonicalises their values.
	isString bool
	vocab    func(s string) (string, bool)
	vocabDoc string
	// isBytes marks byte quantities: unit-suffixed numbers (1KiB) are
	// accepted here and only here.
	isBytes bool
	// isInt requires an integral value.
	isInt bool
	// min/max bound numeric values (inclusive; NaN means unbounded).
	min, max float64
	// maxExcl is an exclusive upper bound (0 means none): error rates
	// live in [0,1).
	maxExcl float64
	// schemes restricts the knob to these canonical schemes; nil = all.
	schemes []string
	// apply lands the value on the config. v is canonical: strings
	// resolved through vocab, numbers validated against the bounds.
	apply func(cfg *core.Config, pf *pointFaults, v Scalar)
}

func (k *knob) compatibleWith(scheme string) bool {
	if k.schemes == nil {
		return true
	}
	for _, s := range k.schemes {
		if s == scheme {
			return true
		}
	}
	return false
}

// unbounded is the "no bound" marker for knob ranges.
var unbounded = math.NaN()

// knobTable lists every knob in documentation order. scheme and records
// are constructor knobs: the executor needs them before DefaultConfig
// exists, so their apply is a no-op here and exec.go reads them first.
var knobTable = []knob{
	{
		name: "scheme", doc: "access method", isString: true,
		vocab: canonScheme, vocabDoc: "schemes: " + schemeVocab(),
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {},
	},
	{
		name: "records", doc: "database size in records", isInt: true, min: 1, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {},
	},
	{
		name: "availability", doc: "probability a request's key is broadcast", min: 0, max: 1,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Availability = v.Num },
	},
	{
		name: "requestmean", doc: "mean request inter-arrival time in bytes", min: 1e-9, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.RequestMean = v.Num },
	},
	{
		name: "zipfs", doc: "Zipf popularity exponent (0 = uniform, else > 1)", min: 0, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.ZipfS = v.Num },
	},
	{
		name: "biterror", doc: "legacy per-read bit error rate", min: 0, max: unbounded, maxExcl: 1,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.BitErrorRate = v.Num },
	},
	{
		name: "dozeratio", doc: "doze-mode power relative to active listening", min: 0, max: 1,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.DozePowerRatio = v.Num },
	},
	{
		name: "data.recordbytes", doc: "record payload size", isBytes: true, isInt: true, min: 1, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Data.RecordSize = int(v.Num) },
	},
	{
		name: "data.keybytes", doc: "encoded key width", isBytes: true, isInt: true, min: 4, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Data.KeySize = int(v.Num) },
	},
	{
		name: "data.attrs", doc: "text attributes per record", isInt: true, min: 1, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Data.NumAttributes = int(v.Num) },
	},
	{
		name: "dist.r", doc: "distributed indexing's replication level (-1 = optimal)",
		isInt: true, min: -1, max: unbounded, schemes: []string{"distributed"},
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Dist.R = int(v.Num) },
	},
	{
		name: "onem.m", doc: "(1,m) indexing's index repetitions per cycle",
		isInt: true, min: 1, max: unbounded, schemes: []string{"(1,m)"},
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Onem.M = int(v.Num) },
	},
	{
		name: "hashing.load", doc: "hashing's load factor (records per logical bucket)",
		min: 1e-9, max: unbounded, schemes: []string{"hashing"},
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Hashing.LoadFactor = v.Num },
	},
	{
		name: "signature.sigbytes", doc: "signature width", isBytes: true, isInt: true, min: 1, max: unbounded,
		schemes: sigFamily,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			cfg.Signature.SigBytes = int(v.Num)
			// Keep the per-field bit budget representable inside the
			// signature, exactly as the ablation always did.
			if cfg.Signature.BitsPerField > int(v.Num)*8 {
				cfg.Signature.BitsPerField = int(v.Num) * 8
			}
		},
	},
	{
		name: "signature.bits", doc: "bits set per indexed field", isInt: true, min: 1, max: unbounded,
		schemes: sigFamily,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Signature.BitsPerField = int(v.Num) },
	},
	{
		name: "signature.groupsize", doc: "records per signature group", isInt: true, min: 1, max: unbounded,
		schemes: []string{"signature-integrated", "signature-multilevel"},
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Signature.GroupSize = int(v.Num) },
	},
	{
		name: "hybrid.groupsize", doc: "records per indexed signature group", isInt: true, min: 1, max: unbounded,
		schemes: []string{"hybrid"},
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Hybrid.GroupSize = int(v.Num) },
	},
	{
		name: "fault.model", doc: "unreliable-channel error model", isString: true,
		vocab: func(s string) (string, bool) {
			if s == "" {
				return "", false
			}
			if _, err := faults.ParseModel(s); err != nil {
				return "", false
			}
			return s, true
		},
		vocabDoc: "models: none, iid, ge, drop",
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			m, _ := faults.ParseModel(v.Str)
			pf.model, pf.modelSet = m, true
		},
	},
	{
		name: "fault.rate", doc: "error rate fed to the model", min: 0, max: unbounded, maxExcl: 1,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			pf.rate, pf.rateSet = v.Num, true
		},
	},
	{
		name: "fault.retries", doc: "recovery retry budget (0 = unbounded)", isInt: true, min: 0, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			pf.retries, pf.retrySet = int(v.Num), true
		},
	},
	{
		name: "fault.recovery", doc: "client re-tune policy after a corrupted read", isString: true,
		vocab: func(s string) (string, bool) {
			if s == "" {
				return "", false
			}
			if _, err := faults.ParseRecovery(s); err != nil {
				return "", false
			}
			return s, true
		},
		vocabDoc: "policies: restart, cycle",
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			r, _ := faults.ParseRecovery(v.Str)
			pf.recovery, pf.recovSet = r, true
		},
	},
	{
		name: "multi.channels", doc: "physical broadcast channels K (0 = single-channel path)",
		isInt: true, min: 0, max: multichannel.MaxChannels,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Multi.Channels = int(v.Num) },
	},
	{
		name: "multi.switchcost", doc: "channel-switch retune cost", isBytes: true, isInt: true, min: 0, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Multi.SwitchCost = units.Bytes64(int64(v.Num)) },
	},
	{
		name: "multi.policy", doc: "channel allocation policy", isString: true,
		vocab: func(s string) (string, bool) {
			if s == "" {
				return "", false
			}
			if _, err := multichannel.ParsePolicy(s); err != nil {
				return "", false
			}
			return s, true
		},
		vocabDoc: "policies: replicated, indexdata, skewed",
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) {
			p, _ := multichannel.ParsePolicy(v.Str)
			cfg.Multi.Policy = p
		},
	},
	{
		name: "multi.indexchannels", doc: "channels reserved for index buckets (indexdata policy)",
		isInt: true, min: 0, max: multichannel.MaxChannels,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Multi.IndexChannels = int(v.Num) },
	},
	{
		name: "multi.skew", doc: "Zipf exponent of the skewed allocation policy", min: 0, max: unbounded,
		apply: func(cfg *core.Config, pf *pointFaults, v Scalar) { cfg.Multi.Skew = v.Num },
	},
}

// knobAliases maps short spellings (the ones the ISSUE's one-liner
// grammar example uses) onto table entries.
var knobAliases = map[string]string{
	"k":          "multi.channels",
	"switchcost": "multi.switchcost",
	"alloc":      "multi.policy",
	"faultrate":  "fault.rate",
	"avail":      "availability",
}

// lookupKnob resolves a SET/axis name to its table entry.
func lookupKnob(name string) *knob {
	if canon, ok := knobAliases[name]; ok {
		name = canon
	}
	for i := range knobTable {
		if knobTable[i].name == name {
			return &knobTable[i]
		}
	}
	return nil
}

// KnobNames lists every knob (canonical names, documentation order).
func KnobNames() []string {
	names := make([]string, len(knobTable))
	for i := range knobTable {
		names[i] = knobTable[i].name
	}
	return names
}

// checkKnobScalar validates a resolved value against the knob's static
// constraints; it returns a message ("" if fine) so callers can anchor
// the position themselves.
func checkKnobScalar(k *knob, v Scalar) string {
	if k.isString {
		if !v.IsStr {
			return fmt.Sprintf("knob %s takes a name (%s), not a number", k.name, k.vocabDoc)
		}
		if _, ok := k.vocab(v.Str); !ok {
			return fmt.Sprintf("knob %s: unknown value %q (%s)", k.name, v.Str, k.vocabDoc)
		}
		return ""
	}
	if v.IsStr {
		return fmt.Sprintf("knob %s takes a number, not %q", k.name, v.Str)
	}
	if v.Bytes && !k.isBytes {
		return fmt.Sprintf("unit mismatch: knob %s is dimensionless but the value has a byte unit", k.name)
	}
	if k.isInt && v.Num != math.Trunc(v.Num) {
		return fmt.Sprintf("knob %s takes an integer, not %s", k.name, formatFloat(v.Num))
	}
	if !math.IsNaN(k.min) && v.Num < k.min {
		return fmt.Sprintf("knob %s: value %s below minimum %s", k.name, formatFloat(v.Num), formatFloat(k.min))
	}
	if !math.IsNaN(k.max) && v.Num > k.max {
		return fmt.Sprintf("knob %s: value %s above maximum %s", k.name, formatFloat(v.Num), formatFloat(k.max))
	}
	if k.maxExcl != 0 && v.Num >= k.maxExcl {
		return fmt.Sprintf("knob %s: value %s must be below %s", k.name, formatFloat(v.Num), formatFloat(k.maxExcl))
	}
	if k.name == "zipfs" && v.Num != 0 && v.Num <= 1 {
		return fmt.Sprintf("knob zipfs: exponent %s must exceed 1 (or be 0 for the uniform workload)", formatFloat(v.Num))
	}
	return ""
}
