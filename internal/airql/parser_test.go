package airql

import (
	"math"
	"strings"
	"testing"
)

// TestPipeAndNewlineEquivalent: the one-line pipeline form and the
// stage-per-line form parse to the same program shape.
func TestPipeAndNewlineEquivalent(t *testing.T) {
	oneLine := `SWEEP scheme=flat,dist | RUN seed=42 shards=4 engine=cohort | EMIT csv(results/x.csv) summary(stdout)`
	multiLine := `
SWEEP scheme=flat,dist
RUN seed=42 shards=4 engine=cohort
EMIT csv(results/x.csv) summary(stdout)
`
	a, err := Parse("a.airql", oneLine)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("b.airql", multiLine)
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range []*Program{a, b} {
		if len(prog.Axes) != 1 || prog.Axes[0].Name != "scheme" || len(prog.Axes[0].Values) != 2 {
			t.Fatalf("axes parsed wrong: %+v", prog.Axes)
		}
		if len(prog.Runs) != 3 || prog.Runs[0].Key != "seed" || prog.Runs[1].Key != "shards" || prog.Runs[2].Key != "engine" {
			t.Fatalf("runs parsed wrong: %+v", prog.Runs)
		}
		if len(prog.LooseSinks) != 2 || prog.LooseSinks[0].Name != "csv" || prog.LooseSinks[1].Name != "summary" {
			t.Fatalf("sinks parsed wrong: %+v", prog.LooseSinks)
		}
	}
	if a.LooseSinks[0].Arg != "results/x.csv" {
		t.Fatalf("csv sink arg %q", a.LooseSinks[0].Arg)
	}
}

// TestRangeExpansion: lo..hi:step expands eagerly and includes the
// endpoint.
func TestRangeExpansion(t *testing.T) {
	prog, err := Parse("t.airql", `SWEEP faultrate=0..0.10:0.02`)
	if err != nil {
		t.Fatal(err)
	}
	vals := prog.Axes[0].Values
	want := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	if len(vals) != len(want) {
		t.Fatalf("range expanded to %d values, want %d: %+v", len(vals), len(want), vals)
	}
	for i, w := range want {
		if math.Abs(vals[i].Num-w) > 1e-12 {
			t.Errorf("value %d: got %v, want %v", i, vals[i].Num, w)
		}
	}
}

// TestFastVariants: fast(...) attaches to the preceding axis or SET.
func TestFastVariants(t *testing.T) {
	prog, err := Parse("t.airql", `
SWEEP k=1..8:1 fast(1,2,4,8)
SET records=10000 fast(2500)
`)
	if err != nil {
		t.Fatal(err)
	}
	ax := prog.Axes[0]
	if len(ax.Values) != 8 || !ax.HasFast || len(ax.Fast) != 4 {
		t.Fatalf("axis k: %d full / %d fast values", len(ax.Values), len(ax.Fast))
	}
	set := prog.Sets[0]
	if set.FastExpr == nil {
		t.Fatal("SET fast(...) variant not recorded")
	}
	if set.FastExpr.Kind != ExprNum || set.FastExpr.Num != 2500 {
		t.Fatalf("SET fast expr: %+v", set.FastExpr)
	}
}

// TestByteUnits: byte-suffixed literals carry the multiplier and the
// unit flag.
func TestByteUnits(t *testing.T) {
	prog, err := Parse("t.airql", `SET switchcost=1KiB`)
	if err != nil {
		t.Fatal(err)
	}
	e := prog.Sets[0].Expr
	if e.Kind != ExprNum || e.Num != 1024 || !e.Bytes {
		t.Fatalf("1KiB parsed as %+v", e)
	}
}

// TestSelectorsAndQuotedTableIDs: metric selectors parse into Sel, and
// a quoted TABLE id admits characters outside the identifier set.
func TestSelectorsAndQuotedTableIDs(t *testing.T) {
	prog, err := Parse("t.airql", `
SWEEP k=1,2 switchcost=0,1024
SWEEP scheme=flat,sig
TABLE "multich-at" title("Access") x(k)
COL "flat sw0" mean(access){scheme=flat,switchcost=0}
`)
	if err != nil {
		t.Fatal(err)
	}
	tb := prog.Tables[0]
	if tb.ID != "multich-at" {
		t.Fatalf("table id %q", tb.ID)
	}
	sel := tb.Cols[0].Expr.Sel
	if len(sel) != 2 || sel[0].Key != "scheme" || sel[1].Key != "switchcost" {
		t.Fatalf("selector parsed wrong: %+v", sel)
	}
}

// TestComments: '#' comments are stage separators' friends — they never
// leak into tokens.
func TestComments(t *testing.T) {
	prog, err := Parse("t.airql", `
# a header comment
SWEEP records=1000,2000 # trailing comment
# another
SET scheme=flat
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Axes) != 1 || len(prog.Sets) != 1 {
		t.Fatalf("comments disturbed the parse: %+v", prog)
	}
}

// TestParseErrorsCarryPositions: syntax errors name file:line:col.
func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []string{
		`SWEEP =1,2`,
		`SWEEP k=1..`,
		`TABLE`,
		`COL "a"`,
		`EMIT csv(results/x.csv`,
		`SWEEP k=1,2 fast(`,
		`BOGUS k=1`,
		"SWEEP k=\"unterminated",
	}
	for _, src := range cases {
		_, err := Parse("t.airql", src)
		if err == nil {
			t.Errorf("no error for %q", src)
			continue
		}
		e, ok := err.(*Error)
		if !ok {
			t.Errorf("error for %q is %T, want *Error", src, err)
			continue
		}
		if e.File != "t.airql" || e.Pos.Line < 1 || e.Pos.Col < 1 {
			t.Errorf("error for %q lacks a position: %v", src, e)
		}
		if !strings.Contains(e.Error(), "t.airql:") {
			t.Errorf("formatted error %q does not lead with the file", e.Error())
		}
	}
}
