// Package airql implements the scenario DSL that regenerates every
// experiment family from scripts (scenarios/*.airql): a line-oriented
// pipeline language in the spirit of task runners like machbase-neo's
// tql, compiled in three phases.
//
//   - The lexer/parser (lexer.go, parser.go) turn a script into a
//     positioned AST. Stages are separated by newlines or '|', so
//     "SWEEP ... | RUN ... | EMIT csv(...)" and the stage-per-line form
//     are the same program.
//   - The validator (knobs.go, validate.go) type-checks every knob
//     against the real core.Config / Options surface: unknown keys,
//     unit mismatches, out-of-range values and scheme-incompatible
//     knobs are compile errors carrying file:line:col positions.
//   - The executor (exec.go, parallel.go) lowers a compiled program
//     onto the existing engines with the same deterministic
//     (seed, shards) contract and parallel round scheduling the
//     experiment harness always had: each point's core.Config is built
//     from the axis bindings, every run is seeded by its own config,
//     and the tables are a pure function of (script, profile, seed,
//     shards) regardless of scheduling.
//
// The grammar EBNF, the knob/type table, and the determinism contract
// for scripted runs are documented in DESIGN.md §11.
package airql

import "fmt"

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// Error is one compile diagnostic. Every error the compiler produces —
// lexer, parser or validator — carries a position; the fuzz target
// enforces exactly that.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Pos.Line, e.Pos.Col, e.Msg)
}

// ErrorList is the validator's collected diagnostics, in source order.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "airql: no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
	}
}

// TokenKind identifies a lexical token. It is a closed enum: the airlint
// exhaustive analyzer requires every switch over it to cover all
// constants or carry a default.
type TokenKind uint8

const (
	// TokenEOF ends the token stream.
	TokenEOF TokenKind = iota
	// TokenNewline separates stages (the line-oriented form).
	TokenNewline
	// TokenPipe ('|') separates stages (the one-line pipeline form).
	TokenPipe
	// TokenIdent is a bare word: stage keywords, knob and axis names
	// (dots allowed, so dist.r is one token), metric names.
	TokenIdent
	// TokenNumber is a numeric literal, with an optional byte-unit
	// suffix (B, KiB, MiB, GiB) recorded in Token.Bytes.
	TokenNumber
	// TokenString is a double-quoted string literal.
	TokenString
	// TokenAssign is '='.
	TokenAssign
	// TokenComma is ','.
	TokenComma
	// TokenLParen and TokenRParen are '(' and ')'.
	TokenLParen
	TokenRParen
	// TokenLBrace and TokenRBrace are '{' and '}' (metric selectors).
	TokenLBrace
	TokenRBrace
	// TokenRange is '..' (sweep ranges: lo..hi:step).
	TokenRange
	// TokenColon is ':' (the step separator of a range).
	TokenColon
	// TokenPlus, TokenMinus, TokenStar, TokenSlash are the arithmetic
	// operators of knob and column expressions.
	TokenPlus
	TokenMinus
	TokenStar
	TokenSlash
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "end of script"
	case TokenNewline:
		return "end of line"
	case TokenPipe:
		return "'|'"
	case TokenIdent:
		return "identifier"
	case TokenNumber:
		return "number"
	case TokenString:
		return "string"
	case TokenAssign:
		return "'='"
	case TokenComma:
		return "','"
	case TokenLParen:
		return "'('"
	case TokenRParen:
		return "')'"
	case TokenLBrace:
		return "'{'"
	case TokenRBrace:
		return "'}'"
	case TokenRange:
		return "'..'"
	case TokenColon:
		return "':'"
	case TokenPlus:
		return "'+'"
	case TokenMinus:
		return "'-'"
	case TokenStar:
		return "'*'"
	case TokenSlash:
		return "'/'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Pos  Pos
	// Text holds the identifier name or string content.
	Text string
	// Num holds the numeric value, with any byte-unit multiplier
	// already applied.
	Num float64
	// Bytes records that the number carried a byte-unit suffix; the
	// validator rejects byte quantities assigned to dimensionless knobs
	// (and that is the only way a unit enters a script).
	Bytes bool
}
