package airql

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser with one token of lookahead.
// Syntax errors stop the parse (fail-fast); semantic errors are
// collected later by Validate so -check can report several at once.
type parser struct {
	lx  *lexer
	cur Token
}

// Parse turns a script into a raw AST. Callers normally want Compile,
// which also validates.
func Parse(file, src string) (*Program, error) {
	p := &parser{lx: newLexer(file, src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	prog.File = file
	return prog, nil
}

// Compile parses and validates a script. The returned error, if any,
// is an *Error or an ErrorList; every diagnostic carries file:line:col.
func Compile(file, src string) (*Program, error) {
	prog, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	if errs := Validate(prog); len(errs) > 0 {
		return nil, errs
	}
	return prog, nil
}

func (p *parser) advance() *Error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

func (p *parser) errorf(pos Pos, format string, args ...any) *Error {
	return &Error{File: p.lx.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokenKind, context string) (Token, *Error) {
	if p.cur.Kind != kind {
		return Token{}, p.errorf(p.cur.Pos, "expected %s in %s, found %s", kind, context, p.cur.Kind)
	}
	tok := p.cur
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return tok, nil
}

func (p *parser) atStageEnd() bool {
	switch p.cur.Kind {
	case TokenNewline, TokenPipe, TokenEOF:
		return true
	case TokenIdent, TokenNumber, TokenString, TokenAssign, TokenComma,
		TokenLParen, TokenRParen, TokenLBrace, TokenRBrace, TokenRange,
		TokenColon, TokenPlus, TokenMinus, TokenStar, TokenSlash:
		return false
	default:
		return false
	}
}

func (p *parser) skipSeparators() *Error {
	for p.cur.Kind == TokenNewline || p.cur.Kind == TokenPipe {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseProgram() (*Program, *Error) {
	prog := &Program{}
	var curTable *TableDecl
	for {
		if err := p.skipSeparators(); err != nil {
			return nil, err
		}
		if p.cur.Kind == TokenEOF {
			return prog, nil
		}
		if p.cur.Kind != TokenIdent {
			return nil, p.errorf(p.cur.Pos, "expected a stage keyword (SWEEP, SET, RUN, TABLE, COL, NOTE, EMIT), found %s", p.cur.Kind)
		}
		kw := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch kw.Text {
		case "SWEEP":
			if err := p.parseSweep(prog); err != nil {
				return nil, err
			}
		case "SET":
			if err := p.parseSet(prog); err != nil {
				return nil, err
			}
		case "RUN":
			if err := p.parseRun(prog); err != nil {
				return nil, err
			}
		case "TABLE":
			t, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			prog.Tables = append(prog.Tables, t)
			curTable = t
		case "COL":
			col, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			if curTable == nil {
				return nil, p.errorf(kw.Pos, "COL before any TABLE stage")
			}
			curTable.Cols = append(curTable.Cols, *col)
		case "NOTE":
			note, err := p.parseNote()
			if err != nil {
				return nil, err
			}
			if curTable == nil {
				return nil, p.errorf(kw.Pos, "NOTE before any TABLE stage")
			}
			curTable.Notes = append(curTable.Notes, *note)
		case "EMIT":
			sinks, err := p.parseEmit()
			if err != nil {
				return nil, err
			}
			if curTable != nil {
				curTable.Sinks = append(curTable.Sinks, sinks...)
			} else {
				prog.LooseSinks = append(prog.LooseSinks, sinks...)
			}
		default:
			if up := strings.ToUpper(kw.Text); up != kw.Text {
				switch up {
				case "SWEEP", "SET", "RUN", "TABLE", "COL", "NOTE", "EMIT":
					return nil, p.errorf(kw.Pos, "unknown stage %q (stage keywords are uppercase: %s)", kw.Text, up)
				}
			}
			return nil, p.errorf(kw.Pos, "unknown stage %q (want SWEEP, SET, RUN, TABLE, COL, NOTE or EMIT)", kw.Text)
		}
		if !p.atStageEnd() {
			return nil, p.errorf(p.cur.Pos, "unexpected %s after %s stage (stages end at '|' or end of line)", p.cur.Kind, kw.Text)
		}
	}
}

// parseScalar parses a literal value: number (optionally negated or
// byte-suffixed), bare identifier or quoted string.
func (p *parser) parseScalar(context string) (Scalar, *Error) {
	pos := p.cur.Pos
	neg := false
	if p.cur.Kind == TokenMinus {
		neg = true
		if err := p.advance(); err != nil {
			return Scalar{}, err
		}
	}
	switch p.cur.Kind {
	case TokenNumber:
		s := Scalar{Pos: pos, Num: p.cur.Num, Bytes: p.cur.Bytes}
		if neg {
			s.Num = -s.Num
		}
		return s, p.advance()
	case TokenIdent, TokenString:
		if neg {
			return Scalar{}, p.errorf(pos, "'-' must be followed by a number in %s", context)
		}
		s := Scalar{Pos: pos, IsStr: true, Str: p.cur.Text}
		return s, p.advance()
	case TokenEOF, TokenNewline, TokenPipe, TokenAssign, TokenComma,
		TokenLParen, TokenRParen, TokenLBrace, TokenRBrace, TokenRange,
		TokenColon, TokenPlus, TokenStar, TokenSlash, TokenMinus:
		return Scalar{}, p.errorf(p.cur.Pos, "expected a value in %s, found %s", context, p.cur.Kind)
	default:
		return Scalar{}, p.errorf(p.cur.Pos, "expected a value in %s, found %s", context, p.cur.Kind)
	}
}

// parseValueList parses the right-hand side of a SWEEP axis: either a
// comma-separated list of scalars or a lo..hi:step range.
func (p *parser) parseValueList(axis string) ([]Scalar, *Error) {
	first, err := p.parseScalar("axis " + axis)
	if err != nil {
		return nil, err
	}
	if p.cur.Kind == TokenRange {
		return p.parseRange(axis, first)
	}
	vals := []Scalar{first}
	for p.cur.Kind == TokenComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.parseScalar("axis " + axis)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// parseRange expands lo..hi:step eagerly into a value list. Points are
// computed as lo + i*step (not by accumulation), so 0..0.10:0.02 yields
// the same floats as writing the list by hand would.
func (p *parser) parseRange(axis string, lo Scalar) ([]Scalar, *Error) {
	rangePos := p.cur.Pos
	if err := p.advance(); err != nil { // consume '..'
		return nil, err
	}
	if lo.IsStr {
		return nil, p.errorf(lo.Pos, "range bounds must be numbers in axis %s", axis)
	}
	hi, err := p.parseScalar("range of axis " + axis)
	if err != nil {
		return nil, err
	}
	if hi.IsStr {
		return nil, p.errorf(hi.Pos, "range bounds must be numbers in axis %s", axis)
	}
	if _, err := p.expect(TokenColon, "range of axis "+axis+" (ranges are lo..hi:step)"); err != nil {
		return nil, err
	}
	step, err := p.parseScalar("range step of axis " + axis)
	if err != nil {
		return nil, err
	}
	if step.IsStr || step.Num <= 0 {
		return nil, p.errorf(step.Pos, "range step must be a positive number in axis %s", axis)
	}
	if hi.Num < lo.Num {
		return nil, p.errorf(rangePos, "empty range %s..%s in axis %s", formatFloat(lo.Num), formatFloat(hi.Num), axis)
	}
	var vals []Scalar
	// The epsilon absorbs the representation error of hi itself (e.g.
	// 0.10 is not exactly representable), not accumulated drift: every
	// point is lo + i*step.
	limit := hi.Num + step.Num*1e-9
	for i := 0; ; i++ {
		v := lo.Num + float64(i)*step.Num
		if v > limit {
			break
		}
		vals = append(vals, Scalar{Pos: lo.Pos, Num: v})
		if len(vals) > 100000 {
			return nil, p.errorf(rangePos, "range in axis %s expands to more than 100000 points", axis)
		}
	}
	return vals, nil
}

func (p *parser) parseSweep(prog *Program) *Error {
	declared := false
	for p.cur.Kind == TokenIdent {
		name := p.cur
		if err := p.advance(); err != nil {
			return err
		}
		if name.Text == "fast" && p.cur.Kind == TokenLParen {
			if !declared || len(prog.Axes) == 0 {
				return p.errorf(name.Pos, "fast(...) must follow an axis declaration")
			}
			if err := p.advance(); err != nil { // consume '('
				return err
			}
			vals, err := p.parseValueList(prog.Axes[len(prog.Axes)-1].Name)
			if err != nil {
				return err
			}
			if _, err := p.expect(TokenRParen, "fast(...) alternate values"); err != nil {
				return err
			}
			ax := &prog.Axes[len(prog.Axes)-1]
			if ax.HasFast {
				return p.errorf(name.Pos, "duplicate fast(...) for axis %s", ax.Name)
			}
			ax.Fast = vals
			ax.HasFast = true
			continue
		}
		if _, err := p.expect(TokenAssign, "SWEEP axis "+name.Text); err != nil {
			return err
		}
		vals, err := p.parseValueList(name.Text)
		if err != nil {
			return err
		}
		prog.Axes = append(prog.Axes, AxisDecl{Name: name.Text, Pos: name.Pos, Values: vals})
		declared = true
	}
	if !declared {
		return p.errorf(p.cur.Pos, "SWEEP needs at least one axis (SWEEP name=v1,v2,... or name=lo..hi:step)")
	}
	return nil
}

func (p *parser) parseSet(prog *Program) *Error {
	declared := false
	for p.cur.Kind == TokenIdent {
		name := p.cur
		if err := p.advance(); err != nil {
			return err
		}
		if name.Text == "fast" && p.cur.Kind == TokenLParen {
			if !declared || len(prog.Sets) == 0 {
				return p.errorf(name.Pos, "fast(...) must follow a knob assignment")
			}
			if err := p.advance(); err != nil { // consume '('
				return err
			}
			expr, err := p.parseExpr()
			if err != nil {
				return err
			}
			if _, err := p.expect(TokenRParen, "fast(...) alternate expression"); err != nil {
				return err
			}
			set := &prog.Sets[len(prog.Sets)-1]
			if set.FastExpr != nil {
				return p.errorf(name.Pos, "duplicate fast(...) for knob %s", set.Knob)
			}
			set.FastExpr = expr
			continue
		}
		if _, err := p.expect(TokenAssign, "SET knob "+name.Text); err != nil {
			return err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return err
		}
		prog.Sets = append(prog.Sets, SetDecl{Knob: name.Text, Pos: name.Pos, Expr: expr})
		declared = true
	}
	if !declared {
		return p.errorf(p.cur.Pos, "SET needs at least one knob=expression binding")
	}
	return nil
}

func (p *parser) parseRun(prog *Program) *Error {
	declared := false
	for p.cur.Kind == TokenIdent {
		name := p.cur
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.expect(TokenAssign, "RUN option "+name.Text); err != nil {
			return err
		}
		val, err := p.parseScalar("RUN option " + name.Text)
		if err != nil {
			return err
		}
		prog.Runs = append(prog.Runs, RunDecl{Key: name.Text, Pos: name.Pos, Val: val})
		declared = true
	}
	if !declared {
		return p.errorf(p.cur.Pos, "RUN needs at least one option (seed=..., shards=..., engine=..., mode=...)")
	}
	return nil
}

func (p *parser) parseTable() (*TableDecl, *Error) {
	// IDs with characters outside the identifier set ("ablate-r") are
	// quoted; plain ones ("fig4a") need not be.
	if p.cur.Kind != TokenIdent && p.cur.Kind != TokenString {
		return nil, p.errorf(p.cur.Pos, "expected a table id in TABLE declaration (TABLE <id> title(...) x(...)), found %s", p.cur.Kind)
	}
	id := p.cur
	if err := p.advance(); err != nil {
		return nil, err
	}
	t := &TableDecl{ID: id.Text, Pos: id.Pos}
	seen := map[string]bool{}
	for p.cur.Kind == TokenIdent {
		key := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenLParen, "TABLE property "+key.Text); err != nil {
			return nil, err
		}
		if seen[key.Text] {
			return nil, p.errorf(key.Pos, "duplicate TABLE property %s", key.Text)
		}
		seen[key.Text] = true
		switch key.Text {
		case "title", "xlabel", "ylabel":
			s, err := p.expect(TokenString, "TABLE property "+key.Text)
			if err != nil {
				return nil, err
			}
			switch key.Text {
			case "title":
				t.Title = s.Text
			case "xlabel":
				t.XLabel = s.Text
			default:
				t.YLabel = s.Text
			}
		case "x":
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			t.XExpr = expr
		default:
			return nil, p.errorf(key.Pos, "unknown TABLE property %q (want title, x, xlabel or ylabel)", key.Text)
		}
		if _, err := p.expect(TokenRParen, "TABLE property "+key.Text); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (p *parser) parseCol() (*ColDecl, *Error) {
	label, err := p.expect(TokenString, "COL stage (COL \"label\" expression)")
	if err != nil {
		return nil, err
	}
	expr, perr := p.parseExpr()
	if perr != nil {
		return nil, perr
	}
	return &ColDecl{Label: label.Text, Pos: label.Pos, Expr: expr}, nil
}

func (p *parser) parseNote() (*NoteDecl, *Error) {
	s, err := p.expect(TokenString, "NOTE stage (NOTE \"text with {expr} interpolation\")")
	if err != nil {
		return nil, err
	}
	note := &NoteDecl{Pos: s.Pos}
	text := s.Text
	for len(text) > 0 {
		open := strings.IndexByte(text, '{')
		if open < 0 {
			note.Parts = append(note.Parts, NotePart{Text: text})
			break
		}
		if open > 0 {
			note.Parts = append(note.Parts, NotePart{Text: text[:open]})
		}
		closeIdx := strings.IndexByte(text[open:], '}')
		if closeIdx < 0 {
			return nil, p.errorf(s.Pos, "unclosed '{' in NOTE interpolation")
		}
		inner := text[open+1 : open+closeIdx]
		expr, perr := parseExprString(p.lx.file, inner, s.Pos)
		if perr != nil {
			return nil, perr
		}
		note.Parts = append(note.Parts, NotePart{Expr: expr})
		text = text[open+closeIdx+1:]
	}
	return note, nil
}

func (p *parser) parseEmit() ([]SinkDecl, *Error) {
	var sinks []SinkDecl
	for p.cur.Kind == TokenIdent {
		name := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.Kind != TokenLParen {
			return nil, p.errorf(p.cur.Pos, "expected '(' after sink %s (EMIT csv(path) summary(stdout))", name.Text)
		}
		// The argument is raw text up to ')': paths need no quoting.
		arg, err := p.lx.rawUntil(p.cur.Pos)
		if err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil { // lexes the ')'
			return nil, err
		}
		if _, err := p.expect(TokenRParen, "sink "+name.Text); err != nil {
			return nil, err
		}
		sinks = append(sinks, SinkDecl{Name: name.Text, Pos: name.Pos, Arg: arg})
	}
	if len(sinks) == 0 {
		return nil, p.errorf(p.cur.Pos, "EMIT needs at least one sink (csv(path), summary(stdout))")
	}
	return sinks, nil
}

// parseExprString compiles a standalone expression (NOTE interpolation).
// Errors are re-anchored at basePos: the interpolation lives inside a
// string literal, so inner offsets would mislead.
func parseExprString(file, src string, basePos Pos) (*Expr, *Error) {
	p := &parser{lx: newLexer(file, src)}
	if err := p.advance(); err != nil {
		err.Pos = basePos
		return nil, err
	}
	expr, perr := p.parseExpr()
	if perr != nil {
		perr.Pos = basePos
		return nil, perr
	}
	if p.cur.Kind != TokenEOF {
		return nil, &Error{File: file, Pos: basePos, Msg: fmt.Sprintf("unexpected %s in NOTE interpolation", p.cur.Kind)}
	}
	reanchor(expr, basePos)
	return expr, nil
}

func reanchor(e *Expr, pos Pos) {
	if e == nil {
		return
	}
	e.Pos = pos
	reanchor(e.X, pos)
	reanchor(e.Y, pos)
	for _, a := range e.Args {
		reanchor(a, pos)
	}
	for i := range e.Sel {
		e.Sel[i].Pos = pos
	}
}

// parseExpr parses additive expressions (lowest precedence).
func (p *parser) parseExpr() (*Expr, *Error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokenPlus || p.cur.Kind == TokenMinus {
		op := OpAdd
		if p.cur.Kind == TokenMinus {
			op = OpSub
		}
		pos := p.cur.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		x = &Expr{Kind: ExprOp, Pos: pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseTerm() (*Expr, *Error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokenStar || p.cur.Kind == TokenSlash {
		op := OpMul
		if p.cur.Kind == TokenSlash {
			op = OpDiv
		}
		pos := p.cur.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Expr{Kind: ExprOp, Pos: pos, Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (*Expr, *Error) {
	if p.cur.Kind == TokenMinus {
		pos := p.cur.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprOp, Pos: pos, Op: OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Expr, *Error) {
	switch p.cur.Kind {
	case TokenNumber:
		e := &Expr{Kind: ExprNum, Pos: p.cur.Pos, Num: p.cur.Num, Bytes: p.cur.Bytes}
		return e, p.advance()
	case TokenString:
		e := &Expr{Kind: ExprStr, Pos: p.cur.Pos, Str: p.cur.Text}
		return e, p.advance()
	case TokenLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen, "parenthesised expression"); err != nil {
			return nil, err
		}
		return x, nil
	case TokenIdent:
		name := p.cur
		if err := p.advance(); err != nil {
			return nil, err
		}
		e := &Expr{Kind: ExprVar, Pos: name.Pos, Name: name.Text}
		if p.cur.Kind == TokenLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e.Kind = ExprCall
			if p.cur.Kind != TokenRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					e.Args = append(e.Args, arg)
					if p.cur.Kind != TokenComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(TokenRParen, "call of "+name.Text); err != nil {
				return nil, err
			}
		}
		if p.cur.Kind == TokenLBrace {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e.Kind = ExprCall
			for {
				key, err := p.expect(TokenIdent, "selector of "+name.Text)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokenAssign, "selector of "+name.Text); err != nil {
					return nil, err
				}
				val, serr := p.parseScalar("selector of " + name.Text)
				if serr != nil {
					return nil, serr
				}
				e.Sel = append(e.Sel, SelItem{Key: key.Text, Pos: key.Pos, Val: val})
				if p.cur.Kind != TokenComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokenRBrace, "selector of "+name.Text); err != nil {
				return nil, err
			}
		}
		return e, nil
	case TokenEOF, TokenNewline, TokenPipe, TokenAssign, TokenComma,
		TokenRParen, TokenLBrace, TokenRBrace, TokenRange, TokenColon,
		TokenPlus, TokenMinus, TokenStar, TokenSlash:
		return nil, p.errorf(p.cur.Pos, "expected an expression, found %s", p.cur.Kind)
	default:
		return nil, p.errorf(p.cur.Pos, "expected an expression, found %s", p.cur.Kind)
	}
}
