package airql

import "testing"

// errStrings compiles a script and returns every diagnostic, formatted.
func errStrings(t *testing.T, src string) []string {
	t.Helper()
	_, err := Compile("t.airql", src)
	if err == nil {
		return nil
	}
	switch e := err.(type) {
	case ErrorList:
		out := make([]string, len(e))
		for i, d := range e {
			out[i] = d.Error()
		}
		return out
	case *Error:
		return []string{e.Error()}
	default:
		t.Fatalf("Compile returned a %T, want *Error or ErrorList", err)
		return nil
	}
}

// TestGoldenErrors pins the exact diagnostics for the validator's most
// common misuse cases: the error text is part of the tool's interface
// (scripts are written against these messages), so a wording change must
// show up in review.
func TestGoldenErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{"unknown knob", `
SET scheme=flat recordz=1000
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:2:17: unknown knob "recordz" (knobs: scheme, records, availability, requestmean, zipfs, biterror, dozeratio, data.recordbytes, data.keybytes, data.attrs, dist.r, onem.m, hashing.load, signature.sigbytes, signature.bits, signature.groupsize, hybrid.groupsize, fault.model, fault.rate, fault.retries, fault.recovery, multi.channels, multi.switchcost, multi.policy, multi.indexchannels, multi.skew)`,
		}},
		{"unknown scheme", `SWEEP scheme=flat,turbo`, []string{
			`t.airql:1:19: knob scheme: unknown value "turbo" (schemes: bdisk, dist, distributed, flat, hash, hashing, hybrid, onem, sig, sig_integrated, sig_multilevel, signature)`,
			`t.airql:1:1: script has no TABLE and no EMIT; it would compute nothing`,
		}},
		{"out of range", `SET scheme=flat availability=2`, []string{
			`t.airql:1:30: knob availability: value 2 above maximum 1`,
			`t.airql:1:1: script has no TABLE and no EMIT; it would compute nothing`,
		}},
		{"unit mismatch", `SET scheme=flat zipfs=1KiB`, []string{
			`t.airql:1:23: unit mismatch: knob zipfs is dimensionless but the value has a byte unit`,
			`t.airql:1:1: script has no TABLE and no EMIT; it would compute nothing`,
		}},
		{"scheme-incompatible knob", `SET scheme=flat dist.r=2`, []string{
			`t.airql:1:17: knob dist.r applies only to distributed, but the script also runs scheme "flat"`,
			`t.airql:1:1: script has no TABLE and no EMIT; it would compute nothing`,
		}},
		{"never sets the scheme", `
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:1:1: script never sets the scheme (SWEEP scheme=... or SET scheme=...)`,
		}},
		{"bad metric argument", `
SET scheme=flat
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(foo)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:5:9: mean takes access, tuning, probes or energy, not "foo"`,
		}},
		{"selector key not an axis", `
SET scheme=flat
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access){speed=1}
EMIT csv(results/t.csv)
`, []string{
			`t.airql:5:22: selector key "speed" is not an axis`,
		}},
		{"selector pins the x axis", `
SET scheme=flat
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access){records=1500}
EMIT csv(results/t.csv)
`, []string{
			`t.airql:5:22: selector pins records, which is the table's x axis`,
		}},
		{"sim metric in attrquery mode", `
RUN mode=attrquery
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:5:9: metric mean is a simulator metric; attrquery columns use attr(...)`,
		}},
		{"duplicate axis", `
SET scheme=flat
SWEEP records=1000,2000
SWEEP records=3000,4000
TABLE t x(records)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:4:7: duplicate axis records`,
			`t.airql:6:9: metric mean does not pin axis records (add {records=...} or make it the x axis)`,
		}},
		{"x references two axes", `
SET scheme=flat
SWEEP records=1000,2000
SWEEP zipfs=0,1.5
TABLE t x(records*zipfs)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:5:18: table t: the x expression must reference exactly one axis, found 2`,
			`t.airql:6:9: metric mean does not pin axis records (add {records=...} or make it the x axis)`,
			`t.airql:6:9: metric mean does not pin axis zipfs (add {zipfs=...} or make it the x axis)`,
		}},
		{"absolute csv path", `
SET scheme=flat
SWEEP records=1000,2000
TABLE t x(records)
COL "a" mean(access)
EMIT csv(/etc/passwd.csv)
`, []string{
			`t.airql:6:6: csv path "/etc/passwd.csv" must be relative (it is joined to the output root)`,
		}},
		{"string axis that is not a knob", `
SET scheme=flat
SWEEP speed=slow,fastest
TABLE t x(speed)
COL "a" mean(access)
EMIT csv(results/t.csv)
`, []string{
			`t.airql:3:7: axis speed holds names but is not a knob; string axes must be knobs (e.g. scheme)`,
			`t.airql:4:11: table t: the x expression must be numeric`,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := errStrings(t, tc.src)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\ngot:  %q\nwant: %q", len(got), len(tc.want), got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diagnostic %d:\ngot:  %s\nwant: %s", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestValidScriptsCompile: the validator accepts the constructs every
// scenario relies on — aliases, fast variants, ranges, arithmetic SETs,
// bare metrics, and metric selectors.
func TestValidScriptsCompile(t *testing.T) {
	for _, src := range []string{
		`SWEEP scheme=flat,dist k=1,2,4 fast(1,2) | SET records=2000 | EMIT csv(results/x.csv)`,
		`
SWEEP faultrate=0..0.10:0.02
SWEEP scheme=sig
TABLE t x(faultrate*100)
COL "restarts/req" restarts/requests
EMIT csv(results/t.csv) summary(stdout)
`,
		`
SET scheme=dist records=10000 fast(2500)
SWEEP dist.r=0,1,2,3
TABLE "ablate" title("r") x(dist.r)
COL "access (S)" mean(access)
COL "cycle" cycle_bytes
NOTE "workload: {records} records over {count(dist.r)} depths"
EMIT csv(results/a.csv)
`,
		`
SWEEP pct=0,50,100
SWEEP scheme=flat
SET availability=pct/100
TABLE t x(pct)
COL "flat" mean(access){scheme=flat}
EMIT csv(results/t.csv)
`,
	} {
		if _, err := Compile("t.airql", src); err != nil {
			t.Errorf("valid script rejected: %v\nscript:\n%s", err, src)
		}
	}
}
