package airql

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
)

// attrRow holds one records-axis point of the attribute-equality query
// harness; the attr(...) column metrics read it.
type attrRow struct {
	flatAccess, flatTuning float64
	sigAccess, sigTuning   float64
}

// runAttrQuery measures attribute-equality queries — the workload
// signature indexing was designed for and that key-based indexes cannot
// serve: the signature scheme filters with signature reads while flat
// broadcast must download record after record. It runs outside the
// Simulator (attribute workloads are not part of the paper's request
// model) with uniform random target records and arrivals, drawing from a
// single sim.NewRNG(seed) stream in a fixed order, so its numbers are
// bit-identical to the Go harness it replaced.
func (ex *executor) runAttrQuery() error {
	if len(ex.axes) != 1 || ex.axes[0].decl.Name != "records" {
		return &Error{File: ex.prog.File, Pos: Pos{Line: 1, Col: 1},
			Msg: "attrquery mode needs exactly one axis, records"}
	}
	name := scriptName(ex.prog.File)
	ex.attrs = make([]attrRow, len(ex.axes[0].vals))
	for ri, val := range ex.axes[0].vals {
		n := int(val.Num)
		cfg := ex.opt.BaseConfig("flat", n)
		ds, err := datagen.Generate(cfg.Data)
		if err != nil {
			return err
		}
		fb, err := core.BuildBroadcast(ds, cfg)
		if err != nil {
			return err
		}
		sigCfg := ex.opt.BaseConfig("signature", n)
		sb, err := core.BuildBroadcast(ds, sigCfg)
		if err != nil {
			return err
		}
		fq := fb.(access.AttrQuerier)
		sq := sb.(access.AttrQuerier)

		rng := sim.NewRNG(cfg.Seed)
		queries := cfg.MinRequests
		var fAcc, fTun, sAcc, sTun float64
		for q := 0; q < queries; q++ {
			rec := rng.Intn(ds.Len())
			value := ds.Record(rec).Attrs[1]
			fa := sim.Time(rng.Int63n(int64(fb.Channel().CycleLen())))
			fres, err := access.Walk(fb.Channel(), fq.NewAttrClient(1, value), fa, 0)
			if err != nil {
				return err
			}
			sa := sim.Time(rng.Int63n(int64(sb.Channel().CycleLen())))
			sres, err := access.Walk(sb.Channel(), sq.NewAttrClient(1, value), sa, 0)
			if err != nil {
				return err
			}
			if !fres.Found || !sres.Found {
				return fmt.Errorf("%s: stored attribute value not found", name)
			}
			fAcc += float64(fres.Access)
			fTun += float64(fres.Tuning)
			sAcc += float64(sres.Access)
			sTun += float64(sres.Tuning)
		}
		div := float64(queries)
		ex.attrs[ri] = attrRow{
			flatAccess: fAcc / div, flatTuning: fTun / div,
			sigAccess: sAcc / div, sigTuning: sTun / div,
		}
		ex.opt.progress("%s records=%d flatT=%.0f sigT=%.0f", name, n, fTun/div, sTun/div)
	}
	return nil
}
