package airql

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is one figure or table: an x column plus one value column per
// series. It used to live in internal/experiments; the EMIT sink layer
// is its single home now, and experiments re-exports it as an alias.
type Table struct {
	// ID names the paper artifact, e.g. "fig4a".
	ID string
	// Title is a human-readable description.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Columns are the series names in display order.
	Columns []string
	// Rows hold the sweep points.
	Rows []Row
	// Notes carry free-form context (scheme parameters, workload).
	Notes []string
}

// Row is one sweep point; Cells align with Table.Columns and NaN marks a
// series without a value at this x (e.g. no analytical model).
type Row struct {
	X     float64
	Cells []float64
}

// AddRow appends a row, checking its arity.
func (t *Table) AddRow(x float64, cells ...float64) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("airql: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, Row{X: x, Cells: cells})
}

// Note appends a context line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// cell formats one value for text output.
func cell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	header := append([]string{t.XLabel}, t.Columns...)
	rows := make([][]string, 0, len(t.Rows)+1)
	rows = append(rows, header)
	for _, r := range t.Rows {
		line := make([]string, 0, len(header))
		line = append(line, cell(r.X))
		for _, c := range r.Cells {
			line = append(line, cell(c))
		}
		rows = append(rows, line)
	}
	widths := make([]int, len(header))
	for _, line := range rows {
		for i, s := range line {
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s (%s)\n", t.ID, t.Title, t.YLabel); err != nil {
		return err
	}
	for ri, line := range rows {
		var b strings.Builder
		for i, s := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(s)))
			b.WriteString(s)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
				return err
			}
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV with the x column first.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{t.XLabel}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		line := make([]string, 0, len(t.Columns)+1)
		line = append(line, strconv.FormatFloat(r.X, 'g', -1, 64))
		for _, c := range r.Cells {
			if math.IsNaN(c) {
				line = append(line, "")
			} else {
				line = append(line, strconv.FormatFloat(c, 'g', -1, 64))
			}
		}
		if err := cw.Write(line); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Column returns the values of a named series, aligned with Rows.
func (t *Table) Column(name string) ([]float64, bool) {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for j, r := range t.Rows {
				out[j] = r.Cells[i]
			}
			return out, true
		}
	}
	return nil, false
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table, for
// pasting experiment output into documentation.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "**%s — %s** (%s)\n\n", t.ID, t.Title, t.YLabel); err != nil {
		return err
	}
	header := append([]string{t.XLabel}, t.Columns...)
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, 0, len(header))
		cells = append(cells, cell(r.X))
		for _, c := range r.Cells {
			cells = append(cells, cell(c))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
