package airql

import (
	"github.com/airindex/airindex/internal/analytical"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Analytic returns the paper's model predictions in bytes for a finished
// run, or NaNs when the paper gives no closed form for the setting. The
// analytic(access) / analytic(tuning) column metrics evaluate through it,
// and internal/experiments re-exports it for the agreement tests.
func Analytic(cfg core.Config, res *core.Result) (accessBytes, tuningBytes float64) {
	if cfg.Multi.Enabled() {
		return analyticMulti(cfg, res)
	}
	nan := func() (float64, float64) { return nanF, nanF }
	p := res.Params
	switch cfg.Scheme {
	case flat.Name:
		bucket := float64(wire.HeaderSize + units.Bytes(cfg.Data.RecordSize))
		return analytical.FlatAccess(cfg.Data.NumRecords) * bucket,
			analytical.FlatTuning(cfg.Data.NumRecords) * bucket
	case dist.Name:
		tp := analytical.TreeParams{
			Fanout:     int(p["fanout"]),
			Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
			Replicated: int(p["r"]),
			Records:    cfg.Data.NumRecords,
		}
		return analytical.DistAccess(tp) * p["bucket_size"],
			analytical.DistTuning(tp) * p["bucket_size"]
	case onem.Name:
		tp := analytical.TreeParams{
			Fanout:  int(p["fanout"]),
			Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
			Records: cfg.Data.NumRecords,
		}
		return analytical.OneMAccess(tp, int(p["m"])) * p["bucket_size"],
			analytical.OneMTuning(tp) * p["bucket_size"]
	case hashing.Name:
		hp := analytical.HashParams{
			Allocated: p["Na"],
			Colliding: p["Nc"],
			Records:   float64(cfg.Data.NumRecords),
		}
		// Cycle buckets = Na + Nc (every record plus one filler per empty
		// position), all uniform size.
		bucket := float64(res.CycleBytes) / (p["Na"] + p["Nc"])
		return analytical.HashingAccess(hp) * bucket,
			analytical.HashingTuning(hp) * bucket
	case signature.Name:
		dataBytes := float64(wire.HeaderSize + units.Bytes(cfg.Data.RecordSize))
		sigBytes := float64(wire.HeaderSize + units.Bytes(cfg.Signature.SigBytes))
		fields := cfg.Data.NumAttributes + 1
		fd := analytical.SignatureExpectedFalseDrops(cfg.Data.NumRecords,
			cfg.Signature.SigBytes, cfg.Signature.BitsPerField, fields)
		return analytical.SignatureAccess(cfg.Data.NumRecords, dataBytes, sigBytes),
			analytical.SignatureTuning(cfg.Data.NumRecords, dataBytes, sigBytes, fd)
	default:
		// Extension schemes (bdisk, hybrid, the signature variants) have
		// no closed form in the paper; the registry accepts any name, so
		// an unlisted scheme is expected here, not a bug.
		return nan()
	}
}

var nanF = func() float64 {
	var z float64
	return z / z // quiet NaN without importing math here
}()

// analyticMulti returns the K-channel model predictions in bytes for a
// finished multichannel run, or NaNs where no closed form applies (the
// skewed policy, and nonzero switch costs — the models assume a free
// retune; the walker's cost gating keeps the simulated curves between the
// free-switch and single-channel predictions).
func analyticMulti(cfg core.Config, res *core.Result) (accessBytes, tuningBytes float64) {
	nan := func() (float64, float64) { return nanF, nanF }
	if cfg.Multi.SwitchCost > 0 {
		return nan()
	}
	// Tuning (and the serial schemes' access) follow the single-channel
	// forms under every allocation.
	single := cfg
	single.Multi = multichannel.Config{}
	at1, tt1 := Analytic(single, res)

	p := res.Params
	k := cfg.Multi.Channels
	switch cfg.Multi.Policy {
	case multichannel.PolicyReplicated:
		switch cfg.Scheme {
		case flat.Name, signature.Name:
			// Serial scans never doze; replication gains them nothing.
			return at1, tt1
		case onem.Name:
			tp := analytical.TreeParams{
				Fanout:  int(p["fanout"]),
				Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Records: cfg.Data.NumRecords,
			}
			return analytical.OneMAccessK(tp, int(p["m"]), k) * p["bucket_size"], tt1
		case dist.Name:
			tp := analytical.TreeParams{
				Fanout:     int(p["fanout"]),
				Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Replicated: int(p["r"]),
				Records:    cfg.Data.NumRecords,
			}
			return analytical.DistAccessK(tp, int(p["segments"]), k) * p["bucket_size"], tt1
		case hashing.Name:
			hp := analytical.HashParams{
				Allocated: p["Na"],
				Colliding: p["Nc"],
				Records:   float64(cfg.Data.NumRecords),
			}
			bucket := float64(res.CycleBytes) / (p["Na"] + p["Nc"])
			return analytical.HashingAccessK(hp, k) * bucket, tt1
		default:
			return nan()
		}
	case multichannel.PolicyIndexData:
		ic := cfg.Multi.IndexChannels
		if ic == 0 {
			ic = 1
		}
		switch cfg.Scheme {
		case onem.Name:
			tp := analytical.TreeParams{
				Fanout:  int(p["fanout"]),
				Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Records: cfg.Data.NumRecords,
			}
			return analytical.OneMIndexDataAccess(tp, k-ic) * p["bucket_size"], tt1
		case dist.Name:
			tp := analytical.TreeParams{
				Fanout:     int(p["fanout"]),
				Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Replicated: int(p["r"]),
				Records:    cfg.Data.NumRecords,
			}
			return analytical.DistIndexDataAccess(tp, int(p["segments"]), k-ic) * p["bucket_size"], tt1
		default:
			return nan()
		}
	default:
		return nan()
	}
}
