package airql

// StageKind identifies a pipeline stage. Closed enum: the airlint
// exhaustive analyzer polices every switch over it.
type StageKind uint8

const (
	// StageSweep declares experiment axes (SWEEP name=values ...).
	StageSweep StageKind = iota
	// StageSet assigns a knob per point (SET knob=expr ...).
	StageSet
	// StageRun configures the session (RUN seed=.. shards=.. engine=.. mode=..).
	StageRun
	// StageTable opens a table declaration (TABLE id title(..) x(..) ...).
	StageTable
	// StageCol adds a column to the current table (COL "label" expr).
	StageCol
	// StageNote attaches a note to the current table (NOTE "text {expr}").
	StageNote
	// StageEmit binds output sinks (EMIT csv(path) summary(stdout)).
	StageEmit
)

// String names the stage keyword.
func (k StageKind) String() string {
	switch k {
	case StageSweep:
		return "SWEEP"
	case StageSet:
		return "SET"
	case StageRun:
		return "RUN"
	case StageTable:
		return "TABLE"
	case StageCol:
		return "COL"
	case StageNote:
		return "NOTE"
	case StageEmit:
		return "EMIT"
	default:
		return "stage(?)"
	}
}

// OpKind identifies an arithmetic operator in an expression. Closed
// enum under the exhaustive analyzer.
type OpKind uint8

const (
	// OpAdd, OpSub, OpMul, OpDiv are the binary operators.
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpDiv
	// OpNeg is unary minus.
	OpNeg
)

// String names the operator.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpNeg:
		return "-"
	default:
		return "op(?)"
	}
}

// ExprKind discriminates Expr nodes. Closed enum under the exhaustive
// analyzer, which is exactly why the AST uses a tagged struct instead
// of an interface: adding a node kind without updating every evaluator
// switch becomes a lint error.
type ExprKind uint8

const (
	// ExprNum is a numeric literal (possibly byte-suffixed).
	ExprNum ExprKind = iota
	// ExprStr is a string literal.
	ExprStr
	// ExprVar is a bare identifier: an axis reference or a
	// zero-argument metric (requests, cycle_bytes, ...).
	ExprVar
	// ExprCall is name(args){selector}: functions (min, max, trunc),
	// metrics (mean(access), analytic(tuning), param(fanout), attr(x))
	// and any bare identifier carrying a {..} selector.
	ExprCall
	// ExprOp is an arithmetic node.
	ExprOp
)

// Expr is an expression node. Kind selects which fields are meaningful.
type Expr struct {
	Kind ExprKind
	Pos  Pos

	// ExprNum
	Num   float64
	Bytes bool

	// ExprStr
	Str string

	// ExprVar and ExprCall
	Name string
	// ExprCall only
	Args []*Expr
	Sel  []SelItem

	// ExprOp
	Op   OpKind
	X, Y *Expr // Y is nil for OpNeg
}

// SelItem pins one axis inside a metric selector, e.g. {scheme=flat}.
type SelItem struct {
	Key string
	Pos Pos
	Val Scalar
}

// Scalar is a literal value: a number (possibly a byte quantity) or a
// bare/quoted string. Axis values, RUN values and selector values are
// scalars.
type Scalar struct {
	Pos   Pos
	IsStr bool
	Str   string
	Num   float64
	Bytes bool
}

// String renders the scalar the way a script would spell it.
func (s Scalar) String() string {
	if s.IsStr {
		return s.Str
	}
	return formatFloat(s.Num)
}

// AxisDecl is one SWEEP axis. Values holds the full-profile points in
// declaration order; Fast, when present, replaces them under the fast
// profile (mirroring the fast/paper value pairs the Go experiment
// functions used to hard-code).
type AxisDecl struct {
	Name    string
	Pos     Pos
	Values  []Scalar
	Fast    []Scalar
	HasFast bool
}

// SetDecl is one SET binding. The expression is evaluated per point
// over the axis environment; FastExpr, when present, replaces it under
// the fast profile.
type SetDecl struct {
	Knob     string
	Pos      Pos
	Expr     *Expr
	FastExpr *Expr
}

// RunDecl is one RUN key=value pair.
type RunDecl struct {
	Key string
	Pos Pos
	Val Scalar
}

// TableDecl declares one output table.
type TableDecl struct {
	ID     string
	Pos    Pos
	Title  string
	XExpr  *Expr
	XLabel string
	YLabel string

	// Filled by subsequent COL/NOTE/EMIT stages.
	Cols  []ColDecl
	Notes []NoteDecl
	Sinks []SinkDecl
}

// ColDecl is one COL stage: a labelled column expression.
type ColDecl struct {
	Label string
	Pos   Pos
	Expr  *Expr
}

// NoteDecl is one NOTE stage. The string is split into literal text and
// interpolated {expr} parts at parse time.
type NoteDecl struct {
	Pos   Pos
	Parts []NotePart
}

// NotePart is either literal text (Expr nil) or an interpolation.
type NotePart struct {
	Text string
	Expr *Expr
}

// SinkDecl is one EMIT sink: csv(path) or summary(stdout).
type SinkDecl struct {
	Name string
	Pos  Pos
	Arg  string
}

// Program is a compiled script: the parsed, validated AST plus the
// derived execution plan pieces the validator resolves (axis order,
// knob bindings, run mode).
type Program struct {
	File   string
	Axes   []AxisDecl
	Sets   []SetDecl
	Runs   []RunDecl
	Tables []*TableDecl

	// Sinks declared before any TABLE (legal only when the script
	// declares no tables at all: they bind to the implicit table).
	LooseSinks []SinkDecl
}
