package airql

import (
	"fmt"
	"math"
	"strings"
)

// Run modes accepted by RUN mode=...
const (
	// ModeSim runs every point through the simulator (the default).
	ModeSim = "sim"
	// ModeAttrQuery runs the attribute-equality query harness instead:
	// flat scan vs signature filtering over the same dataset, outside
	// the simulator's request model (the ext-multiattr family).
	ModeAttrQuery = "attrquery"
)

// Metric vocabulary. These names are reserved: axes cannot shadow them.
var (
	// bareMetrics are zero-argument per-point metrics.
	bareMetrics = []string{"requests", "restarts", "wasted", "cycle_bytes", "switches", "unrecovered"}
	// callMetrics take one identifier argument.
	callMetrics = []string{"mean", "p95", "p99", "analytic", "param", "attr"}
	// exprFuncs are plain arithmetic helpers.
	exprFuncs = []string{"min", "max", "trunc", "count"}
	// attrMetricNames is attr(...)'s vocabulary, matching the attrquery
	// harness's four accumulators.
	attrMetricNames = []string{"flat_access", "flat_tuning", "sig_access", "sig_tuning"}
)

func inList(name string, list []string) bool {
	for _, s := range list {
		if s == name {
			return true
		}
	}
	return false
}

func reservedName(name string) bool {
	return name == "fast" || inList(name, bareMetrics) || inList(name, callMetrics) || inList(name, exprFuncs)
}

// validator accumulates semantic diagnostics over a parsed program.
type validator struct {
	prog *Program
	errs ErrorList

	// axisNames in declaration order; axisOf resolves a name.
	axisNames []string

	// possibleSchemes is every canonical scheme a point can take.
	possibleSchemes []string

	// constKnobs are SET knobs whose expressions are constant, per
	// profile (NOTE interpolation vocabulary). Index 0 = full, 1 = fast.
	constKnobs [2]map[string]float64

	mode string
}

func (v *validator) errorf(pos Pos, format string, args ...any) {
	v.errs = append(v.errs, &Error{File: v.prog.File, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Validate type-checks a parsed program against the real configuration
// surface. It returns every diagnostic it can find, in source order.
func Validate(prog *Program) ErrorList {
	v := &validator{prog: prog, mode: ModeSim}
	v.constKnobs[0] = map[string]float64{}
	v.constKnobs[1] = map[string]float64{}
	v.checkRuns()
	v.checkAxes()
	v.checkSets()
	v.checkSchemeAndRecords()
	v.checkTables()
	return v.errs
}

func (v *validator) axisOf(name string) *AxisDecl {
	for i := range v.prog.Axes {
		if v.prog.Axes[i].Name == name {
			return &v.prog.Axes[i]
		}
	}
	return nil
}

// axisValues returns an axis's value list under a profile.
func axisValues(ax *AxisDecl, fast bool) []Scalar {
	if fast && ax.HasFast {
		return ax.Fast
	}
	return ax.Values
}

// axisIsString reports whether an axis holds string values (under the
// full profile; checkAxes rejects profiles of differing kinds).
func axisIsString(ax *AxisDecl) bool {
	return len(ax.Values) > 0 && ax.Values[0].IsStr
}

func (v *validator) checkRuns() {
	seen := map[string]bool{}
	for _, r := range v.prog.Runs {
		if seen[r.Key] {
			v.errorf(r.Pos, "duplicate RUN option %s", r.Key)
			continue
		}
		seen[r.Key] = true
		switch r.Key {
		case "seed":
			if r.Val.IsStr || r.Val.Num != math.Trunc(r.Val.Num) {
				v.errorf(r.Val.Pos, "RUN seed takes an integer")
			}
		case "shards":
			if r.Val.IsStr || r.Val.Num != math.Trunc(r.Val.Num) || r.Val.Num < 0 {
				v.errorf(r.Val.Pos, "RUN shards takes a non-negative integer")
			}
		case "engine":
			if !r.Val.IsStr || (r.Val.Str != "events" && r.Val.Str != "cohort") {
				v.errorf(r.Val.Pos, "RUN engine must be events or cohort, not %s", r.Val)
			}
		case "mode":
			if !r.Val.IsStr || (r.Val.Str != ModeSim && r.Val.Str != ModeAttrQuery) {
				v.errorf(r.Val.Pos, "RUN mode must be %s or %s, not %s", ModeSim, ModeAttrQuery, r.Val)
			} else {
				v.mode = r.Val.Str
			}
		default:
			v.errorf(r.Pos, "unknown RUN option %q (want seed, shards, engine or mode)", r.Key)
		}
	}
}

func (v *validator) checkAxes() {
	for i := range v.prog.Axes {
		ax := &v.prog.Axes[i]
		if v.axisOf(ax.Name) != ax {
			v.errorf(ax.Pos, "duplicate axis %s", ax.Name)
			continue
		}
		if reservedName(ax.Name) {
			v.errorf(ax.Pos, "axis name %q is reserved (metric and function names cannot be axes)", ax.Name)
			continue
		}
		v.axisNames = append(v.axisNames, ax.Name)

		kn := lookupKnob(ax.Name)
		profiles := []bool{false}
		if ax.HasFast {
			profiles = append(profiles, true)
		}
		for _, fastProfile := range profiles {
			vals := axisValues(ax, fastProfile)
			if len(vals) == 0 {
				continue
			}
			isStr := vals[0].IsStr
			for _, val := range vals {
				if val.IsStr != isStr {
					v.errorf(val.Pos, "axis %s mixes names and numbers", ax.Name)
				}
				if kn != nil {
					if msg := checkKnobScalar(kn, val); msg != "" {
						v.errorf(val.Pos, "%s", msg)
					}
				}
			}
			if isStr != axisIsString(ax) {
				v.errorf(ax.Pos, "axis %s: fast(...) values must match the full profile's kind (names vs numbers)", ax.Name)
			}
		}
		if kn == nil && axisIsString(ax) {
			v.errorf(ax.Pos, "axis %s holds names but is not a knob; string axes must be knobs (e.g. scheme)", ax.Name)
		}
	}
}

// possibleSchemeStrings collects every scheme spelling a point can take
// (axis values or SET literal), canonicalised.
func (v *validator) checkSchemeAndRecords() {
	if v.mode == ModeAttrQuery {
		// The attrquery harness hard-codes its flat-vs-signature pair.
		if ax := v.axisOf("scheme"); ax != nil {
			v.errorf(ax.Pos, "attrquery mode runs flat and signature; the scheme cannot be swept")
		}
		if len(v.prog.Axes) != 1 || v.prog.Axes[0].Name != "records" {
			pos := Pos{Line: 1, Col: 1}
			if len(v.prog.Axes) > 0 {
				pos = v.prog.Axes[0].Pos
			}
			v.errorf(pos, "attrquery mode needs exactly one axis, records")
		}
		if len(v.prog.Sets) > 0 {
			v.errorf(v.prog.Sets[0].Pos, "attrquery mode takes no SET stages")
		}
		return
	}

	if ax := v.axisOf("scheme"); ax != nil {
		for _, val := range ax.Values {
			if c, ok := canonScheme(val.Str); ok && val.IsStr {
				if !inList(c, v.possibleSchemes) {
					v.possibleSchemes = append(v.possibleSchemes, c)
				}
			}
		}
		for _, val := range ax.Fast {
			if c, ok := canonScheme(val.Str); ok && val.IsStr {
				if !inList(c, v.possibleSchemes) {
					v.possibleSchemes = append(v.possibleSchemes, c)
				}
			}
		}
	}
	hasScheme := v.axisOf("scheme") != nil
	for _, set := range v.prog.Sets {
		kn := lookupKnob(set.Knob)
		if kn == nil || kn.name != "scheme" {
			continue
		}
		hasScheme = true
		for _, e := range []*Expr{set.Expr, set.FastExpr} {
			if e == nil {
				continue
			}
			if s, ok := schemeLiteral(e); ok {
				if c, ok := canonScheme(s); ok && !inList(c, v.possibleSchemes) {
					v.possibleSchemes = append(v.possibleSchemes, c)
				}
			}
		}
	}
	if !hasScheme {
		v.errorf(Pos{Line: 1, Col: 1}, "script never sets the scheme (SWEEP scheme=... or SET scheme=...)")
	}

	// Scheme-incompatible knobs: every scheme the script can run must
	// accept every restricted knob it sets.
	checkCompat := func(kn *knob, pos Pos) {
		if kn == nil || kn.schemes == nil {
			return
		}
		for _, s := range v.possibleSchemes {
			if !kn.compatibleWith(s) {
				v.errorf(pos, "knob %s applies only to %s, but the script also runs scheme %q",
					kn.name, strings.Join(kn.schemes, "/"), s)
			}
		}
	}
	for i := range v.prog.Axes {
		checkCompat(lookupKnob(v.prog.Axes[i].Name), v.prog.Axes[i].Pos)
	}
	for i := range v.prog.Sets {
		checkCompat(lookupKnob(v.prog.Sets[i].Knob), v.prog.Sets[i].Pos)
	}
}

// schemeLiteral extracts the scheme spelling of a SET scheme expression:
// a quoted string or a bare identifier that is not an axis.
func schemeLiteral(e *Expr) (string, bool) {
	switch e.Kind {
	case ExprStr:
		return e.Str, true
	case ExprVar:
		return e.Name, true
	case ExprNum, ExprCall, ExprOp:
		return "", false
	default:
		return "", false
	}
}

func (v *validator) checkSets() {
	for i := range v.prog.Sets {
		set := &v.prog.Sets[i]
		kn := lookupKnob(set.Knob)
		if kn == nil {
			if v.axisOf(set.Knob) != nil {
				v.errorf(set.Pos, "%s is an axis; axes are swept by SWEEP, not assigned by SET", set.Knob)
			} else {
				v.errorf(set.Pos, "unknown knob %q (knobs: %s)", set.Knob, strings.Join(KnobNames(), ", "))
			}
			continue
		}
		for fi, e := range []*Expr{set.Expr, set.FastExpr} {
			if e == nil {
				continue
			}
			if kn.isString {
				v.checkStringKnobExpr(kn, e)
				continue
			}
			info := v.checkExpr(e, exprScope{allowAxes: true, knob: kn})
			if info.constant && !info.isStr {
				// checkExpr already reported any unit mismatch on the
				// literal itself, so the folded value is unit-clean here.
				val := Scalar{Pos: e.Pos, Num: info.num}
				if msg := checkKnobScalar(kn, val); msg != "" {
					v.errorf(e.Pos, "%s", msg)
				}
				v.constKnobs[fi][kn.name] = info.num
				if fi == 0 && set.FastExpr == nil {
					v.constKnobs[1][kn.name] = info.num
				}
			}
		}
	}
}

// checkStringKnobExpr validates a vocabulary knob's value: a quoted
// string, a bare name, or a reference to a string axis.
func (v *validator) checkStringKnobExpr(kn *knob, e *Expr) {
	switch e.Kind {
	case ExprStr:
		if _, ok := kn.vocab(e.Str); !ok {
			v.errorf(e.Pos, "knob %s: unknown value %q (%s)", kn.name, e.Str, kn.vocabDoc)
		}
	case ExprVar:
		if ax := v.axisOf(e.Name); ax != nil {
			if !axisIsString(ax) {
				v.errorf(e.Pos, "knob %s takes a name but axis %s holds numbers", kn.name, e.Name)
			}
			return
		}
		if _, ok := kn.vocab(e.Name); !ok {
			v.errorf(e.Pos, "knob %s: unknown value %q (%s)", kn.name, e.Name, kn.vocabDoc)
		}
	case ExprNum, ExprCall, ExprOp:
		v.errorf(e.Pos, "knob %s takes a name (%s), not an expression", kn.name, kn.vocabDoc)
	default:
		v.errorf(e.Pos, "knob %s takes a name (%s), not an expression", kn.name, kn.vocabDoc)
	}
}

// exprScope says what an expression may reference where it appears.
type exprScope struct {
	allowAxes    bool
	allowMetrics bool
	noteMode     bool
	knob         *knob // SET target, for unit errors
	table        *TableDecl
}

// exprInfo is the static shape of a checked expression.
type exprInfo struct {
	isStr    bool
	constant bool
	num      float64
	hasBytes bool
	// axisRefs lists axes referenced outside selectors, in first-use
	// order (the x-expression check needs exactly one).
	axisRefs []string
}

func mergeRefs(a, b []string) []string {
	for _, r := range b {
		if !inList(r, a) {
			a = append(a, r)
		}
	}
	return a
}

// checkExpr walks an expression, collecting diagnostics; it returns what
// it could determine statically.
func (v *validator) checkExpr(e *Expr, sc exprScope) exprInfo {
	switch e.Kind {
	case ExprNum:
		if e.Bytes && sc.knob != nil && !sc.knob.isBytes {
			v.errorf(e.Pos, "unit mismatch: knob %s is dimensionless but the value has a byte unit", sc.knob.name)
		}
		if e.Bytes && sc.knob == nil {
			v.errorf(e.Pos, "byte units only apply to byte-quantity knobs, not to %s", describeScope(sc))
		}
		return exprInfo{constant: true, num: e.Num, hasBytes: e.Bytes}
	case ExprStr:
		v.errorf(e.Pos, "a string cannot appear in %s", describeScope(sc))
		return exprInfo{isStr: true}
	case ExprVar:
		return v.checkVar(e, sc)
	case ExprCall:
		return v.checkCall(e, sc)
	case ExprOp:
		xi := v.checkExpr(e.X, sc)
		info := exprInfo{axisRefs: xi.axisRefs, hasBytes: xi.hasBytes}
		var yi exprInfo
		if e.Y != nil {
			yi = v.checkExpr(e.Y, sc)
			info.axisRefs = mergeRefs(info.axisRefs, yi.axisRefs)
			info.hasBytes = info.hasBytes || yi.hasBytes
		}
		if xi.isStr || yi.isStr {
			v.errorf(e.Pos, "arithmetic over names is not defined")
			return info
		}
		if xi.constant && (e.Y == nil || yi.constant) {
			info.constant = true
			switch e.Op {
			case OpAdd:
				info.num = xi.num + yi.num
			case OpSub:
				info.num = xi.num - yi.num
			case OpMul:
				info.num = xi.num * yi.num
			case OpDiv:
				info.num = xi.num / yi.num
			case OpNeg:
				info.num = -xi.num
			default:
				info.constant = false
			}
		}
		return info
	default:
		return exprInfo{}
	}
}

func describeScope(sc exprScope) string {
	switch {
	case sc.noteMode:
		return "a NOTE interpolation"
	case sc.table != nil:
		return "a table expression"
	case sc.knob != nil:
		return "the expression for knob " + sc.knob.name
	default:
		return "this expression"
	}
}

func (v *validator) checkVar(e *Expr, sc exprScope) exprInfo {
	if inList(e.Name, bareMetrics) {
		if !sc.allowMetrics {
			v.errorf(e.Pos, "metric %s can only appear in COL expressions", e.Name)
			return exprInfo{}
		}
		if v.mode == ModeAttrQuery {
			v.errorf(e.Pos, "metric %s is a simulator metric; attrquery columns use attr(...)", e.Name)
		}
		return exprInfo{}
	}
	if ax := v.axisOf(e.Name); ax != nil {
		if sc.noteMode {
			if len(axisValues(ax, false)) > 1 || len(axisValues(ax, true)) > 1 {
				v.errorf(e.Pos, "NOTE interpolation must be constant per profile; axis %s takes several values (use count(%s) for its length)", e.Name, e.Name)
				return exprInfo{}
			}
			return exprInfo{axisRefs: []string{e.Name}, isStr: axisIsString(ax)}
		}
		if !sc.allowAxes {
			v.errorf(e.Pos, "axis %s cannot be referenced in %s", e.Name, describeScope(sc))
			return exprInfo{}
		}
		return exprInfo{axisRefs: []string{e.Name}, isStr: axisIsString(ax)}
	}
	if sc.noteMode {
		for fi := range v.constKnobs {
			if val, ok := v.constKnobs[fi][knobNameFor(e.Name)]; ok {
				return exprInfo{constant: fi == 0, num: val}
			}
		}
		v.errorf(e.Pos, "unknown name %q in NOTE interpolation (constant knobs, single-valued axes and count(axis) are allowed)", e.Name)
		return exprInfo{}
	}
	v.errorf(e.Pos, "unknown name %q (not an axis%s)", e.Name, map[bool]string{true: " or metric", false: ""}[sc.allowMetrics])
	return exprInfo{}
}

// knobNameFor resolves aliases for NOTE lookups.
func knobNameFor(name string) string {
	if canon, ok := knobAliases[name]; ok {
		return canon
	}
	return name
}

func (v *validator) checkCall(e *Expr, sc exprScope) exprInfo {
	name := e.Name
	switch {
	case inList(name, exprFuncs):
		if len(e.Sel) > 0 {
			v.errorf(e.Sel[0].Pos, "%s is a function, not a metric; selectors do not apply", name)
		}
		return v.checkFunc(e, sc)
	case inList(name, callMetrics), inList(name, bareMetrics):
		if !sc.allowMetrics {
			v.errorf(e.Pos, "metric %s can only appear in COL expressions", name)
			return exprInfo{}
		}
		v.checkMetric(e, sc)
		return exprInfo{}
	default:
		v.errorf(e.Pos, "unknown function or metric %q", name)
		return exprInfo{}
	}
}

func (v *validator) checkFunc(e *Expr, sc exprScope) exprInfo {
	switch e.Name {
	case "count":
		if !sc.noteMode {
			v.errorf(e.Pos, "count(axis) can only appear in NOTE interpolations")
			return exprInfo{}
		}
		if len(e.Args) != 1 || e.Args[0].Kind != ExprVar || v.axisOf(e.Args[0].Name) == nil {
			v.errorf(e.Pos, "count takes one axis name")
			return exprInfo{}
		}
		return exprInfo{}
	case "trunc":
		if len(e.Args) != 1 {
			v.errorf(e.Pos, "trunc takes exactly one argument")
			return exprInfo{}
		}
		info := v.checkExpr(e.Args[0], sc)
		if info.constant {
			info.num = math.Trunc(info.num)
		}
		return info
	case "min", "max":
		if len(e.Args) < 2 {
			v.errorf(e.Pos, "%s takes at least two arguments", e.Name)
			return exprInfo{}
		}
		out := exprInfo{constant: true}
		for i, a := range e.Args {
			info := v.checkExpr(a, sc)
			out.axisRefs = mergeRefs(out.axisRefs, info.axisRefs)
			out.hasBytes = out.hasBytes || info.hasBytes
			if !info.constant {
				out.constant = false
				continue
			}
			if i == 0 || !out.constant {
				out.num = info.num
				continue
			}
			if e.Name == "min" {
				out.num = math.Min(out.num, info.num)
			} else {
				out.num = math.Max(out.num, info.num)
			}
		}
		return out
	default:
		v.errorf(e.Pos, "unknown function %q", e.Name)
		return exprInfo{}
	}
}

// checkMetric validates a metric atom's argument, selector and pinning.
func (v *validator) checkMetric(e *Expr, sc exprScope) {
	arg := ""
	if len(e.Args) > 0 {
		if len(e.Args) != 1 || e.Args[0].Kind != ExprVar {
			v.errorf(e.Pos, "metric %s takes one identifier argument", e.Name)
			return
		}
		arg = e.Args[0].Name
	}
	switch e.Name {
	case "mean":
		if !inList(arg, []string{"access", "tuning", "probes", "energy"}) {
			v.errorf(e.Pos, "mean takes access, tuning, probes or energy, not %q", arg)
		}
	case "p95", "p99":
		if !inList(arg, []string{"access", "tuning"}) {
			v.errorf(e.Pos, "%s takes access or tuning, not %q", e.Name, arg)
		}
	case "analytic":
		if !inList(arg, []string{"access", "tuning"}) {
			v.errorf(e.Pos, "analytic takes access or tuning, not %q", arg)
		}
	case "param":
		if arg == "" {
			v.errorf(e.Pos, "param takes the name of a scheme parameter, e.g. param(fanout)")
		}
	case "attr":
		if v.mode != ModeAttrQuery {
			v.errorf(e.Pos, "attr(...) only applies in RUN mode=attrquery scripts")
		}
		if !inList(arg, attrMetricNames) {
			v.errorf(e.Pos, "attr takes one of %s, not %q", strings.Join(attrMetricNames, ", "), arg)
		}
		return // no selector machinery: attrquery has a single axis
	default:
		if arg != "" {
			v.errorf(e.Pos, "metric %s takes no argument", e.Name)
		}
	}
	if v.mode == ModeAttrQuery {
		v.errorf(e.Pos, "metric %s is a simulator metric; attrquery columns use attr(...)", e.Name)
		return
	}

	// Selector checks: keys must be axes, values must be values the axis
	// actually takes, and together with the x axis and single-valued
	// axes they must pin every axis to one point.
	pinned := map[string]bool{}
	if sc.table != nil && sc.table.XExpr != nil {
		xi := v.checkedXAxis(sc.table)
		if xi != "" {
			pinned[xi] = true
		}
	}
	for i := range v.prog.Axes {
		ax := &v.prog.Axes[i]
		if len(axisValues(ax, false)) <= 1 && len(axisValues(ax, true)) <= 1 {
			pinned[ax.Name] = true
		}
	}
	for _, s := range e.Sel {
		ax := v.axisOf(s.Key)
		if ax == nil {
			v.errorf(s.Pos, "selector key %q is not an axis", s.Key)
			continue
		}
		if pinned[s.Key] && v.checkedXAxis(sc.table) == s.Key {
			v.errorf(s.Pos, "selector pins %s, which is the table's x axis", s.Key)
			continue
		}
		found := false
		for _, profileFast := range []bool{false, true} {
			for _, val := range axisValues(ax, profileFast) {
				if scalarsEqual(val, s.Val) {
					found = true
				}
			}
		}
		if !found {
			v.errorf(s.Val.Pos, "axis %s never takes the value %s", s.Key, s.Val)
		}
		pinned[s.Key] = true
	}
	for _, name := range v.axisNames {
		if !pinned[name] {
			v.errorf(e.Pos, "metric %s does not pin axis %s (add {%s=...} or make it the x axis)", e.Name, name, name)
		}
	}
}

// scalarsEqual compares axis values without floating == (bit equality
// keeps the comparison deterministic and exact for literals).
func scalarsEqual(a, b Scalar) bool {
	if a.IsStr != b.IsStr {
		return false
	}
	if a.IsStr {
		return a.Str == b.Str
	}
	return math.Float64bits(a.Num) == math.Float64bits(b.Num)
}

// checkedXAxis returns the single axis a table's x expression references
// ("" while diagnostics are pending).
func (v *validator) checkedXAxis(t *TableDecl) string {
	if t == nil || t.XExpr == nil {
		return ""
	}
	info := v.collectRefs(t.XExpr)
	if len(info) == 1 {
		return info[0]
	}
	return ""
}

// collectRefs lists axis references of an expression without emitting
// diagnostics (used after the expression was already checked).
func (v *validator) collectRefs(e *Expr) []string {
	return exprAxisRefs(v.prog, e)
}

func (v *validator) checkTables() {
	if len(v.prog.Tables) == 0 {
		if len(v.prog.LooseSinks) == 0 {
			v.errorf(Pos{Line: 1, Col: 1}, "script has no TABLE and no EMIT; it would compute nothing")
			return
		}
		t, err := implicitTable(v.prog, false)
		if err != nil {
			v.errs = append(v.errs, err)
			return
		}
		v.checkTable(t)
		v.checkSinks(t.Sinks)
		return
	}
	if len(v.prog.LooseSinks) > 0 {
		v.errorf(v.prog.LooseSinks[0].Pos, "EMIT before any TABLE stage (it has no table to bind to)")
	}
	seen := map[string]bool{}
	for _, t := range v.prog.Tables {
		if seen[t.ID] {
			v.errorf(t.Pos, "duplicate table %s", t.ID)
			continue
		}
		seen[t.ID] = true
		v.checkTable(t)
		v.checkSinks(t.Sinks)
	}
}

func (v *validator) checkTable(t *TableDecl) {
	if t.XExpr == nil {
		v.errorf(t.Pos, "table %s needs an x(...) expression", t.ID)
		return
	}
	info := v.checkExpr(t.XExpr, exprScope{allowAxes: true, table: t})
	if info.isStr {
		v.errorf(t.XExpr.Pos, "table %s: the x expression must be numeric", t.ID)
	}
	if len(info.axisRefs) != 1 {
		v.errorf(t.XExpr.Pos, "table %s: the x expression must reference exactly one axis, found %d", t.ID, len(info.axisRefs))
	}
	if len(t.Cols) == 0 {
		v.errorf(t.Pos, "table %s has no COL stages", t.ID)
	}
	colSeen := map[string]bool{}
	for i := range t.Cols {
		col := &t.Cols[i]
		if colSeen[col.Label] {
			v.errorf(col.Pos, "table %s: duplicate column %q", t.ID, col.Label)
		}
		colSeen[col.Label] = true
		ci := v.checkExpr(col.Expr, exprScope{allowAxes: true, allowMetrics: true, table: t})
		if ci.isStr {
			v.errorf(col.Expr.Pos, "table %s: column %q must be numeric", t.ID, col.Label)
		}
	}
	for i := range t.Notes {
		for _, part := range t.Notes[i].Parts {
			if part.Expr != nil {
				v.checkExpr(part.Expr, exprScope{noteMode: true})
			}
		}
	}
}

func (v *validator) checkSinks(sinks []SinkDecl) {
	for _, s := range sinks {
		switch s.Name {
		case "csv":
			if s.Arg == "" {
				v.errorf(s.Pos, "csv sink needs a path: csv(results/name.csv)")
			} else if strings.HasPrefix(s.Arg, "/") {
				v.errorf(s.Pos, "csv path %q must be relative (it is joined to the output root)", s.Arg)
			}
		case "summary":
			if s.Arg != "stdout" {
				v.errorf(s.Pos, "summary sink writes to stdout: summary(stdout)")
			}
		default:
			v.errorf(s.Pos, "unknown sink %q (want csv or summary)", s.Name)
		}
	}
}
