package airql

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Compile("t.airql", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestExecuteTinySweep runs a two-point flat sweep end to end and checks
// the table geometry and the x bindings.
func TestExecuteTinySweep(t *testing.T) {
	prog := compile(t, `
SWEEP records=1000,2000
SWEEP scheme=flat
TABLE tiny title("tiny sweep") x(records)
COL "access" mean(access)
COL "per-req" requests
EMIT csv(results/tiny.csv)
`)
	ts, err := Execute(prog, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d tables, want 1", len(ts))
	}
	tb := ts[0]
	if tb.ID != "tiny" || tb.Title != "tiny sweep" {
		t.Fatalf("table header wrong: %+v", tb)
	}
	if !reflect.DeepEqual(tb.Columns, []string{"access", "per-req"}) {
		t.Fatalf("columns %v", tb.Columns)
	}
	if len(tb.Rows) != 2 || tb.Rows[0].X != 1000 || tb.Rows[1].X != 2000 {
		t.Fatalf("rows %+v", tb.Rows)
	}
	a1, a2 := tb.Rows[0].Cells[0], tb.Rows[1].Cells[0]
	if !(a1 > 0 && a2 > a1) {
		t.Errorf("flat access should grow with records: %v then %v", a1, a2)
	}
}

// TestExecuteDeterministic: same script, same options, same tables.
func TestExecuteDeterministic(t *testing.T) {
	src := `
SWEEP records=1000,2000
SWEEP scheme=flat
TABLE tiny x(records)
COL "access" mean(access)
EMIT csv(results/tiny.csv)
`
	run := func() []*Table {
		ts, err := Execute(compile(t, src), Options{Fast: true, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("repeated execution differed")
	}
}

// TestRunSeedMergeSemantics: a script's RUN seed applies only when the
// session leaves Seed at zero, so the session flag wins.
func TestRunSeedMergeSemantics(t *testing.T) {
	withRun := `
RUN seed=7
SWEEP records=1000
SWEEP scheme=flat
TABLE tiny x(records)
COL "access" mean(access)
EMIT csv(results/tiny.csv)
`
	without := strings.Replace(withRun, "RUN seed=7\n", "", 1)
	exec := func(src string, opt Options) *Table {
		ts, err := Execute(compile(t, src), opt)
		if err != nil {
			t.Fatal(err)
		}
		return ts[0]
	}
	scriptSeed := exec(withRun, Options{Fast: true})
	sessionSeed := exec(without, Options{Fast: true, Seed: 7})
	if !reflect.DeepEqual(scriptSeed, sessionSeed) {
		t.Error("RUN seed=7 and session Seed=7 should produce identical tables")
	}
	overridden := exec(withRun, Options{Fast: true, Seed: 8})
	if reflect.DeepEqual(scriptSeed, overridden) {
		t.Error("session Seed=8 should override the script's RUN seed=7")
	}
}

// TestImplicitTable: a script with EMIT but no TABLE gets the default
// access/tuning table over the first numeric axis, named after the file.
func TestImplicitTable(t *testing.T) {
	prog := compile(t, `
SWEEP records=1000,2000
SWEEP scheme=flat,sig
EMIT csv(results/sweep.csv)
`)
	ts, err := Execute(prog, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if tb.ID != "t" {
		t.Errorf("implicit table named %q, want the script base name", tb.ID)
	}
	want := []string{
		"scheme=flat access", "scheme=flat tuning",
		"scheme=sig access", "scheme=sig tuning",
	}
	if !reflect.DeepEqual(tb.Columns, want) {
		t.Fatalf("implicit columns %v, want %v", tb.Columns, want)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %+v", tb.Rows)
	}
}

// TestNoteInterpolation: {knob} and {count(axis)} render from the
// compiled constants; an unset records knob falls back to the profile's
// comparison default.
func TestNoteInterpolation(t *testing.T) {
	prog := compile(t, `
SWEEP k=1,2,4 scheme=flat
SET records=1200 multi.channels=k
TABLE tiny x(k)
COL "access" mean(access)
NOTE "workload: {records} records over {count(k)} channel counts"
EMIT csv(results/tiny.csv)
`)
	ts, err := Execute(prog, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(ts[0].Notes, "\n")
	if !strings.Contains(notes, "1200 records over 3 channel counts") {
		t.Errorf("note interpolation wrong: %q", notes)
	}
}

// TestEmitSinks: csv paths land under the output root, summaries write
// to the given writer.
func TestEmitSinks(t *testing.T) {
	prog := compile(t, `
SWEEP records=1000 scheme=flat
TABLE tiny x(records)
COL "access" mean(access)
EMIT csv(out/tiny.csv) summary(stdout)
`)
	ts, err := Execute(prog, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	var stdout bytes.Buffer
	if err := Emit(prog, ts, root, &stdout); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(root, "out", "tiny.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "records,access\n") {
		t.Errorf("csv header wrong:\n%s", b)
	}
	if !strings.Contains(stdout.String(), "tiny") {
		t.Errorf("summary output missing table:\n%s", stdout.String())
	}
}

// TestAttrQueryMode runs the attribute-query executor on a tiny
// workload and checks the signature filter beats the flat scan.
func TestAttrQueryMode(t *testing.T) {
	prog := compile(t, `
RUN mode=attrquery
SWEEP records=500,1000
TABLE tiny x(records)
COL "flat tuning" attr(flat_tuning)
COL "sig tuning" attr(sig_tuning)
EMIT csv(results/tiny.csv)
`)
	ts, err := Execute(prog, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %+v", tb.Rows)
	}
	for i, r := range tb.Rows {
		flat, sig := r.Cells[0], r.Cells[1]
		if !(sig > 0 && sig < flat) {
			t.Errorf("row %d: signature tuning %v should undercut flat %v", i, sig, flat)
		}
	}
}
