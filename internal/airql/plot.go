package airql

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// seriesGlyphs mark the data points of successive series in a plot.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

// WritePlot renders the table as an ASCII chart — one glyph per series,
// linear axes — so a terminal shows the same curves the paper's figures
// plot. Columns whose values are all NaN are skipped. The chart area is
// width x height characters, excluding axes and the legend.
func (t *Table) WritePlot(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	if len(t.Rows) == 0 {
		_, err := fmt.Fprintf(w, "%s: no data\n", t.ID)
		return err
	}

	// Bounds over plottable cells.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	plottable := make([]bool, len(t.Columns))
	for ci := range t.Columns {
		for _, r := range t.Rows {
			v := r.Cells[ci]
			if math.IsNaN(v) {
				continue
			}
			plottable[ci] = true
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	for _, r := range t.Rows {
		xMin = math.Min(xMin, r.X)
		xMax = math.Max(xMax, r.X)
	}
	if math.IsInf(yMin, 1) {
		_, err := fmt.Fprintf(w, "%s: nothing plottable\n", t.ID)
		return err
	}
	if yMin > 0 && yMin < yMax/3 {
		yMin = 0 // anchor at zero unless the series are tightly banded
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	mark := func(x float64, y float64, glyph byte) {
		cx := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		cy := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		row := height - 1 - cy
		if cell := grid[row][cx]; cell != ' ' && cell != glyph {
			grid[row][cx] = '?' // collision marker
			return
		}
		grid[row][cx] = glyph
	}
	for ci := range t.Columns {
		if !plottable[ci] {
			continue
		}
		glyph := seriesGlyphs[ci%len(seriesGlyphs)]
		for _, r := range t.Rows {
			if !math.IsNaN(r.Cells[ci]) {
				mark(r.X, r.Cells[ci], glyph)
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	yLabelTop := fmt.Sprintf("%.3g", yMax)
	yLabelBot := fmt.Sprintf("%.3g", yMin)
	pad := len(yLabelTop)
	if len(yLabelBot) > pad {
		pad = len(yLabelBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yLabelTop)
		}
		if i == height-1 {
			label = fmt.Sprintf("%*s", pad, yLabelBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.3g", xMax)),
		fmt.Sprintf("%.3g", xMin), fmt.Sprintf("%.3g", xMax)); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for ci, name := range t.Columns {
		if plottable[ci] {
			legend = append(legend, fmt.Sprintf("%c %s", seriesGlyphs[ci%len(seriesGlyphs)], name))
		}
	}
	if _, err := fmt.Fprintf(w, "%s  x: %s, y: %s | %s\n\n",
		strings.Repeat(" ", pad), t.XLabel, t.YLabel, strings.Join(legend, "  ")); err != nil {
		return err
	}
	return nil
}
