package airql

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
)

// axisRT is one sweep axis resolved under the active profile.
type axisRT struct {
	decl *AxisDecl
	vals []Scalar
	kn   *knob
}

// executor lowers a validated program onto the simulation engines.
type executor struct {
	prog *Program
	opt  Options

	axes   []axisRT
	stride []int // linear-index stride per axis (axis 0 is slowest)
	total  int

	cfgs    []core.Config
	results []*core.Result
	attrs   []attrRow // attrquery mode: one row per records value
	mode    string
}

// Execute compiles nothing new — the program must have passed Validate —
// and runs every sweep point, returning the declared tables in order.
// All points run through the shared concurrent scheduler (runPoints), so
// the (Seed, Shards) determinism contract of the Go experiment harness
// carries over unchanged: results depend on each point's config only,
// never on scheduling.
func Execute(prog *Program, opt Options) ([]*Table, error) {
	if errs := Validate(prog); len(errs) > 0 {
		return nil, errs
	}
	mode := ModeSim
	for _, r := range prog.Runs {
		switch r.Key {
		case "seed":
			if opt.Seed == 0 {
				opt.Seed = int64(r.Val.Num)
			}
		case "shards":
			if opt.Shards == 0 {
				opt.Shards = int(r.Val.Num)
			}
		case "engine":
			if opt.Engine == "" {
				opt.Engine = r.Val.Str
			}
		case "mode":
			mode = r.Val.Str
		}
	}

	ex := &executor{prog: prog, opt: opt, mode: mode}
	for i := range prog.Axes {
		decl := &prog.Axes[i]
		ex.axes = append(ex.axes, axisRT{
			decl: decl,
			vals: axisValues(decl, opt.Fast),
			kn:   lookupKnob(decl.Name),
		})
	}
	ex.stride = make([]int, len(ex.axes))
	ex.total = 1
	for i := len(ex.axes) - 1; i >= 0; i-- {
		ex.stride[i] = ex.total
		ex.total *= len(ex.axes[i].vals)
	}

	if mode == ModeAttrQuery {
		if err := ex.runAttrQuery(); err != nil {
			return nil, err
		}
	} else {
		cfgs := make([]core.Config, ex.total)
		for li := 0; li < ex.total; li++ {
			cfg, err := ex.pointConfig(ex.indexOf(li))
			if err != nil {
				return nil, err
			}
			cfgs[li] = cfg
		}
		ex.cfgs = cfgs
		results, err := runPoints(opt, cfgs)
		if err != nil {
			return nil, err
		}
		ex.results = results
	}

	decls := prog.Tables
	if len(decls) == 0 {
		t, err := implicitTable(prog, opt.Fast)
		if err != nil {
			return nil, err
		}
		decls = []*TableDecl{t}
	}
	tables := make([]*Table, 0, len(decls))
	for _, decl := range decls {
		tb, err := ex.buildTable(decl)
		if err != nil {
			return nil, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// indexOf decodes a linear point index into per-axis indices.
func (ex *executor) indexOf(li int) []int {
	idx := make([]int, len(ex.axes))
	for i := range ex.axes {
		idx[i] = li / ex.stride[i] % len(ex.axes[i].vals)
	}
	return idx
}

func (ex *executor) axisIndex(name string) int {
	for i := range ex.axes {
		if ex.axes[i].decl.Name == name {
			return i
		}
	}
	return -1
}

// profileExpr picks a SET's expression under the active profile.
func (ex *executor) profileExpr(set *SetDecl) *Expr {
	if ex.opt.Fast && set.FastExpr != nil {
		return set.FastExpr
	}
	return set.Expr
}

// pointConfig assembles one sweep point's full configuration: the
// constructor knobs (scheme, records) feed BaseConfig, then axis values
// and SET stages apply in declaration order, then the fault.* staging
// collapses into cfg.Faults wholesale — the same order of operations the
// Go experiment functions used, so every point's config is bit-identical
// to the family it was ported from.
func (ex *executor) pointConfig(idx []int) (core.Config, error) {
	scheme, err := ex.schemeFor(idx)
	if err != nil {
		return core.Config{}, err
	}
	records, err := ex.recordsFor(idx)
	if err != nil {
		return core.Config{}, err
	}
	cfg := ex.opt.BaseConfig(scheme, records)
	var pf pointFaults
	env := &evalEnv{ex: ex, idx: idx}
	for i := range ex.axes {
		ax := &ex.axes[i]
		if ax.kn == nil {
			continue
		}
		if err := applyKnob(&cfg, &pf, ax.kn, ax.vals[idx[i]]); err != nil {
			return core.Config{}, err
		}
	}
	for i := range ex.prog.Sets {
		set := &ex.prog.Sets[i]
		kn := lookupKnob(set.Knob)
		val, verr := ex.setValue(set, env)
		if verr != nil {
			return core.Config{}, verr
		}
		if err := applyKnob(&cfg, &pf, kn, val); err != nil {
			return core.Config{}, err
		}
	}
	if pf.modelSet || pf.rateSet {
		model := pf.model
		if !pf.modelSet {
			// A rate with no model means the whole-bucket drop model, the
			// paper-adjacent default the faults family sweeps.
			model = faults.ModelDrop
		}
		cfg.Faults = faults.FromRate(model, pf.rate)
		if pf.retrySet {
			cfg.Faults.MaxRetries = pf.retries
		}
		if pf.recovSet {
			cfg.Faults.Recovery = pf.recovery
		}
	}
	return cfg, nil
}

// setValue evaluates a SET's right-hand side for the current point. A
// vocabulary knob's value is a bare name (SET alloc=replicated), a
// quoted string, or a reference to a string axis — never a computed
// expression, so those short-circuit the arithmetic evaluator.
func (ex *executor) setValue(set *SetDecl, env *evalEnv) (Scalar, *Error) {
	e := ex.profileExpr(set)
	kn := lookupKnob(set.Knob)
	if kn != nil && kn.isString {
		switch e.Kind {
		case ExprStr:
			return Scalar{Pos: e.Pos, IsStr: true, Str: e.Str}, nil
		case ExprVar:
			if ai := ex.axisIndex(e.Name); ai >= 0 {
				return ex.axes[ai].vals[env.idx[ai]], nil
			}
			return Scalar{Pos: e.Pos, IsStr: true, Str: e.Name}, nil
		case ExprNum, ExprCall, ExprOp:
			return Scalar{}, &Error{File: ex.prog.File, Pos: e.Pos,
				Msg: fmt.Sprintf("knob %s takes a name, not an expression", kn.name)}
		default:
			return Scalar{}, &Error{File: ex.prog.File, Pos: e.Pos,
				Msg: fmt.Sprintf("knob %s takes a name, not an expression", kn.name)}
		}
	}
	return env.eval(e)
}

// applyKnob lands one value, re-checking ranges for computed expressions
// the validator could not fold.
func applyKnob(cfg *core.Config, pf *pointFaults, kn *knob, v Scalar) error {
	if kn == nil {
		return nil
	}
	if kn.isString && !v.IsStr {
		// A numeric axis value routed into a vocabulary knob; the
		// validator rejects this, so reaching here is an executor bug.
		return &Error{Pos: v.Pos, Msg: fmt.Sprintf("knob %s takes a name", kn.name)}
	}
	if msg := checkKnobScalar(kn, v); msg != "" {
		return &Error{Pos: v.Pos, Msg: msg + " (computed value)"}
	}
	kn.apply(cfg, pf, v)
	return nil
}

// schemeFor resolves the point's scheme: the scheme axis value, a SET
// scheme expression, or nothing — which the validator already rejected.
func (ex *executor) schemeFor(idx []int) (string, error) {
	if ai := ex.axisIndex("scheme"); ai >= 0 {
		c, ok := canonScheme(ex.axes[ai].vals[idx[ai]].Str)
		if !ok {
			return "", &Error{Pos: ex.axes[ai].vals[idx[ai]].Pos, Msg: "unknown scheme"}
		}
		return c, nil
	}
	for i := range ex.prog.Sets {
		set := &ex.prog.Sets[i]
		if kn := lookupKnob(set.Knob); kn == nil || kn.name != "scheme" {
			continue
		}
		e := ex.profileExpr(set)
		name := ""
		switch e.Kind {
		case ExprStr:
			name = e.Str
		case ExprVar:
			if ai := ex.axisIndex(e.Name); ai >= 0 {
				name = ex.axes[ai].vals[idx[ai]].Str
			} else {
				name = e.Name
			}
		case ExprNum, ExprCall, ExprOp:
			return "", &Error{Pos: e.Pos, Msg: "scheme takes a name, not an expression"}
		default:
			return "", &Error{Pos: e.Pos, Msg: "scheme takes a name, not an expression"}
		}
		c, ok := canonScheme(name)
		if !ok {
			return "", &Error{Pos: e.Pos, Msg: fmt.Sprintf("unknown scheme %q (schemes: %s)", name, schemeVocab())}
		}
		return c, nil
	}
	return "", &Error{Pos: Pos{Line: 1, Col: 1}, Msg: "script never sets the scheme"}
}

// recordsFor resolves the point's database size; scripts that never set
// records get the comparison workload's default.
func (ex *executor) recordsFor(idx []int) (int, error) {
	if ai := ex.axisIndex("records"); ai >= 0 {
		return int(ex.axes[ai].vals[idx[ai]].Num), nil
	}
	for i := range ex.prog.Sets {
		set := &ex.prog.Sets[i]
		if kn := lookupKnob(set.Knob); kn == nil || kn.name != "records" {
			continue
		}
		env := &evalEnv{ex: ex, idx: idx}
		val, err := env.eval(ex.profileExpr(set))
		if err != nil {
			return 0, err
		}
		return int(val.Num), nil
	}
	return ex.opt.ComparisonRecords(), nil
}

// buildTable evaluates one table declaration over the finished results.
func (ex *executor) buildTable(decl *TableDecl) (*Table, error) {
	refs := exprAxisRefs(ex.prog, decl.XExpr)
	if len(refs) != 1 {
		return nil, &Error{File: ex.prog.File, Pos: decl.Pos, Msg: "table's x expression must reference exactly one axis"}
	}
	xi := ex.axisIndex(refs[0])
	xlabel := decl.XLabel
	if xlabel == "" {
		xlabel = refs[0]
	}
	ylabel := decl.YLabel
	if ylabel == "" {
		ylabel = "bytes"
	}
	tb := &Table{ID: decl.ID, Title: decl.Title, XLabel: xlabel, YLabel: ylabel}
	for i := range decl.Cols {
		tb.Columns = append(tb.Columns, decl.Cols[i].Label)
	}
	for ri := range ex.axes[xi].vals {
		env := ex.rowEnv(xi, ri)
		x, err := env.eval(decl.XExpr)
		if err != nil {
			return nil, err
		}
		cells := make([]float64, 0, len(decl.Cols))
		for ci := range decl.Cols {
			v, err := env.eval(decl.Cols[ci].Expr)
			if err != nil {
				return nil, err
			}
			cells = append(cells, v.Num)
		}
		tb.AddRow(x.Num, cells...)
	}
	for ni := range decl.Notes {
		line, err := ex.renderNote(&decl.Notes[ni])
		if err != nil {
			return nil, err
		}
		tb.Note("%s", line)
	}
	return tb, nil
}

// rowEnv binds the x axis to a row; single-valued axes bind implicitly
// and selectors pin the rest per metric.
func (ex *executor) rowEnv(xi, ri int) *evalEnv {
	idx := make([]int, len(ex.axes))
	for i := range idx {
		idx[i] = -1
		if len(ex.axes[i].vals) == 1 {
			idx[i] = 0
		}
	}
	idx[xi] = ri
	env := &evalEnv{ex: ex, idx: idx, metrics: true}
	if ex.mode == ModeAttrQuery {
		env.row = &ex.attrs[ri]
	}
	return env
}

// renderNote evaluates a NOTE's interpolations against the constants of
// the active profile.
func (ex *executor) renderNote(n *NoteDecl) (string, error) {
	var b strings.Builder
	for _, part := range n.Parts {
		if part.Expr == nil {
			b.WriteString(part.Text)
			continue
		}
		env := &evalEnv{ex: ex, note: true}
		v, err := env.eval(part.Expr)
		if err != nil {
			return "", err
		}
		if v.IsStr {
			b.WriteString(v.Str)
		} else {
			b.WriteString(formatFloat(v.Num))
		}
	}
	return b.String(), nil
}

// evalEnv is one expression evaluation context: which axes are bound,
// whether metrics resolve, and the attrquery row if any.
type evalEnv struct {
	ex      *executor
	idx     []int // per-axis binding, -1 = unbound; nil = no point context
	row     *attrRow
	metrics bool
	note    bool
}

func (env *evalEnv) errf(pos Pos, format string, args ...any) *Error {
	return &Error{File: env.ex.prog.File, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// eval computes an expression; the validator has already type-checked it,
// so errors here are profile-dependent (a selector value absent from the
// fast profile) or executor bugs.
func (env *evalEnv) eval(e *Expr) (Scalar, *Error) {
	switch e.Kind {
	case ExprNum:
		return Scalar{Pos: e.Pos, Num: e.Num, Bytes: e.Bytes}, nil
	case ExprStr:
		return Scalar{Pos: e.Pos, IsStr: true, Str: e.Str}, nil
	case ExprVar:
		return env.evalVar(e)
	case ExprCall:
		return env.evalCall(e)
	case ExprOp:
		x, err := env.eval(e.X)
		if err != nil {
			return Scalar{}, err
		}
		var y Scalar
		if e.Y != nil {
			y, err = env.eval(e.Y)
			if err != nil {
				return Scalar{}, err
			}
		}
		if x.IsStr || y.IsStr {
			return Scalar{}, env.errf(e.Pos, "arithmetic over names is not defined")
		}
		out := Scalar{Pos: e.Pos}
		switch e.Op {
		case OpAdd:
			out.Num = x.Num + y.Num
		case OpSub:
			out.Num = x.Num - y.Num
		case OpMul:
			out.Num = x.Num * y.Num
		case OpDiv:
			out.Num = x.Num / y.Num
		case OpNeg:
			out.Num = -x.Num
		default:
			return Scalar{}, env.errf(e.Pos, "unknown operator")
		}
		return out, nil
	default:
		return Scalar{}, env.errf(e.Pos, "unknown expression kind")
	}
}

func (env *evalEnv) evalVar(e *Expr) (Scalar, *Error) {
	if ai := env.ex.axisIndex(e.Name); ai >= 0 {
		if env.note {
			vals := env.ex.axes[ai].vals
			if len(vals) != 1 {
				return Scalar{}, env.errf(e.Pos, "axis %s is not single-valued", e.Name)
			}
			return vals[0], nil
		}
		if env.idx == nil || env.idx[ai] < 0 {
			return Scalar{}, env.errf(e.Pos, "axis %s is not pinned here", e.Name)
		}
		return env.ex.axes[ai].vals[env.idx[ai]], nil
	}
	if env.note {
		return env.noteKnob(e)
	}
	if inList(e.Name, bareMetrics) {
		return env.metric(e, "")
	}
	return Scalar{}, env.errf(e.Pos, "unknown name %q", e.Name)
}

// noteKnob resolves a constant SET knob for NOTE interpolation.
func (env *evalEnv) noteKnob(e *Expr) (Scalar, *Error) {
	want := knobNameFor(e.Name)
	for i := range env.ex.prog.Sets {
		set := &env.ex.prog.Sets[i]
		if kn := lookupKnob(set.Knob); kn == nil || kn.name != want {
			continue
		}
		constEnv := &evalEnv{ex: env.ex}
		return constEnv.eval(env.ex.profileExpr(set))
	}
	if want == "records" {
		// The default workload size is interpolatable even when implicit.
		return Scalar{Pos: e.Pos, Num: float64(env.ex.opt.ComparisonRecords())}, nil
	}
	return Scalar{}, env.errf(e.Pos, "unknown name %q in NOTE interpolation", e.Name)
}

func (env *evalEnv) evalCall(e *Expr) (Scalar, *Error) {
	switch e.Name {
	case "count":
		ai := env.ex.axisIndex(e.Args[0].Name)
		if ai < 0 {
			return Scalar{}, env.errf(e.Pos, "count takes an axis name")
		}
		return Scalar{Pos: e.Pos, Num: float64(len(env.ex.axes[ai].vals))}, nil
	case "trunc":
		v, err := env.eval(e.Args[0])
		if err != nil {
			return Scalar{}, err
		}
		v.Num = math.Trunc(v.Num)
		return v, nil
	case "min", "max":
		var out Scalar
		for i, a := range e.Args {
			v, err := env.eval(a)
			if err != nil {
				return Scalar{}, err
			}
			if i == 0 {
				out = v
				continue
			}
			if e.Name == "min" {
				out.Num = math.Min(out.Num, v.Num)
			} else {
				out.Num = math.Max(out.Num, v.Num)
			}
		}
		out.Pos = e.Pos
		return out, nil
	default:
		arg := ""
		if len(e.Args) == 1 && e.Args[0].Kind == ExprVar {
			arg = e.Args[0].Name
		}
		return env.metric(e, arg)
	}
}

// metric resolves a per-point metric: pin remaining axes from the
// selector, locate the point, and read the requested statistic.
func (env *evalEnv) metric(e *Expr, arg string) (Scalar, *Error) {
	if !env.metrics {
		return Scalar{}, env.errf(e.Pos, "metric %s outside a COL expression", e.Name)
	}
	if e.Name == "attr" {
		if env.row == nil {
			return Scalar{}, env.errf(e.Pos, "attr(...) outside attrquery mode")
		}
		switch arg {
		case "flat_access":
			return Scalar{Pos: e.Pos, Num: env.row.flatAccess}, nil
		case "flat_tuning":
			return Scalar{Pos: e.Pos, Num: env.row.flatTuning}, nil
		case "sig_access":
			return Scalar{Pos: e.Pos, Num: env.row.sigAccess}, nil
		case "sig_tuning":
			return Scalar{Pos: e.Pos, Num: env.row.sigTuning}, nil
		default:
			return Scalar{}, env.errf(e.Pos, "unknown attr metric %q", arg)
		}
	}
	idx := make([]int, len(env.idx))
	copy(idx, env.idx)
	for _, s := range e.Sel {
		ai := env.ex.axisIndex(s.Key)
		if ai < 0 {
			return Scalar{}, env.errf(s.Pos, "selector key %q is not an axis", s.Key)
		}
		vi := -1
		for j, val := range env.ex.axes[ai].vals {
			if scalarsEqual(val, s.Val) {
				vi = j
				break
			}
		}
		if vi < 0 {
			return Scalar{}, env.errf(s.Val.Pos, "axis %s has no value %s under this profile", s.Key, s.Val)
		}
		idx[ai] = vi
	}
	li := 0
	for i := range idx {
		if idx[i] < 0 {
			return Scalar{}, env.errf(e.Pos, "metric %s does not pin axis %s", e.Name, env.ex.axes[i].decl.Name)
		}
		li += idx[i] * env.ex.stride[i]
	}
	res := env.ex.results[li]
	cfg := env.ex.cfgs[li]
	v, err := simMetric(e.Name, arg, cfg, res)
	if err != nil {
		return Scalar{}, env.errf(e.Pos, "%s", err.Error())
	}
	return Scalar{Pos: e.Pos, Num: v}, nil
}

// simMetric reads one statistic off a finished run. The vocabulary here
// and in the validator's checkMetric must stay in lockstep.
func simMetric(name, arg string, cfg core.Config, res *core.Result) (float64, error) {
	switch name {
	case "mean":
		switch arg {
		case "access":
			return res.Access.Mean(), nil
		case "tuning":
			return res.Tuning.Mean(), nil
		case "probes":
			return res.Probes.Mean(), nil
		case "energy":
			return res.Energy.Mean(), nil
		}
	case "p95":
		switch arg {
		case "access":
			return res.AccessP95, nil
		case "tuning":
			return res.TuningP95, nil
		}
	case "p99":
		switch arg {
		case "access":
			return res.AccessP99, nil
		case "tuning":
			return res.TuningP99, nil
		}
	case "analytic":
		a, t := Analytic(cfg, res)
		if arg == "access" {
			return a, nil
		}
		return t, nil
	case "param":
		return res.Params[arg], nil
	case "requests":
		return float64(res.Requests), nil
	case "restarts":
		return float64(res.Restarts), nil
	case "wasted":
		return float64(res.WastedBytes), nil
	case "cycle_bytes":
		return float64(res.CycleBytes), nil
	case "switches":
		return float64(res.Switches), nil
	case "unrecovered":
		return float64(res.Unrecovered), nil
	}
	return 0, fmt.Errorf("unknown metric %s(%s)", name, arg)
}

// scriptName is a script's display name: the file base without .airql.
func scriptName(file string) string {
	id := strings.TrimSuffix(filepath.Base(file), ".airql")
	if id == "" || id == "." {
		return "sweep"
	}
	return id
}

// exprAxisRefs lists the axes an expression references outside selectors,
// in first-use order.
func exprAxisRefs(prog *Program, e *Expr) []string {
	if e == nil {
		return nil
	}
	var refs []string
	switch e.Kind {
	case ExprVar:
		for i := range prog.Axes {
			if prog.Axes[i].Name == e.Name {
				refs = append(refs, e.Name)
			}
		}
	case ExprOp:
		refs = mergeRefs(refs, exprAxisRefs(prog, e.X))
		refs = mergeRefs(refs, exprAxisRefs(prog, e.Y))
	case ExprCall:
		for _, a := range e.Args {
			refs = mergeRefs(refs, exprAxisRefs(prog, a))
		}
	case ExprNum, ExprStr:
	default:
	}
	return refs
}

// implicitTable synthesizes the default table for scripts that EMIT
// without declaring one (the ISSUE's one-liner form): x is the first
// numeric axis, and every combination of the remaining multi-valued axes
// becomes an access/tuning column pair.
func implicitTable(prog *Program, fast bool) (*TableDecl, *Error) {
	xi := -1
	for i := range prog.Axes {
		if !axisIsString(&prog.Axes[i]) && len(prog.Axes[i].Values) > 0 {
			xi = i
			break
		}
	}
	if xi < 0 {
		return nil, &Error{File: prog.File, Pos: Pos{Line: 1, Col: 1},
			Msg: "EMIT without TABLE needs at least one numeric axis for the x column"}
	}
	xName := prog.Axes[xi].Name
	id := scriptName(prog.File)
	t := &TableDecl{
		ID:     id,
		Pos:    Pos{Line: 1, Col: 1},
		Title:  "ad-hoc sweep",
		XLabel: xName,
		YLabel: "bytes",
		XExpr:  &Expr{Kind: ExprVar, Pos: Pos{Line: 1, Col: 1}, Name: xName},
		Sinks:  prog.LooseSinks,
	}
	// Cross-product of the other multi-valued axes, in declaration order.
	combos := [][]SelItem{nil}
	for i := range prog.Axes {
		ax := &prog.Axes[i]
		vals := axisValues(ax, fast)
		if i == xi || len(vals) <= 1 {
			continue
		}
		var next [][]SelItem
		for _, combo := range combos {
			for _, val := range vals {
				item := SelItem{Key: ax.Name, Pos: ax.Pos, Val: val}
				next = append(next, append(append([]SelItem{}, combo...), item))
			}
		}
		combos = next
	}
	for _, combo := range combos {
		prefix := ""
		for _, item := range combo {
			prefix += item.Key + "=" + item.Val.String() + " "
		}
		for _, metric := range []string{"access", "tuning"} {
			t.Cols = append(t.Cols, ColDecl{
				Label: prefix + metric,
				Pos:   t.Pos,
				Expr: &Expr{
					Kind: ExprCall, Pos: t.Pos, Name: "mean",
					Args: []*Expr{{Kind: ExprVar, Pos: t.Pos, Name: metric}},
					Sel:  combo,
				},
			})
		}
	}
	return t, nil
}

// Emit writes every table through its declared sinks: csv paths are
// joined to root, summaries go to stdout. Execute returns tables in
// declaration order, so sinks resolve positionally.
func Emit(prog *Program, tables []*Table, root string, stdout io.Writer) error {
	sinkSets := make([][]SinkDecl, 0, len(tables))
	if len(prog.Tables) == 0 {
		sinkSets = append(sinkSets, prog.LooseSinks)
	} else {
		for _, decl := range prog.Tables {
			sinkSets = append(sinkSets, decl.Sinks)
		}
	}
	if len(sinkSets) != len(tables) {
		return fmt.Errorf("airql: %d tables for %d sink sets", len(tables), len(sinkSets))
	}
	for i, tb := range tables {
		for _, sink := range sinkSets[i] {
			switch sink.Name {
			case "csv":
				path := filepath.Join(root, filepath.FromSlash(sink.Arg))
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					return err
				}
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := tb.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			case "summary":
				if err := tb.WriteText(stdout); err != nil {
					return err
				}
			default:
				return fmt.Errorf("airql: unknown sink %q", sink.Name)
			}
		}
	}
	return nil
}
