package airql

import (
	"fmt"
	"strconv"
	"strings"
)

// lexer scans an airql script. It is line-oriented: newlines are tokens
// (stage separators), '#' starts a comment that runs to end of line,
// and the parser can ask for a raw argument scan (rawUntil) so sink
// arguments like csv(results/fig4a.csv) need no quoting.
type lexer struct {
	file string
	src  string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) errorf(p Pos, format string, args ...any) *Error {
	return &Error{File: l.file, Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// advance consumes one byte, maintaining the line/column counters.
func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) || c == '.' }

// next returns the next token. Lexical errors are returned, never
// panicked: the fuzz target runs arbitrary bytes through the compiler.
func (l *lexer) next() (Token, *Error) {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
			continue
		case c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokenEOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case c == '\n':
		l.advance()
		return Token{Kind: TokenNewline, Pos: p}, nil
	case c == '|':
		l.advance()
		return Token{Kind: TokenPipe, Pos: p}, nil
	case c == '=':
		l.advance()
		return Token{Kind: TokenAssign, Pos: p}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokenComma, Pos: p}, nil
	case c == '(':
		l.advance()
		return Token{Kind: TokenLParen, Pos: p}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokenRParen, Pos: p}, nil
	case c == '{':
		l.advance()
		return Token{Kind: TokenLBrace, Pos: p}, nil
	case c == '}':
		l.advance()
		return Token{Kind: TokenRBrace, Pos: p}, nil
	case c == ':':
		l.advance()
		return Token{Kind: TokenColon, Pos: p}, nil
	case c == '+':
		l.advance()
		return Token{Kind: TokenPlus, Pos: p}, nil
	case c == '-':
		l.advance()
		return Token{Kind: TokenMinus, Pos: p}, nil
	case c == '*':
		l.advance()
		return Token{Kind: TokenStar, Pos: p}, nil
	case c == '/':
		l.advance()
		return Token{Kind: TokenSlash, Pos: p}, nil
	case c == '.':
		// '..' is the range operator; a lone '.' is not a token start
		// (idents may contain dots only after a letter).
		if l.peek2() == '.' {
			l.advance()
			l.advance()
			return Token{Kind: TokenRange, Pos: p}, nil
		}
		return Token{}, l.errorf(p, "unexpected character '.'")
	case c == '"':
		return l.lexString(p)
	case isDigit(c):
		return l.lexNumber(p)
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && isIdent(l.peek()) {
			// Stop before '..' so ranges over identifiers fail in the
			// parser with a clear message rather than gluing the range
			// operator into the name.
			if l.peek() == '.' && l.peek2() == '.' {
				break
			}
			l.advance()
		}
		return Token{Kind: TokenIdent, Pos: p, Text: l.src[start:l.off]}, nil
	default:
		return Token{}, l.errorf(p, "unexpected character %q", string(rune(c)))
	}
}

func (l *lexer) lexString(p Pos) (Token, *Error) {
	l.advance() // opening quote
	start := l.off
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\n' {
			return Token{}, l.errorf(p, "unterminated string")
		}
		if c == '"' {
			text := l.src[start:l.off]
			l.advance()
			return Token{Kind: TokenString, Pos: p, Text: text}, nil
		}
		l.advance()
	}
	return Token{}, l.errorf(p, "unterminated string")
}

// byteUnits maps the accepted unit suffixes to their multipliers. Only
// byte quantities have units in this language; the validator uses the
// Bytes flag to reject unit mismatches.
var byteUnits = []struct {
	name string
	mult float64
}{
	{"B", 1},
	{"KiB", 1024},
	{"MiB", 1 << 20},
	{"GiB", 1 << 30},
}

func (l *lexer) lexNumber(p Pos) (Token, *Error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	// A '.' continues the number only when it is not the range operator
	// and is followed by a digit (so "0..0.10" lexes as 0 .. 0.10).
	if l.peek() == '.' && l.peek2() != '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	num, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, l.errorf(p, "bad number %q", text)
	}
	// An attached letter run is a unit suffix; anything unrecognised is
	// an error here rather than a confusing parse downstream.
	if isLetter(l.peek()) {
		ustart := l.off
		for l.off < len(l.src) && isLetter(l.peek()) {
			l.advance()
		}
		unit := l.src[ustart:l.off]
		for _, u := range byteUnits {
			if u.name == unit {
				return Token{Kind: TokenNumber, Pos: p, Num: num * u.mult, Bytes: true}, nil
			}
		}
		return Token{}, l.errorf(p, "unknown unit %q (byte units are B, KiB, MiB, GiB)", unit)
	}
	return Token{Kind: TokenNumber, Pos: p, Num: num, Bytes: false}, nil
}

// rawUntil scans raw text up to (not including) the next ')' on the
// current line, for sink arguments like csv(results/fig4a.csv). The
// parser calls it instead of next() immediately after the sink's '('.
func (l *lexer) rawUntil(p Pos) (string, *Error) {
	start := l.off
	for l.off < len(l.src) {
		c := l.peek()
		if c == ')' {
			return strings.TrimSpace(l.src[start:l.off]), nil
		}
		if c == '\n' {
			return "", l.errorf(p, "sink argument runs past end of line (missing ')')")
		}
		l.advance()
	}
	return "", l.errorf(p, "sink argument runs past end of script (missing ')')")
}
