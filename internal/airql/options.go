package airql

import (
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
)

// Options tunes how compiled scenarios run. It moved here from
// internal/experiments (which aliases it) when the experiment harness
// became a set of compiled scenarios: the profile knobs below are part
// of the deterministic (Seed, Shards) contract every scenario inherits.
type Options struct {
	// Fast shrinks workloads and relaxes the stopping rule for test and
	// benchmark runs; the full mode uses the paper's Table 1 settings.
	// In scenario scripts, fast(...) variants on SWEEP and SET stages
	// select their values under this profile.
	Fast bool
	// Seed overrides the run seed (0 keeps the default). A script's RUN
	// seed=N applies only when this is 0, so the session flag wins.
	Seed int64
	// Shards forwards core.Config.Shards to every point: each run's
	// accuracy-control rounds execute across this many deterministic RNG
	// substreams (0 keeps the single-shard default). Results depend on
	// (Seed, Shards) but not on scheduling; see DESIGN.md §7.
	Shards int
	// Engine forwards core.Config.Engine to every point: "" or "events"
	// keeps the reference event-driven engine, "cohort" batches each
	// point's requests through the columnar engine. The tables are
	// bit-identical either way (the cohort engine's differential
	// guarantee); only the wall-clock changes.
	Engine string
	// Faults applies the deterministic unreliable-channel layer
	// (internal/faults) to every point. The zero value keeps the perfect
	// channel; a zero-rate model reproduces the perfect channel's tables
	// byte for byte, because the fault process draws from its own RNG
	// substream. Scenarios that set fault.* knobs themselves (ablate-errors,
	// faults) override this per point.
	Faults faults.Config
	// Multi applies the K-channel broadcast subsystem to every point. The
	// zero value keeps the paper's single channel; a one-channel
	// replicated allocation with zero switch cost reproduces the
	// single-channel tables byte for byte (the hopping walkers consume no
	// RNG). The multich scenario sets its own allocations per point.
	Multi multichannel.Config
	// Progress, when non-nil, receives one line per completed point.
	Progress func(format string, args ...any)
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// BaseConfig applies the stopping-rule profile to a scheme/record pair.
// Every scenario point starts from it before its knobs are applied.
func (o Options) BaseConfig(scheme string, records int) core.Config {
	cfg := core.DefaultConfig(scheme, records)
	if o.Fast {
		cfg.RoundSize = 250
		cfg.Accuracy = 0.02
		cfg.MinRequests = 1500
		cfg.MaxRequests = 20000
	} else {
		// Table 1: 0.99 confidence, 0.01 accuracy, 500-request rounds.
		cfg.MinRequests = 5000
		cfg.MaxRequests = 60000
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Shards > 0 {
		cfg.Shards = o.Shards
	}
	cfg.Engine = o.Engine
	cfg.Faults = o.Faults
	cfg.Multi = o.Multi
	return cfg
}

// RecordSweep is the x axis of Figure 4 (Table 1: 7,000–34,000 records).
// The scenario scripts spell these values out; this stays exported for
// Table1 and the tests that size workloads from it.
func (o Options) RecordSweep() []int {
	if o.Fast {
		// Past 1,728 records the default geometry's tree reaches the same
		// depth regime as the paper's sweep, so the Figure 4 orderings hold.
		return []int{2000, 2500, 3000, 3500}
	}
	return []int{7000, 11500, 16000, 20500, 25000, 29500, 34000}
}

// ComparisonRecords sizes the Figures 5 and 6 workloads, and is the
// default database size for scripts that never set records.
func (o Options) ComparisonRecords() int {
	if o.Fast {
		// Above 13^3 = 2,197 records the default geometry's tree has four
		// levels, the regime where the paper's tuning orderings hold.
		return 2500
	}
	return 10000
}
