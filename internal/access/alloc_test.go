package access

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// loopClient is an allocation-free resettable protocol stub: a fixed
// number of serial reads, then done. The pointer is converted to the
// Client interface once, outside the measured region.
type loopClient struct {
	reads int
	quota int
}

func (c *loopClient) OnBucket(i units.BucketIndex, end sim.Time) Step {
	c.reads++
	if c.reads >= c.quota {
		return Done(true)
	}
	return Next()
}

// exportedHotpathFuncs parses the package's non-test sources and returns
// the exported functions whose doc comment carries //airlint:hotpath —
// the ground truth the alloc table below must cover.
func exportedHotpathFuncs(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Recv != nil || !fd.Name.IsExported() {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//airlint:hotpath" {
						names = append(names, fd.Name.Name)
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

// TestWalkersAllocFree is the runtime backstop behind escapecheck: the
// static analyzers promise the walkers are allocation-free, AllocsPerRun
// verifies it against the live runtime. The table is generated from the
// //airlint:hotpath markers themselves, so adding a marked exported
// walker without a row here fails the test.
func TestWalkersAllocFree(t *testing.T) {
	ch := testChannel(t, 10, 20, 30, 40, 50, 60, 70, 80)
	set := k1Set(t, ch)
	lc := &loopClient{quota: 6}
	newCli := func() Client {
		lc.reads = 0
		return lc
	}
	rnd := func() float64 { return 0.99 }
	var err error

	table := map[string]func(){
		"Walk": func() {
			lc.reads = 0
			_, err = Walk(ch, lc, 3, 0)
		},
		"WalkFaulty": func() {
			_, err = WalkFaulty(ch, newCli, 3, 0, rnd, 0)
		},
		"WalkRecover": func() {
			_, err = WalkRecover(ch, newCli, 3, nil, RecoverPolicy{}, 0)
		},
		"WalkMulti": func() {
			lc.reads = 0
			_, err = WalkMulti(set, lc, 3, 0)
		},
		"WalkRecoverMulti": func() {
			_, err = WalkRecoverMulti(set, newCli, 3, nil, RecoverPolicy{}, 0)
		},
	}

	want := exportedHotpathFuncs(t)
	if len(want) == 0 {
		t.Fatal("no exported //airlint:hotpath functions found; parser or markers broken")
	}
	for _, name := range want {
		fn, ok := table[name]
		if !ok {
			t.Errorf("exported hotpath function %s has no allocation-test row", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			fn() // warm up; surfaces errors before measuring
			if err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(200, fn); avg != 0 {
				t.Errorf("%s allocates %v times per run, want 0", name, avg)
			}
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	for name := range table {
		found := false
		for _, w := range want {
			if w == name {
				found = true
			}
		}
		if !found {
			t.Errorf("allocation-test row %s does not match any exported hotpath function", name)
		}
	}
}
