package access

import (
	"github.com/airindex/airindex/internal/sim"
)

// This file defines the optional capabilities a Broadcast or Client may
// implement to let the columnar cohort engine (internal/cohort) advance
// huge request populations cheaply. Both are pure optimizations: the
// cohort engine probes for them with type assertions and falls back to
// the ordinary NewClient/Walk machinery, and every capability carries a
// bit-identity obligation that the differential tests enforce.

// Resolver is an optional Broadcast capability: answer a clean,
// single-channel query in closed form. Resolve must return exactly the
// Result that Walk(Channel(), NewClient(key), arrival, 0) would produce
// — same Access, Tuning, Found and Probes — or report ok=false to make
// the caller fall back to stepping the client state machine.
//
// Serial-scan schemes (flat, broadcast disks) implement it with
// occurrence arithmetic over their uniform-bucket cycles: a scan that
// the event engine resolves in O(probes) interface calls collapses to
// O(1) (flat) or O(log occurrences) (bdisk) integer math, which is what
// lets a 10⁶-request cohort run finish in seconds. The capability is
// only consulted on perfect single-channel runs; faults, the legacy
// BitErrorRate layer and multichannel allocations always walk.
type Resolver interface {
	Resolve(key uint64, arrival sim.Time) (Result, bool)
}

// Rewinder is an optional Client capability: reset the protocol state
// machine to its initial state for a new key, so a long-lived engine
// can reuse one client allocation across millions of requests. After
// c.Rewind(key), c must behave exactly like a fresh NewClient(key) —
// the cohort engine's arena reuse and the recovery walkers' restart
// path both rely on that equivalence.
type Rewinder interface {
	Rewind(key uint64)
}
