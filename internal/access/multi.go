package access

import (
	"fmt"

	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// MultiResult extends FaultyResult with channel-hopping accounting.
type MultiResult struct {
	FaultyResult
	// Switches counts channel hops the receiver performed after its
	// initial (free) tune.
	Switches int
	// SwitchWait is the total retune cost in bytes across those hops. The
	// receiver dozes through it, so it is included in Access but never in
	// Tuning.
	SwitchWait units.ByteCount
}

// WalkMulti executes one query against a K-channel allocation. The
// mechanics mirror Walk with one generalization: wherever the
// single-channel walk waits for a bucket's next occurrence on the one
// channel, the multichannel walk waits for its earliest feasible
// occurrence across all channels that carry it — staying on the current
// channel is free, hopping costs the set's switch cost in dozed bytes.
// Concretely:
//
//   - the initial tune locks onto the earliest complete bucket on any
//     channel (no switch cost: the receiver was not tuned yet);
//   - StepNext seeks the next logical bucket, which on the current
//     channel is the contiguous next bucket whenever the channel carries
//     it (so a serial scan stays put), and may be a hop otherwise;
//   - a hinted doze (DozeAt) seeks the hinted bucket's earliest feasible
//     occurrence — the hint names a logical bucket, so the walker
//     recomputes occurrence times per channel instead of trusting the
//     client's single-channel wake time;
//   - an unhinted doze stays on the current channel and wakes at the next
//     complete bucket at or after the requested time.
//
// With one channel under PolicyReplicated and zero switch cost every
// query reproduces Walk byte for byte (the K=1 identity guarantee; see
// DESIGN.md §8).
//
//airlint:hotpath
func WalkMulti(set *multichannel.Set, c Client, arrival sim.Time, maxSteps int) (MultiResult, error) {
	return walkMulti(set, func() Client { return c }, arrival, nil, RecoverPolicy{}, maxSteps) //airlint:allow hotalloc one adapter closure per query at setup, not per step
}

// WalkRecoverMulti is WalkMulti over an unreliable channel: the same
// corruption process and retry policy as WalkRecover, applied to the
// channel-hopping walk. Recovery keeps the receiver on its current
// channel — a corrupted read says nothing about where to go, so the
// client re-tunes in place (RecoverPolicy.NextCycle waits for the current
// channel's next cycle start). newClient must return a fresh protocol
// state machine per restart; inj may be nil for a perfect channel.
//
//airlint:hotpath
func WalkRecoverMulti(set *multichannel.Set, newClient func() Client, arrival sim.Time, inj Corrupter, pol RecoverPolicy, maxSteps int) (MultiResult, error) {
	return walkMulti(set, newClient, arrival, inj, pol, maxSteps)
}

//airlint:hotpath
func walkMulti(set *multichannel.Set, newClient func() Client, arrival sim.Time, inj Corrupter, pol RecoverPolicy, maxSteps int) (MultiResult, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	var res MultiResult
	n := set.NumLogical()
	cost := set.SwitchCost()
	c := newClient()
	cur, local, start := set.FirstBucket(arrival)
	for step := 0; step < maxSteps; step++ {
		end := set.EndGiven(cur, local, start)
		size := set.SizeOfLocal(cur, local)
		probe := res.Probes
		res.Tuning += size
		res.Probes++
		if inj != nil && inj.Corrupt(probe, size) {
			res.Restarts++
			res.Wasted += size
			if pol.MaxRetries > 0 && res.Restarts > pol.MaxRetries {
				// Retry budget exhausted: abandon the request. The time
				// already spent still counts — the user waited for it.
				res.Access = units.Elapsed(arrival, end)
				res.Found = false
				res.Unrecovered = true
				return res, nil
			}
			c = newClient()
			if pol.NextCycle {
				// Doze (no tuning cost) until the current channel's cycle
				// restarts.
				local, start = set.NextOnChannel(cur, set.NextCycleStartOn(cur, end))
			} else {
				local, start = set.NextOnChannel(cur, end)
			}
			continue
		}
		s := c.OnBucket(set.Logical(cur, local), end)
		switch s.Kind {
		case StepNext:
			target := set.Logical(cur, local).Next(n)
			ch, l, at := set.NextFeasible(target, end, cur)
			if ch != cur {
				res.Switches++
				res.SwitchWait += cost
				cur = ch
			}
			local, start = l, at
		case StepDoze:
			if s.At < end {
				//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
				return res, fmt.Errorf("access: client dozed into the past: %d < %d", s.At, end) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
			}
			if s.Hint.InCycle(n) {
				ch, l, at := set.NextFeasible(s.Hint, end, cur)
				if ch != cur {
					res.Switches++
					res.SwitchWait += cost
					cur = ch
				}
				local, start = l, at
			} else {
				local, start = set.NextOnChannel(cur, s.At)
			}
		case StepDone:
			res.Access = units.Elapsed(arrival, end)
			res.Found = s.Found
			return res, nil
		default:
			//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
			return res, fmt.Errorf("access: invalid step kind %d", s.Kind) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
		}
	}
	if inj != nil && pol.MaxRetries <= 0 {
		//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
		return res, fmt.Errorf("access: recovering multichannel query exceeded %d steps without terminating (unbounded retries; bound RecoverPolicy.MaxRetries — at this error rate the scheme cannot complete a clean pass)", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
	}
	//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
	return res, fmt.Errorf("access: multichannel query exceeded %d steps without terminating", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
}
