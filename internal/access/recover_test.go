package access

import (
	"testing"

	"github.com/airindex/airindex/internal/units"
)

// scriptCorrupter corrupts the reads whose global sequence numbers (across
// the whole walk) are listed.
type scriptCorrupter struct {
	corrupt map[int]bool
	calls   int
}

func (c *scriptCorrupter) Corrupt(probe int, size units.ByteCount) bool {
	c.calls++
	return c.corrupt[probe]
}

func TestWalkRecoverNilInjectorMatchesWalk(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	mk := func() func() Client {
		return func() Client { return &scriptClient{steps: []Step{Next(), Next(), Done(true)}} }
	}
	plain, err := Walk(ch, &scriptClient{steps: []Step{Next(), Next(), Done(true)}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := WalkRecover(ch, mk(), 3, nil, RecoverPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result != plain {
		t.Fatalf("nil-injector WalkRecover = %+v, Walk = %+v", rec.Result, plain)
	}
	if rec.Restarts != 0 || rec.Wasted != 0 || rec.Unrecovered {
		t.Fatalf("clean walk reported recovery accounting: %+v", rec)
	}
}

func TestWalkRecoverRestartsAtNextBucket(t *testing.T) {
	// Three 10-byte buckets. First read (bucket 0, probe 0) is corrupted;
	// the restarted client reads bucket 1 and finishes.
	ch := testChannel(t, 10, 10, 10)
	clients := 0
	newClient := func() Client {
		clients++
		return &scriptClient{steps: []Step{Done(true)}}
	}
	inj := &scriptCorrupter{corrupt: map[int]bool{0: true}}
	res, err := WalkRecover(ch, newClient, 0, inj, RecoverPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clients != 2 {
		t.Fatalf("expected a fresh client after the corrupted read, built %d", clients)
	}
	if res.Restarts != 1 || res.Wasted != 10 {
		t.Fatalf("Restarts=%d Wasted=%d, want 1/10", res.Restarts, res.Wasted)
	}
	// Probe 0: bucket 0 (corrupt, ends at 10). Probe 1: bucket 1 ends at 20.
	if res.Access != 20 || res.Tuning != 20 || res.Probes != 2 {
		t.Fatalf("Access=%d Tuning=%d Probes=%d, want 20/20/2", res.Access, res.Tuning, res.Probes)
	}
	if !res.Found || res.Unrecovered {
		t.Fatalf("Found=%v Unrecovered=%v", res.Found, res.Unrecovered)
	}
}

func TestWalkRecoverNextCycleDozes(t *testing.T) {
	// Cycle of 10+20 bytes. Corrupt the first read; the next-cycle policy
	// dozes to t=30 (cycle start) and reads bucket 0 again. Tuning charges
	// only the two reads; the 20-byte wait is dozed.
	ch := testChannel(t, 10, 20)
	inj := &scriptCorrupter{corrupt: map[int]bool{0: true}}
	res, err := WalkRecover(ch, func() Client {
		return &scriptClient{steps: []Step{Done(true)}}
	}, 0, inj, RecoverPolicy{NextCycle: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Access != 40 { // corrupted read ends 10, doze to 30, read bucket 0 ends 40
		t.Fatalf("Access = %d, want 40", res.Access)
	}
	if res.Tuning != 20 { // 10 wasted + 10 clean; the doze is free
		t.Fatalf("Tuning = %d, want 20", res.Tuning)
	}
	if res.Restarts != 1 || res.Wasted != 10 {
		t.Fatalf("Restarts=%d Wasted=%d", res.Restarts, res.Wasted)
	}
}

func TestWalkRecoverBoundedRetries(t *testing.T) {
	ch := testChannel(t, 10, 10)
	everything := &scriptCorrupter{corrupt: map[int]bool{}}
	for i := 0; i < 100; i++ {
		everything.corrupt[i] = true
	}
	res, err := WalkRecover(ch, func() Client {
		return &scriptClient{steps: []Step{Done(true)}}
	}, 0, everything, RecoverPolicy{MaxRetries: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unrecovered || res.Found {
		t.Fatalf("fully corrupted channel should be unrecoverable: %+v", res)
	}
	if res.Restarts != 4 { // the 4th corrupted read breaches MaxRetries=3
		t.Fatalf("Restarts = %d, want 4", res.Restarts)
	}
	if res.Probes != 4 || res.Tuning != 40 || res.Wasted != 40 {
		t.Fatalf("Probes=%d Tuning=%d Wasted=%d, want 4/40/40", res.Probes, res.Tuning, res.Wasted)
	}
	if res.Access != 40 { // abandoned at the end of the 4th read
		t.Fatalf("Access = %d, want 40", res.Access)
	}
}

func TestWalkRecoverUnboundedEventuallyFinishes(t *testing.T) {
	ch := testChannel(t, 10, 10)
	// Corrupt the first 50 reads; an unbounded policy must grind through
	// and still succeed.
	inj := &scriptCorrupter{corrupt: map[int]bool{}}
	for i := 0; i < 50; i++ {
		inj.corrupt[i] = true
	}
	res, err := WalkRecover(ch, func() Client {
		return &scriptClient{steps: []Step{Done(true)}}
	}, 0, inj, RecoverPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Unrecovered || res.Restarts != 50 {
		t.Fatalf("unbounded recovery: %+v", res)
	}
}

func TestWalkRecoverStepBudget(t *testing.T) {
	ch := testChannel(t, 10)
	// Every read corrupted, unbounded retries: the step budget must stop
	// the walk with an error instead of spinning forever.
	_, err := WalkRecover(ch, func() Client {
		return &scriptClient{steps: []Step{Done(true)}}
	}, 0, alwaysCorrupt{}, RecoverPolicy{}, 100)
	if err == nil {
		t.Fatal("expected step-budget error on a fully corrupted channel")
	}
}

type alwaysCorrupt struct{}

func (alwaysCorrupt) Corrupt(int, units.ByteCount) bool { return true }
