package access

import (
	"strings"
	"testing"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

type fakeBucket int

func (b fakeBucket) Size() units.ByteCount { return units.Bytes(int(b)) }
func (b fakeBucket) Kind() wire.Kind       { return wire.KindData }
func (b fakeBucket) Encode() []byte        { return make([]byte, int(b)) }

// scriptClient replays a fixed list of steps and records what it saw.
type scriptClient struct {
	steps []Step
	seen  []units.BucketIndex
	ends  []sim.Time
}

func (c *scriptClient) OnBucket(i units.BucketIndex, end sim.Time) Step {
	c.seen = append(c.seen, i)
	c.ends = append(c.ends, end)
	s := c.steps[0]
	c.steps = c.steps[1:]
	return s
}

func testChannel(t *testing.T, sizes ...int) *channel.Channel {
	t.Helper()
	bs := make([]channel.Bucket, len(sizes))
	for i, s := range sizes {
		bs[i] = fakeBucket(s)
	}
	ch, err := channel.Build(bs)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestWalkInitialWaitAndSingleRead(t *testing.T) {
	// Buckets of 10/20/30 bytes; arrive at t=3, mid bucket 0. The first
	// complete bucket is bucket 1, starting at 10 and ending at 30.
	ch := testChannel(t, 10, 20, 30)
	c := &scriptClient{steps: []Step{Done(true)}}
	res, err := Walk(ch, c, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.seen) != 1 || c.seen[0] != 1 {
		t.Fatalf("client saw buckets %v, want [1]", c.seen)
	}
	if c.ends[0] != 30 {
		t.Fatalf("bucket end %d, want 30", c.ends[0])
	}
	if res.Access != 27 { // 30 - 3
		t.Fatalf("Access = %d, want 27", res.Access)
	}
	if res.Tuning != 20 {
		t.Fatalf("Tuning = %d, want 20", res.Tuning)
	}
	if !res.Found || res.Probes != 1 {
		t.Fatalf("Found=%v Probes=%d", res.Found, res.Probes)
	}
}

func TestWalkNextReadsConsecutive(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	c := &scriptClient{steps: []Step{Next(), Next(), Done(false)}}
	res, err := Walk(ch, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.seen) != 3 || c.seen[0] != 0 || c.seen[1] != 1 || c.seen[2] != 2 {
		t.Fatalf("client saw %v, want [0 1 2]", c.seen)
	}
	if res.Tuning != 60 || res.Access != 60 || res.Found {
		t.Fatalf("res = %+v", res)
	}
}

func TestWalkNextWrapsCycle(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	c := &scriptClient{steps: []Step{Next(), Done(true)}}
	// Arrive mid bucket 2: first complete bucket is bucket 0 of next cycle.
	res, err := Walk(ch, c, 35, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.seen[0] != 0 || c.seen[1] != 1 {
		t.Fatalf("client saw %v, want [0 1]", c.seen)
	}
	// Bucket 0 of cycle 2 spans [60,70), bucket 1 ends at 90.
	if res.Access != 90-35 {
		t.Fatalf("Access = %d, want 55", res.Access)
	}
	if res.Tuning != 30 {
		t.Fatalf("Tuning = %d, want 30", res.Tuning)
	}
}

func TestWalkDozeSkipsTuning(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	// Read bucket 0 (ends 10), doze to bucket 2 (starts 30, ends 60).
	c := &scriptClient{steps: []Step{Doze(30), Done(true)}}
	res, err := Walk(ch, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuning != 40 { // 10 + 30, bucket 1 skipped
		t.Fatalf("Tuning = %d, want 40", res.Tuning)
	}
	if res.Access != 60 {
		t.Fatalf("Access = %d, want 60", res.Access)
	}
}

func TestWalkDozeMidBucketWaitsForBoundary(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	// Doze target 15 lands mid bucket 1; the next complete bucket is 2.
	c := &scriptClient{steps: []Step{Doze(15), Done(true)}}
	res, err := Walk(ch, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.seen[1]; got != 2 {
		t.Fatalf("after doze client read bucket %d, want 2", got)
	}
	if res.Tuning != 40 {
		t.Fatalf("Tuning = %d, want 40", res.Tuning)
	}
}

func TestWalkRejectsPastDoze(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	c := &scriptClient{steps: []Step{Doze(5)}} // bucket 0 ends at 10 > 5
	if _, err := Walk(ch, c, 0, 0); err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("err = %v, want doze-into-past error", err)
	}
}

func TestWalkStepBudget(t *testing.T) {
	ch := testChannel(t, 10)
	c := clientFunc(func(units.BucketIndex, sim.Time) Step { return Next() })
	if _, err := Walk(ch, c, 0, 100); err == nil {
		t.Fatal("non-terminating client should exceed step budget")
	}
}

func TestWalkInvalidStepKind(t *testing.T) {
	ch := testChannel(t, 10)
	c := clientFunc(func(units.BucketIndex, sim.Time) Step { return Step{} })
	if _, err := Walk(ch, c, 0, 0); err == nil {
		t.Fatal("zero step kind should error")
	}
}

type clientFunc func(units.BucketIndex, sim.Time) Step

func (f clientFunc) OnBucket(i units.BucketIndex, end sim.Time) Step { return f(i, end) }

func TestWalkArrivalExactlyAtBoundary(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	c := &scriptClient{steps: []Step{Done(true)}}
	res, err := Walk(ch, c, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.seen[0] != 1 || res.Access != 20 {
		t.Fatalf("seen=%v access=%d, want bucket 1, access 20", c.seen, res.Access)
	}
}
