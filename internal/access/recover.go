package access

import (
	"fmt"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// Corrupter is the unreliable-channel decision process: it reports whether
// the probe-th bucket read of the current request (of the given encoded
// size) reached the receiver unusable. internal/faults.Injector implements
// it from the dedicated splitmix(seed, shard, "faults") substream; the
// interface lives here so the access layer stays independent of the fault
// models.
type Corrupter interface {
	Corrupt(probe int, size units.ByteCount) bool
}

// RecoverPolicy is the client-side retry policy applied when a read fails
// its integrity check (wire.ErrChecksum on real bytes; the Corrupter's
// verdict in simulation). The same policy serves every scheme: a protocol
// state machine cannot trust anything derived from a corrupted bucket, so
// recovery discards the per-query state and re-tunes — either immediately
// at the next complete bucket (the protocol re-acquires its next index
// segment from the offsets every scheme broadcasts) or, doze-aware, at the
// next cycle start.
type RecoverPolicy struct {
	// NextCycle re-tunes at the next broadcast-cycle start instead of the
	// next bucket; the wait is spent dozing, so it trades access time for
	// tuning time.
	NextCycle bool
	// MaxRetries bounds corrupted reads tolerated per request; past the
	// bound the request is abandoned as an unrecoverable miss. 0 means
	// unbounded — note that a serial scheme (flat, signature) can only
	// conclude a key is absent after a full clean pass of the cycle, so at
	// high error rates an unbounded search for a missing key may never
	// terminate (WalkRecover then fails on its step budget); bound the
	// retries when data availability is below 100%.
	MaxRetries int
}

// WalkRecover executes one query over an unreliable channel: Walk's
// mechanics plus the corruption process and the retry policy. Every read
// — clean or corrupted — pays its byte cost in tuning time (the receiver
// listened either way); a corrupted read additionally counts into Restarts
// and Wasted, and the protocol restarts from a fresh client at the
// position the policy selects. newClient must return a fresh protocol
// state machine per restart. inj may be nil for a perfect channel, in
// which case WalkRecover behaves exactly like Walk.
//
//airlint:hotpath
func WalkRecover(ch *channel.Channel, newClient func() Client, arrival sim.Time, inj Corrupter, pol RecoverPolicy, maxSteps int) (FaultyResult, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	var res FaultyResult
	c := newClient()
	idx, start := ch.NextBucketAt(arrival)
	for step := 0; step < maxSteps; step++ {
		end := ch.EndGiven(idx, start)
		size := ch.SizeOf(idx)
		probe := res.Probes // 0-based read index within this request
		res.Tuning += size
		res.Probes++
		if inj != nil && inj.Corrupt(probe, size) {
			res.Restarts++
			res.Wasted += size
			if pol.MaxRetries > 0 && res.Restarts > pol.MaxRetries {
				// Retry budget exhausted: abandon the request. The time
				// already spent still counts — the user waited for it.
				res.Access = units.Elapsed(arrival, end)
				res.Found = false
				res.Unrecovered = true
				return res, nil
			}
			c = newClient()
			if pol.NextCycle {
				// Doze (no tuning cost) until the cycle restarts.
				idx, start = ch.NextBucketAt(ch.NextCycleStart(end))
			} else {
				idx, start = ch.NextBucketAt(end)
			}
			continue
		}
		s := c.OnBucket(idx, end)
		switch s.Kind {
		case StepNext:
			idx = idx.Next(ch.NumBuckets())
			start = end
		case StepDoze:
			if s.At < end {
				//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
				return res, fmt.Errorf("access: client dozed into the past: %d < %d", s.At, end) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
			}
			if s.Hint.InCycle(ch.NumBuckets()) && units.CycleOffset(s.At, ch.CycleLen()) == ch.StartInCycle(s.Hint) {
				idx, start = s.Hint, s.At
			} else {
				idx, start = ch.NextBucketAt(s.At)
			}
		case StepDone:
			res.Access = units.Elapsed(arrival, end)
			res.Found = s.Found
			return res, nil
		default:
			//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
			return res, fmt.Errorf("access: invalid step kind %d", s.Kind) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
		}
	}
	if pol.MaxRetries <= 0 {
		//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
		return res, fmt.Errorf("access: recovering query exceeded %d steps without terminating (unbounded retries; bound RecoverPolicy.MaxRetries — at this error rate the scheme cannot complete a clean pass)", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
	}
	//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
	return res, fmt.Errorf("access: recovering query exceeded %d steps without terminating", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
}
