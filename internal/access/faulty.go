package access

import (
	"fmt"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// FaultyResult extends Result with error-recovery accounting.
type FaultyResult struct {
	Result
	// Restarts counts protocol restarts forced by corrupted buckets (the
	// request's retry count).
	Restarts int
	// Wasted is the tuning spent on reads that turned out corrupted: bytes
	// the receiver listened to and then had to discard.
	Wasted units.ByteCount
	// Unrecovered reports that the request was abandoned after exhausting
	// its retry budget — an unrecoverable miss, distinct from a clean
	// not-found outcome.
	Unrecovered bool
}

// WalkFaulty is Walk on an error-prone channel (the extension motivated by
// the paper's reference [9]): every bucket read is corrupted independently
// with probability ber. A client cannot interpret a corrupted bucket, so
// it discards its protocol state and restarts the search from the current
// position — the simplest recovery strategy, which still pays for the
// corrupted read in both tuning and access time. newClient must return a
// fresh protocol state machine per restart; rnd draws uniform [0,1)
// values.
//
//airlint:hotpath
func WalkFaulty(ch *channel.Channel, newClient func() Client, arrival sim.Time, ber float64, rnd func() float64, maxSteps int) (FaultyResult, error) {
	if ber < 0 || ber >= 1 {
		//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
		return FaultyResult{}, fmt.Errorf("access: bit error rate %v outside [0,1)", ber) //airlint:allow hotalloc argument validation, once per call before the loop
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	var res FaultyResult
	c := newClient()
	idx, start := ch.NextBucketAt(arrival)
	for step := 0; step < maxSteps; step++ {
		end := ch.EndGiven(idx, start)
		res.Tuning += ch.SizeOf(idx)
		res.Probes++
		if ber > 0 && rnd() < ber {
			// Corrupted: the read is wasted; restart the protocol at the
			// next complete bucket.
			res.Restarts++
			res.Wasted += ch.SizeOf(idx)
			c = newClient()
			idx, start = ch.NextBucketAt(end)
			continue
		}
		s := c.OnBucket(idx, end)
		switch s.Kind {
		case StepNext:
			idx = idx.Next(ch.NumBuckets())
			start = end
		case StepDoze:
			if s.At < end {
				//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
				return res, fmt.Errorf("access: client dozed into the past: %d < %d", s.At, end) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
			}
			if s.Hint.InCycle(ch.NumBuckets()) && units.CycleOffset(s.At, ch.CycleLen()) == ch.StartInCycle(s.Hint) {
				idx, start = s.Hint, s.At
			} else {
				idx, start = ch.NextBucketAt(s.At)
			}
		case StepDone:
			res.Access = units.Elapsed(arrival, end)
			res.Found = s.Found
			return res, nil
		default:
			//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
			return res, fmt.Errorf("access: invalid step kind %d", s.Kind) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
		}
	}
	//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
	return res, fmt.Errorf("access: faulty query exceeded %d steps without terminating", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
}
