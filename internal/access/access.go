// Package access defines the contract between the testbed and the wireless
// data access methods it evaluates.
//
// A scheme packages its broadcast-cycle construction (server side) and its
// access protocol (client side) behind the Broadcast interface. The client
// side is a per-query state machine: the runner feeds it one fully-read
// bucket at a time and the client answers with its next move — keep
// listening, doze until a byte offset, or finish. This is exactly the
// selective-tuning model of the paper: tuning time accumulates only while
// buckets are actually being read, access time runs from request arrival to
// download completion.
package access

import (
	"fmt"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// StepKind is a client's next move after reading a bucket.
type StepKind uint8

const (
	// StepNext keeps the receiver on: read the bucket that immediately
	// follows the one just read.
	StepNext StepKind = iota + 1
	// StepDoze switches to doze mode until Step.At, then reads the next
	// complete bucket broadcast at or after that time.
	StepDoze
	// StepDone ends the query; Step.Found reports success.
	StepDone
)

// Step is a client's reply to an OnBucket callback.
type Step struct {
	Kind  StepKind
	At    sim.Time // StepDoze: wake-up time; must not precede the current time
	Found bool     // StepDone: whether the requested record was downloaded
	// Hint optionally names the bucket index the doze targets when the
	// client computed At with channel.NextOccurrence. It lets the runner
	// skip the position search; -1 (or a stale hint) falls back to it.
	Hint units.BucketIndex
}

// Next returns the keep-listening step.
func Next() Step { return Step{Kind: StepNext, Hint: -1} }

// Doze returns a doze-until step.
func Doze(at sim.Time) Step { return Step{Kind: StepDoze, At: at, Hint: -1} }

// DozeAt returns a doze-until step targeting a known bucket index whose
// next occurrence begins exactly at t.
func DozeAt(idx units.BucketIndex, t sim.Time) Step { return Step{Kind: StepDoze, At: t, Hint: idx} }

// Done returns a terminal step.
func Done(found bool) Step { return Step{Kind: StepDone, Found: found} }

// Client is the access-protocol state machine for a single query. The
// runner reads a bucket (paying its byte cost in tuning time) and then asks
// the client what to do next. The bucket is identified by its index within
// the broadcast cycle; end is the absolute time at which its last byte was
// received.
type Client interface {
	OnBucket(bucketIndex units.BucketIndex, end sim.Time) Step
}

// Broadcast couples one constructed broadcast cycle with its access
// protocol. Implementations live in internal/schemes.
type Broadcast interface {
	// Name identifies the scheme ("flat", "(1,m)", "distributed",
	// "hashing", "signature").
	Name() string
	// Channel returns the constructed broadcast cycle.
	Channel() *channel.Channel
	// NewClient returns a fresh protocol state machine for the given key.
	NewClient(key uint64) Client
	// Contains reports ground truth about key presence, for validation.
	Contains(key uint64) bool
	// Params reports scheme parameters (tree depth, fanout, overflow, ...)
	// for experiment logs.
	Params() map[string]float64
}

// AttrQuerier is implemented by broadcasts that can answer attribute-
// equality queries ("find the record whose i-th attribute equals v") in
// addition to primary-key lookups. Signature-based schemes support this
// naturally — signatures superimpose every field (paper §2.3, after [8]) —
// while key-indexed schemes can only serve such queries by scanning.
type AttrQuerier interface {
	// NewAttrClient returns a protocol state machine that searches for the
	// first record whose attribute attr equals value.
	NewAttrClient(attr int, value string) Client
}

// Result is the outcome of one query.
type Result struct {
	// Access is the paper's access time: bytes elapsed from request
	// arrival to the end of the final bucket read.
	Access units.ByteCount
	// Tuning is the paper's tuning time: bytes spent actively listening.
	Tuning units.ByteCount
	// Found reports whether the record was downloaded.
	Found bool
	// Probes counts buckets read (active-mode tune-ins).
	Probes int
}

// DefaultMaxSteps bounds a single query walk; generous enough for a serial
// scan of the largest configured cycle plus protocol overhead.
const DefaultMaxSteps = 1 << 22

// Walk executes one query against the channel, starting at the arrival
// time, and returns its access/tuning accounting. The walk implements the
// shared mechanics of every protocol in the paper: the client first waits
// for the next complete bucket (initial wait), reads it, and then follows
// the client's steps until StepDone. maxSteps <= 0 selects
// DefaultMaxSteps.
//
//airlint:hotpath
func Walk(ch *channel.Channel, c Client, arrival sim.Time, maxSteps int) (Result, error) {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	var res Result
	idx, start := ch.NextBucketAt(arrival)
	for step := 0; step < maxSteps; step++ {
		end := ch.EndGiven(idx, start)
		res.Tuning += ch.SizeOf(idx)
		res.Probes++
		s := c.OnBucket(idx, end)
		switch s.Kind {
		case StepNext:
			// Buckets are contiguous: the next one starts where this ended.
			idx = idx.Next(ch.NumBuckets())
			start = end
		case StepDoze:
			if s.At < end {
				//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
				return res, fmt.Errorf("access: client dozed into the past: %d < %d", s.At, end) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
			}
			if s.Hint.InCycle(ch.NumBuckets()) && units.CycleOffset(s.At, ch.CycleLen()) == ch.StartInCycle(s.Hint) {
				idx, start = s.Hint, s.At
			} else {
				idx, start = ch.NextBucketAt(s.At)
			}
		case StepDone:
			res.Access = units.Elapsed(arrival, end)
			res.Found = s.Found
			return res, nil
		default:
			//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
			return res, fmt.Errorf("access: invalid step kind %d", s.Kind) //airlint:allow hotalloc terminal protocol-violation path, never taken by a correct client
		}
	}
	//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
	return res, fmt.Errorf("access: query exceeded %d steps without terminating", maxSteps) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed query
}
