package access

import (
	"testing"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// kindBucket is a fakeBucket with an explicit wire kind, for exercising
// the index/data allocation split.
type kindBucket struct {
	size int
	kind wire.Kind
}

func (b kindBucket) Size() units.ByteCount { return units.Bytes(b.size) }
func (b kindBucket) Kind() wire.Kind       { return b.kind }
func (b kindBucket) Encode() []byte        { return make([]byte, b.size) }

// k1Set wraps a channel in a one-channel replicated allocation with zero
// switch cost — the configuration whose walks must be byte-identical to
// the single-channel walkers.
func k1Set(t *testing.T, ch *channel.Channel) *multichannel.Set {
	t.Helper()
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// hopClient is a protocol-shaped client: it alternates serial reads and
// hinted dozes (computed with NextOccurrence against the logical cycle,
// exactly like the real schemes) and finishes after a fixed number of
// reads.
type hopClient struct {
	ch     *channel.Channel
	stride int
	quota  int
	reads  int
}

func (c *hopClient) OnBucket(i units.BucketIndex, end sim.Time) Step {
	c.reads++
	if c.reads >= c.quota {
		return Done(true)
	}
	if c.reads%2 == 1 {
		target := i.Step(c.stride, c.ch.NumBuckets())
		return DozeAt(target, c.ch.NextOccurrence(target, end))
	}
	return Next()
}

// TestWalkMultiK1Identity pins the K=1 identity guarantee at the walker
// level: for a protocol-shaped client over an uneven cycle, WalkMulti on
// a one-channel replicated set must reproduce Walk exactly at every
// arrival offset.
func TestWalkMultiK1Identity(t *testing.T) {
	ch := testChannel(t, 10, 25, 5, 30, 10)
	set := k1Set(t, ch)
	cycle := int64(ch.CycleLen())
	for arrival := int64(0); arrival < 2*cycle; arrival += 3 {
		want, err := Walk(ch, &hopClient{ch: ch, stride: 3, quota: 6}, sim.Time(arrival), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WalkMulti(set, &hopClient{ch: ch, stride: 3, quota: 6}, sim.Time(arrival), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Result != want {
			t.Fatalf("arrival %d: WalkMulti %+v, Walk %+v", arrival, got.Result, want)
		}
		if got.Switches != 0 || got.SwitchWait != 0 {
			t.Fatalf("arrival %d: K=1 walk hopped: %d switches", arrival, got.Switches)
		}
	}
}

// probeCorrupter corrupts a fixed set of probe indices, mirroring the
// deterministic injector's counter-based interface.
type probeCorrupter map[int]bool

func (p probeCorrupter) Corrupt(probe int, size units.ByteCount) bool { return p[probe] }

// TestWalkRecoverMultiK1Identity pins the K=1 identity of the recovering
// walker under both recovery policies and a bounded retry budget.
func TestWalkRecoverMultiK1Identity(t *testing.T) {
	ch := testChannel(t, 10, 25, 5, 30, 10)
	set := k1Set(t, ch)
	bad := probeCorrupter{1: true, 3: true, 4: true, 7: true}
	for _, pol := range []RecoverPolicy{
		{},
		{NextCycle: true},
		{MaxRetries: 2},
		{NextCycle: true, MaxRetries: 3},
	} {
		for arrival := int64(0); arrival < 160; arrival += 7 {
			mk := func() Client { return &hopClient{ch: ch, stride: 2, quota: 5} }
			want, err := WalkRecover(ch, mk, sim.Time(arrival), bad, pol, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := WalkRecoverMulti(set, mk, sim.Time(arrival), bad, pol, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got.FaultyResult != want {
				t.Fatalf("pol %+v arrival %d: WalkRecoverMulti %+v, WalkRecover %+v", pol, arrival, got.FaultyResult, want)
			}
		}
	}
}

// TestWalkMultiHopsToStaggeredReplica checks the replicated win: a doze
// to a bucket that comes sooner on the phase-shifted channel hops there,
// pays no tuning for the wait, and counts the switch.
func TestWalkMultiHopsToStaggeredReplica(t *testing.T) {
	ch := testChannel(t, 10, 10, 10, 10) // cycle 40; K=2 stagger 20
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Read bucket 0 (ends at 10), then doze to bucket 0's next broadcast:
	// channel 0 has it at 40, channel 1 (phase 20) at 20 — hop wins.
	c := &scriptClient{steps: []Step{DozeAt(0, ch.NextOccurrence(0, 10)), Done(true)}}
	res, err := WalkMulti(set, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 1 {
		t.Fatalf("Switches = %d, want 1", res.Switches)
	}
	if res.Access != 30 { // second read starts 20, ends 30
		t.Fatalf("Access = %d, want 30 (staggered replica at 20)", res.Access)
	}
	if res.Tuning != 20 {
		t.Fatalf("Tuning = %d, want 20 (two bucket reads, the wait dozed)", res.Tuning)
	}
	// The client saw logical indices both times.
	if len(c.seen) != 2 || c.seen[0] != 0 || c.seen[1] != 0 {
		t.Fatalf("client saw %v, want [0 0]", c.seen)
	}
}

// TestWalkMultiSwitchCostGatesHops checks that the switch cost makes a
// hop infeasible when staying is cheaper, and is charged (as dozed bytes,
// not tuning) when the hop still wins.
func TestWalkMultiSwitchCostGatesHops(t *testing.T) {
	ch := testChannel(t, 10, 10, 10, 10)
	// Cost 25: channel 1's copy of bucket 0 at 20 needs feasibility from
	// 10+25=35 -> occurrence 60; staying on channel 0 gives 40.
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 2, SwitchCost: 25})
	if err != nil {
		t.Fatal(err)
	}
	c := &scriptClient{steps: []Step{DozeAt(0, ch.NextOccurrence(0, 10)), Done(true)}}
	res, err := WalkMulti(set, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Fatalf("Switches = %d, want 0 (cost should gate the hop)", res.Switches)
	}
	if res.Access != 50 { // stays: next occurrence at 40, ends 50
		t.Fatalf("Access = %d, want 50", res.Access)
	}

	// Cost 5: hop is feasible from 15 -> channel 1 occurrence at 20 still
	// beats 40. SwitchWait records the 5 dozed bytes.
	set, err = multichannel.Build(ch, multichannel.Config{Channels: 2, SwitchCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	c = &scriptClient{steps: []Step{DozeAt(0, ch.NextOccurrence(0, 10)), Done(true)}}
	res, err = WalkMulti(set, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 1 || res.SwitchWait != 5 {
		t.Fatalf("Switches = %d SwitchWait = %d, want 1/5", res.Switches, res.SwitchWait)
	}
	if res.Access != 30 || res.Tuning != 20 {
		t.Fatalf("Access/Tuning = %d/%d, want 30/20 (retune dozed, not tuned)", res.Access, res.Tuning)
	}
}

// TestWalkMultiSerialScanStaysPut checks that StepNext never hops under
// the replicated policy: the contiguous next bucket on the current
// channel is always the earliest feasible occurrence.
func TestWalkMultiSerialScanStaysPut(t *testing.T) {
	ch := testChannel(t, 10, 20, 30, 40)
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := &scriptClient{steps: []Step{Next(), Next(), Next(), Next(), Next(), Done(true)}}
	res, err := WalkMulti(set, c, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Fatalf("serial scan hopped %d times, want 0", res.Switches)
	}
	want, err := Walk(ch, &scriptClient{steps: []Step{Next(), Next(), Next(), Next(), Next(), Done(true)}}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != want {
		t.Fatalf("serial scan result %+v, want %+v", res.Result, want)
	}
}

// TestWalkMultiIndexDataFollowsPointerAcrossChannels drives an
// index/data split: the client reads an index bucket on the index
// channel and dozes to a data bucket that only the data channel carries.
func TestWalkMultiIndexDataFollowsPointerAcrossChannels(t *testing.T) {
	ch := mixedChannel(t) // indices 0,1 index (10B); 2..5 data (30B); cycle 140
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 2, Policy: multichannel.PolicyIndexData})
	if err != nil {
		t.Fatal(err)
	}
	// Arrive at 0: the earliest boundary is the index channel's bucket 0
	// (index cycle 20B). Doze to logical data bucket 3 — only on channel
	// 1, whose cycle is the 120 data bytes; bucket 3 is local 1 at offset
	// 30.
	c := &scriptClient{steps: []Step{DozeAt(3, ch.NextOccurrence(3, 10)), Done(true)}}
	res, err := WalkMulti(set, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 1 {
		t.Fatalf("Switches = %d, want 1 (index -> data hop)", res.Switches)
	}
	if len(c.seen) != 2 || c.seen[0] != 0 || c.seen[1] != 3 {
		t.Fatalf("client saw logical %v, want [0 3]", c.seen)
	}
	if res.Access != 60 { // data channel: bucket 3 at 30, ends 60
		t.Fatalf("Access = %d, want 60", res.Access)
	}
	if res.Tuning != 40 { // 10 (index) + 30 (data)
		t.Fatalf("Tuning = %d, want 40", res.Tuning)
	}
}

// TestWalkMultiUnhintedDozeStaysOnChannel checks the fallback: a doze
// without a hint wakes on the current channel at the requested time.
func TestWalkMultiUnhintedDozeStaysOnChannel(t *testing.T) {
	ch := testChannel(t, 10, 10, 10, 10)
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := &scriptClient{steps: []Step{Doze(35), Done(true)}}
	res, err := WalkMulti(set, c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Fatalf("unhinted doze hopped")
	}
	if res.Access != 50 { // next boundary on channel 0 at/after 35 is 40; read ends 50
		t.Fatalf("Access = %d, want 50", res.Access)
	}
}

// TestWalkMultiDozePastError keeps Walk's protocol check.
func TestWalkMultiDozePastError(t *testing.T) {
	ch := testChannel(t, 10, 10)
	set := k1Set(t, ch)
	c := &scriptClient{steps: []Step{Doze(3)}}
	if _, err := WalkMulti(set, c, 0, 0); err == nil {
		t.Fatal("doze into the past should error")
	}
}

// TestWalkRecoverMultiRecoversOnCurrentChannel checks that a corrupted
// read restarts on the channel the receiver is tuned to, under both
// policies, against the index/data split (where the channels differ).
func TestWalkRecoverMultiRecoversOnCurrentChannel(t *testing.T) {
	ch := mixedChannel(t)
	set, err := multichannel.Build(ch, multichannel.Config{Channels: 2, Policy: multichannel.PolicyIndexData})
	if err != nil {
		t.Fatal(err)
	}
	// Probe 0 is corrupted. The receiver is on the index channel (bucket
	// 0 read ends at 10); restart re-reads the next index-channel bucket.
	bad := probeCorrupter{0: true}
	mk := func() Client { return &scriptClient{steps: []Step{Done(true)}} }
	res, err := WalkRecoverMulti(set, mk, 0, bad, RecoverPolicy{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 || res.Switches != 0 {
		t.Fatalf("Restarts=%d Switches=%d, want 1/0", res.Restarts, res.Switches)
	}
	if res.Access != 20 { // index channel bucket 1 read 10..20
		t.Fatalf("Access = %d, want 20", res.Access)
	}
}

// mixedChannel builds a cycle with two 10-byte index buckets followed by
// four 30-byte data buckets.
func mixedChannel(t *testing.T) *channel.Channel {
	t.Helper()
	bs := []channel.Bucket{
		kindBucket{size: 10, kind: wire.KindIndex}, kindBucket{size: 10, kind: wire.KindIndex},
		kindBucket{size: 30, kind: wire.KindData}, kindBucket{size: 30, kind: wire.KindData},
		kindBucket{size: 30, kind: wire.KindData}, kindBucket{size: 30, kind: wire.KindData},
	}
	ch, err := channel.Build(bs)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}
