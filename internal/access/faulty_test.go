package access

import (
	"math/rand"
	"testing"

	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func TestWalkFaultyZeroBERMatchesWalk(t *testing.T) {
	ch := testChannel(t, 10, 20, 30)
	mk := func() Client {
		return &scriptClient{steps: []Step{Next(), Next(), Done(true)}}
	}
	plain, err := Walk(ch, mk(), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := WalkFaulty(ch, mk, 5, 0, func() float64 { return 1 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Result != plain || faulty.Restarts != 0 {
		t.Fatalf("faulty %+v != plain %+v", faulty, plain)
	}
}

func TestWalkFaultyRestartsOnCorruption(t *testing.T) {
	ch := testChannel(t, 10, 10, 10)
	calls := 0
	mk := func() Client {
		calls++
		return clientFunc(func(units.BucketIndex, sim.Time) Step { return Done(true) })
	}
	// First read corrupted, second clean.
	draws := []float64{0.0, 0.99}
	i := 0
	rnd := func() float64 { v := draws[i]; i++; return v }
	res, err := WalkFaulty(ch, mk, 0, 0.5, rnd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
	if calls != 2 {
		t.Fatalf("client constructed %d times, want 2", calls)
	}
	if res.Probes != 2 || res.Tuning != 20 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWalkFaultyAlwaysCorruptExhaustsBudget(t *testing.T) {
	ch := testChannel(t, 10)
	mk := func() Client {
		return clientFunc(func(units.BucketIndex, sim.Time) Step { return Done(true) })
	}
	if _, err := WalkFaulty(ch, mk, 0, 0.9, func() float64 { return 0 }, 50); err == nil {
		t.Fatal("all-corrupt channel should exhaust the step budget")
	}
}

func TestWalkFaultyInvalidBER(t *testing.T) {
	ch := testChannel(t, 10)
	mk := func() Client { return clientFunc(func(units.BucketIndex, sim.Time) Step { return Done(true) }) }
	for _, ber := range []float64{-0.1, 1.0, 2.0} {
		if _, err := WalkFaulty(ch, mk, 0, ber, rand.Float64, 0); err == nil {
			t.Fatalf("BER %v accepted", ber)
		}
	}
}
