package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/airindex/airindex/internal/lint/flow"
)

// MapOrderAnalyzer is the flow-sensitive companion to determinism's
// syntactic map-range rule. Ranging over a Go map yields keys in a
// deliberately randomized order; any value derived from that iteration
// is tainted "unordered" and must not reach an order-sensitive sink —
// a core.Result field, the experiment table emitters, or an fmt/writer
// call — unless the taint is killed by a sort. Unlike the AST rule it
// tracks the value through assignments, appends, string building and
// branches, and it knows that sort.Strings(keys) actually cleanses keys.
//
// Lattice: Store[token.Pos] mapping each tainted location to the
// position of the map range that produced it (first range wins at joins,
// for deterministic messages). Sanitizers: any call into sort or slices
// whose name starts with "Sort" (plus sort.Strings/Ints/Float64s and the
// *Stable/*Func variants) clears its argument and returns clean values.
// Sinks are checked module-wide.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "map-iteration-ordered data must be sorted before reaching Result fields, experiment tables, or fmt/writer sinks",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		flow.FuncGraphs(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, g *flow.Graph) {
			mo := &mapOrderFunc{pass: pass}
			l := flow.Lattice[flow.Store[token.Pos]]{
				Init: flow.Store[token.Pos]{},
				Join: func(a, b flow.Store[token.Pos]) flow.Store[token.Pos] {
					return flow.JoinStores(a, b, func(x, y token.Pos) token.Pos {
						if y < x {
							return y
						}
						return x
					})
				},
				Equal:    flow.Store[token.Pos].Equal,
				Transfer: mo.transfer,
			}
			flow.ForwardVisit(g, l, mo.visit)
		})
	}
}

type mapOrderFunc struct {
	pass *Pass
	// reported dedups findings per sink call position: one call with two
	// tainted arguments is one finding.
	reported map[token.Pos]bool
}

// transfer implements the taint step for one CFG node.
func (mo *mapOrderFunc) transfer(n ast.Node, in flow.Store[token.Pos]) flow.Store[token.Pos] {
	out := in.Clone()

	// Sanitizer calls anywhere in the node (including `sort.Strings(ks)`
	// as a bare statement) cleanse their slice argument in place.
	flow.InspectNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if mo.isSanitizer(call) {
			for _, arg := range call.Args {
				if r, ok := flow.RefOf(mo.pass.Info, arg); ok {
					out.Clear(r)
				}
			}
		}
		return true
	})

	switch n := n.(type) {
	case *ast.RangeStmt:
		// Over a map the iteration itself is the taint source; over any
		// other tainted collection (keys gathered from a map range) the
		// loop variables inherit the collection's origin, so the common
		// `for _, k := range keys { emit(k) }` pattern stays tracked.
		taint := token.NoPos
		if mo.rangesOverMap(n) {
			taint = n.Pos()
		} else {
			taint = mo.eval(n.X, out)
		}
		if taint.IsValid() {
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if r, ok := flow.RefOf(mo.pass.Info, e); ok {
					out.Set(r, taint)
				}
			}
		}
	case *ast.AssignStmt, *ast.DeclStmt:
		// Compound ops (`s += x`) fold the rhs into the old value, so the
		// lhs keeps any taint it already carried.
		compound := false
		if a, ok := n.(*ast.AssignStmt); ok {
			compound = a.Tok != token.ASSIGN && a.Tok != token.DEFINE
		}
		for _, as := range flow.Assignments(n) {
			var taint token.Pos
			if as.Rhs != nil {
				taint = mo.eval(as.Rhs, out)
			}
			if r, ok := flow.RefOf(mo.pass.Info, as.Lhs); ok {
				if compound {
					if old, ok := out.Get(r); ok {
						taint = firstPos(taint, old)
					}
				}
				if taint.IsValid() {
					out.Set(r, taint)
				} else {
					out.Clear(r)
				}
				continue
			}
			// Weak update through an index or other unresolvable lvalue:
			// `keys[i] = k` taints the whole slice.
			if taint.IsValid() {
				if base := mo.indexBase(as.Lhs); !base.IsZero() {
					if old, ok := out.Get(base); !ok || taint < old {
						out[base] = taint
					}
				}
			}
		}
	}
	return out
}

// indexBase resolves `xs[i]` (or `(*p)[i]`) to the Ref of xs.
func (mo *mapOrderFunc) indexBase(e ast.Expr) flow.Ref {
	if ix, ok := e.(*ast.IndexExpr); ok {
		if r, ok := flow.RefOf(mo.pass.Info, ix.X); ok {
			return r
		}
	}
	return flow.Ref{}
}

// eval returns the taint origin of an expression's value, or NoPos.
func (mo *mapOrderFunc) eval(e ast.Expr, s flow.Store[token.Pos]) token.Pos {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		if r, ok := flow.RefOf(mo.pass.Info, e); ok {
			if p, ok := s.Get(r); ok {
				return p
			}
		}
		return token.NoPos
	case *ast.ParenExpr:
		return mo.eval(e.X, s)
	case *ast.UnaryExpr:
		return mo.eval(e.X, s)
	case *ast.BinaryExpr:
		return firstPos(mo.eval(e.X, s), mo.eval(e.Y, s))
	case *ast.IndexExpr:
		return firstPos(mo.eval(e.X, s), mo.eval(e.Index, s))
	case *ast.SliceExpr:
		return mo.eval(e.X, s)
	case *ast.CompositeLit:
		var p token.Pos
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			p = firstPos(p, mo.eval(el, s))
		}
		return p
	case *ast.TypeAssertExpr:
		return mo.eval(e.X, s)
	case *ast.CallExpr:
		if mo.isSanitizer(e) {
			return token.NoPos
		}
		// len/cap of a tainted collection are order-independent.
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, isB := mo.pass.Info.ObjectOf(id).(*types.Builtin); isB {
				switch b.Name() {
				case "len", "cap":
					return token.NoPos
				}
			}
		}
		// Conversions and ordinary calls (append, Sprintf, strings.Join,
		// helpers) conservatively propagate their arguments' taint.
		var p token.Pos
		for _, a := range e.Args {
			p = firstPos(p, mo.eval(a, s))
		}
		// A method call on a tainted receiver yields tainted data too
		// (e.g. b.String() of a builder fed from a map range).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			p = firstPos(p, mo.eval(sel.X, s))
		}
		return p
	}
	return token.NoPos
}

func firstPos(a, b token.Pos) token.Pos {
	switch {
	case !a.IsValid():
		return b
	case !b.IsValid():
		return a
	case b < a:
		return b
	default:
		return a
	}
}

// rangesOverMap reports whether the range expression's type is a map.
func (mo *mapOrderFunc) rangesOverMap(n *ast.RangeStmt) bool {
	tv, ok := mo.pass.Info.Types[n.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isSanitizer recognizes the sort.*/slices.Sort* family.
func (mo *mapOrderFunc) isSanitizer(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := mo.pass.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		// Everything in package sort either sorts or answers questions
		// about sorted data; treating the package as a sanitizer keeps
		// the rule simple and errs on silence, not noise.
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// visit checks the sinks reachable in this node against the incoming
// taint.
func (mo *mapOrderFunc) visit(n ast.Node, before flow.Store[token.Pos]) {
	// Replay the node's internal sanitizer effects are not needed:
	// within one statement a sink call's arguments are evaluated before
	// any sort it also contains could matter in practice.
	if mo.reported == nil {
		mo.reported = make(map[token.Pos]bool)
	}

	// Sink 1: assignments into core.Result (field or whole struct).
	switch st := n.(type) {
	case *ast.AssignStmt, *ast.DeclStmt:
		for _, as := range flow.Assignments(st) {
			if as.Rhs == nil {
				continue
			}
			if !mo.isResultLvalue(as.Lhs) {
				continue
			}
			if p := mo.eval(as.Rhs, before); p.IsValid() {
				mo.report(as.Lhs.Pos(), "core.Result", p)
			}
		}
	}

	// Sinks 2+3: fmt/writer/table emission calls anywhere in the node.
	flow.InspectNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, ok := mo.sinkKind(call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if p := mo.eval(arg, before); p.IsValid() {
				mo.report(call.Pos(), kind, p)
				break
			}
		}
		return true
	})
}

func (mo *mapOrderFunc) report(sink token.Pos, kind string, origin token.Pos) {
	if mo.reported[sink] {
		return
	}
	mo.reported[sink] = true
	mo.pass.Reportf(sink,
		"value ordered by map iteration (range at line %d) reaches %s sink; sort it first (sort.* / slices.Sort*) so emitted order is deterministic",
		mo.pass.Fset.Position(origin).Line, kind)
}

// isResultLvalue reports whether e writes into a core.Result (a field
// selection on a value or pointer whose named type is Result declared in
// a package path ending in internal/core, or such a variable itself).
func (mo *mapOrderFunc) isResultLvalue(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := mo.pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return isCoreResultType(tv.Type)
}

func isCoreResultType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Result" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/core" || strings.HasSuffix(path, "/internal/core")
}

// sinkKind classifies a call as an emission sink. Module-wide: fmt
// printing, csv/table writers, and any method named Write* or the
// experiment table's AddRow/Note.
func (mo *mapOrderFunc) sinkKind(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := mo.pass.Info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt output", true
		}
		return "", false
	}
	// Methods: writers (io.Writer implementations, csv.Writer.Write,
	// strings.Builder.WriteString, Table.WriteCSV) and the experiment
	// table's row/note collectors.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if strings.HasPrefix(name, "Write") {
			return "writer", true
		}
		if name == "AddRow" || name == "Note" {
			return "experiment table", true
		}
	}
	return "", false
}
