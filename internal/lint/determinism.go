package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer enforces the replayability contract: a run's output
// is a pure function of its config and seed.
//
// Everywhere (outside test files) it forbids wall-clock and timer calls
// (time.Now, time.Sleep, time.Since, ...) and the global top-level
// math/rand functions — all randomness must flow through sim.RNG, which
// carries an explicit seed. The deterministic constructors rand.New,
// rand.NewSource and rand.NewZipf are permitted.
//
// One package is sanctioned for wall-clock use: internal/aircast, the
// live broadcast daemon, whose pacer exists to map the byte-clock onto
// real time (DESIGN.md §10). Determinism there holds at the edges — the
// broadcast image is a pure function of the build inputs and the chaos
// proxy draws from a seeded faults.Injector substream — so only the
// `time` ban is lifted; the math/rand bans still apply.
//
// Inside the simulation-critical packages (internal/sim, internal/schemes,
// internal/core, internal/channel, internal/access, internal/stats) it
// additionally flags `range` loops over maps whose iteration feeds a
// slice or return value with no subsequent sort in the same function:
// Go randomizes map iteration order, so such loops leak nondeterminism
// into results.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and unsorted map-iteration results",
	Run:  runDeterminism,
}

// wallClockFuncs are the package-level time functions that read the wall
// clock or real timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// seed or source and are therefore deterministic.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// wallClockSanctioned are the packages whose job is to bridge the
// byte-clock to real time; only the `time` ban is lifted for them.
var wallClockSanctioned = []string{
	"internal/aircast",
}

func runDeterminism(pass *Pass) {
	timeSanctioned := underAny(pass.RelPath, wallClockSanctioned)
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		// Only package-level functions: methods on *rand.Rand or
		// time.Time values are either seeded or pure arithmetic.
		if fn.Parent() != fn.Pkg().Scope() {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] && !timeSanctioned {
				pass.Reportf(id.Pos(), "call to time.%s reads the wall clock; simulated runs must be replayable from their seed (use sim.Time byte-clock instead)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "top-level rand.%s uses process-global randomness; draw through sim.RNG (or an explicitly seeded rand.New) instead", fn.Name())
			}
		}
	}

	if !underAny(pass.RelPath, simCritical) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkMapRanges(pass, fd)
			return true
		})
	}
}

// checkMapRanges flags map-range loops in fd whose body appends to a
// slice or returns, unless a sort call follows the loop in the same
// function body.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	var ranges []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			ranges = append(ranges, rng)
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}
	var sortPositions []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isSortCall(pass, call) {
			sortPositions = append(sortPositions, call.Pos())
		}
		return true
	})
	for _, rng := range ranges {
		if !feedsResult(rng.Body) {
			continue
		}
		sorted := false
		for _, p := range sortPositions {
			if p > rng.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			pass.Reportf(rng.For, "map iteration order is randomized; results collected here must be sorted before use (or iterate a sorted key slice)")
		}
	}
}

// feedsResult reports whether the loop body accumulates into a slice
// (via append) or returns a value — the two ways iteration order can
// escape into a run's output.
func feedsResult(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall recognizes ordering calls from the sort and slices packages.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
