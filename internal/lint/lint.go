// Package lint implements airlint, the project's static-analysis suite.
//
// The testbed's central guarantee is that every simulated run is exactly
// replayable from its seed (DESIGN.md §1). airlint enforces the coding
// contract that keeps the guarantee true as the codebase grows:
//
//   - determinism: no wall-clock reads, no global math/rand, no
//     map-iteration order leaking into results (see determinism.go);
//   - floatcompare: no exact ==/!= between floats in the analytical and
//     stats packages (see floatcompare.go);
//   - confinement: no goroutines, WaitGroups or channel fan-out outside
//     the sanctioned concurrency layer (see confinement.go);
//   - unitsafety: no conversions or arithmetic that launder one
//     internal/units measurement unit into another (see unitsafety.go);
//   - exhaustive: switches over bucket/step kinds must cover every
//     constant, and scheme-name dispatches must carry a default
//     (see exhaustive.go);
//   - mergecomplete: every counter/statistic field of a merged result
//     struct must be combined in its Merge/merge function, so a new
//     metric cannot be silently dropped at the shard barrier
//     (see mergecomplete.go);
//   - rngdiscipline: randomness in simulation-critical packages derives
//     from sim.NewRNG/NewShardRNG/StreamSeed, and StreamSeed labels are
//     distinct compile-time string literals (see rngdiscipline.go);
//   - byteclock: broadcast-image bytes are consumed only through the
//     clock-charging channel APIs — no decoding or cache reads that
//     bypass access/tuning accounting (see byteclock.go);
//   - hotalloc: functions marked `//airlint:hotpath` must be
//     allocation-free at the AST level: no closures, interface boxing,
//     map/slice literals, append, fmt, or string concatenation
//     (see hotalloc.go);
//   - maporder: flow-sensitive — a value produced by ranging over a map
//     is tainted "unordered" and may not reach a core.Result field, the
//     experiment table emitters, or an fmt/writer sink unless a
//     sort.*/slices.Sort* call kills the taint (see maporder.go);
//   - seedtaint: flow-sensitive — every value feeding an RNG
//     construction must be data-flow-reachable from Config.Seed, a
//     seed-named parameter, or a sim.StreamSeed derivation, through
//     locals, struct fields and same-package helper returns
//     (see seedtaint.go);
//   - escapecheck: cross-checks `//airlint:hotpath` functions against
//     the compiler's actual escape analysis (`go build -gcflags='-m
//     -m'`); runs only when escape data is supplied (airlint -escape)
//     (see escapecheck.go);
//   - directive: `//airlint:allow <analyzer> <reason>` suppressions and
//     the `//airlint:hotpath` marker, with unknown verbs, unknown
//     analyzers, unused suppressions and misplaced markers reported as
//     errors; files carrying a standard "Code generated ... DO NOT
//     EDIT." header are exempt from analysis (see directive.go).
//
// Everything is built on the standard library only (go/ast, go/parser,
// go/token, go/types); there are no module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package's syntax and type information through an
// analyzer, mirroring (in miniature) golang.org/x/tools/go/analysis.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// RelPath is the package directory relative to the module root using
	// forward slashes (e.g. "internal/sim"). Analyzers use it to scope
	// rules to the simulation-critical packages.
	RelPath string

	// RelFile maps each file to its module-relative path (e.g.
	// "internal/airql/parallel.go").
	RelFile map[*ast.File]string

	// Escapes holds the compiler escape diagnostics for the build, when
	// the caller supplied them (Options.Escapes). Nil in ordinary runs;
	// escapecheck is skipped without it.
	Escapes *EscapeData

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// simCritical lists the packages whose behaviour must be byte-for-byte
// replayable from a seed. Subdirectories are included.
var simCritical = []string{
	"internal/sim",
	"internal/schemes",
	"internal/core",
	"internal/channel",
	"internal/access",
	"internal/stats",
	// The unreliable-channel layer draws every fault decision from the
	// splitmix(seed, shard, "faults") substream, so it is as replay-
	// critical as the arrival process. It needs no entry in the
	// confinement allowlist: injectors are plain per-shard state machines
	// and spawn no goroutines.
	"internal/faults",
	// The channel-allocation layer decides which physical channel carries
	// every bucket and when a walker hops; any nondeterminism there would
	// desynchronize the K=1 differential gate, so it is in scope too.
	"internal/multichannel",
	// The scenario compiler and executor assemble every result table the
	// regen gate byte-diffs, so map-iteration order and RNG discipline
	// there are as replay-critical as the kernel itself.
	"internal/airql",
}

// underAny reports whether rel is one of the given module-relative
// directories or below one of them.
func underAny(rel string, dirs []string) bool {
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full airlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer, FloatCompareAnalyzer, ConfinementAnalyzer,
		UnitSafetyAnalyzer, ExhaustiveAnalyzer,
		MergeCompleteAnalyzer, RNGDisciplineAnalyzer, ByteClockAnalyzer, HotAllocAnalyzer,
		MapOrderAnalyzer, SeedTaintAnalyzer, EscapeCheckAnalyzer,
	}
}

// Check runs every analyzer over one package; see CheckAll.
func Check(pkg *Package) []Diagnostic {
	return CheckAll([]*Package{pkg})
}

// CheckAll runs every analyzer over the packages, applies
// `//airlint:allow` suppressions, and returns the surviving diagnostics
// sorted by position. Directive errors (unknown verb or analyzer,
// missing reason, unused suppression, misplaced hotpath marker) are
// returned as diagnostics of the "directive" analyzer. Checking all
// packages in one call matters for the module-wide rules: rngdiscipline
// detects duplicate StreamSeed labels across packages only when it can
// see every call site.
func CheckAll(pkgs []*Package) []Diagnostic {
	diags, err := CheckOnly(pkgs, nil)
	if err != nil {
		// nil analyzer selection cannot name an unknown analyzer.
		panic(err)
	}
	return diags
}

// CheckOnly is CheckAll restricted to the named analyzers (all of them
// when only is empty). Directive checking always runs, but allow
// directives for deselected analyzers are ignored rather than reported
// unused. An unknown analyzer name is an error.
func CheckOnly(pkgs []*Package, only []string) ([]Diagnostic, error) {
	return CheckWith(pkgs, Options{Only: only})
}

// Options configures a check run.
type Options struct {
	// Only restricts the run to the named analyzers; empty means all.
	Only []string
	// Escapes supplies compiler escape diagnostics (RunEscapeBuild).
	// Without it, escapecheck is skipped — and its //airlint:allow
	// suppressions are ignored rather than reported stale, so ordinary
	// runs never demand a -gcflags build.
	Escapes *EscapeData
}

// CheckWith runs the selected analyzers over the packages with the
// given options; see CheckOnly and CheckAll for the common wrappers.
func CheckWith(pkgs []*Package, opts Options) ([]Diagnostic, error) {
	known := make(map[string]bool)
	var names []string
	for _, a := range Analyzers() {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	sort.Strings(names)
	active := make(map[string]bool)
	if len(opts.Only) == 0 {
		for n := range known {
			active[n] = true
		}
	} else {
		for _, n := range opts.Only {
			if !known[n] {
				return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", n, strings.Join(names, ", "))
			}
			active[n] = true
		}
	}
	if opts.Escapes == nil {
		if len(opts.Only) > 0 && active[EscapeCheckAnalyzer.Name] {
			return nil, fmt.Errorf("lint: analyzer %q needs compiler escape data; run airlint with -escape", EscapeCheckAnalyzer.Name)
		}
		delete(active, EscapeCheckAnalyzer.Name)
	}

	raws := make([][]Diagnostic, len(pkgs))
	for i, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range Analyzers() {
			if !active[a.Name] {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				RelFile:  pkg.RelFile,
				Escapes:  opts.Escapes,
				diags:    &raw,
			}
			a.Run(pass)
		}
		raws[i] = raw
	}
	if active[RNGDisciplineAnalyzer.Name] {
		for i, extra := range streamSeedDuplicates(pkgs) {
			raws[i] = append(raws[i], extra...)
		}
	}

	var diags []Diagnostic
	for i, pkg := range pkgs {
		diags = append(diags, applyDirectives(pkg, raws[i], active)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
