package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UnitSafetyAnalyzer enforces the conversion contract of internal/units
// (see its package comment and DESIGN.md §7). Go's type system already
// rejects mixed-unit arithmetic outright; what it cannot reject is a
// conversion that launders one unit into another, because every unit is
// an integer underneath. This analyzer closes that hole:
//
//   - converting one unit type into another (including into or out of
//     sim.Time) is flagged everywhere outside internal/units and
//     internal/sim — cross-unit movement must go through the sanctioned
//     methods (Span, Elapsed, At, Advance, Extent, CycleBase, ...);
//   - converting a raw constant into a unit type is flagged — numbers
//     enter the unit system through the constructors Bytes, Bytes64,
//     Offset64, Index and Count, never through bare conversions;
//   - multiplying or dividing two non-constant values of the same unit
//     is flagged — bytes × bytes is not bytes; scaling goes through
//     Times, Div and Mod.
//
// Conversions out of the unit system (int(n), int64(n), float64(n)) are
// always allowed: sinks like stats accumulators and fmt are unit-blind.
var UnitSafetyAnalyzer = &Analyzer{
	Name: "unitsafety",
	Doc:  "forbid conversions and arithmetic that launder one measurement unit into another",
	Run:  runUnitSafety,
}

// unitExempt lists the packages allowed to convert freely between unit
// types: the units package defines the sanctioned bridges, and sim owns
// the byte-clock the bridges target.
var unitExempt = []string{
	"internal/units",
	"internal/sim",
}

// unitTypeName returns a short display name ("units.ByteCount",
// "sim.Time") when t is one of the measurement unit types, or "".
// Types are recognized by package-path suffix so fixture modules that
// mirror the real layout exercise the analyzer exactly like production
// code.
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path, name := obj.Pkg().Path(), obj.Name()
	switch {
	case pathEndsWith(path, "internal/units"):
		switch name {
		case "ByteCount", "ByteOffset", "BucketIndex", "BucketCount":
			return "units." + name
		}
	case pathEndsWith(path, "internal/sim"):
		if name == "Time" {
			return "sim.Time"
		}
	}
	return ""
}

func pathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

func runUnitSafety(pass *Pass) {
	if underAny(pass.RelPath, unitExempt) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, n)
			case *ast.BinaryExpr:
				checkUnitArithmetic(pass, n)
			}
			return true
		})
	}
}

// checkUnitConversion flags T(x) where T is a unit type and x is another
// unit type (laundering) or a constant (bypassing the constructors).
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	fun := ast.Unparen(call.Fun)
	tv, ok := pass.Info.Types[fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitTypeName(tv.Type)
	if dst == "" {
		return
	}
	argTV, ok := pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	if src := unitTypeName(argTV.Type); src != "" && src != dst {
		pass.Reportf(call.Pos(),
			"conversion %s(%s) launders one unit into another; cross-unit movement goes through the units methods (Span, Elapsed, At, Advance, Extent, CycleBase, CycleOffset)",
			dst, src)
		return
	}
	if dst != "sim.Time" && argTV.Value != nil {
		pass.Reportf(call.Pos(),
			"raw constant converted to %s; numbers enter the unit system through the constructors units.Bytes, Bytes64, Offset64, Index and Count",
			dst)
	}
}

// checkUnitArithmetic flags x*y and x/y where both operands carry the
// same unit type and neither is a constant: the product of two byte
// counts is not a byte count, so scaling must use Times/Div/Mod, which
// keep one operand dimensionless.
func checkUnitArithmetic(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op.String() != "*" && bin.Op.String() != "/" {
		return
	}
	xt, okX := pass.Info.Types[bin.X]
	yt, okY := pass.Info.Types[bin.Y]
	if !okX || !okY || xt.Value != nil || yt.Value != nil {
		return
	}
	name := unitTypeName(xt.Type)
	if name == "" || name != unitTypeName(yt.Type) {
		return
	}
	pass.Reportf(bin.Pos(),
		"%s %s %s mixes two dimensioned operands; use Times, Div or Mod so one side stays dimensionless",
		name, bin.Op, name)
}
