package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sanctionedConcurrency lists the only files allowed to spawn goroutines
// and use fan-out primitives: the experiment harness's whole-run fan-out
// and the core round-sharded engine's wave barrier. Keeping the rest of
// the simulation kernel single-threaded by construction is what lets
// `go test` and `go test -race` agree with the paper's sequential
// byte-clock semantics; parallelism exists only where every unit of work
// (a run, a shard) is independently seeded and merged deterministically.
var sanctionedConcurrency = []string{
	"internal/core/engine.go",
	"internal/airql/parallel.go",
}

// sanctionedConcurrencyDirs extends the allowlist to whole packages. A
// live network daemon is concurrent by its nature — internal/aircast
// owns a broadcast loop, listener acceptors and per-reader writer
// goroutines, all joined behind Server.Stop — so the package is
// sanctioned as a unit rather than file by file. The simulation kernel
// it frames stays single-threaded: every bucket image is built before
// the goroutines start, and the e2e tests pin the live path bit-exact
// against the sequential walker.
var sanctionedConcurrencyDirs = []string{
	"internal/aircast",
}

// sanctionedList is the allowlist formatted for diagnostics.
var sanctionedList = strings.Join(append(append([]string{}, sanctionedConcurrency...), sanctionedConcurrencyDirs...), " or ")

func isSanctioned(file string) bool {
	for _, s := range sanctionedConcurrency {
		if file == s {
			return true
		}
	}
	for _, d := range sanctionedConcurrencyDirs {
		if strings.HasPrefix(file, d+"/") {
			return true
		}
	}
	return false
}

// ConfinementAnalyzer flags `go` statements, sync.WaitGroup usage, and
// channel construction (`make(chan ...)`) outside the sanctioned
// concurrency layer.
var ConfinementAnalyzer = &Analyzer{
	Name: "confinement",
	Doc:  "restrict goroutines, WaitGroups and channel fan-out to " + sanctionedList,
	Run:  runConfinement,
}

func runConfinement(pass *Pass) {
	for _, f := range pass.Files {
		if isSanctioned(pass.RelFile[f]) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Go, "go statement outside %s; the sim kernel is single-threaded by construction", sanctionedList)
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[n.Sel]; ok && isSyncFanOut(obj) {
					pass.Reportf(n.Pos(), "sync.%s outside %s; fan-out belongs to the sanctioned concurrency layer", obj.Name(), sanctionedList)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isChan := n.Args[0].(*ast.ChanType); isChan {
						pass.Reportf(n.Pos(), "channel construction outside %s; fan-out belongs to the sanctioned concurrency layer", sanctionedList)
					}
				}
			}
			return true
		})
	}
}

// isSyncFanOut reports whether obj is a fan-out primitive from package
// sync. Plain mutexes (sync.Mutex, sync.RWMutex, sync.Once) are allowed
// everywhere — they guard shared state but cannot create concurrency.
func isSyncFanOut(obj types.Object) bool {
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "WaitGroup", "Cond":
		return true
	}
	return false
}
