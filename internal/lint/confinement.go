package lint

import (
	"go/ast"
	"go/types"
)

// sanctionedConcurrency is the one file allowed to spawn goroutines and
// use fan-out primitives. Keeping the simulation kernel single-threaded
// by construction is what lets `go test` and `go test -race` agree with
// the paper's sequential byte-clock semantics; parallelism exists only at
// the whole-run granularity, where every run is independently seeded.
const sanctionedConcurrency = "internal/experiments/parallel.go"

// ConfinementAnalyzer flags `go` statements, sync.WaitGroup usage, and
// channel construction (`make(chan ...)`) outside the sanctioned
// concurrency layer.
var ConfinementAnalyzer = &Analyzer{
	Name: "confinement",
	Doc:  "restrict goroutines, WaitGroups and channel fan-out to " + sanctionedConcurrency,
	Run:  runConfinement,
}

func runConfinement(pass *Pass) {
	for _, f := range pass.Files {
		if pass.RelFile[f] == sanctionedConcurrency {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Go, "go statement outside %s; the sim kernel is single-threaded by construction", sanctionedConcurrency)
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[n.Sel]; ok && isSyncFanOut(obj) {
					pass.Reportf(n.Pos(), "sync.%s outside %s; fan-out belongs to the sanctioned concurrency layer", obj.Name(), sanctionedConcurrency)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isChan := n.Args[0].(*ast.ChanType); isChan {
						pass.Reportf(n.Pos(), "channel construction outside %s; fan-out belongs to the sanctioned concurrency layer", sanctionedConcurrency)
					}
				}
			}
			return true
		})
	}
}

// isSyncFanOut reports whether obj is a fan-out primitive from package
// sync. Plain mutexes (sync.Mutex, sync.RWMutex, sync.Once) are allowed
// everywhere — they guard shared state but cannot create concurrency.
func isSyncFanOut(obj types.Object) bool {
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "WaitGroup", "Cond":
		return true
	}
	return false
}
