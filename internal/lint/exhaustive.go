package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveAnalyzer keeps dispatch sites honest as the scheme and
// bucket-kind vocabularies grow:
//
//   - A switch over a "Kind" enum (wire.Kind, access.StepKind,
//     faults.ModelKind, multichannel.PolicyKind, aircast.TransportKind,
//     aircast.ChaosKind — any Kind-suffixed named type declared in
//     internal/wire, internal/access, internal/faults,
//     internal/multichannel or internal/aircast) must either
//     list every package-level constant of
//     that type or carry an explicit default. Go falls through switches
//     silently, so adding KindFoo to wire without extending a switch
//     would otherwise drop buckets on the floor with no diagnostic.
//   - A switch over strings that dispatches on scheme registry names
//     (any case naming a *Name constant from a package under /schemes/)
//     must carry an explicit default: the scheme set is open — packages
//     register themselves at init time via core.Register — so no string
//     switch can ever prove itself complete.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "require switches over bucket/step kinds to cover every constant, and scheme-name switches to carry a default",
	Run:  runExhaustive,
}

// kindEnumPackages are the module-relative packages whose Kind-suffixed
// types are treated as closed enums.
var kindEnumPackages = []string{
	"internal/wire",
	"internal/access",
	"internal/faults",
	"internal/multichannel",
	"internal/aircast",
	// The scenario compiler's token/stage/op/expr kinds: a new token or
	// stage must extend every switch in the lexer, parser, validator and
	// executor, or compilation would silently drop it.
	"internal/airql",
}

func runExhaustive(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkKindSwitch(pass, sw)
			checkSchemeNameSwitch(pass, sw)
			return true
		})
	}
}

// kindEnumType returns the named tag type when it is a closed Kind enum,
// or nil.
func kindEnumType(pass *Pass, tag ast.Expr) *types.Named {
	tv, ok := pass.Info.Types[tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Name(), "Kind") {
		return nil
	}
	for _, rel := range kindEnumPackages {
		if pathEndsWith(obj.Pkg().Path(), rel) {
			return named
		}
	}
	return nil
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt) {
	named := kindEnumType(pass, sw.Tag)
	if named == nil {
		return
	}
	// Every package-level constant of the enum type is a required case.
	required := make(map[string]bool)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			required[name] = true
		}
	}
	if len(required) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the switch handles the unexpected
		}
		for _, e := range cc.List {
			if obj := constObject(pass, e); obj != nil {
				covered[obj.Name()] = true
			}
		}
	}
	var missing []string
	for name := range required {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch,
		"switch over %s.%s is missing cases %s and has no default; unhandled kinds fall through silently",
		named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
}

// checkSchemeNameSwitch requires a default on any string switch that
// names scheme registry constants.
func checkSchemeNameSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return
	}
	dispatches := false
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // has a default
		}
		for _, e := range cc.List {
			obj := constObject(pass, e)
			if obj == nil || obj.Pkg() == nil {
				continue
			}
			if strings.HasSuffix(obj.Name(), "Name") && strings.Contains(obj.Pkg().Path(), "/schemes/") {
				dispatches = true
			}
		}
	}
	if dispatches {
		pass.Reportf(sw.Switch,
			"scheme-name switch has no default; the scheme registry is open (core.Register), so unknown names need an explicit arm")
	}
}

// constObject resolves a case expression to the constant it names, or
// nil for literals and non-constant expressions.
func constObject(pass *Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pass.Info.Uses[id].(*types.Const)
	return c
}
