package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer enforces allocation-freedom on functions that opt in
// with `//airlint:hotpath` in their doc comment: the per-request scheme
// walkers, the engine's round loop and the faults injector run millions
// of times per experiment, and the ROADMAP's million-client columnar
// engine builds directly on them staying allocation-free. The check is
// purely syntactic (AST-level): it flags the constructs that allocate on
// every execution —
//
//   - function literals (the closure and its captures allocate);
//   - map and slice composite literals (array and struct literals are
//     stack-friendly and stay legal);
//   - make, new, and append (growth must be preallocated outside);
//   - calls into package fmt (formatting boxes every operand);
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - interface boxing: passing, returning or assigning a concrete
//     non-pointer-shaped value where an interface is expected;
//   - go statements.
//
// A justified exception carries `//airlint:allow hotalloc <reason>` on
// its line, exactly like any other analyzer.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //airlint:hotpath must be allocation-free at the AST level",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathMarked(fd) {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkHotBody(pass, fd.Body, obj.Type().(*types.Signature))
		}
	}
}

// checkHotBody walks one function body against the hot-path rules. sig
// is the enclosing function's signature, used to type return values;
// closures are checked recursively against their own signatures, since
// a marked function's inner loop is often a literal (the engine's
// self-rescheduling arrival callback).
func checkHotBody(pass *Pass, body ast.Node, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal in a hot path allocates the closure and its captures; hoist it out of the per-request path or pass state explicitly")
			if lsig, ok := pass.Info.Types[n].Type.(*types.Signature); ok {
				checkHotBody(pass, n.Body, lsig)
			}
			return false
		case *ast.CompositeLit:
			tv, ok := pass.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in a hot path allocates per execution; hoist the map out and reuse it")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in a hot path allocates per execution; preallocate outside the hot path")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in a hot path allocates a goroutine per execution")
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.BinaryExpr:
			// A constant-folded concatenation has a Value and is free; any
			// runtime concatenation allocates the result.
			if n.Op == token.ADD && nonConstString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation in a hot path allocates the result; format outside the hot path")
			}
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					reportBox(pass, sig.Results().At(i).Type(), r, "returning")
				}
			}
		}
		return true
	})
}

func checkHotAssign(pass *Pass, n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
		pass.Reportf(n.Pos(), "string concatenation in a hot path allocates the result; format outside the hot path")
		return
	}
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if tv, ok := pass.Info.Types[lhs]; ok && tv.Type != nil {
			reportBox(pass, tv.Type, n.Rhs[i], "assigning")
		}
	}
}

func checkHotCall(pass *Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	tv, ok := pass.Info.Types[fun]
	if !ok {
		return
	}
	if tv.IsType() {
		checkHotConversion(pass, call, tv.Type)
		return
	}
	if tv.IsBuiltin() {
		name := ""
		if id, ok := fun.(*ast.Ident); ok {
			name = id.Name
		}
		switch name {
		case "make":
			pass.Reportf(call.Pos(), "make in a hot path allocates per execution; preallocate outside and reuse")
		case "new":
			pass.Reportf(call.Pos(), "new in a hot path allocates per execution; preallocate outside and reuse")
		case "append":
			pass.Reportf(call.Pos(), "append in a hot path may grow the backing array; preallocate capacity outside the hot path")
		}
		return
	}
	// Calls into fmt box every operand and build a string; one report per
	// call (the operands are not additionally reported as boxing).
	var callee types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		callee = pass.Info.Uses[f]
	case *ast.SelectorExpr:
		callee = pass.Info.Uses[f.Sel]
	}
	if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt call in a hot path allocates (formatting boxes its operands); move formatting out of the per-request path")
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // xs... re-passes an existing slice
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		reportBox(pass, pt, arg, "passing")
	}
}

// checkHotConversion flags the conversions that copy: string <-> []byte
// and string <-> []rune. Numeric and named-type conversions are free.
func checkHotConversion(pass *Pass, call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.Info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if isStringType(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isStringType(src) {
		pass.Reportf(call.Pos(), "string conversion in a hot path copies the bytes; keep one representation through the hot path")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type)
}

func nonConstString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type) && tv.Value == nil
}

// reportBox flags storing a concrete value into an interface when the
// value is not pointer-shaped: the runtime must heap-allocate the boxed
// copy. Pointer-shaped values (pointers, channels, maps, funcs, unsafe
// pointers) live directly in the interface word and stay free.
func reportBox(pass *Pass, dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if types.IsInterface(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	pass.Reportf(src.Pos(),
		"%s a concrete %s where an interface is expected boxes the value on the heap in a hot path; take a pointer or keep the concrete type", what, t)
}
