package lint

import (
	"go/ast"
	"go/types"
)

// floatExact lists the packages where exact float equality is forbidden:
// the closed-form analytical model and the statistics layer, where the
// paper's simulated-vs-analytical comparison (Table 1, Figures 4–6) is
// computed and a `==` that "usually holds" silently skews a column.
var floatExact = []string{
	"internal/analytical",
	"internal/stats",
}

// FloatCompareAnalyzer flags == and != between floating-point operands in
// the analytical and stats packages. Accumulated rounding error makes
// exact equality meaningless there; compare with a tolerance
// (math.Abs(a-b) <= eps) or suppress with
// `//airlint:allow floatcompare <reason>` where an exact sentinel value
// is genuinely intended.
var FloatCompareAnalyzer = &Analyzer{
	Name: "floatcompare",
	Doc:  "forbid exact ==/!= between floats in internal/analytical and internal/stats",
	Run:  runFloatCompare,
}

func runFloatCompare(pass *Pass) {
	if !underAny(pass.RelPath, floatExact) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if bin.Op.String() != "==" && bin.Op.String() != "!=" {
				return true
			}
			if isFloat(pass.Info.TypeOf(bin.X)) && isFloat(pass.Info.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos, "exact %s between floats; use a tolerance comparison (math.Abs(a-b) <= eps)", bin.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
