package lint

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// EscapeCheckAnalyzer cross-checks every `//airlint:hotpath` function
// against the compiler's actual escape-analysis decisions. hotalloc
// rejects allocation *syntax*; the compiler is the ground truth on what
// really reaches the heap (interface boxing the AST cannot see, locals
// that outlive the frame, closures the inliner failed to stack-allocate).
//
// The analyzer itself is pure: it consumes EscapeData parsed from
// `go build -gcflags='-m -m'` output (see RunEscapeBuild) and reports
// every "escapes to heap"/"moved to heap" diagnostic whose position
// falls inside a hotpath function's span. It only runs when escape data
// is attached to the check (cmd/airlint's -escape switch, or -only
// escapecheck which implies it); in a plain run it is skipped entirely,
// so its suppressions are neither applied nor reported stale.
var EscapeCheckAnalyzer = &Analyzer{
	Name: "escapecheck",
	Doc:  "//airlint:hotpath functions must be free of compiler-verified heap escapes (go build -gcflags='-m -m')",
	Run:  runEscapeCheck,
}

// EscapeDiag is one compiler escape diagnostic, positioned within a
// module-relative file.
type EscapeDiag struct {
	Line, Col int
	Msg       string
}

// EscapeData carries the compiler's escape diagnostics for one build,
// keyed by module-relative file path (forward slashes).
type EscapeData struct {
	Diags map[string][]EscapeDiag
}

// escapeLineRx matches one `file:line:col: message` diagnostic line as
// printed by the gc compiler under -m. Indented lines (the -m -m
// explanation chains) deliberately do not match.
var escapeLineRx = regexp.MustCompile(`^([^\s:][^:]*):(\d+):(\d+): (.+)$`)

// ParseEscapeOutput extracts the heap-relevant diagnostics from the
// combined output of `go build -gcflags='-m -m' ...` run at the module
// root. Only "escapes to heap" and "moved to heap" lines are kept;
// "does not escape" and inlining chatter are dropped.
func ParseEscapeOutput(out string) *EscapeData {
	data := &EscapeData{Diags: make(map[string][]EscapeDiag)}
	seen := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRx.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := filepath.ToSlash(strings.TrimPrefix(m[1], "./"))
		var l, c int
		fmt.Sscanf(m[2], "%d", &l)
		fmt.Sscanf(m[3], "%d", &c)
		key := fmt.Sprintf("%s:%d:%d:%s", file, l, c, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		data.Diags[file] = append(data.Diags[file], EscapeDiag{Line: l, Col: c, Msg: msg})
	}
	for _, ds := range data.Diags {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Line != ds[j].Line {
				return ds[i].Line < ds[j].Line
			}
			if ds[i].Col != ds[j].Col {
				return ds[i].Col < ds[j].Col
			}
			return ds[i].Msg < ds[j].Msg
		})
	}
	return data
}

// RunEscapeBuild compiles the given module-relative package directories
// with `go build -gcflags='-m -m'` from moduleRoot and parses the escape
// diagnostics. The Go build cache replays compiler output for unchanged
// packages, so repeat runs are cheap. The binary output of any main
// package is discarded into a temporary directory.
func RunEscapeBuild(moduleRoot string, rels []string) (*EscapeData, error) {
	if len(rels) == 0 {
		return &EscapeData{Diags: map[string][]EscapeDiag{}}, nil
	}
	tmp, err := os.MkdirTemp("", "airlint-escape-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	// -o diverts main-package binaries into the scratch directory instead
	// of littering the module root; a selection with no main packages
	// makes `go build -o` itself error, so retry bare (nothing would be
	// written anyway).
	patterns := make([]string, 0, len(rels))
	for _, rel := range rels {
		patterns = append(patterns, "./"+filepath.ToSlash(rel))
	}
	run := func(extra ...string) ([]byte, error) {
		args := append([]string{"build", "-gcflags=-m -m"}, extra...)
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleRoot
		return cmd.CombinedOutput()
	}
	out, err := run("-o", tmp)
	if err != nil && strings.Contains(string(out), "no main packages") {
		out, err = run()
	}
	if err != nil {
		// The compiler prints -m diagnostics even for successful
		// packages; a hard error means the build itself failed.
		return nil, fmt.Errorf("escape build failed: %v\n%s", err, out)
	}
	return ParseEscapeOutput(string(out)), nil
}

func runEscapeCheck(pass *Pass) {
	if pass.Escapes == nil {
		return
	}
	for _, f := range pass.Files {
		rel := pass.RelFile[f]
		diags := pass.Escapes.Diags[rel]
		if len(diags) == 0 {
			continue
		}
		tf := pass.Fset.File(f.Pos())
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hotpathMarked(fd) || fd.Body == nil {
				continue
			}
			start := pass.Fset.Position(fd.Pos()).Line
			end := pass.Fset.Position(fd.End()).Line
			for _, ed := range diags {
				if ed.Line < start || ed.Line > end {
					continue
				}
				pos := tf.LineStart(ed.Line)
				// Advance to the diagnostic's column when it stays within
				// the file (defensive: compiler and parser agree on
				// offsets for ASCII, which is all this repo uses).
				if off := tf.Offset(pos) + ed.Col - 1; off < tf.Size() {
					pos = tf.Pos(off)
				}
				pass.Reportf(pos, "compiler escape analysis contradicts //airlint:hotpath on %s: %s", fd.Name.Name, ed.Msg)
			}
		}
	}
}
