package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/airindex/airindex/internal/lint/flow"
)

// SeedTaintAnalyzer is the flow-sensitive upgrade of rngdiscipline's
// call-site check. rngdiscipline only accepts what it can see in the
// argument expression; seedtaint instead asks where the value *came
// from*: every value feeding an RNG construction (sim.NewRNG,
// sim.NewShardRNG, sim.StreamSeed) must be data-flow-reachable from the
// seed plane — a Seed-named config field, a seed-named parameter, or the
// result of a sim substream derivation — even when it was laundered
// through locals, struct fields, or same-package helper returns.
//
// Lattice: a bitmask per location. seedBit marks values derived from the
// seed plane; wallBit marks values derived from package time; unknownBit
// marks everything whose provenance cannot be traced. Parameters carry
// per-parameter bits so that bounded same-package function summaries can
// substitute caller arguments at call sites.
//
// Scope: the simulation-critical packages plus internal/experiments,
// minus internal/sim itself (the substream derivations live there).
var SeedTaintAnalyzer = &Analyzer{
	Name: "seedtaint",
	Doc:  "values feeding RNG constructions must be data-flow-reachable from Config.Seed / sim.StreamSeed",
	Run:  runSeedTaint,
}

const (
	seedBit uint64 = 1 << iota
	wallBit
	unknownBit
	paramBit0 // first of up to 32 per-parameter bits
)

const maxParamBits = 32

func paramBit(i int) uint64 {
	if i >= maxParamBits {
		return unknownBit
	}
	return paramBit0 << uint(i)
}

var seedTaintExempt = []string{"internal/sim"}

func seedTaintScope(rel string) bool {
	if underAny(rel, seedTaintExempt) {
		return false
	}
	return underAny(rel, simCritical) || underAny(rel, []string{"internal/experiments"})
}

func runSeedTaint(pass *Pass) {
	if !seedTaintScope(pass.RelPath) {
		return
	}
	st := &seedTaintPkg{pass: pass, summaries: make(map[*types.Func][]uint64)}
	st.computeSummaries()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.checkFunc(fd)
		}
	}
}

type seedTaintPkg struct {
	pass *Pass
	// summaries maps a package-level function to the taint bits of each
	// of its results, with paramBit(i) standing for "whatever the caller
	// passes as argument i". Methods are not summarized (receiver flow is
	// out of scope); calls to them evaluate to unknown unless they are
	// sim constructors.
	summaries map[*types.Func][]uint64
}

// computeSummaries runs a bounded fixpoint over the package's function
// declarations so that seeds laundered through same-package helper
// returns stay traceable. The lattice is finite (bit union) and the
// iteration is capped defensively.
func (st *seedTaintPkg) computeSummaries() {
	var fns []*ast.FuncDecl
	for _, f := range st.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
				continue
			}
			fns = append(fns, fd)
		}
	}
	for iter := 0; iter < len(fns)+2; iter++ {
		changed := false
		for _, fd := range fns {
			obj, ok := st.pass.Info.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			sum := st.summarize(fd)
			old := st.summaries[obj]
			if !equalBits(old, sum) {
				st.summaries[obj] = joinSummaries(old, sum)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func equalBits(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinSummaries(a, b []uint64) []uint64 {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := append([]uint64(nil), a...)
	for i := range b {
		out[i] |= b[i]
	}
	return out
}

// summarize computes the taint of each return value of fd under the
// current summaries.
func (st *seedTaintPkg) summarize(fd *ast.FuncDecl) []uint64 {
	nres := fd.Type.Results.NumFields()
	sum := make([]uint64, nres)

	g := flow.New(fd.Body)
	l := st.lattice(fd)
	flow.ForwardVisit(g, l, func(n ast.Node, before flow.Store[uint64]) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			return // named results; conservatively left at zero
		}
		if len(ret.Results) == nres {
			for i, e := range ret.Results {
				sum[i] |= st.eval(e, before)
			}
		} else if len(ret.Results) == 1 {
			// return f() fanning out to multiple results: smear.
			v := st.eval(ret.Results[0], before)
			for i := range sum {
				sum[i] |= v
			}
		}
	})
	return sum
}

// lattice builds the per-function taint lattice, seeding the store with
// the function's parameters: seed-named parameters are seed-derived,
// others carry their positional bit.
func (st *seedTaintPkg) lattice(fd *ast.FuncDecl) flow.Lattice[flow.Store[uint64]] {
	init := flow.Store[uint64]{}
	idx := 0
	if fd.Type.Params != nil {
		for _, fld := range fd.Type.Params.List {
			for _, name := range fld.Names {
				if obj, ok := st.pass.Info.ObjectOf(name).(*types.Var); ok {
					if isSeedName(name.Name) {
						init[flow.Ref{Obj: obj}] = seedBit
					} else {
						init[flow.Ref{Obj: obj}] = paramBit(idx)
					}
				}
				idx++
			}
			if len(fld.Names) == 0 {
				idx++
			}
		}
	}
	return flow.Lattice[flow.Store[uint64]]{
		Init: init,
		Join: func(a, b flow.Store[uint64]) flow.Store[uint64] {
			return flow.JoinStores(a, b, func(x, y uint64) uint64 { return x | y })
		},
		Equal:    flow.Store[uint64].Equal,
		Transfer: st.transfer,
	}
}

func (st *seedTaintPkg) transfer(n ast.Node, in flow.Store[uint64]) flow.Store[uint64] {
	out := in.Clone()
	switch n := n.(type) {
	case *ast.AssignStmt, *ast.DeclStmt:
		compound := false
		if a, ok := n.(*ast.AssignStmt); ok {
			compound = a.Tok != token.ASSIGN && a.Tok != token.DEFINE
		}
		for _, as := range flow.Assignments(n) {
			var v uint64
			if as.Rhs != nil {
				v = st.eval(as.Rhs, out)
				if as.TupleIndex >= 0 {
					// Multi-result call: the whole tuple shares the join.
					// (Per-slot summaries apply only to direct calls.)
					if call, ok := unparen(as.Rhs).(*ast.CallExpr); ok {
						if slots := st.callSummary(call, out); slots != nil && as.TupleIndex < len(slots) {
							v = slots[as.TupleIndex]
						}
					}
				}
			}
			if r, ok := flow.RefOf(st.pass.Info, as.Lhs); ok {
				if compound {
					if old, ok := out.Get(r); ok {
						v |= old
					}
				}
				out.Set(r, v)
			}
		}
	case *ast.RangeStmt:
		// Values drawn from a ranged collection inherit its taint.
		src := st.eval(n.X, out)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if r, ok := flow.RefOf(st.pass.Info, e); ok {
				out.Set(r, src)
			}
		}
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isSeedName reports whether a parameter or field name marks the value
// as part of the seed plane by convention.
func isSeedName(name string) bool {
	return strings.EqualFold(name, "seed") || strings.HasSuffix(name, "Seed")
}

// eval computes the taint bits of an expression.
func (st *seedTaintPkg) eval(e ast.Expr, s flow.Store[uint64]) uint64 {
	// Compile-time constants are part of the program text, not a
	// laundering channel.
	if tv, ok := st.pass.Info.Types[e]; ok && tv.Value != nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		if r, ok := flow.RefOf(st.pass.Info, e); ok {
			if v, ok := s.Get(r); ok {
				return v
			}
			if isSeedName(e.Name) {
				return seedBit
			}
			return unknownBit
		}
		return unknownBit
	case *ast.SelectorExpr:
		// An explicit assignment to this exact location wins; otherwise
		// the naming convention does — a field called Seed *is* the seed
		// plane (core.Config.Seed, a shard runner's seed cache) no matter
		// what struct value carries it. Only then fall back to the taint
		// of the enclosing value.
		if r, ok := flow.RefOf(st.pass.Info, e); ok {
			if v, ok := s[r]; ok {
				return v
			}
			if isSeedName(e.Sel.Name) {
				return seedBit
			}
			if v, ok := s.Get(r); ok {
				return v
			}
			return unknownBit
		}
		if isSeedName(e.Sel.Name) {
			return seedBit
		}
		return unknownBit
	case *ast.StarExpr:
		if r, ok := flow.RefOf(st.pass.Info, e); ok {
			if v, ok := s.Get(r); ok {
				return v
			}
		}
		return unknownBit
	case *ast.ParenExpr:
		return st.eval(e.X, s)
	case *ast.UnaryExpr:
		return st.eval(e.X, s)
	case *ast.BinaryExpr:
		return st.eval(e.X, s) | st.eval(e.Y, s)
	case *ast.CallExpr:
		if slots := st.callSummary(e, s); slots != nil {
			v := uint64(0)
			for _, sv := range slots {
				v |= sv
			}
			return v
		}
		return unknownBit
	case *ast.IndexExpr:
		return st.eval(e.X, s) | st.eval(e.Index, s)
	case *ast.CompositeLit:
		var v uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			v |= st.eval(el, s)
		}
		return v
	case *ast.TypeAssertExpr:
		return st.eval(e.X, s)
	}
	return unknownBit
}

// callSummary evaluates a call's per-result taint, or nil when the
// callee has no usable summary. Handles: conversions, sim substream
// derivations (seed-producing), package time (wall-producing), and
// same-package function summaries with argument substitution.
func (st *seedTaintPkg) callSummary(call *ast.CallExpr, s flow.Store[uint64]) []uint64 {
	// Type conversion: taint passes through unchanged.
	if fn := unparen(call.Fun); len(call.Args) == 1 {
		if tv, ok := st.pass.Info.Types[fn]; ok && tv.IsType() {
			return []uint64{st.eval(call.Args[0], s)}
		}
	}
	callee := typeutilCallee(st.pass.Info, call)
	if callee == nil {
		return nil
	}
	if pkg := callee.Pkg(); pkg != nil {
		if pkg.Path() == "time" {
			return []uint64{wallBit}
		}
		if isSimPkgPath(pkg.Path()) {
			switch callee.Name() {
			case "StreamSeed", "SplitMix":
				// The derivation output is seed-plane by construction;
				// its *input* is checked at the call site by checkFunc.
				return []uint64{seedBit}
			}
			return nil
		}
	}
	if slots, ok := st.summaries[callee]; ok {
		// Substitute caller arguments for parameter bits.
		out := make([]uint64, len(slots))
		for i, bits := range slots {
			v := bits & (seedBit | wallBit | unknownBit)
			for p := 0; p < maxParamBits; p++ {
				if bits&paramBit(p) == 0 {
					continue
				}
				if p < len(call.Args) {
					v |= st.eval(call.Args[p], s)
				} else {
					v |= unknownBit
				}
			}
			out[i] = v
		}
		return out
	}
	return nil
}

// typeutilCallee resolves the *types.Func a call invokes, or nil for
// builtins, conversions and indirect calls.
func typeutilCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

func isSimPkgPath(path string) bool {
	return path == "internal/sim" || strings.HasSuffix(path, "/internal/sim")
}

// checkFunc runs the taint analysis over fd and validates every RNG
// construction site and Seed-field write it contains.
func (st *seedTaintPkg) checkFunc(fd *ast.FuncDecl) {
	g := flow.New(fd.Body)
	l := st.lattice(fd)
	flow.ForwardVisit(g, l, func(n ast.Node, before flow.Store[uint64]) {
		// RNG construction sites anywhere in the node.
		flow.InspectNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isCtor := rngCtorName(st.pass.Info, call)
			if !isCtor || len(call.Args) == 0 {
				return true
			}
			bits := st.eval(call.Args[0], before)
			st.reportBadSeed(call.Args[0].Pos(), name, bits)
			return true
		})
		// Writes into Seed-named fields (the seed plane itself) must be
		// seed- or constant-derived.
		switch stn := n.(type) {
		case *ast.AssignStmt, *ast.DeclStmt:
			for _, as := range flow.Assignments(stn) {
				sel, ok := as.Lhs.(*ast.SelectorExpr)
				if !ok || !isSeedName(sel.Sel.Name) || as.Rhs == nil {
					continue
				}
				bits := st.eval(as.Rhs, before)
				if bits&(wallBit|unknownBit) != 0 {
					st.reportBadSeed(as.Rhs.Pos(), "field "+sel.Sel.Name, bits)
				}
			}
		}
	})
}

// rngCtorName reports whether call constructs an RNG or derives a
// substream from the sim package, returning a human name for messages.
func rngCtorName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := typeutilCallee(info, call)
	if fn == nil || fn.Pkg() == nil || !isSimPkgPath(fn.Pkg().Path()) {
		return "", false
	}
	switch fn.Name() {
	case "NewRNG", "NewShardRNG", "StreamSeed":
		return "sim." + fn.Name(), true
	}
	return "", false
}

func (st *seedTaintPkg) reportBadSeed(pos token.Pos, site string, bits uint64) {
	switch {
	case bits&wallBit != 0:
		st.pass.Reportf(pos, "seed for %s derives from the wall clock (package time); seeds must be data-flow-reachable from Config.Seed or sim.StreamSeed so runs replay exactly", site)
	case bits&unknownBit != 0:
		st.pass.Reportf(pos, "seed for %s is not data-flow-reachable from the seed plane (Config.Seed, a seed-named parameter, or a sim.StreamSeed/SplitMix derivation)", site)
	case bits&^seedBit != 0:
		// Derived only from non-seed-named parameters: the value may well
		// be a seed, but the contract is that seed-carrying parameters
		// are named so reviewers and this analyzer can see the plane.
		st.pass.Reportf(pos, "seed for %s flows from a parameter not named like a seed; rename the parameter (e.g. seed int64) to keep the seed plane traceable", site)
	}
}
