package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MergeCompleteAnalyzer enforces the shard-merge contract of DESIGN.md
// §7: a Result is a pure function of (seed, shards) only if every
// accumulator a shard fills is folded into the merged value. PRs 3–5
// each threaded new core.Result counters (Restarts, Switches,
// SwitchWaitBytes, ...) through mergeShards by hand; forgetting one line
// there silently zeroes the metric without failing any tier-1 test. The
// analyzer checks two shapes in simulation-critical packages:
//
//   - pairwise merges — a method `func (x *T) Merge(o *T)` on a local
//     struct must read every field of o, directly, via a whole-value
//     copy (*x = *o), or transitively through a same-package callee
//     that receives o;
//   - fold merges — a function whose name contains "merge" and returns
//     a local struct must write every accumulator field of the result
//     (numeric fields and fields whose type has a Merge/Add method);
//     identity fields (strings, bools, maps) are configuration, not
//     accumulation, and are exempt.
var MergeCompleteAnalyzer = &Analyzer{
	Name: "mergecomplete",
	Doc:  "every counter/statistic field of a merged result struct must be combined in its Merge/merge function",
	Run:  runMergeComplete,
}

func runMergeComplete(pass *Pass) {
	if !underAny(pass.RelPath, simCritical) {
		return
	}
	// decls indexes the package's own function bodies so argument reads
	// can be traced through same-package helpers (Quantile.Merge reads
	// most of its argument inside copyFrom and mergeInitialized).
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if named, st, param := pairwiseMergeShape(pass, fd); named != nil {
				checkPairwiseMerge(pass, fd, named, st, param, decls)
				continue
			}
			if !strings.Contains(strings.ToLower(fd.Name.Name), "merge") {
				continue
			}
			if named, st := mergedResultType(pass, fd); named != nil {
				checkFoldMerge(pass, fd, named, st)
			}
		}
	}
}

// pairwiseMergeShape matches `func (x *T) Merge(o *T)` for a struct T
// declared in this package and returns T and o's object (nil when the
// parameter is unnamed — then nothing can be read from it).
func pairwiseMergeShape(pass *Pass, fd *ast.FuncDecl) (*types.Named, *types.Struct, types.Object) {
	if fd.Recv == nil || fd.Name.Name != "Merge" {
		return nil, nil, nil
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil, nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return nil, nil, nil
	}
	recv := derefNamed(sig.Recv().Type())
	arg := derefNamed(sig.Params().At(0).Type())
	if recv == nil || arg == nil || recv.Obj() != arg.Obj() || recv.Obj().Pkg() != pass.Pkg {
		return nil, nil, nil
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, nil
	}
	var param types.Object
	if names := fd.Type.Params.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		param = pass.Info.Defs[names[0]]
	}
	return recv, st, param
}

// derefNamed unwraps at most one pointer and returns the named type
// beneath, or nil.
func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkPairwiseMerge verifies that Merge reads every field of its
// argument. Reads are traced transitively through same-package callees
// that receive the argument; passing it to an unknown function, a
// conversion, or a whole-value deref (*x = *o) conservatively counts as
// reading everything.
func checkPairwiseMerge(pass *Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct, param types.Object, decls map[*types.Func]*ast.FuncDecl) {
	covered := make(map[string]bool)
	all := false
	visited := make(map[*types.Func]bool)

	var scan func(body ast.Node, arg types.Object)
	scan = func(body ast.Node, arg types.Object) {
		if arg == nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if all {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == arg {
					covered[n.Sel.Name] = true
				}
			case *ast.StarExpr:
				// *o reads the whole value (typically `*x = *o`).
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.Uses[id] == arg {
					all = true
				}
			case *ast.CallExpr:
				// o handed to a callee: trace same-package bodies, assume
				// full reads everywhere else.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.Uses[id] == arg {
						traceCallee(pass, n, -1, decls, visited, scan, &all)
					}
				}
				for i, a := range n.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.Info.Uses[id] == arg {
						traceCallee(pass, n, i, decls, visited, scan, &all)
					}
				}
			}
			return true
		})
	}
	scan(fd.Body, param)

	if all {
		return
	}
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		if name := st.Field(i).Name(); !covered[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(fd.Name.Pos(),
			"%s.Merge never reads field %s of its argument; an unmerged field silently drops that shard state",
			named.Obj().Name(), name)
	}
}

// traceCallee resolves the function called by n and continues the scan
// inside its body with the parameter that receives the argument
// (argIdx, or the receiver when argIdx < 0). An unresolvable callee —
// another package's function, a function value, a conversion, a builtin
// — conservatively counts as reading every field.
func traceCallee(pass *Pass, n *ast.CallExpr, argIdx int, decls map[*types.Func]*ast.FuncDecl, visited map[*types.Func]bool, scan func(ast.Node, types.Object), all *bool) {
	var callee *types.Func
	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		callee, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.Info.Uses[fun.Sel].(*types.Func)
	}
	cfd := decls[callee]
	if cfd == nil {
		*all = true
		return
	}
	if visited[callee] {
		return
	}
	visited[callee] = true
	var target types.Object
	if argIdx < 0 {
		if cfd.Recv != nil && len(cfd.Recv.List[0].Names) == 1 {
			target = pass.Info.Defs[cfd.Recv.List[0].Names[0]]
		}
	} else {
		i := 0
		for _, field := range cfd.Type.Params.List {
			for _, name := range field.Names {
				if i == argIdx {
					target = pass.Info.Defs[name]
				}
				i++
			}
		}
	}
	if target == nil {
		*all = true
		return
	}
	scan(cfd.Body, target)
}

// mergedResultType matches a fold-merge signature: the first result that
// is (a pointer to) a struct declared in this package.
func mergedResultType(pass *Pass, fd *ast.FuncDecl) (*types.Named, *types.Struct) {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	results := obj.Type().(*types.Signature).Results()
	for i := 0; i < results.Len(); i++ {
		named := derefNamed(results.At(i).Type())
		if named == nil || named.Obj().Pkg() != pass.Pkg {
			continue
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			return named, st
		}
	}
	return nil, nil
}

// accumulatorField reports whether a result field carries merged state:
// numeric counters/statistics, or struct-valued accumulators with their
// own Merge/Add method. Identity fields (string, bool, map, slice,
// interface) describe the run rather than accumulate over shards.
func accumulatorField(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Struct:
		return hasMergeLikeMethod(t)
	case *types.Pointer:
		return hasMergeLikeMethod(u.Elem())
	}
	return false
}

func hasMergeLikeMethod(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Merge", "Add":
			return true
		}
	}
	return false
}

// checkFoldMerge verifies that a merge function writes every accumulator
// field of its result struct: direct assignment (including += and ++),
// a composite-literal key, an address-of (handed to a merging callee),
// or a Merge/Add method call on the field.
func checkFoldMerge(pass *Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	isT := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		n := derefNamed(tv.Type)
		return n != nil && n.Obj() == named.Obj()
	}
	written := make(map[string]bool)
	markField := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok && isT(sel.X) {
			written[sel.Sel.Name] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markField(lhs)
			}
		case *ast.IncDecStmt:
			markField(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markField(n.X)
			}
		case *ast.CallExpr:
			// res.Field.Merge(...) / res.Field.Add(...) combine in place.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				markField(sel.X)
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && tv.Type != nil && derefNamed(tv.Type) != nil && derefNamed(tv.Type).Obj() == named.Obj() {
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							written[key.Name] = true
						}
					}
				}
			}
		}
		return true
	})

	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if accumulatorField(f.Type()) && !written[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(fd.Name.Pos(),
			"%s never combines counter field %s of %s; a result field that no merge line touches is silently zero in sharded runs",
			fd.Name.Name, name, named.Obj().Name())
	}
}
