package flow

import "go/ast"

// Lattice describes the fact domain of a forward dataflow analysis over
// a Graph. Facts must form a join-semilattice of finite height and
// Transfer must be monotone, or the worklist will not terminate.
type Lattice[F any] struct {
	// Init is the fact at function entry.
	Init F
	// Join merges the facts flowing in along two edges. It must not
	// mutate its arguments.
	Join func(a, b F) F
	// Equal reports whether two facts are indistinguishable; it bounds
	// the fixpoint iteration.
	Equal func(a, b F) bool
	// Transfer produces the fact after executing one CFG node given the
	// fact before it. It must not mutate in.
	Transfer func(n ast.Node, in F) F
}

// Forward runs l to a fixed point over g and returns the fact at the
// entry of every reachable block. Blocks unreachable from the entry are
// absent from the map.
func Forward[F any](g *Graph, l Lattice[F]) map[*Block]F {
	in := make(map[*Block]F)
	in[g.Entry] = l.Init

	// Worklist seeded with the entry; blocks are re-queued whenever a
	// predecessor changes their in-fact.
	queued := make(map[*Block]bool)
	work := []*Block{g.Entry}
	queued[g.Entry] = true

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := in[blk]
		for _, n := range blk.Nodes {
			out = l.Transfer(n, out)
		}
		for _, succ := range blk.Succs {
			prev, seen := in[succ]
			var next F
			if seen {
				next = l.Join(prev, out)
			} else {
				next = out
			}
			if !seen || !l.Equal(prev, next) {
				in[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}

// ForwardVisit solves l over g and then replays every reachable block
// once, calling visit with the fact in force immediately before each
// node. Analyzers do their reporting in visit: the fact tells them what
// taints/definitions reach the node they are about to inspect.
func ForwardVisit[F any](g *Graph, l Lattice[F], visit func(n ast.Node, before F)) {
	in := Forward(g, l)
	for _, blk := range g.Blocks {
		fact, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			visit(n, fact)
			fact = l.Transfer(n, fact)
		}
	}
}
