// Package flow is a small intra-procedural control-flow-graph and
// dataflow engine over the standard library's go/ast and go/types. It
// exists so that airlint analyzers can be flow-sensitive — tracking how
// values actually move through a function — instead of approximating
// invariants with syntactic pattern matches.
//
// The package provides three layers:
//
//   - a basic-block CFG builder (New) that linearizes a function body's
//     statements into blocks connected by successor edges, handling if,
//     for, range, switch, type switch, select, labels, goto, break,
//     continue and fallthrough;
//   - a generic forward worklist solver (Forward, ForwardVisit) that
//     propagates an analyzer-defined lattice to a fixed point;
//   - value references (Ref, RefOf) and a reaching-definitions instance
//     (Reaching) built on the solver, which taint analyses reuse.
//
// Everything is intra-procedural: function literals are not inlined into
// the enclosing graph (analyzers treat each FuncLit as its own function),
// and no heap model is attempted. Like the rest of airlint the package
// uses only the standard library.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal sequence of statements that
// executes front to back with no internal control transfer. Nodes holds
// the statements (and for loop headers, the controlling expression's
// statement node) in execution order; Succs lists the blocks control may
// transfer to afterwards.
type Block struct {
	// Index is the block's position in Graph.Blocks, in construction
	// order (entry first). Useful for deterministic iteration.
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Blocks []*Block
}

// builder threads the state needed while linearizing statements:
// the current block, the targets of break/continue (innermost and by
// label), and forward-referenced goto labels.
type builder struct {
	g   *Graph
	cur *Block

	breakTarget    *Block
	continueTarget *Block
	// labeled break/continue targets, keyed by label name.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	// goto targets; a goto to a label not yet seen parks an edge request
	// in gotoPending until the label's block is created.
	labelBlock  map[string]*Block
	gotoPending map[string][]*Block

	// pendingLabel carries a loop label from labeledLoop into the next
	// loop/switch construct, which registers its break/continue targets
	// under that name.
	pendingLabel string
}

// New builds the CFG of a function body. body may be nil (a declared but
// bodiless function), in which case the graph has a single empty block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:             &Graph{},
		labelBreak:    make(map[string]*Block),
		labelContinue: make(map[string]*Block),
		labelBlock:    make(map[string]*Block),
		gotoPending:   make(map[string][]*Block),
	}
	b.cur = b.newBlock()
	b.g.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	// Unresolved gotos (malformed code the type checker already rejected)
	// are dropped; nothing to connect.
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge records that control may pass from to next.
func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock makes next the current block without linking it to the
// previous one — used after terminating statements (return, goto).
func (b *builder) startBlock(next *Block) {
	b.cur = next
}

// jump links the current block to next and continues there.
func (b *builder) jump(next *Block) {
	edge(b.cur, next)
	b.cur = next
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		join := b.newBlock()
		edge(condBlk, thenBlk)
		b.startBlock(thenBlk)
		b.stmtList(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			edge(condBlk, elseBlk)
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(join)
		} else {
			edge(condBlk, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(header)
		if s.Cond != nil {
			b.add(s.Cond)
			edge(header, exit)
		}
		edge(header, body)
		b.loopBody(s, body, exit, post, func() { b.stmtList(s.Body.List) })
		if s.Post != nil {
			b.startBlock(post)
			b.add(s.Post)
			edge(post, header)
		}
		b.startBlock(exit)

	case *ast.RangeStmt:
		// The RangeStmt node itself stands for the per-iteration key/value
		// assignment, so it lives in the loop header: facts it generates
		// flow into the body and around the back edge, and the loop may
		// execute zero times (header -> exit).
		header := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.jump(header)
		b.add(s)
		edge(header, exit)
		edge(header, body)
		b.loopBody(s, body, exit, header, func() { b.stmtList(s.Body.List) })
		b.startBlock(exit)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, true)

	case *ast.SelectStmt:
		entry := b.cur
		join := b.newBlock()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			edge(entry, blk)
			b.startBlock(blk)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			savedBreak := b.breakTarget
			b.breakTarget = join
			b.stmtList(cc.Body)
			b.breakTarget = savedBreak
			b.jump(join)
		}
		if len(s.Body.List) == 0 {
			edge(entry, join)
		}
		b.startBlock(join)

	case *ast.LabeledStmt:
		target := b.labelTarget(s.Label.Name)
		b.jump(target)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.labeledLoop(s.Label.Name, inner)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.add(s)
		if s.Tok == token.FALLTHROUGH {
			// Control continues into the next case body; caseClauses
			// draws that edge when the clause ends.
			return
		}
		b.branch(s)
		// Continue in an unreachable block so trailing statements don't
		// leak edges from the branch.
		b.startBlock(b.newBlock())

	case *ast.ReturnStmt:
		b.add(s)
		b.startBlock(b.newBlock())

	case nil:
		// nothing

	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, sends, go/defer, inc/dec, empty.
		b.add(s)
	}
}

// loopBody runs fn as the body of a loop with the given break/continue
// targets, restoring the outer targets afterwards. loopStmt is used to
// connect labeled break/continue set up by labeledLoop.
func (b *builder) loopBody(_ ast.Stmt, body, brk, cont *Block, fn func()) {
	savedBreak, savedCont := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = brk, cont
	if name := b.pendingLabel; name != "" {
		b.labelBreak[name] = brk
		b.labelContinue[name] = cont
		b.pendingLabel = ""
	}
	b.startBlock(body)
	fn()
	b.jump(cont)
	b.breakTarget, b.continueTarget = savedBreak, savedCont
}

// labeledLoop records the label so the loop construct built next can
// register its break/continue targets under it.
func (b *builder) labeledLoop(name string, s ast.Stmt) {
	b.pendingLabel = name
	b.stmt(s)
	b.pendingLabel = ""
	delete(b.labelBreak, name)
	delete(b.labelContinue, name)
}

// labelTarget returns (creating if needed) the block a goto or labeled
// statement for name lands on, wiring any parked goto edges.
func (b *builder) labelTarget(name string) *Block {
	if blk, ok := b.labelBlock[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labelBlock[name] = blk
	for _, from := range b.gotoPending[name] {
		edge(from, blk)
	}
	delete(b.gotoPending, name)
	return blk
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		t := b.breakTarget
		if s.Label != nil {
			if lt, ok := b.labelBreak[s.Label.Name]; ok {
				t = lt
			}
		}
		if t != nil {
			edge(b.cur, t)
		}
	case token.CONTINUE:
		t := b.continueTarget
		if s.Label != nil {
			if lt, ok := b.labelContinue[s.Label.Name]; ok {
				t = lt
			}
		}
		if t != nil {
			edge(b.cur, t)
		}
	case token.GOTO:
		if s.Label != nil {
			if blk, ok := b.labelBlock[s.Label.Name]; ok {
				edge(b.cur, blk)
			} else {
				b.gotoPending[s.Label.Name] = append(b.gotoPending[s.Label.Name], b.cur)
			}
		}
	}
}

// caseClauses linearizes a (type) switch body: every case body is a
// block reachable from the dispatch point; fallthrough chains case
// bodies; a missing default adds a dispatch->join edge.
func (b *builder) caseClauses(clauses []ast.Stmt, typeSwitch bool) {
	dispatch := b.cur
	join := b.newBlock()

	savedBreak := b.breakTarget
	b.breakTarget = join
	if name := b.pendingLabel; name != "" {
		b.labelBreak[name] = join
		b.pendingLabel = ""
	}

	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		edge(dispatch, bodies[i])
		b.startBlock(bodies[i])
		if !typeSwitch {
			for _, e := range cc.List {
				b.add(e)
			}
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(cc.Body)
		if fallsThrough && i+1 < len(clauses) {
			b.jump(bodies[i+1])
		} else {
			b.jump(join)
		}
	}
	if !hasDefault || len(clauses) == 0 {
		edge(dispatch, join)
	}
	b.breakTarget = savedBreak
	b.startBlock(join)
}
