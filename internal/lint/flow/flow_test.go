package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// compile type-checks one source file and returns the named function's
// declaration together with the type info.
func compile(t *testing.T, src, fn string) (*token.FileSet, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, fd, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil
}

func TestCFGStraightLine(t *testing.T) {
	_, fd, _ := compile(t, `package x
func f() int {
	a := 1
	b := a + 1
	return b
}`, "f")
	g := New(fd.Body)
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 0 {
		t.Fatalf("return must terminate the block; got %d succs", len(g.Entry.Succs))
	}
}

func TestCFGIfJoin(t *testing.T) {
	_, fd, _ := compile(t, `package x
func f(c bool) int {
	a := 1
	if c {
		a = 2
	} else {
		a = 3
	}
	return a
}`, "f")
	g := New(fd.Body)
	// entry(cond) -> then, else; both -> join.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2", len(g.Entry.Succs))
	}
	j1, j2 := g.Entry.Succs[0].Succs, g.Entry.Succs[1].Succs
	if len(j1) != 1 || len(j2) != 1 || j1[0] != j2[0] {
		t.Fatalf("then/else must share one join block")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, fd, _ := compile(t, `package x
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := New(fd.Body)
	// Find the header: the block holding the condition, with an exit and
	// a body successor, reachable from the body via the post block.
	var header *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if be, ok := n.(ast.Expr); ok {
				if _, isBin := be.(*ast.BinaryExpr); isBin {
					header = b
				}
			}
		}
	}
	if header == nil || len(header.Succs) != 2 {
		t.Fatalf("loop header not found or wrong successor count")
	}
	// The back edge must return to the header (possibly via the post
	// block): walk body successors up to two hops.
	found := false
	var walk func(b *Block, depth int)
	walk = func(b *Block, depth int) {
		if b == header {
			found = true
			return
		}
		if depth == 0 {
			return
		}
		for _, s := range b.Succs {
			walk(s, depth-1)
		}
	}
	for _, s := range header.Succs {
		walk(s, 3)
	}
	if !found {
		t.Fatal("no back edge to loop header")
	}
}

// taintOf runs a toy taint analysis on fn: calls to src() taint their
// assignee, calls to clean(x) sanitize x, and the returned map records
// for each sink(x) call line whether x was tainted there.
func taintOf(t *testing.T, src string) map[int]bool {
	t.Helper()
	fset, fd, info := compile(t, src, "f")
	g := New(fd.Body)

	calleeName := func(call *ast.CallExpr) string {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	var eval func(e ast.Expr, s Store[bool]) bool
	eval = func(e ast.Expr, s Store[bool]) bool {
		switch e := e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
			if r, ok := RefOf(info, e); ok {
				v, _ := s.Get(r)
				return v
			}
			return false
		case *ast.ParenExpr:
			return eval(e.X, s)
		case *ast.BinaryExpr:
			return eval(e.X, s) || eval(e.Y, s)
		case *ast.CallExpr:
			switch calleeName(e) {
			case "src":
				return true
			case "clean":
				return false
			}
			tainted := false
			for _, a := range e.Args {
				tainted = tainted || eval(a, s)
			}
			return tainted
		}
		return false
	}
	transfer := func(n ast.Node, in Store[bool]) Store[bool] {
		out := in.Clone()
		for _, as := range Assignments(n) {
			v := false
			if as.Rhs != nil {
				v = eval(as.Rhs, out)
			}
			if r, ok := RefOf(info, as.Lhs); ok {
				out.Set(r, v)
			}
		}
		return out
	}
	l := Lattice[Store[bool]]{
		Init: Store[bool]{},
		Join: func(a, b Store[bool]) Store[bool] {
			return JoinStores(a, b, func(x, y bool) bool { return x || y })
		},
		Equal:    Store[bool].Equal,
		Transfer: transfer,
	}
	res := make(map[int]bool)
	ForwardVisit(g, l, func(n ast.Node, before Store[bool]) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && calleeName(call) == "sink" {
				line := fset.Position(call.Pos()).Line
				res[line] = res[line] || eval(call.Args[0], before)
			}
			return true
		})
	})
	return res
}

const taintHeader = `package x
func src() int      { return 0 }
func clean(x int) int { return x }
func sink(x int)    {}
`

func TestTaintThroughBranchJoin(t *testing.T) {
	res := taintOf(t, taintHeader+`
func f(c bool) {
	x := 0
	if c {
		x = src()
	}
	sink(x) // line 11
}`)
	if !res[11] {
		t.Fatalf("taint must survive the branch join: %v", res)
	}
}

func TestTaintKilledOnAllPaths(t *testing.T) {
	res := taintOf(t, taintHeader+`
func f(c bool) {
	x := src()
	if c {
		x = clean(x)
	} else {
		x = 0
	}
	sink(x) // line 13
}`)
	if res[13] {
		t.Fatalf("taint cleared on both paths must not reach the sink: %v", res)
	}
}

func TestTaintAroundLoopBackEdge(t *testing.T) {
	// x becomes tainted only on iteration 1; the back edge must carry
	// the taint to the sink at the top of iteration 2.
	res := taintOf(t, taintHeader+`
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		sink(x) // line 9
		x = src()
	}
}`)
	if !res[9] {
		t.Fatalf("taint must travel the loop back edge: %v", res)
	}
}

func TestTaintFieldSensitivity(t *testing.T) {
	res := taintOf(t, taintHeader+`
type cfg struct{ a, b int }
func f() {
	var c cfg
	c.a = src()
	sink(c.a) // line 10
	sink(c.b) // line 11
	c = cfg{}
	sink(c.a) // line 13
}`)
	if !res[10] {
		t.Fatal("tainted field read must report")
	}
	if res[11] {
		t.Fatal("sibling field must stay clean")
	}
	if res[13] {
		t.Fatal("whole-struct overwrite must clear field taint")
	}
}

func TestTaintSwitchAndGoto(t *testing.T) {
	res := taintOf(t, taintHeader+`
func f(k int) {
	x := 0
	switch k {
	case 1:
		x = src()
		goto done
	case 2:
		x = clean(x)
	}
	sink(x) // line 15
done:
	sink(x) // line 17
}`)
	if res[15] {
		t.Fatalf("case 1 jumps over line 15; only clean paths reach it: %v", res)
	}
	if !res[17] {
		t.Fatalf("goto target joins the tainted path: %v", res)
	}
}

func TestReachingDefsMergeAtJoin(t *testing.T) {
	fset, fd, info := compile(t, `package x
func f(c bool) int {
	a := 1
	if c {
		a = 2
	}
	return a
}`, "f")
	g := New(fd.Body)
	var got []int
	ReachingVisit(g, info, func(n ast.Node, before Defs) {
		if _, ok := n.(*ast.ReturnStmt); !ok {
			return
		}
		for r, set := range before {
			if r.Obj.Name() != "a" {
				continue
			}
			for p := range set {
				got = append(got, fset.Position(p).Line)
			}
		}
	})
	if len(got) != 2 {
		t.Fatalf("return must see both definitions of a, got lines %v", got)
	}
}

func TestRangeHeaderDefinesPerIteration(t *testing.T) {
	res := taintOf(t, taintHeader+`
func f(m map[int]int) {
	x := 0
	for _, v := range m {
		x = v
		_ = x
	}
	sink(x) // line 12
}`)
	// v itself is never tainted here; this exercises graph shape only —
	// the loop may run zero times, so x's initial def must also reach.
	if res[12] {
		t.Fatalf("untainted range loop must not taint: %v", res)
	}
}

func TestFuncGraphsVisitsLiteralsSeparately(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package x
func outer() func() {
	return func() { _ = 1 }
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	var decls, lits int
	FuncGraphs(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, g *Graph) {
		if decl != nil {
			decls++
		}
		if lit != nil {
			lits++
		}
		if g == nil || g.Entry == nil {
			t.Fatal("nil graph")
		}
	})
	if decls != 1 || lits != 1 {
		t.Fatalf("got %d decls, %d lits; want 1, 1", decls, lits)
	}
}

func TestAssignmentsTupleAndDecl(t *testing.T) {
	_, fd, _ := compile(t, `package x
func g() (int, int) { return 1, 2 }
func f() {
	var a, b = 1, 2
	c, d := g()
	_, _, _, _ = a, b, c, d
}`, "f")
	var tuple, plain int
	for _, n := range fd.Body.List {
		for _, as := range Assignments(n) {
			if as.TupleIndex >= 0 {
				tuple++
			} else {
				plain++
			}
		}
	}
	if tuple != 2 {
		t.Fatalf("tuple assignments: got %d, want 2", tuple)
	}
	if plain < 2 {
		t.Fatalf("plain assignments: got %d, want >= 2", plain)
	}
}

func TestStoreStrongAndWeak(t *testing.T) {
	// Direct Store semantics: Set kills inner paths, Get falls back to
	// enclosing taint.
	s := Store[int]{}
	x := Ref{Obj: fakeVar("x")}
	xa := Ref{Obj: x.Obj, Path: ".a"}
	s.Set(xa, 7)
	if v, ok := s.Get(xa); !ok || v != 7 {
		t.Fatal("exact get failed")
	}
	if _, ok := s.Get(Ref{Obj: x.Obj, Path: ".b"}); ok {
		t.Fatal("sibling must miss")
	}
	s.Set(x, 9)
	if v, ok := s.Get(xa); !ok || v != 9 {
		t.Fatal("field must inherit enclosing taint after whole-var set")
	}
	if len(s) != 1 {
		t.Fatalf("whole-var set must erase inner bindings, store: %v", s)
	}
}

func fakeVar(name string) types.Object {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Int])
}

func TestRefWithin(t *testing.T) {
	obj := fakeVar("x")
	x := Ref{Obj: obj}
	xa := Ref{Obj: obj, Path: ".a"}
	xab := Ref{Obj: obj, Path: ".a.b"}
	if !xab.Within(xa) || !xa.Within(x) || !xab.Within(x) {
		t.Fatal("nesting not detected")
	}
	if x.Within(xa) {
		t.Fatal("outer is not within inner")
	}
	if (Ref{Obj: obj, Path: ".ab"}).Within(xa) {
		t.Fatal(".ab is not within .a")
	}
}

func TestCFGSelectAndLabeledBreak(t *testing.T) {
	// Shape-only: the builder must not panic or wedge on select,
	// labeled loops, continue and fallthrough.
	_, fd, _ := compile(t, `package x
func f(ch chan int, n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		switch {
		case i == 1:
			s++
			fallthrough
		case i == 2:
			continue outer
		default:
			break outer
		}
	}
	select {
	case v := <-ch:
		s += v
	default:
	}
	return s
}`, "f")
	g := New(fd.Body)
	if len(g.Blocks) < 6 {
		t.Fatalf("suspiciously small graph: %d blocks", len(g.Blocks))
	}
	var terminal int
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		if len(b.Succs) == 0 {
			terminal++
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	if terminal == 0 {
		t.Fatal("no terminal block reachable from entry")
	}
}
