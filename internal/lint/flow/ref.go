package flow

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ref names a storage location an intra-procedural analysis can track: a
// local variable or parameter, optionally narrowed to a chain of struct
// fields ("x", "x.cfg.Seed", or through a pointer "p.*.Seed"). Refs are
// comparable and usable as map keys.
//
// Expressions that do not resolve to such a location (index expressions,
// calls, channel receives, globals through complex paths) have no Ref;
// analyses fall back to their domain-specific default for those.
type Ref struct {
	Obj  types.Object // the root *types.Var
	Path string       // "" for the variable itself; ".f.g" for fields
}

// IsZero reports whether r is the absent reference.
func (r Ref) IsZero() bool { return r.Obj == nil }

// Base returns the reference to r's root variable.
func (r Ref) Base() Ref { return Ref{Obj: r.Obj} }

// Within reports whether r is outer itself or a location inside it
// (a field chain extending outer's path). Assigning to outer therefore
// overwrites r; tainting outer taints r.
func (r Ref) Within(outer Ref) bool {
	if r.Obj != outer.Obj {
		return false
	}
	return r.Path == outer.Path || strings.HasPrefix(r.Path, outer.Path+".")
}

// RefOf resolves e to a trackable location, unwrapping parentheses,
// field selections and pointer dereferences. The boolean is false when
// the expression is not a variable-rooted chain.
func RefOf(info *types.Info, e ast.Expr) (Ref, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok {
			return Ref{Obj: v}, true
		}
		return Ref{}, false
	case *ast.ParenExpr:
		return RefOf(info, e.X)
	case *ast.SelectorExpr:
		// Only field selections extend a chain; method values and
		// package-qualified names do not name storage we track.
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			base, ok := RefOf(info, e.X)
			if !ok {
				return Ref{}, false
			}
			return Ref{Obj: base.Obj, Path: base.Path + "." + e.Sel.Name}, true
		}
		return Ref{}, false
	case *ast.StarExpr:
		// *p: track through the pointer as a distinct component so that
		// (*p).f and p.f unify via go/types' implicit deref in Selections.
		base, ok := RefOf(info, e.X)
		if !ok {
			return Ref{}, false
		}
		return Ref{Obj: base.Obj, Path: base.Path + ".*"}, true
	}
	return Ref{}, false
}

// Store is the workhorse fact domain for taint analyses: a map from
// locations to an analyzer-defined taint value. The zero Store is empty.
type Store[T comparable] map[Ref]T

// Get returns the taint on r, falling back to any enclosing location
// (a tainted struct taints its fields). The boolean reports whether any
// binding applied.
func (s Store[T]) Get(r Ref) (T, bool) {
	if v, ok := s[r]; ok {
		return v, true
	}
	// Walk outwards: x.a.b falls back to x.a, then x.
	for cur := r; cur.Path != ""; {
		i := strings.LastIndex(cur.Path, ".")
		cur.Path = cur.Path[:i]
		if v, ok := s[cur]; ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// Set binds r strongly: any previous binding of r or of a location
// inside r is erased first, then r maps to v.
func (s Store[T]) Set(r Ref, v T) {
	s.Clear(r)
	s[r] = v
}

// Clear removes the bindings of r and everything inside it.
func (s Store[T]) Clear(r Ref) {
	for k := range s {
		if k.Within(r) {
			delete(s, k)
		}
	}
}

// Clone returns an independent copy of s.
func (s Store[T]) Clone() Store[T] {
	out := make(Store[T], len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Equal reports whether two stores carry identical bindings.
func (s Store[T]) Equal(o Store[T]) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// JoinStores merges two stores with the provided per-value join,
// returning a new store. A location bound in only one input keeps its
// binding.
func JoinStores[T comparable](a, b Store[T], join func(T, T) T) Store[T] {
	out := a.Clone()
	for k, v := range b {
		if av, ok := out[k]; ok {
			out[k] = join(av, v)
		} else {
			out[k] = v
		}
	}
	return out
}

// Assignment is one lhs <- rhs pair extracted from an assignment or
// declaration statement. For tuple assignments from a single call
// (x, y := f()), Rhs is the call for every lhs and TupleIndex gives the
// result slot; otherwise TupleIndex is -1.
type Assignment struct {
	Lhs        ast.Expr
	Rhs        ast.Expr // nil for zero-value declarations (var x T)
	TupleIndex int
}

// Assignments flattens an *ast.AssignStmt or *ast.DeclStmt (var/const
// GenDecl) into lhs/rhs pairs. Statements that assign nothing return
// nil.
func Assignments(n ast.Node) []Assignment {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return pairs(n.Lhs, n.Rhs)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var out []Assignment
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			out = append(out, pairs(lhs, vs.Values)...)
		}
		return out
	}
	return nil
}

func pairs(lhs, rhs []ast.Expr) []Assignment {
	var out []Assignment
	switch {
	case len(rhs) == len(lhs):
		for i := range lhs {
			out = append(out, Assignment{Lhs: lhs[i], Rhs: rhs[i], TupleIndex: -1})
		}
	case len(rhs) == 1:
		// x, y = f()  /  x, ok = m[k]  /  v, ok = x.(T)
		for i := range lhs {
			out = append(out, Assignment{Lhs: lhs[i], Rhs: rhs[0], TupleIndex: i})
		}
	case len(rhs) == 0:
		for i := range lhs {
			out = append(out, Assignment{Lhs: lhs[i], Rhs: nil, TupleIndex: -1})
		}
	}
	return out
}
