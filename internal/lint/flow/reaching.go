package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Defs is the reaching-definitions fact: for each tracked location, the
// set of assignment positions that may have produced its current value.
type Defs map[Ref]map[token.Pos]bool

func cloneDefs(d Defs) Defs {
	out := make(Defs, len(d))
	for r, set := range d {
		cp := make(map[token.Pos]bool, len(set))
		for p := range set {
			cp[p] = true
		}
		out[r] = cp
	}
	return out
}

func joinDefs(a, b Defs) Defs {
	out := cloneDefs(a)
	for r, set := range b {
		if _, ok := out[r]; !ok {
			out[r] = make(map[token.Pos]bool, len(set))
		}
		for p := range set {
			out[r][p] = true
		}
	}
	return out
}

func equalDefs(a, b Defs) bool {
	if len(a) != len(b) {
		return false
	}
	for r, as := range a {
		bs, ok := b[r]
		if !ok || len(as) != len(bs) {
			return false
		}
		for p := range as {
			if !bs[p] {
				return false
			}
		}
	}
	return true
}

// gen records pos as the sole reaching definition of r (a strong
// update): previous definitions of r and of locations within r are
// killed.
func (d Defs) gen(r Ref, pos token.Pos) {
	for k := range d {
		if k.Within(r) {
			delete(d, k)
		}
	}
	d[r] = map[token.Pos]bool{pos: true}
}

// reachingLattice builds the reaching-definitions instance for one
// function. info resolves identifiers to objects.
func reachingLattice(info *types.Info) Lattice[Defs] {
	transfer := func(n ast.Node, in Defs) Defs {
		out := cloneDefs(in)
		switch n := n.(type) {
		case *ast.AssignStmt, *ast.DeclStmt:
			for _, as := range Assignments(n) {
				if r, ok := RefOf(info, as.Lhs); ok {
					out.gen(r, as.Lhs.Pos())
				}
			}
		case *ast.RangeStmt:
			if r, ok := RefOf(info, n.Key); n.Key != nil && ok {
				out.gen(r, n.Key.Pos())
			}
			if r, ok := RefOf(info, n.Value); n.Value != nil && ok {
				out.gen(r, n.Value.Pos())
			}
		case *ast.IncDecStmt:
			if r, ok := RefOf(info, n.X); ok {
				out.gen(r, n.X.Pos())
			}
		}
		return out
	}
	return Lattice[Defs]{
		Init:     Defs{},
		Join:     joinDefs,
		Equal:    equalDefs,
		Transfer: transfer,
	}
}

// Reaching computes reaching definitions over g and returns the fact at
// each reachable block's entry.
func Reaching(g *Graph, info *types.Info) map[*Block]Defs {
	return Forward(g, reachingLattice(info))
}

// ReachingVisit replays g calling visit with the definitions reaching
// each node.
func ReachingVisit(g *Graph, info *types.Info, visit func(n ast.Node, before Defs)) {
	ForwardVisit(g, reachingLattice(info), visit)
}

// InspectNode walks the parts of a CFG node that execute at that node
// rather than inside nested statements. The builder adds only leaf
// statements and expressions to blocks, with one exception: a RangeStmt
// sits whole in its loop header while the body statements get their own
// blocks — so for a RangeStmt only the key, value and range operand are
// visited, never the body. Use this instead of ast.Inspect when walking
// block nodes, or body code is visited twice (once with the header's
// dataflow fact).
func InspectNode(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				ast.Inspect(e, f)
			}
		}
		return
	}
	ast.Inspect(n, f)
}

// FuncGraphs yields the CFG of every function declaration and function
// literal in file, in source order. Literals get their own graphs —
// flow analyses here are strictly intra-procedural.
func FuncGraphs(file *ast.File, visit func(decl *ast.FuncDecl, lit *ast.FuncLit, g *Graph)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n, nil, New(n.Body))
			}
		case *ast.FuncLit:
			visit(nil, n, New(n.Body))
		}
		return true
	})
}
