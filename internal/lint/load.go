package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked (non-test) package.
type Package struct {
	RelPath string // module-relative directory, forward slashes
	Dir     string // absolute directory
	Fset    *token.FileSet
	Files   []*ast.File
	RelFile map[*ast.File]string
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library. Standard-library imports are resolved from the
// toolchain's compiled export data when available (see stdImporter) and
// from source otherwise; module-internal imports are resolved
// recursively through the loader itself. Every package is type-checked
// exactly once and the result is shared by all analyzers and by every
// importer of that package.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod
	Fset       *token.FileSet

	std  *stdImporter
	pkgs map[string]*Package // cache keyed by RelPath
	load map[string]bool     // in-flight loads, for import-cycle detection
}

// NewLoader returns a loader rooted at moduleRoot for the given module
// path. moduleRoot need not contain a real go.mod (tests point it at
// fixture trees).
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		Fset:       fset,
		std:        &stdImporter{fset: fset},
		pkgs:       make(map[string]*Package),
		load:       make(map[string]bool),
	}
}

// stdImporter resolves standard-library imports. Type-checking a
// package from source re-parses and re-checks its whole import closure,
// which dominated airlint's wall clock; the installed toolchain already
// ships the same information as compiled export data. The importer asks
// `go list -export` once for the export file of every std package and
// reads those, falling back to the source importer when the go tool is
// unavailable (or a package has no export data).
type stdImporter struct {
	fset *token.FileSet

	once    sync.Once
	exports map[string]string // import path -> export data file
	gc      types.ImporterFrom
	source  types.ImporterFrom
}

func (si *stdImporter) init() {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := si.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	out, err := exec.Command("go", "list", "-export",
		"-f", `{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}`, "std").Output()
	if err == nil {
		si.exports = make(map[string]string)
		for _, line := range strings.Split(string(out), "\n") {
			if ip, file, ok := strings.Cut(line, "="); ok {
				si.exports[ip] = file
			}
		}
		si.gc = importer.ForCompiler(si.fset, "gc", lookup).(types.ImporterFrom)
	}
}

func (si *stdImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	si.once.Do(si.init)
	if si.gc != nil {
		if pkg, err := si.gc.ImportFrom(path, dir, mode); err == nil {
			return pkg, nil
		}
	}
	if si.source == nil {
		si.source = importer.ForCompiler(si.fset, "source", nil).(types.ImporterFrom)
	}
	return si.source.ImportFrom(path, dir, mode)
}

// FindModule locates the enclosing module of dir by walking up to the
// nearest go.mod and returns (moduleRoot, modulePath).
func FindModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Expand resolves package patterns to module-relative directories.
// A trailing "/..." walks the subtree; other arguments name a single
// directory. Directories named "testdata", hidden directories, and
// directories without non-test .go files are skipped during walks.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var rels []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			rels = append(rels, rel)
		}
	}
	for _, pat := range patterns {
		walk := false
		if p, ok := strings.CutSuffix(pat, "..."); ok {
			walk = true
			pat = strings.TrimSuffix(p, "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(l.ModuleRoot, pat)
		}
		rel, err := l.relPath(root)
		if err != nil {
			return nil, err
		}
		if !walk {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("lint: no Go files in %s", root)
			}
			add(rel)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				r, err := l.relPath(path)
				if err != nil {
					return err
				}
				add(r)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(rels)
	return rels, nil
}

func (l *Loader) relPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == ".." || strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModuleRoot)
	}
	return rel, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package in the given module-relative
// directory. Test files (_test.go) are excluded: they may legitimately
// use wall clocks, global randomness, and goroutines.
func (l *Loader) Load(rel string) (*Package, error) {
	rel = filepath.ToSlash(rel)
	if pkg, ok := l.pkgs[rel]; ok {
		return pkg, nil
	}
	if l.load[rel] {
		return nil, fmt.Errorf("lint: import cycle through %s", rel)
	}
	l.load[rel] = true
	defer delete(l.load, rel)

	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	relFile := make(map[*ast.File]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		relFile[f] = path.Join(rel, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + rel
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", rel, typeErrs[0])
	}
	pkg := &Package{
		RelPath: rel,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		RelFile: relFile,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[rel] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to go/types: module-internal import
// paths are loaded recursively, everything else falls through to the
// source-based standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath {
		pkg, err := l.Load(".")
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		pkg, err := l.Load(rest)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
