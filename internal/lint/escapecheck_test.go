package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseEscapeOutput pins the filter: heap verdicts are kept (with
// trailing colons trimmed and exact duplicates — the build cache replays
// output — collapsed), while inlining chatter, "does not escape" lines
// and the indented -m -m explanation chains are dropped.
func TestParseEscapeOutput(t *testing.T) {
	out := strings.Join([]string{
		"# example.com/esc/hot",
		"./hot/hot.go:26:2: moved to heap: v",
		"./hot/hot.go:26:2: moved to heap: v",
		"hot/hot.go:27:9: &v escapes to heap:",
		"  flow: ~r0 = &v:",
		"hot/hot.go:13:10: xs does not escape",
		"hot/hot.go:25:6: can inline Leak",
		"not a diagnostic line",
	}, "\n")
	data := ParseEscapeOutput(out)
	if len(data.Diags) != 1 {
		t.Fatalf("got diags for %d files, want 1: %v", len(data.Diags), data.Diags)
	}
	got := data.Diags["hot/hot.go"]
	want := []EscapeDiag{
		{Line: 26, Col: 2, Msg: "moved to heap: v"},
		{Line: 27, Col: 9, Msg: "&v escapes to heap"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEscapeCheckAgainstFixture runs escapecheck over the escape fixture
// with hand-built compiler verdicts: the unsuppressed hotpath escape is
// the only finding (named function + compiler message), the suppressed
// one honors its allow directive, and the non-hotpath function's escape
// is ignored.
func TestEscapeCheckAgainstFixture(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/schemes/escape")
	if err != nil {
		t.Fatal(err)
	}
	data := &EscapeData{Diags: map[string][]EscapeDiag{
		"internal/schemes/escape/escape.go": {
			{Line: 26, Col: 2, Msg: "moved to heap: v"}, // Leak: finding
			{Line: 35, Col: 2, Msg: "moved to heap: w"}, // Sanctioned: allowed
			{Line: 41, Col: 2, Msg: "moved to heap: u"}, // Free: not hotpath
		},
	}}
	diags, err := CheckWith([]*Package{pkg}, Options{Escapes: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "escapecheck" || d.Pos.Line != 26 {
		t.Errorf("finding at %s line %d by %s, want escapecheck at line 26", d.Pos.Filename, d.Pos.Line, d.Analyzer)
	}
	if !strings.Contains(d.Message, "Leak") || !strings.Contains(d.Message, "moved to heap: v") {
		t.Errorf("message %q should name the function and the compiler diagnostic", d.Message)
	}
}

// TestOnlyEscapeCheckNeedsData: selecting escapecheck explicitly without
// escape data is a contradiction, not a silent no-op.
func TestOnlyEscapeCheckNeedsData(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/schemes/escape")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckWith([]*Package{pkg}, Options{Only: []string{"escapecheck"}})
	if err == nil {
		t.Fatal("escapecheck-only run without escape data should error")
	}
	if !strings.Contains(err.Error(), "-escape") {
		t.Errorf("error %q should point at the -escape flag", err)
	}
}

// TestRunEscapeBuildEndToEnd codifies the acceptance contract on a
// scratch module: introduce a heap escape in a hotpath function, run the
// real compiler, and the finding names the function and the compiler's
// diagnostic. This is `make lint-escape` in miniature.
func TestRunEscapeBuildEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go build")
	}
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module example.com/esc\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "hot"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package hot

//airlint:hotpath
func Leak() *int {
	v := 42
	return &v
}
`
	if err := os.WriteFile(filepath.Join(root, "hot", "hot.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := RunEscapeBuild(root, []string{"hot"})
	if err != nil {
		t.Fatal(err)
	}
	var moved bool
	for _, d := range data.Diags["hot/hot.go"] {
		if strings.Contains(d.Msg, "moved to heap: v") {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("escape build did not report the heap move: %v", data.Diags)
	}
	loader := NewLoader(root, "example.com/esc")
	pkg, err := loader.Load("hot")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckWith([]*Package{pkg}, Options{Only: []string{"escapecheck"}, Escapes: data})
	if err != nil {
		t.Fatal(err)
	}
	// Recent compilers report both "moved to heap: v" and "v escapes to
	// heap" for the same local; every finding must name the function.
	if len(diags) == 0 {
		t.Fatal("escapecheck reported nothing for a compiler-verified escape")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "Leak") || !strings.Contains(d.Message, "heap") {
			t.Errorf("message %q should name Leak and the compiler verdict", d.Message)
		}
	}
	var named bool
	for _, d := range diags {
		if strings.Contains(d.Message, "moved to heap: v") {
			named = true
		}
	}
	if !named {
		t.Errorf("no finding carries the compiler's moved-to-heap diagnostic: %v", diags)
	}
}
