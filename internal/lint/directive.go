package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// directiveNamespace introduces every airlint comment directive. Two
// verbs exist:
//
//	//airlint:allow <analyzer> <reason>
//	//airlint:hotpath
//
// allow silences <analyzer> diagnostics on the same line (trailing
// comment) or on the line directly below (standalone comment).
// Standalone directives stack: a run of consecutive directive-only lines
// all apply to the first code line beneath them, so one statement can
// carry suppressions for several analyzers. The reason is mandatory — a
// suppression without justification is itself an error — and so is being
// useful: a suppression that matches no diagnostic is reported, so stale
// allowances cannot accumulate.
//
// hotpath is not a suppression but a function-scoped marker: placed in a
// function declaration's doc comment it opts the function into the
// hotalloc analyzer's allocation-freedom check. It takes no arguments; a
// marker outside a function doc comment is an error (it would silently
// check nothing). An unknown verb after "airlint:" is also an error, so
// a typo cannot turn a directive into an ordinary comment.
const directiveNamespace = "//airlint:"

const (
	allowVerb   = "allow"
	hotpathVerb = "hotpath"
)

// hotpathMarked reports whether fd's doc comment carries the
// airlint:hotpath marker. Shared by the hotalloc analyzer (which checks
// marked functions) and the directive engine (which validates marker
// placement).
func hotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directiveNamespace+hotpathVerb {
			return true
		}
	}
	return false
}

// generatedRx is the standard generated-file marker (go.dev/s/generatedcode).
// Files carrying it before the package clause are machine output: airlint
// skips their diagnostics entirely and ignores any directives they
// contain, rather than demanding hand edits to generated text.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// isGenerated reports whether f carries the standard generated-code
// header before its package clause.
func isGenerated(fset *token.FileSet, f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// applyDirectives filters diags through the package's //airlint:allow
// comments and appends any directive errors (unknown verb, unknown
// analyzer, missing reason, unused suppression, misplaced hotpath
// marker) as "directive" diagnostics. active names the analyzers that
// actually ran: an allow for a known analyzer that was deselected (via
// -only) is ignored rather than reported unused, so a partial run never
// demands directive edits. Generated files are exempt: their diagnostics
// are dropped and their directives ignored.
func applyDirectives(pkg *Package, diags []Diagnostic, active map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var names []string
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)

	generated := make(map[string]bool)
	// codeLines[file] holds every line on which a non-comment token
	// appears; a directive on a line with no code is "standalone" and
	// participates in stacking. docComments holds every comment that is
	// part of some function declaration's doc group — the only place a
	// hotpath marker is meaningful.
	codeLines := make(map[string]map[int]bool)
	docComments := make(map[*ast.Comment]bool)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		if isGenerated(pkg.Fset, f) {
			generated[filename] = true
			continue
		}
		lines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			lines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		codeLines[filename] = lines
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docComments[c] = true
				}
			}
		}
	}

	var dirs []*directive
	var errs []Diagnostic
	// byLine indexes directives per file per line for the stacking walk.
	byLine := make(map[string]map[int][]*directive)
	for _, f := range pkg.Files {
		if generated[pkg.Fset.Position(f.Pos()).Filename] {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directiveNamespace)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				verb := ""
				if len(fields) > 0 {
					verb = fields[0]
				}
				switch verb {
				case hotpathVerb:
					if len(fields) > 1 {
						errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "//airlint:hotpath takes no arguments (it marks the whole function; suppress individual findings with //airlint:allow hotalloc <reason>)"})
						continue
					}
					if !docComments[c] {
						errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "misplaced //airlint:hotpath: the marker must sit in a function declaration's doc comment, where it opts that function into the hotalloc check"})
					}
				case allowVerb:
					args := fields[1:]
					if len(args) == 0 {
						errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "malformed //airlint:allow: want \"//airlint:allow <analyzer> <reason>\""})
						continue
					}
					if !known[args[0]] {
						errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: fmt.Sprintf("unknown analyzer %q in //airlint:allow (known: %s)", args[0], strings.Join(names, ", "))})
						continue
					}
					if len(args) < 2 {
						errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
							Message: "//airlint:allow " + args[0] + " needs a reason"})
						continue
					}
					if !active[args[0]] {
						// The analyzer was deselected for this run; the
						// suppression can be neither used nor stale.
						continue
					}
					d := &directive{pos: pos, analyzer: args[0], reason: strings.Join(args[1:], " ")}
					dirs = append(dirs, d)
					if byLine[pos.Filename] == nil {
						byLine[pos.Filename] = make(map[int][]*directive)
					}
					byLine[pos.Filename][pos.Line] = append(byLine[pos.Filename][pos.Line], d)
				default:
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown airlint directive %q (known: %s, %s)", verb, allowVerb, hotpathVerb)})
				}
			}
		}
	}

	// covering returns the directives that apply to a diagnostic at
	// (file, line): trailing directives on the same line, plus the run of
	// standalone directive-only lines directly above.
	covering := func(file string, line int) []*directive {
		perLine := byLine[file]
		if perLine == nil {
			return nil
		}
		out := append([]*directive(nil), perLine[line]...)
		for l := line - 1; ; l-- {
			ds := perLine[l]
			if len(ds) == 0 {
				break
			}
			out = append(out, ds...)
			if codeLines[file][l] {
				// A trailing directive covers the line below it (its own
				// statement continues there in spirit) but the stack stops
				// at code.
				break
			}
		}
		return out
	}

	var kept []Diagnostic
	for _, d := range diags {
		if generated[d.Pos.Filename] {
			continue
		}
		suppressed := false
		for _, dir := range covering(d.Pos.Filename, d.Pos.Line) {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			errs = append(errs, Diagnostic{Pos: dir.pos, Analyzer: "directive",
				Message: "unused //airlint:allow " + dir.analyzer + " (no matching diagnostic at the lines it covers)"})
		}
	}
	return append(kept, errs...)
}
