package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//airlint:allow <analyzer> <reason>
//
// It silences <analyzer> diagnostics on the same line (trailing comment)
// or on the line directly below (standalone comment). The reason is
// mandatory — a suppression without justification is itself an error —
// and so is being useful: a suppression that matches no diagnostic is
// reported, so stale allowances cannot accumulate.
const directivePrefix = "//airlint:allow"

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// applyDirectives filters diags through the package's //airlint:allow
// comments and appends any directive errors (unknown analyzer, missing
// reason, unused suppression) as "directive" diagnostics.
func applyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var names []string
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)

	var dirs []*directive
	var errs []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: "malformed //airlint:allow: want \"//airlint:allow <analyzer> <reason>\""})
					continue
				}
				if !known[fields[0]] {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown analyzer %q in //airlint:allow (known: %s)", fields[0], strings.Join(names, ", "))})
					continue
				}
				if len(fields) < 2 {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: "//airlint:allow " + fields[0] + " needs a reason"})
					continue
				}
				dirs = append(dirs, &directive{pos: pos, analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}

	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.analyzer != d.Analyzer || dir.pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			errs = append(errs, Diagnostic{Pos: dir.pos, Analyzer: "directive",
				Message: "unused //airlint:allow " + dir.analyzer + " (no matching diagnostic on this or the next line)"})
		}
	}
	return append(kept, errs...)
}
