package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//airlint:allow <analyzer> <reason>
//
// It silences <analyzer> diagnostics on the same line (trailing comment)
// or on the line directly below (standalone comment). Standalone
// directives stack: a run of consecutive directive-only lines all apply
// to the first code line beneath them, so one statement can carry
// suppressions for several analyzers. The reason is mandatory — a
// suppression without justification is itself an error — and so is being
// useful: a suppression that matches no diagnostic is reported, so stale
// allowances cannot accumulate.
const directivePrefix = "//airlint:allow"

// generatedRx is the standard generated-file marker (go.dev/s/generatedcode).
// Files carrying it before the package clause are machine output: airlint
// skips their diagnostics entirely and ignores any directives they
// contain, rather than demanding hand edits to generated text.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// isGenerated reports whether f carries the standard generated-code
// header before its package clause.
func isGenerated(fset *token.FileSet, f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// applyDirectives filters diags through the package's //airlint:allow
// comments and appends any directive errors (unknown analyzer, missing
// reason, unused suppression) as "directive" diagnostics. Generated
// files are exempt: their diagnostics are dropped and their directives
// ignored.
func applyDirectives(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var names []string
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)

	generated := make(map[string]bool)
	// codeLines[file] holds every line on which a non-comment token
	// appears; a directive on a line with no code is "standalone" and
	// participates in stacking.
	codeLines := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		if isGenerated(pkg.Fset, f) {
			generated[filename] = true
			continue
		}
		lines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			lines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		codeLines[filename] = lines
	}

	var dirs []*directive
	var errs []Diagnostic
	// byLine indexes directives per file per line for the stacking walk.
	byLine := make(map[string]map[int][]*directive)
	for _, f := range pkg.Files {
		if generated[pkg.Fset.Position(f.Pos()).Filename] {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: "malformed //airlint:allow: want \"//airlint:allow <analyzer> <reason>\""})
					continue
				}
				if !known[fields[0]] {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown analyzer %q in //airlint:allow (known: %s)", fields[0], strings.Join(names, ", "))})
					continue
				}
				if len(fields) < 2 {
					errs = append(errs, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: "//airlint:allow " + fields[0] + " needs a reason"})
					continue
				}
				d := &directive{pos: pos, analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
				dirs = append(dirs, d)
				if byLine[pos.Filename] == nil {
					byLine[pos.Filename] = make(map[int][]*directive)
				}
				byLine[pos.Filename][pos.Line] = append(byLine[pos.Filename][pos.Line], d)
			}
		}
	}

	// covering returns the directives that apply to a diagnostic at
	// (file, line): trailing directives on the same line, plus the run of
	// standalone directive-only lines directly above.
	covering := func(file string, line int) []*directive {
		perLine := byLine[file]
		if perLine == nil {
			return nil
		}
		out := append([]*directive(nil), perLine[line]...)
		for l := line - 1; ; l-- {
			ds := perLine[l]
			if len(ds) == 0 {
				break
			}
			out = append(out, ds...)
			if codeLines[file][l] {
				// A trailing directive covers the line below it (its own
				// statement continues there in spirit) but the stack stops
				// at code.
				break
			}
		}
		return out
	}

	var kept []Diagnostic
	for _, d := range diags {
		if generated[d.Pos.Filename] {
			continue
		}
		suppressed := false
		for _, dir := range covering(d.Pos.Filename, d.Pos.Line) {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			errs = append(errs, Diagnostic{Pos: dir.pos, Analyzer: "directive",
				Message: "unused //airlint:allow " + dir.analyzer + " (no matching diagnostic at the lines it covers)"})
		}
	}
	return append(kept, errs...)
}
