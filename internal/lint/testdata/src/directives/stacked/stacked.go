// Package stacked suppresses two analyzers on one code line with a run
// of standalone directive-only lines.
package stacked

import "time"

// Launch needs both allowances: the go statement and the clock read.
func Launch() {
	//airlint:allow confinement fixture exercises stacked directives
	//airlint:allow determinism fixture exercises stacked directives
	go func() { _ = time.Now() }()
}
