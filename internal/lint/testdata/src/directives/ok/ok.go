// Package ok exercises working suppressions: a trailing same-line
// directive and a standalone directive on the preceding line.
package ok

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //airlint:allow determinism wall-clock use is intentional in this fixture
}

func Nap() {
	//airlint:allow determinism sleeping is intentional in this fixture
	time.Sleep(time.Millisecond)
}
