// Package hotstacked stacks the hot-path marker with suppressions: a
// used allow silences the finding; a stale one is itself an error.
package hotstacked

import "fmt"

//airlint:hotpath
func Walk(k int) error {
	if k < 0 {
		return fmt.Errorf("bad k %d", k) //airlint:allow hotalloc terminal validation path, once per bad call
	}
	return nil
}

//airlint:hotpath
func Quiet(k int) int {
	return k //airlint:allow hotalloc nothing allocates here, the allow is stale
}
