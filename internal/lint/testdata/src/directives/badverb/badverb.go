// Package badverb uses a directive verb the engine does not know.
package badverb

//airlint:nocheck this verb does not exist
func Nop() {}
