// Package unknown misspells an analyzer name in a suppression.
package unknown

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //airlint:allow determinsim typo in the analyzer name
}
