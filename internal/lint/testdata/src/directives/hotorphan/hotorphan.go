// Package hotorphan misplaces the hot-path marker: it only means
// something in a function's doc comment.
package hotorphan

func Walk(k int) int {
	//airlint:hotpath
	return k + 1
}
