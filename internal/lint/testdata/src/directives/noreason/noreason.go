// Package noreason suppresses without a justification.
package noreason

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //airlint:allow determinism
}
