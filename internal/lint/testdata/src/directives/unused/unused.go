// Package unused carries a suppression that matches no diagnostic.
package unused

//airlint:allow determinism stale suppression left behind after a refactor
func Pure(a, b int) int {
	return a + b
}
