// Package other sits outside the floatcompare scope; exact float
// equality is permitted here (and the map-order rule does not apply).
package other

func Exact(a, b float64) bool {
	return a == b
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
