// Package bad proves the faults layer sits inside the determinism scope:
// a wall-clock read in a fault model would break seed replayability.
package bad

import "time"

func Jitter() int64 {
	return time.Now().UnixNano() // line 8: wall clock
}
