// Package goodswitch covers the error-model enum: a full case list and an
// explicit default both satisfy exhaustive.
package goodswitch

import "example.com/airlintfix/internal/faults"

// Full lists every model.
func Full(k faults.ModelKind) string {
	switch k {
	case faults.ModelNone:
		return "none"
	case faults.ModelIID:
		return "iid"
	case faults.ModelGilbertElliott:
		return "ge"
	case faults.ModelDrop:
		return "drop"
	}
	return ""
}

// Defaulted handles the unexpected explicitly.
func Defaulted(k faults.ModelKind) string {
	switch k {
	case faults.ModelDrop:
		return "drop"
	default:
		return "other"
	}
}
