// Package badswitch dispatches on the error-model enum without covering
// it; the switch is an exhaustive finding.
package badswitch

import "example.com/airlintfix/internal/faults"

// Label misses ModelGilbertElliott and ModelDrop and has no default.
func Label(k faults.ModelKind) string {
	switch k {
	case faults.ModelNone:
		return "none"
	case faults.ModelIID:
		return "iid"
	}
	return ""
}
