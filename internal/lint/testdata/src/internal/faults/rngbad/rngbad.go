// Package rngbad violates the substream discipline every way the
// analyzer can see inside one package: direct math/rand construction,
// a computed label, an empty label, and a label reused within the
// package.
package rngbad

import (
	"math/rand"

	"example.com/airlintfix/internal/sim"
)

func Streams(seed int64, shard int, name string) int64 {
	src := rand.NewSource(seed)            // line 14: direct construction
	a := sim.StreamSeed(seed, shard, name) // line 15: computed label
	b := sim.StreamSeed(seed, shard, "")   // line 16: empty label
	c := sim.StreamSeed(seed, shard, "faults")
	d := sim.StreamSeed(seed, shard, "faults") // line 18: duplicate label
	return src.Int63() + a + b + c + d
}
