// Package rnggood derives every substream through the sanctioned
// constructors with distinct compile-time labels.
package rnggood

import "example.com/airlintfix/internal/sim"

func Streams(seed int64, shard int) int64 {
	rng := sim.NewShardRNG(seed, shard)
	_ = rng
	a := sim.StreamSeed(seed, shard, "arrivals")
	return a + sim.StreamSeed(seed, shard, "faults")
}
