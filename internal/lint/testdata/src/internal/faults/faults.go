// Package faults mirrors the production error-model enum for fixtures:
// exhaustive treats Kind-suffixed types from internal/faults as closed.
package faults

// ModelKind selects the error process applied to bucket reads.
type ModelKind uint8

const (
	ModelNone ModelKind = iota
	ModelIID
	ModelGilbertElliott
	ModelDrop
)
