// Package rngdup reuses a substream label another package already
// claimed. Checked alone it is clean; only a whole-module batch
// (CheckAll) can see the collision with rnggood's "faults" stream.
package rngdup

import "example.com/airlintfix/internal/sim"

func Stream(seed int64, shard int) int64 {
	return sim.StreamSeed(seed, shard, "faults") // duplicate across packages
}
