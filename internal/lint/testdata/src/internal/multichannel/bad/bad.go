// Package bad proves the channel-allocation layer sits inside the
// determinism scope: an unseeded draw when picking a channel would break
// the K=1 differential gate.
package bad

import "math/rand"

func Hop(k int) int {
	return rand.Intn(k) // line 9: global rand
}
