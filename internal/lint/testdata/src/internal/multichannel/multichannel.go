// Package multichannel mirrors the production allocation-policy enum for
// fixtures: exhaustive treats Kind-suffixed types from
// internal/multichannel as closed.
package multichannel

// PolicyKind selects how the logical cycle is allocated across channels.
type PolicyKind uint8

const (
	PolicyReplicated PolicyKind = iota
	PolicyIndexData
	PolicySkewed
)
