// Package badswitch dispatches on the allocation-policy enum without
// covering it; the switch is an exhaustive finding.
package badswitch

import "example.com/airlintfix/internal/multichannel"

// Label misses PolicySkewed and has no default.
func Label(p multichannel.PolicyKind) string {
	switch p {
	case multichannel.PolicyReplicated:
		return "replicated"
	case multichannel.PolicyIndexData:
		return "indexdata"
	}
	return ""
}
