// Package goodswitch covers the allocation-policy enum: a full case list
// and an explicit default both satisfy exhaustive.
package goodswitch

import "example.com/airlintfix/internal/multichannel"

// Full lists every policy.
func Full(p multichannel.PolicyKind) string {
	switch p {
	case multichannel.PolicyReplicated:
		return "replicated"
	case multichannel.PolicyIndexData:
		return "indexdata"
	case multichannel.PolicySkewed:
		return "skewed"
	}
	return ""
}

// Defaulted handles the unexpected explicitly.
func Defaulted(p multichannel.PolicyKind) string {
	switch p {
	case multichannel.PolicySkewed:
		return "skewed"
	default:
		return "other"
	}
}
