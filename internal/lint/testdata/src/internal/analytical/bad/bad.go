// Package bad holds floatcompare positive cases.
package bad

func Equalish(a, b float64) bool {
	return a == b // line 5: exact float equality
}

func Different(a float32, b float32) bool {
	return a != b // line 9: exact float inequality
}
