// Package good holds floatcompare negative cases: tolerance comparison,
// integer equality, and ordered float comparison are all fine.
package good

import "math"

const eps = 1e-9

func Close(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func SameCount(a, b int) bool {
	return a == b
}

func Less(a, b float64) bool {
	return a < b
}
