// Package mapgood emits map-keyed data correctly: the collected keys
// pass through a sort before any sink, which kills the "unordered"
// taint along every path the analyzer tracks — including through a
// branch join and a strings.Join launder.
package mapgood

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EmitCSV is the canonical pattern: collect, sort, emit.
func EmitCSV(w *csv.Writer, params map[string]float64) error {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return w.Write(keys)
}

// EmitText sorts before the launder; the joined line is clean.
func EmitText(out io.Writer, params map[string]float64, verbose bool) {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	line := strings.Join(keys, ",")
	if verbose {
		line += fmt.Sprintf(" (%d params)", len(params))
	}
	fmt.Fprintln(out, line)
}

// Count never leaks ordering: the number of entries is order-free.
func Count(out io.Writer, params map[string]float64) {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	fmt.Fprintf(out, "%d\n", len(keys))
}
