// Package mapbad emits map-iteration-ordered data without sorting: the
// keys collected from a range over a map reach a CSV writer, an fmt
// sink and a core.Result field while still tainted. The determinism
// analyzer's syntactic rule does not apply here (internal/experiments
// is outside its scope) — exactly the gap the flow-sensitive maporder
// rule closes.
package mapbad

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"example.com/airlintfix/internal/core"
)

// EmitCSV writes the params in map order: nondeterministic output.
func EmitCSV(w *csv.Writer, params map[string]float64) error {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	return w.Write(keys)
}

// EmitText launders the keys through a join before printing them.
func EmitText(out io.Writer, params map[string]float64) {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	line := strings.Join(keys, ",")
	fmt.Fprintln(out, line)
}

// Summarize stores map-ordered text into the merged result.
func Summarize(res *core.Result, params map[string]float64) {
	var b []string
	for k, v := range params {
		b = append(b, fmt.Sprintf("%s=%g", k, v))
	}
	res.Summary = strings.Join(b, " ")
}

// EmitRows re-ranges over the unsorted key slice; the loop variable
// inherits the map-iteration taint from the collection.
func EmitRows(out io.Writer, params map[string]float64) {
	var keys []string
	for k := range params {
		keys = append(keys, k)
	}
	for _, k := range keys {
		fmt.Fprintln(out, k)
	}
}
