// Package goodunits moves between units only through the sanctioned
// API: constructors in, methods across, plain conversions out.
package goodunits

import (
	"example.com/airlintfix/internal/sim"
	"example.com/airlintfix/internal/units"
)

const header = 8

// Advance exercises the allowed patterns end to end.
func Advance(start sim.Time, c units.ByteCount, i units.BucketIndex) sim.Time {
	size := units.Bytes(64) + units.Bytes64(int64(header))
	end := start + size.Span()
	if int(i)%2 == 0 {
		end += c.Times(3).Span()
	}
	_ = units.Elapsed(start, end)
	_ = size.Div(c)
	_ = float64(c)
	return sim.Time(int64(end))
}
