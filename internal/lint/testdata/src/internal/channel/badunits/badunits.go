// Package badunits launders measurement units; each marked line is a
// unitsafety finding.
package badunits

import (
	"example.com/airlintfix/internal/sim"
	"example.com/airlintfix/internal/units"
)

// Launder converts between unit types instead of using the bridges.
func Launder(c units.ByteCount, t sim.Time) units.ByteOffset {
	off := units.ByteOffset(c) // cross-unit conversion
	_ = units.ByteCount(t)     // byte-clock into a unit
	return off
}

// Raw bypasses the constructors with a bare conversion.
func Raw() units.ByteCount {
	return units.ByteCount(64)
}

// Area multiplies two dimensioned operands.
func Area(a, b units.ByteCount) int64 {
	return int64(a * b)
}
