// Package channel mirrors the production bucket codec for fixtures:
// byteclock recognizes the niladic Encode() []byte shape on any bucket
// type, matched structurally rather than by import path.
package channel

// Bucket is one broadcast bucket with its encoded image.
type Bucket struct{ payload []byte }

// Encode returns the bucket's broadcast image.
func (b Bucket) Encode() []byte { return b.payload }

// Channel is a cyclic bucket sequence.
type Channel struct{ buckets []Bucket }

// Bucket returns the bucket at cycle position i.
func (c *Channel) Bucket(i int) Bucket { return c.buckets[i] }

// NumBuckets returns the cycle's bucket count.
func (c *Channel) NumBuckets() int { return len(c.buckets) }
