// Package sim mirrors the production byte-clock for fixtures: the unit
// analyzers recognize sim.Time by its package-path suffix.
package sim

// Time is virtual time measured in bytes broadcast.
type Time int64
