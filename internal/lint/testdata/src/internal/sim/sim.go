// Package sim mirrors the production byte-clock for fixtures: the unit
// analyzers recognize sim.Time by its package-path suffix, and
// rngdiscipline recognizes the sanctioned RNG constructors the same way.
package sim

// Time is virtual time measured in bytes broadcast.
type Time int64

// RNG mirrors the production seeded generator.
type RNG struct{ state uint64 }

// NewRNG mirrors the production seeded constructor.
func NewRNG(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// NewShardRNG mirrors the production shard-substream constructor.
func NewShardRNG(seed int64, shard int) *RNG {
	return &RNG{state: uint64(seed) + uint64(shard)}
}

// StreamSeed mirrors the production labeled-substream derivation.
func StreamSeed(seed int64, shard int, label string) int64 {
	return seed + int64(shard) + int64(len(label))
}
