// Package good exercises the determinism analyzer's negative cases:
// seeded randomness, sorted map iteration, and map loops whose order
// cannot escape.
package good

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded randomness through explicit constructors is fine.
func DrawSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Pure duration arithmetic never reads the clock.
func Budget() time.Duration {
	return 3 * time.Millisecond
}

// Map iteration followed by a sort is deterministic.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Order-insensitive accumulation does not feed a slice or return.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
