// Package bad trips every determinism rule: wall-clock reads, global
// math/rand, and a map iteration whose order leaks into a returned slice.
package bad

import (
	"math/rand"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // line 11: wall clock
}

func Nap() {
	time.Sleep(time.Millisecond) // line 15: wall clock
}

func Draw() int {
	return rand.Intn(6) // line 19: global randomness
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // line 24: unsorted map iteration feeding a slice
		out = append(out, k)
	}
	return out
}
