// Package badswitch dispatches on the daemon's config enums without
// covering them; both switches are exhaustive findings.
package badswitch

import "example.com/airlintfix/internal/aircast"

// Dial misses TransportTCP and has no default.
func Dial(k aircast.TransportKind) string {
	switch k {
	case aircast.TransportInmem:
		return "inmem"
	case aircast.TransportUDP:
		return "udp"
	}
	return ""
}

// Armed misses ChaosOff and has no default.
func Armed(k aircast.ChaosKind) bool {
	switch k {
	case aircast.ChaosOn:
		return true
	}
	return false
}
