// Package goodswitch covers the daemon's config enums: a full case list
// and an explicit default both satisfy exhaustive.
package goodswitch

import "example.com/airlintfix/internal/aircast"

// Dial lists every transport.
func Dial(k aircast.TransportKind) string {
	switch k {
	case aircast.TransportInmem:
		return "inmem"
	case aircast.TransportUDP:
		return "udp"
	case aircast.TransportTCP:
		return "tcp"
	}
	return ""
}

// Armed handles the unexpected explicitly.
func Armed(k aircast.ChaosKind) bool {
	switch k {
	case aircast.ChaosOn:
		return true
	default:
		return false
	}
}
