// Package daemon exercises the aircast sanctions: the live broadcast
// daemon may read the wall clock (its pacer maps the byte-clock onto
// real time) and own goroutines, WaitGroups and channels. None of this
// is a finding inside internal/aircast.
package daemon

import (
	"sync"
	"time"
)

// Pace sleeps until the byte-clock target, wall-clock style.
func Pace(target time.Time) {
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

// Serve fans a frame out to one subscriber and joins it.
func Serve(frame []byte) {
	ch := make(chan []byte, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	ch <- frame
	wg.Wait()
}
