// Package badrand pins the edge of the aircast sanction: only the
// wall-clock ban is lifted there — process-global randomness is still a
// determinism finding (chaos must draw from a seeded injector).
package badrand

import "math/rand"

// Flip draws from the global source.
func Flip() bool {
	return rand.Intn(2) == 1 // line 10: global randomness
}
