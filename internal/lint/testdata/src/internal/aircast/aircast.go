// Package aircast mirrors the production daemon's config enums for
// fixtures: exhaustive treats Kind-suffixed types from internal/aircast
// as closed.
package aircast

// TransportKind selects how receivers attach to the broadcast.
type TransportKind uint8

const (
	TransportInmem TransportKind = iota
	TransportUDP
	TransportTCP
)

// ChaosKind toggles the transport chaos proxy.
type ChaosKind uint8

const (
	ChaosOff ChaosKind = iota
	ChaosOn
)
