// Package hotbad allocates every way hotalloc can catch inside a
// marked walker: literals, growth builtins, closures, boxing, fmt and
// string traffic.
package hotbad

import "fmt"

func sink(v any) {}

//airlint:hotpath
func Walk(k int, name string) int {
	m := map[int]int{k: k}        // line 12: map literal
	s := []int{k}                 // line 13: slice literal
	s = append(s, k)              // line 14: append
	b := make([]byte, k)          // line 15: make
	f := func() int { return k }  // line 16: closure
	sink(k)                       // line 17: boxing into any
	label := name + fmt.Sprint(k) // line 18: concat and fmt
	raw := []byte(name)           // line 19: string conversion
	return m[k] + len(s) + len(b) + f() + len(label) + len(raw)
}
