// Package flat mirrors a scheme package: Name is the key it registers
// under, and exhaustive treats switches naming it as open dispatches.
package flat

// Name is the registry key of the scheme.
const Name = "flat"
