// Package escape exercises escapecheck. hotalloc's AST rules cannot
// see that returning a pointer to a local moves the local to the heap —
// there is no composite literal, append, closure or boxing to match.
// The compiler's escape analysis is the ground truth; escapecheck
// replays its verdicts against the //airlint:hotpath markers. The test
// harness supplies the verdicts (lint_test.go builds EscapeData for
// the exact lines below), so keep line numbers stable.
package escape

// Sum is genuinely allocation-free; neither analyzer objects.
//
//airlint:hotpath
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Leak returns a pointer to a stack local: invisible to hotalloc,
// caught by the compiler (moved to heap: v) on line 25.
//
//airlint:hotpath
func Leak() *int {
	v := 42
	return &v
}

// Sanctioned escapes too, but under a justified suppression.
//
//airlint:hotpath
func Sanctioned() *int {
	//airlint:allow escapecheck fixture: sanctioned escape kept to prove suppression works
	w := 7
	return &w
}

// Free is not hotpath-marked; its escape is not airlint's business.
func Free() *int {
	u := 1
	return &u
}
