// Package hotgood keeps its marked walker allocation-free; the
// unmarked builder next to it may allocate freely.
package hotgood

// total is a compile-time constant; constants never allocate.
const total = 3

//airlint:hotpath
func Walk(buf []byte, k int) int {
	acc := total
	for _, b := range buf {
		acc += int(b) * k // numeric conversions are free
	}
	return acc
}

// Build is unmarked: setup code allocates outside the hot path.
func Build(n int) []byte {
	return make([]byte, n)
}
