// Package wire mirrors the production bucket-kind enum for fixtures:
// exhaustive treats Kind-suffixed types from internal/wire as closed.
package wire

// Kind tags the bucket payloads on the broadcast channel.
type Kind uint8

const (
	KindData Kind = iota
	KindIndex
	KindHash
	KindSignature
)
