// Package goodmerge reads its merge argument transitively: the
// whole-value copy happens inside a same-package helper, which the
// analyzer traces instead of flagging.
package goodmerge

// Sample mirrors the production Welford accumulator.
type Sample struct {
	n    int64
	mean float64
	m2   float64
}

// Merge reads o.n directly and hands o to copyFrom for the rest.
func (s *Sample) Merge(o *Sample) {
	if o.n == 0 {
		return
	}
	s.copyFrom(o)
}

func (s *Sample) copyFrom(o *Sample) { *s = *o }
