// Package badmerge forgets one field in a pairwise merge: the moment
// estimate survives but its variance silently collapses.
package badmerge

// Sample mirrors the production Welford accumulator.
type Sample struct {
	n    int64
	mean float64
	m2   float64
}

// Merge folds o into s but never reads o.m2.
func (s *Sample) Merge(o *Sample) { // line 13: m2 never read
	s.n += o.n
	s.mean += o.mean
}
