// Package srcbad calls Of through the Source interface with an index
// the callback was never charged for; interface dispatch does not
// launder the byteclock discipline.
package srcbad

// Source mirrors the airborne bucket-source abstraction.
type Source interface {
	Of(i int) []byte
	NumBuckets() int
}

// Wander decodes the neighbour of the bucket it was handed.
func Wander(src Source, i int) []byte {
	return src.Of(i + 1) // line 14: not the callback's own index parameter
}
