// Package good consumes image bytes only through the charged
// accessor, always for the bucket index its callback was handed.
package good

// Bytes mirrors the airborne decode cache.
type Bytes struct {
	cache [][]byte
}

// Of is the accessor; cache reads inside Bytes methods are sanctioned.
func (e *Bytes) Of(i int) []byte { return e.cache[i] }

// OnBucket decodes exactly the bucket index it was handed — the one
// the walker just read and charged.
func OnBucket(e *Bytes, i int) int {
	return len(e.Of(i))
}

// OnBucketClosure does the same from a callback literal with its own
// parameter set.
func OnBucketClosure(e *Bytes) func(int) int {
	return func(j int) int { return len(e.Of(j)) }
}
