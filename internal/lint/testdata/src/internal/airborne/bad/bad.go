// Package bad consumes broadcast-image bytes every way byteclock
// forbids: decoding outside the accessor, reaching into the decode
// cache, and decoding a bucket the clock never charged.
package bad

import "example.com/airlintfix/internal/channel"

// Bytes mirrors the airborne decode cache.
type Bytes struct {
	ch    *channel.Channel
	cache [][]byte
}

// Of is the sanctioned accessor; its own Encode call is the one
// legitimate decode site and carries the allow.
func (e *Bytes) Of(i int) []byte {
	if e.cache[i] == nil {
		e.cache[i] = e.ch.Bucket(i).Encode() //airlint:allow byteclock memoized decode of the bucket the caller was just charged for
	}
	return e.cache[i]
}

// Peek decodes outside the accessor.
func Peek(c *channel.Channel, i int) []byte {
	return c.Bucket(i).Encode() // line 25: Encode outside the charging path
}

// Steal reads the decode cache directly.
func Steal(e *Bytes, i int) []byte {
	return e.cache[i] // line 30: direct cache read
}

// Wander decodes a neighbour the callback was never charged for.
func Wander(e *Bytes, i int) []byte {
	return e.Of(i + 1) // line 35: not the callback's own index parameter
}
