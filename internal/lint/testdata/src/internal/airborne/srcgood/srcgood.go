// Package srcgood calls Of through the Source interface only for the
// bucket index its callback was handed — the one just read and charged.
package srcgood

// Source mirrors the airborne bucket-source abstraction.
type Source interface {
	Of(i int) []byte
	NumBuckets() int
}

// OnBucket decodes exactly the bucket it was handed.
func OnBucket(src Source, i int) int {
	return len(src.Of(i))
}

// OnBucketClosure does the same from a callback literal with its own
// parameter set.
func OnBucketClosure(src Source) func(int) int {
	return func(j int) int { return len(src.Of(j)) }
}
