// Package badswitch dispatches without covering the vocabulary; both
// switches are exhaustive findings.
package badswitch

import (
	"example.com/airlintfix/internal/schemes/flat"
	"example.com/airlintfix/internal/wire"
)

// Describe misses KindHash and KindSignature and has no default.
func Describe(k wire.Kind) string {
	switch k {
	case wire.KindData:
		return "data"
	case wire.KindIndex:
		return "index"
	}
	return ""
}

// Pick dispatches on a registry name without a default arm.
func Pick(name string) int {
	switch name {
	case flat.Name:
		return 1
	}
	return 0
}
