// Package badgo trips every confinement rule outside the sanctioned
// concurrency layer.
package badgo

import "sync"

func FanOut(n int) {
	var wg sync.WaitGroup        // line 8: WaitGroup outside parallel.go
	results := make(chan int, n) // line 9: channel construction
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // line 12: go statement
			defer wg.Done()
			results <- i
		}(i)
	}
	wg.Wait()
}

// A plain mutex is allowed everywhere: it guards state but cannot create
// concurrency.
var mu sync.Mutex

func Locked(f func()) {
	mu.Lock()
	defer mu.Unlock()
	f()
}
