// Package badmerge mirrors the shard-fold shape of the production
// engine but drops one counter: the merged result silently zeroes it
// in every sharded run, which is exactly what mergecomplete exists to
// catch.
package badmerge

// Result mirrors the merged experiment outcome: two counters plus an
// identity field that configuration fills, not accumulation.
type Result struct {
	Requests int64
	Switches int64
	Scheme   string
}

type shard struct {
	requests int64
	switches int64
}

func mergeShards(shards []shard) *Result { // line 20: Switches never combined
	res := &Result{Scheme: "flat"}
	for _, sh := range shards {
		res.Requests += sh.requests
	}
	return res
}
