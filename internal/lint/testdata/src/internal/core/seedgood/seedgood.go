// Package seedgood launders its seed through locals, struct fields and
// a same-package helper return — patterns the call-site-literal
// rngdiscipline check cannot follow but that seedtaint's dataflow
// traces back to the seed plane, so nothing here is a finding.
package seedgood

import "example.com/airlintfix/internal/sim"

// Config mirrors the production config's seed plane.
type Config struct {
	Seed int64
	Name string
}

// runner caches the seed in a field whose name says nothing about
// seeds; only the assignment ties it to the plane.
type runner struct {
	base  int64
	cache int64
}

// Build reroutes the shard RNG seed through an intermediate struct
// field and a helper return before construction.
func Build(cfg Config, shard int) *sim.RNG {
	r := runner{base: cfg.Seed}
	d := carry(r.base)
	r.cache = sim.StreamSeed(d, shard, "seedgood-build")
	return sim.NewRNG(r.cache)
}

// carry is the same-package launder: its summary maps the result back
// to whatever the caller passed.
func carry(x int64) int64 {
	y := x + 1
	return y - 1
}

// Reseed writes a derived value back into the seed plane; deriving it
// from the plane itself is allowed.
func Reseed(cfg *Config, shard int) {
	cfg.Seed = sim.StreamSeed(cfg.Seed, shard, "seedgood-reseed")
}
