package core

// Result mirrors the production merged-run result just enough for the
// maporder analyzer's sink rule: a named struct called Result in a
// package path ending internal/core. It deliberately has no Merge
// method, so mergecomplete has nothing to check here.
type Result struct {
	Summary string
	Params  map[string]float64
}
