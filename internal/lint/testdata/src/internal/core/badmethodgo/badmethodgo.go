// Package badmethodgo launches a goroutine through a method value,
// which confinement must catch just like a function literal.
package badmethodgo

type worker struct{ n int }

func (w *worker) run() { w.n++ }

// Spawn starts the goroutine outside the sanctioned file.
func Spawn() {
	w := &worker{}
	go w.run()
}
