// Package goodmerge folds every accumulator of its result: plain
// addition, a composite-literal identity field, and an Add-method
// accumulator all count as combined.
package goodmerge

type counter struct{ n int64 }

// Add folds one observation into the counter.
func (c *counter) Add(x int64) { c.n += x }

// Result mixes counters, a method-merged accumulator and an identity
// field.
type Result struct {
	Requests int64
	Switches int64
	Access   counter
	Scheme   string
}

type shard struct {
	requests int64
	switches int64
	access   counter
}

func mergeShards(shards []shard) *Result {
	res := &Result{Scheme: "flat"}
	for _, sh := range shards {
		res.Requests += sh.requests
		res.Switches += sh.switches
		res.Access.Add(sh.access.n)
	}
	return res
}
