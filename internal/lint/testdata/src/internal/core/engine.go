// Package core mirrors the real module's round-sharded engine file:
// internal/core/engine.go is the second sanctioned concurrency site, so
// its goroutines, WaitGroups and channels must pass the confinement
// analyzer here exactly as parallel.go's do.
package core

import "sync"

func RunWave(shards []func()) {
	done := make(chan int, len(shards))
	var wg sync.WaitGroup
	for i, run := range shards {
		wg.Add(1)
		go func(i int, run func()) {
			defer wg.Done()
			run()
			done <- i
		}(i, run)
	}
	wg.Wait()
}
