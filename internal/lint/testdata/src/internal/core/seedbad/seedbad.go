// Package seedbad launders nondeterministic seeds far enough from the
// construction site that rngdiscipline's call-site check cannot see
// them; seedtaint's dataflow still can.
package seedbad

import (
	"time"

	"example.com/airlintfix/internal/sim"
)

type wrap struct{ v int64 }

// FromClock reroutes a wall-clock read through a local and a struct
// field before seeding: the run can never be replayed.
func FromClock() *sim.RNG {
	t := time.Now().UnixNano()
	w := wrap{v: t}
	return sim.NewRNG(w.v)
}

// FromNowhere seeds from a value with no path back to the seed plane.
func FromNowhere(names []string) *sim.RNG {
	n := len(names)
	return sim.NewRNG(int64(n))
}

// build hides the seed behind a parameter whose name does not mark it
// as part of the plane; the contract wants it visible.
func build(x int64) *sim.RNG {
	return sim.NewRNG(x)
}

// Clobber writes the wall clock into the seed plane itself.
func Clobber(cfg *wrapConfig) {
	cfg.Seed = time.Now().UnixNano()
}

type wrapConfig struct{ Seed int64 }
