// Package goodswitch covers its dispatch vocabularies: full case lists,
// explicit defaults, and string switches that name no scheme constants.
package goodswitch

import (
	"example.com/airlintfix/internal/schemes/flat"
	"example.com/airlintfix/internal/wire"
)

// Full lists every kind.
func Full(k wire.Kind) string {
	switch k {
	case wire.KindData:
		return "data"
	case wire.KindIndex:
		return "index"
	case wire.KindHash:
		return "hash"
	case wire.KindSignature:
		return "sig"
	}
	return ""
}

// Defaulted handles the unexpected explicitly.
func Defaulted(k wire.Kind) string {
	switch k {
	case wire.KindData:
		return "data"
	default:
		return "other"
	}
}

// Registry carries the mandatory default arm.
func Registry(name string) int {
	switch name {
	case flat.Name:
		return 1
	default:
		return 0
	}
}

// Plain string switches that name no scheme constants are untouched.
func Plain(s string) bool {
	switch s {
	case "on":
		return true
	}
	return false
}
