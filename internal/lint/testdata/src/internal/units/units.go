// Package units mirrors the production measurement-unit types for
// fixtures. unitsafety recognizes them by package-path suffix, and this
// package (like the real one) is exempt from the analyzer so it can
// define the sanctioned bridges.
package units

import "example.com/airlintfix/internal/sim"

type (
	ByteCount   int64
	ByteOffset  int64
	BucketIndex int
	BucketCount int
)

func Bytes(n int) ByteCount      { return ByteCount(n) }
func Bytes64(n int64) ByteCount  { return ByteCount(n) }
func Offset64(n int64) ByteOffset { return ByteOffset(n) }
func Index(n int) BucketIndex    { return BucketIndex(n) }
func Count(n int) BucketCount    { return BucketCount(n) }

func (c ByteCount) Span() sim.Time        { return sim.Time(c) }
func (c ByteCount) Times(k int) ByteCount { return c * ByteCount(k) }
func (c ByteCount) Div(m ByteCount) int   { return int(c / m) }

func Elapsed(from, to sim.Time) ByteCount { return ByteCount(to - from) }

func (o ByteOffset) At(base sim.Time) sim.Time { return base + sim.Time(o) }
