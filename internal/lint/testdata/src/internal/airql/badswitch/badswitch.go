// Package badswitch dispatches on the scenario compiler's enums without
// covering them; both switches are exhaustive findings.
package badswitch

import "example.com/airlintfix/internal/airql"

// TokenName misses TokenNumber and TokenPipe and has no default.
func TokenName(k airql.TokenKind) string {
	switch k {
	case airql.TokenEOF:
		return "eof"
	case airql.TokenIdent:
		return "ident"
	}
	return ""
}

// StageName misses StageEmit and has no default.
func StageName(k airql.StageKind) string {
	switch k {
	case airql.StageSweep:
		return "sweep"
	case airql.StageRun:
		return "run"
	}
	return ""
}
