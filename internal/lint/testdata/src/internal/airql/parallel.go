// Package airql mirrors the real module's sanctioned concurrency
// layer: this file is internal/airql/parallel.go, the one place
// goroutines, WaitGroups, and channels are permitted.
package airql

import "sync"

func RunAll(fns []func()) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for _, fn := range fns {
		wg.Add(1)
		sem <- struct{}{}
		go func(fn func()) {
			defer wg.Done()
			defer func() { <-sem }()
			fn()
		}(fn)
	}
	wg.Wait()
}
