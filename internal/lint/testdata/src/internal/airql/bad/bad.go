// Package bad proves the scenario compiler sits inside the determinism
// and rngdiscipline scopes: a wall-clock read while assembling a table,
// or an RNG built outside the sanctioned constructors, would break the
// byte-identical regeneration gate.
package bad

import (
	"math/rand"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // line 13: wall clock
}

func Draw(seed int64) int64 {
	src := rand.NewSource(seed) // line 17: direct construction
	return src.Int63()
}
