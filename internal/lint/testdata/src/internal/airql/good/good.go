// Package good is the scenario compiler's negative fixture: the
// attrquery executor's pattern — a sanctioned RNG seeded from the
// config's seed plane — produces no findings.
package good

import "example.com/airlintfix/internal/sim"

func Draw(seed int64, shard int) int64 {
	rng := sim.NewRNG(seed)
	_ = rng
	return sim.StreamSeed(seed, shard, "attrquery")
}
