// Package goodswitch covers the scenario compiler's enums: a full case
// list and an explicit default both satisfy exhaustive.
package goodswitch

import "example.com/airlintfix/internal/airql"

// Full lists every token kind.
func Full(k airql.TokenKind) string {
	switch k {
	case airql.TokenEOF:
		return "eof"
	case airql.TokenIdent:
		return "ident"
	case airql.TokenNumber:
		return "number"
	case airql.TokenPipe:
		return "pipe"
	}
	return ""
}

// Defaulted handles the unexpected stage explicitly.
func Defaulted(k airql.StageKind) string {
	switch k {
	case airql.StageSweep:
		return "sweep"
	default:
		return "other"
	}
}
