// kinds.go mirrors the scenario compiler's closed enums for fixtures:
// exhaustive treats Kind-suffixed types from internal/airql as closed.
package airql

// TokenKind classifies one lexed token.
type TokenKind uint8

const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenNumber
	TokenPipe
)

// StageKind classifies one pipeline stage.
type StageKind uint8

const (
	StageSweep StageKind = iota
	StageRun
	StageEmit
)
