package lint

import (
	"go/ast"
	"go/types"
)

// ByteClockAnalyzer enforces the byte-clock accounting contract: the two
// headline metrics are byte counts, so inside the walker layers every
// broadcast-image byte a client consumes must first have been charged to
// access/tuning through the clock-charging channel APIs (Channel.SizeOf,
// units.Elapsed). Three bypasses are flagged in internal/access,
// internal/airborne and internal/multichannel:
//
//   - calling a bucket's Encode() — decoding image bytes outside the
//     sanctioned accessor reads bytes the clock never charged (the one
//     legitimate site, the memoized airborne.Bytes.Of, carries an
//     explicit allow);
//   - touching the `cache` field of a Bytes decode cache from anything
//     but a Bytes method — reaching into the cache skips the accessor's
//     charge-before-read discipline;
//   - calling Bytes.Of with anything but the enclosing function's own
//     bucket-index parameter — the index handed to OnBucket names the
//     bucket that was just read and charged; decoding any other bucket
//     reads bytes off the air for free. The same rule covers calls
//     dispatched through the airborne.Source interface (any named
//     interface called Source that declares Of), so clients stay
//     disciplined whether they read the simulator's memoized cache or
//     aircast's live stream.
//
// internal/aircast itself is deliberately outside the scope: its server
// side legitimately calls Encode() while framing buckets into datagrams
// (BuildImage charges nothing because nothing is on the air yet), and
// its Session charges every received payload to tuning before the
// client sees it. The client-facing surface is still covered — the
// walkers aircast drives live in internal/airborne, and the live
// Source enforces the on-air discipline at runtime by panicking on any
// index but the bucket just fed.
var ByteClockAnalyzer = &Analyzer{
	Name: "byteclock",
	Doc:  "broadcast-image bytes may only be consumed through the clock-charging channel APIs",
	Run:  runByteClock,
}

// byteClockScope: the layers that consume broadcast-image bytes on
// behalf of clients. Schemes build images; these walk them.
var byteClockScope = []string{
	"internal/access",
	"internal/airborne",
	"internal/multichannel",
}

func runByteClock(pass *Pass) {
	if !underAny(pass.RelPath, byteClockScope) {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkByteClockFunc(pass, fd)
		}
	}
}

// isEncodeMethod matches a niladic Encode() returning []byte — the
// bucket-to-bytes codec entry point every scheme implements.
func isEncodeMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Encode" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	sl, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isBytesType matches the decode-cache carrier: a named struct called
// Bytes with a `cache` field (airborne.Bytes in production; fixtures
// mirror the shape).
func isBytesType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil || named.Obj().Name() != "Bytes" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "cache" {
			return true
		}
	}
	return false
}

// isSourceInterface matches the bucket-source abstraction: a named
// interface called Source that declares an Of method (airborne.Source in
// production). Calls dispatched through it obey the same Of-argument
// rule as the concrete Bytes cache.
func isSourceInterface(t types.Type) bool {
	named := derefNamed(t)
	if named == nil || named.Obj().Name() != "Source" {
		return false
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Of" {
			return true
		}
	}
	return false
}

// checkByteClockFunc walks one function body. For the Of-argument rule
// it tracks the current function's parameters (descending into closures
// with their own parameter sets), because "the index the caller was
// charged for" is precisely the enclosing function's bucket-index
// parameter.
func checkByteClockFunc(pass *Pass, fd *ast.FuncDecl) {
	bytesMethod := fd.Recv != nil && len(fd.Recv.List) == 1 && isBytesType(pass.Info.Types[fd.Recv.List[0].Type].Type)

	var walk func(n ast.Node, params map[types.Object]bool)
	walk = func(body ast.Node, params map[types.Object]bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, paramObjects(pass, n.Type))
				return false
			case *ast.SelectorExpr:
				selection, ok := pass.Info.Selections[n]
				if ok && selection.Kind() == types.FieldVal && selection.Obj().Name() == "cache" &&
					isBytesType(selection.Recv()) && !bytesMethod {
					pass.Reportf(n.Sel.Pos(),
						"direct read of the Bytes decode cache bypasses the accessor's charge-before-read discipline; go through Of")
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if isEncodeMethod(obj) {
					pass.Reportf(n.Pos(),
						"Encode() decodes broadcast-image bytes outside the clock-charging path; bytes must be charged to access/tuning through the channel APIs before they are read")
				}
				if fn, ok := obj.(*types.Func); ok && fn.Name() == "Of" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
						(isBytesType(sig.Recv().Type()) || isSourceInterface(sig.Recv().Type())) && len(n.Args) == 1 {
						if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); !ok || !params[pass.Info.Uses[id]] {
							pass.Reportf(n.Args[0].Pos(),
								"Of must be passed the enclosing callback's bucket-index parameter — the bucket that was just read and charged; decoding any other bucket reads bytes the clock never accounted")
						}
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, paramObjects(pass, fd.Type))
}

// paramObjects collects the declared parameter objects of a function
// type (the identities the Of-argument rule accepts).
func paramObjects(pass *Pass, ft *ast.FuncType) map[types.Object]bool {
	params := make(map[types.Object]bool)
	if ft.Params == nil {
		return params
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	return params
}
