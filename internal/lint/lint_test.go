package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the fake module rooted at testdata/src; its directory
// layout mirrors the real module so path-scoped rules (simulation
// packages, the sanctioned concurrency file) apply to fixtures exactly
// as they do to production code.
const fixtureModule = "example.com/airlintfix"

var fixtureLoader = NewLoader(mustAbs("testdata/src"), fixtureModule)

func mustAbs(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		panic(err)
	}
	return abs
}

// check lints one fixture package and returns each diagnostic as
// "file.go:line: analyzer".
func check(t *testing.T, rel string) []string {
	t.Helper()
	pkg, err := fixtureLoader.Load(rel)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	var got []string
	for _, d := range Check(pkg) {
		got = append(got, fmt.Sprintf("%s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer))
	}
	return got
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		rel  string
		want []string
	}{
		// determinism: wall clock ×2, global rand, unsorted map range.
		{"internal/sim/bad", []string{
			"bad.go:11: determinism",
			"bad.go:15: determinism",
			"bad.go:19: determinism",
			"bad.go:24: determinism",
		}},
		// determinism negatives: seeded rand, duration arithmetic,
		// sorted map range, order-insensitive accumulation.
		{"internal/sim/good", nil},
		// floatcompare: == and != between floats in scope.
		{"internal/analytical/bad", []string{
			"bad.go:5: floatcompare",
			"bad.go:9: floatcompare",
		}},
		// floatcompare negatives: tolerance, int ==, ordered <.
		{"internal/analytical/good", nil},
		// out of scope for floatcompare and the map-order rule.
		{"other", nil},
		// confinement: WaitGroup decl, make(chan), go statement.
		{"internal/core/badgo", []string{
			"badgo.go:8: confinement",
			"badgo.go:9: confinement",
			"badgo.go:12: confinement",
		}},
		// confinement: a method-value goroutine is still a goroutine.
		{"internal/core/badmethodgo", []string{
			"badmethodgo.go:12: confinement",
		}},
		// the sanctioned concurrency files may use all of it.
		{"internal/airql", nil},
		{"internal/core", nil},
		// unitsafety: cross-unit conversions ×2, raw constant, unit×unit.
		{"internal/channel/badunits", []string{
			"badunits.go:12: unitsafety",
			"badunits.go:13: unitsafety",
			"badunits.go:19: unitsafety",
			"badunits.go:24: unitsafety",
		}},
		// unitsafety negatives: constructors, unit methods, conversions
		// out, untyped-constant arithmetic.
		{"internal/channel/goodunits", nil},
		// exhaustive: incomplete Kind switch, defaultless scheme dispatch.
		{"internal/core/badswitch", []string{
			"badswitch.go:12: exhaustive",
			"badswitch.go:23: exhaustive",
		}},
		// exhaustive negatives: full coverage, explicit defaults, plain
		// string switches.
		{"internal/core/goodswitch", nil},
		// exhaustive: the faults error-model enum is closed too.
		{"internal/faults/badswitch", []string{
			"badswitch.go:9: exhaustive",
		}},
		{"internal/faults/goodswitch", nil},
		// determinism scope covers the faults layer (simCritical).
		{"internal/faults/bad", []string{
			"bad.go:8: determinism",
		}},
		// exhaustive: the channel-allocation policy enum is closed too.
		{"internal/multichannel/badswitch", []string{
			"badswitch.go:9: exhaustive",
		}},
		{"internal/multichannel/goodswitch", nil},
		// determinism scope covers the channel-allocation layer.
		{"internal/multichannel/bad", []string{
			"bad.go:9: determinism",
		}},
		// exhaustive: the scenario compiler's token/stage enums are closed.
		{"internal/airql/badswitch", []string{
			"badswitch.go:9: exhaustive",
			"badswitch.go:20: exhaustive",
		}},
		{"internal/airql/goodswitch", nil},
		// determinism and rngdiscipline scope covers the scenario compiler.
		{"internal/airql/bad", []string{
			"bad.go:13: determinism",
			"bad.go:17: rngdiscipline",
		}},
		{"internal/airql/good", nil},
		// mergecomplete: a shard fold that drops exactly one counter.
		{"internal/core/badmerge", []string{
			"badmerge.go:20: mergecomplete",
		}},
		// mergecomplete negatives: +=, composite keys, Add-method fields.
		{"internal/core/goodmerge", nil},
		// mergecomplete: a pairwise Merge that never reads one field.
		{"internal/stats/badmerge", []string{
			"badmerge.go:13: mergecomplete",
		}},
		// mergecomplete negative: whole-value copy inside a traced helper.
		{"internal/stats/goodmerge", nil},
		// rngdiscipline: direct construction, computed label, empty label,
		// intra-package duplicate label.
		{"internal/faults/rngbad", []string{
			"rngbad.go:14: rngdiscipline",
			"rngbad.go:15: rngdiscipline",
			"rngbad.go:16: rngdiscipline",
			"rngbad.go:18: rngdiscipline",
		}},
		// rngdiscipline negatives: sanctioned constructors, distinct labels.
		{"internal/faults/rnggood", nil},
		// a cross-package duplicate label is invisible to a one-package
		// check; TestStreamSeedDuplicatesAcrossPackages batches it.
		{"internal/multichannel/rngdup", nil},
		// the fixture bucket codec itself sits outside byteclock's scope.
		{"internal/channel", nil},
		// byteclock: Encode outside the accessor, direct cache read,
		// Of with a non-parameter index.
		{"internal/airborne/bad", []string{
			"bad.go:25: byteclock",
			"bad.go:30: byteclock",
			"bad.go:35: byteclock",
		}},
		// byteclock negatives: accessor methods, parameter-indexed Of,
		// closures with their own parameter sets.
		{"internal/airborne/good", nil},
		// byteclock: Of dispatched through the Source interface obeys the
		// same index discipline as the concrete cache.
		{"internal/airborne/srcbad", []string{
			"srcbad.go:14: byteclock",
		}},
		{"internal/airborne/srcgood", nil},
		// exhaustive: the daemon's transport and chaos enums are closed too.
		{"internal/aircast/badswitch", []string{
			"badswitch.go:9: exhaustive",
			"badswitch.go:20: exhaustive",
		}},
		{"internal/aircast/goodswitch", nil},
		// the aircast sanctions: wall clock and concurrency are the
		// daemon's job, so neither determinism nor confinement fires.
		{"internal/aircast/daemon", nil},
		// ...but only the wall-clock ban is lifted: global randomness in
		// the daemon is still a determinism finding.
		{"internal/aircast/badrand", []string{
			"badrand.go:10: determinism",
		}},
		// hotalloc: every allocating construct in a marked walker (line 18
		// carries both the concatenation and the fmt call).
		{"internal/schemes/hotbad", []string{
			"hotbad.go:12: hotalloc",
			"hotbad.go:13: hotalloc",
			"hotbad.go:14: hotalloc",
			"hotbad.go:15: hotalloc",
			"hotbad.go:16: hotalloc",
			"hotbad.go:17: hotalloc",
			"hotbad.go:18: hotalloc",
			"hotbad.go:18: hotalloc",
			"hotbad.go:19: hotalloc",
		}},
		// hotalloc negatives: allocation-free marked walker, unmarked
		// builder allocating freely.
		{"internal/schemes/hotgood", nil},
		// a hotpath marker outside a function doc comment is an error.
		{"directives/hotorphan", []string{
			"hotorphan.go:6: directive",
		}},
		// an unknown directive verb is an error.
		{"directives/badverb", []string{
			"badverb.go:4: directive",
		}},
		// hotpath stacks with allow: the used allow silences hotalloc, the
		// stale one is flagged.
		{"directives/hotstacked", []string{
			"hotstacked.go:17: directive",
		}},
		// working suppressions: trailing and preceding-line directives.
		{"directives/ok", nil},
		// a stack of standalone directives covers one line for several
		// analyzers at once.
		{"directives/stacked", nil},
		// generated files: findings and directives are both ignored.
		{"directives/generated", nil},
		// unknown analyzer name: directive error, finding stays.
		{"directives/unknown", []string{
			"unknown.go:7: determinism",
			"unknown.go:7: directive",
		}},
		// suppression matching nothing is an error.
		{"directives/unused", []string{
			"unused.go:4: directive",
		}},
		// suppression without a reason: error, finding stays.
		{"directives/noreason", []string{
			"noreason.go:7: determinism",
			"noreason.go:7: directive",
		}},
		// maporder: map-iteration-ordered keys reach a CSV writer, an
		// fmt sink and a core.Result field without a sort in between.
		{"internal/experiments/mapbad", []string{
			"mapbad.go:24: maporder",
			"mapbad.go:34: maporder",
			"mapbad.go:43: maporder",
			"mapbad.go:54: maporder",
		}},
		// maporder negatives: sort kills the taint on every path, and
		// len() of a tainted slice is order-free.
		{"internal/experiments/mapgood", nil},
		// seedtaint negatives: seed laundered through struct fields and
		// a same-package helper still traces back to the seed plane.
		{"internal/core/seedgood", nil},
		// seedtaint: wall clock laundered through a struct field, a
		// seed with no plane ancestry, a non-seed-named parameter, and
		// a wall-clock write into the plane. determinism co-reports the
		// raw time.Now reads (internal/core is in its scope).
		{"internal/core/seedbad", []string{
			"seedbad.go:17: determinism",
			"seedbad.go:19: seedtaint",
			"seedbad.go:25: seedtaint",
			"seedbad.go:31: seedtaint",
			"seedbad.go:36: seedtaint",
			"seedbad.go:36: determinism",
		}},
		// escapecheck is inactive without compiler escape data: the
		// escaping hotpaths and their allow directive both stay quiet.
		{"internal/schemes/escape", nil},
	}
	for _, tc := range cases {
		t.Run(tc.rel, func(t *testing.T) {
			got := check(t, tc.rel)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diagnostic %d: got %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestDiagnosticMessages(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/sim/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	wantSubstrings := []string{"replayable from their seed", "replayable", "sim.RNG", "map iteration order"}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d message %q does not mention %q", i, diags[i].Message, want)
		}
	}
	// String form is file:line:col: [analyzer] message.
	if s := diags[0].String(); !strings.Contains(s, "bad.go:11:") || !strings.Contains(s, "[determinism]") {
		t.Errorf("diagnostic string %q missing position or analyzer tag", s)
	}
}

func TestUnknownDirectiveListsKnownAnalyzers(t *testing.T) {
	pkg, err := fixtureLoader.Load("directives/unknown")
	if err != nil {
		t.Fatal(err)
	}
	var dirDiag *Diagnostic
	for _, d := range Check(pkg) {
		if d.Analyzer == "directive" {
			dirDiag = &d
			break
		}
	}
	if dirDiag == nil {
		t.Fatal("no directive diagnostic reported")
	}
	for _, name := range []string{"determinism", "floatcompare", "confinement", "unitsafety", "exhaustive", "mergecomplete", "rngdiscipline", "byteclock", "hotalloc"} {
		if !strings.Contains(dirDiag.Message, name) {
			t.Errorf("unknown-directive message %q does not list analyzer %q", dirDiag.Message, name)
		}
	}
}

// TestMergeCompleteNamesField pins the acceptance contract: deleting one
// counter's merge line must produce a finding that names that counter.
func TestMergeCompleteNamesField(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/core/badmerge")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "Switches") {
		t.Errorf("mergecomplete message %q does not name the dropped field Switches", diags[0].Message)
	}
}

// TestStreamSeedDuplicatesAcrossPackages batches two packages whose
// StreamSeed labels collide; neither is flagged alone.
func TestStreamSeedDuplicatesAcrossPackages(t *testing.T) {
	good, err := fixtureLoader.Load("internal/faults/rnggood")
	if err != nil {
		t.Fatal(err)
	}
	dup, err := fixtureLoader.Load("internal/multichannel/rngdup")
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckAll([]*Package{good, dup})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "rngdiscipline" || filepath.Base(d.Pos.Filename) != "rngdup.go" {
		t.Errorf("duplicate label reported as %v, want rngdiscipline in rngdup.go", d)
	}
	if !strings.Contains(d.Message, `"faults"`) || !strings.Contains(d.Message, "rnggood.go") {
		t.Errorf("duplicate-label message %q should name the label and the first site", d.Message)
	}
}

// TestCheckOnlySubset runs a single analyzer and verifies other
// analyzers' findings and their allows both go quiet.
func TestCheckOnlySubset(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/schemes/hotbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckOnly([]*Package{pkg}, []string{"determinism"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism-only run of hotbad reported %v, want none", diags)
	}
	diags, err = CheckOnly([]*Package{pkg}, []string{"hotalloc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 9 {
		t.Errorf("hotalloc-only run of hotbad reported %d findings, want 9: %v", len(diags), diags)
	}
}

// TestCheckOnlyUnknownName rejects misspelled analyzer selections.
func TestCheckOnlyUnknownName(t *testing.T) {
	pkg, err := fixtureLoader.Load("other")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckOnly([]*Package{pkg}, []string{"hotallocs"})
	if err == nil {
		t.Fatal("CheckOnly accepted an unknown analyzer name")
	}
	if !strings.Contains(err.Error(), "hotallocs") || !strings.Contains(err.Error(), "hotalloc") {
		t.Errorf("error %q should name the bad selection and list known analyzers", err)
	}
}

func TestExpandWalksFixtureTree(t *testing.T) {
	got, err := fixtureLoader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"directives/noreason", "internal/sim/bad", "other"}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Expand missing package %q; got %v", w, got)
		}
	}
}
