package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the fake module rooted at testdata/src; its directory
// layout mirrors the real module so path-scoped rules (simulation
// packages, the sanctioned concurrency file) apply to fixtures exactly
// as they do to production code.
const fixtureModule = "example.com/airlintfix"

var fixtureLoader = NewLoader(mustAbs("testdata/src"), fixtureModule)

func mustAbs(p string) string {
	abs, err := filepath.Abs(p)
	if err != nil {
		panic(err)
	}
	return abs
}

// check lints one fixture package and returns each diagnostic as
// "file.go:line: analyzer".
func check(t *testing.T, rel string) []string {
	t.Helper()
	pkg, err := fixtureLoader.Load(rel)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	var got []string
	for _, d := range Check(pkg) {
		got = append(got, fmt.Sprintf("%s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer))
	}
	return got
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		rel  string
		want []string
	}{
		// determinism: wall clock ×2, global rand, unsorted map range.
		{"internal/sim/bad", []string{
			"bad.go:11: determinism",
			"bad.go:15: determinism",
			"bad.go:19: determinism",
			"bad.go:24: determinism",
		}},
		// determinism negatives: seeded rand, duration arithmetic,
		// sorted map range, order-insensitive accumulation.
		{"internal/sim/good", nil},
		// floatcompare: == and != between floats in scope.
		{"internal/analytical/bad", []string{
			"bad.go:5: floatcompare",
			"bad.go:9: floatcompare",
		}},
		// floatcompare negatives: tolerance, int ==, ordered <.
		{"internal/analytical/good", nil},
		// out of scope for floatcompare and the map-order rule.
		{"other", nil},
		// confinement: WaitGroup decl, make(chan), go statement.
		{"internal/core/badgo", []string{
			"badgo.go:8: confinement",
			"badgo.go:9: confinement",
			"badgo.go:12: confinement",
		}},
		// confinement: a method-value goroutine is still a goroutine.
		{"internal/core/badmethodgo", []string{
			"badmethodgo.go:12: confinement",
		}},
		// the sanctioned concurrency files may use all of it.
		{"internal/experiments", nil},
		{"internal/core", nil},
		// unitsafety: cross-unit conversions ×2, raw constant, unit×unit.
		{"internal/channel/badunits", []string{
			"badunits.go:12: unitsafety",
			"badunits.go:13: unitsafety",
			"badunits.go:19: unitsafety",
			"badunits.go:24: unitsafety",
		}},
		// unitsafety negatives: constructors, unit methods, conversions
		// out, untyped-constant arithmetic.
		{"internal/channel/goodunits", nil},
		// exhaustive: incomplete Kind switch, defaultless scheme dispatch.
		{"internal/core/badswitch", []string{
			"badswitch.go:12: exhaustive",
			"badswitch.go:23: exhaustive",
		}},
		// exhaustive negatives: full coverage, explicit defaults, plain
		// string switches.
		{"internal/core/goodswitch", nil},
		// exhaustive: the faults error-model enum is closed too.
		{"internal/faults/badswitch", []string{
			"badswitch.go:9: exhaustive",
		}},
		{"internal/faults/goodswitch", nil},
		// determinism scope covers the faults layer (simCritical).
		{"internal/faults/bad", []string{
			"bad.go:8: determinism",
		}},
		// exhaustive: the channel-allocation policy enum is closed too.
		{"internal/multichannel/badswitch", []string{
			"badswitch.go:9: exhaustive",
		}},
		{"internal/multichannel/goodswitch", nil},
		// determinism scope covers the channel-allocation layer.
		{"internal/multichannel/bad", []string{
			"bad.go:9: determinism",
		}},
		// working suppressions: trailing and preceding-line directives.
		{"directives/ok", nil},
		// a stack of standalone directives covers one line for several
		// analyzers at once.
		{"directives/stacked", nil},
		// generated files: findings and directives are both ignored.
		{"directives/generated", nil},
		// unknown analyzer name: directive error, finding stays.
		{"directives/unknown", []string{
			"unknown.go:7: determinism",
			"unknown.go:7: directive",
		}},
		// suppression matching nothing is an error.
		{"directives/unused", []string{
			"unused.go:4: directive",
		}},
		// suppression without a reason: error, finding stays.
		{"directives/noreason", []string{
			"noreason.go:7: determinism",
			"noreason.go:7: directive",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.rel, func(t *testing.T) {
			got := check(t, tc.rel)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("diagnostic %d: got %q, want %q", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestDiagnosticMessages(t *testing.T) {
	pkg, err := fixtureLoader.Load("internal/sim/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg)
	wantSubstrings := []string{"replayable from their seed", "replayable", "sim.RNG", "map iteration order"}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d message %q does not mention %q", i, diags[i].Message, want)
		}
	}
	// String form is file:line:col: [analyzer] message.
	if s := diags[0].String(); !strings.Contains(s, "bad.go:11:") || !strings.Contains(s, "[determinism]") {
		t.Errorf("diagnostic string %q missing position or analyzer tag", s)
	}
}

func TestUnknownDirectiveListsKnownAnalyzers(t *testing.T) {
	pkg, err := fixtureLoader.Load("directives/unknown")
	if err != nil {
		t.Fatal(err)
	}
	var dirDiag *Diagnostic
	for _, d := range Check(pkg) {
		if d.Analyzer == "directive" {
			dirDiag = &d
			break
		}
	}
	if dirDiag == nil {
		t.Fatal("no directive diagnostic reported")
	}
	for _, name := range []string{"determinism", "floatcompare", "confinement", "unitsafety", "exhaustive"} {
		if !strings.Contains(dirDiag.Message, name) {
			t.Errorf("unknown-directive message %q does not list analyzer %q", dirDiag.Message, name)
		}
	}
}

func TestExpandWalksFixtureTree(t *testing.T) {
	got, err := fixtureLoader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"directives/noreason", "internal/sim/bad", "other"}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("Expand missing package %q; got %v", w, got)
		}
	}
}
