package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// RNGDisciplineAnalyzer enforces the substream contract of DESIGN.md §7:
// every random decision in a simulation-critical package derives from
// the seed through sim.NewRNG, sim.NewShardRNG or sim.StreamSeed, and
// every StreamSeed substream carries a distinct compile-time string
// label. The determinism analyzer already rejects *global* randomness;
// this one polices how seeded randomness is constructed:
//
//   - direct math/rand construction (rand.New, rand.NewSource,
//     rand.NewZipf) outside internal/sim bypasses the SplitMix
//     decorrelation and is flagged;
//   - a StreamSeed label must be a non-empty compile-time string
//     literal — a computed label cannot be audited for uniqueness;
//   - seeding any sanctioned constructor from package time is flagged
//     (a wall-clock seed makes the run unreproducible);
//   - reusing a label, within or across packages, is flagged at every
//     site after the first: identical labels yield identical
//     substreams, silently correlating supposedly independent
//     processes. Cross-package duplicates are only visible to CheckAll,
//     which sees every call site in one run.
var RNGDisciplineAnalyzer = &Analyzer{
	Name: "rngdiscipline",
	Doc:  "randomness must derive from sim.StreamSeed/NewShardRNG with distinct string-literal labels",
	Run:  runRNGDiscipline,
}

// rngExempt: internal/sim owns the sanctioned constructors, so it alone
// may touch math/rand directly.
var rngExempt = []string{"internal/sim"}

// simRNGFunc returns the *types.Func when call invokes a function of a
// package whose path ends in internal/sim (real module or fixture).
func simRNGFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !pathEndsWith(fn.Pkg().Path(), "internal/sim") {
		return nil
	}
	return fn
}

func runRNGDiscipline(pass *Pass) {
	inScope := underAny(pass.RelPath, simCritical) && !underAny(pass.RelPath, rngExempt)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && inScope {
				if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand" {
					switch obj.Name() {
					case "New", "NewSource", "NewZipf":
						pass.Reportf(call.Pos(),
							"direct math/rand construction in a simulation-critical package; derive substreams through sim.NewRNG, sim.NewShardRNG or sim.StreamSeed so shards stay decorrelated")
					}
				}
			}
			fn := simRNGFunc(pass, call)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "StreamSeed":
				checkStreamSeedLabel(pass, call)
				checkWallClockSeed(pass, call)
			case "NewRNG", "NewShardRNG":
				checkWallClockSeed(pass, call)
			}
			return true
		})
	}
}

// checkStreamSeedLabel requires the label argument of
// StreamSeed(seed, shard, label) to be a non-empty compile-time string.
func checkStreamSeedLabel(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 3 {
		return
	}
	arg := call.Args[2]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"StreamSeed label must be a compile-time string literal; a computed label cannot be audited for substream uniqueness")
		return
	}
	if constant.StringVal(tv.Value) == "" {
		pass.Reportf(arg.Pos(),
			"StreamSeed label is empty; name the substream so its identity is auditable")
	}
}

// checkWallClockSeed flags seed arguments that reach into package time:
// a wall-clock-derived seed breaks replayability no matter how
// disciplined the downstream substreams are.
func checkWallClockSeed(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
				pass.Reportf(sel.Pos(),
					"seed derives from the wall clock; seeds must come from configuration so runs replay from their seed")
				return false
			}
			return true
		})
	}
}

// streamSeedDuplicates scans every StreamSeed call site across the
// loaded packages, in package order, and reports each constant label
// reuse at the site after the first. Returned diagnostics are keyed by
// package index so CheckOnly can route them through that package's
// directives.
func streamSeedDuplicates(pkgs []*Package) map[int][]Diagnostic {
	type site struct {
		pkgIdx int
		pos    token.Position
		label  string
	}
	var sites []site
	for i, pkg := range pkgs {
		// A throwaway Pass gives simRNGFunc its usual shape; nothing is
		// reported through it.
		p := &Pass{Info: pkg.Info}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := simRNGFunc(p, call)
				if fn == nil || fn.Name() != "StreamSeed" || len(call.Args) != 3 {
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[2]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // non-literal labels are reported per package
				}
				label := constant.StringVal(tv.Value)
				if label == "" {
					return true
				}
				sites = append(sites, site{pkgIdx: i, pos: pkg.Fset.Position(call.Args[2].Pos()), label: label})
				return true
			})
		}
	}
	first := make(map[string]token.Position)
	out := make(map[int][]Diagnostic)
	for _, s := range sites {
		if prev, ok := first[s.label]; ok {
			out[s.pkgIdx] = append(out[s.pkgIdx], Diagnostic{
				Pos:      s.pos,
				Analyzer: RNGDisciplineAnalyzer.Name,
				Message: fmt.Sprintf("StreamSeed label %q is already used at %s; duplicate labels yield identical substreams, silently correlating independent processes", s.label, prev),
			})
		} else {
			first[s.label] = s.pos
		}
	}
	return out
}
