package btree

import (
	"math"
	"testing"
	"testing/quick"
)

func seqKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(10 + 3*i)
	}
	return keys
}

func TestBuildPaperExample(t *testing.T) {
	// The paper's Figure 1: 81 data items, fanout 3 -> 4 levels:
	// 1 root, 3 a-nodes, 9 b-nodes, 27 c-nodes.
	tr, err := Build(seqKeys(81), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Levels != 4 {
		t.Fatalf("Levels = %d, want 4", tr.Levels)
	}
	wantCounts := []int{1, 3, 9, 27}
	for l, want := range wantCounts {
		if got := len(tr.ByLevel[l]); got != want {
			t.Fatalf("level %d has %d nodes, want %d", l, got, want)
		}
	}
	if tr.NumNodes() != 40 {
		t.Fatalf("NumNodes = %d, want 40", tr.NumNodes())
	}
	if tr.Root.DataFrom != 0 || tr.Root.DataTo != 81 {
		t.Fatalf("root covers [%d,%d), want [0,81)", tr.Root.DataFrom, tr.Root.DataTo)
	}
}

func TestBuildSingleLevel(t *testing.T) {
	tr, err := Build(seqKeys(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Levels != 1 || !tr.Root.IsLeaf() {
		t.Fatalf("3 keys with fanout 5 should be a single leaf root, got %d levels", tr.Levels)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, 3); err == nil {
		t.Fatal("empty keys accepted")
	}
	if _, err := Build(seqKeys(10), 1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := Build([]uint64{5, 5, 6}, 3); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := Build([]uint64{5, 4}, 3); err == nil {
		t.Fatal("descending keys accepted")
	}
}

func TestLookupFindsEveryKey(t *testing.T) {
	keys := seqKeys(500)
	tr, err := Build(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		idx, ok := tr.Lookup(k)
		if !ok || idx != i {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, idx, ok, i)
		}
		if _, ok := tr.Lookup(k + 1); ok {
			t.Fatalf("Lookup(%d) should miss", k+1)
		}
	}
	if _, ok := tr.Lookup(0); ok {
		t.Fatal("Lookup below range should miss")
	}
	if _, ok := tr.Lookup(math.MaxUint64); ok {
		t.Fatal("Lookup above range should miss")
	}
}

func TestPathProperties(t *testing.T) {
	keys := seqKeys(200)
	tr, err := Build(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		path := tr.Path(k)
		if len(path) != tr.Levels {
			t.Fatalf("path length %d, want %d", len(path), tr.Levels)
		}
		if path[0] != tr.Root {
			t.Fatal("path must start at root")
		}
		for i := 1; i < len(path); i++ {
			if path[i].Parent != path[i-1] {
				t.Fatal("path links broken")
			}
		}
		leaf := path[len(path)-1]
		if !leaf.IsLeaf() || !leaf.Covers(tr.Keys, k) {
			t.Fatalf("leaf does not cover key %d", k)
		}
	}
}

func TestWalkPreorderIDs(t *testing.T) {
	tr, err := Build(seqKeys(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	tr.Walk(func(n *Node) {
		if n.ID != last+1 {
			t.Fatalf("walk visited ID %d after %d", n.ID, last)
		}
		last = n.ID
		// Parent precedes child in preorder.
		if n.Parent != nil && n.Parent.ID >= n.ID {
			t.Fatal("parent ID not smaller than child ID")
		}
	})
	if last+1 != tr.NumNodes() {
		t.Fatalf("walk visited %d nodes, want %d", last+1, tr.NumNodes())
	}
}

func TestAncestors(t *testing.T) {
	tr, err := Build(seqKeys(81), 3)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.ByLevel[3][13]
	anc := Ancestors(leaf)
	if len(anc) != 3 {
		t.Fatalf("leaf has %d ancestors, want 3", len(anc))
	}
	if anc[0] != tr.Root {
		t.Fatal("first ancestor must be the root")
	}
	for i := 1; i < len(anc); i++ {
		if anc[i].Parent != anc[i-1] {
			t.Fatal("ancestor chain broken")
		}
	}
	if anc[len(anc)-1] != leaf.Parent {
		t.Fatal("last ancestor must be the parent")
	}
	if len(Ancestors(tr.Root)) != 0 {
		t.Fatal("root has no ancestors")
	}
}

func TestSubtree(t *testing.T) {
	tr, err := Build(seqKeys(81), 3)
	if err != nil {
		t.Fatal(err)
	}
	a1 := tr.ByLevel[1][0]
	sub := Subtree(a1)
	// a-subtree: 1 + 3 + 9 nodes.
	if len(sub) != 13 {
		t.Fatalf("subtree size %d, want 13", len(sub))
	}
	if sub[0] != a1 {
		t.Fatal("subtree preorder must start at its root")
	}
	for _, n := range sub {
		if n.DataFrom < a1.DataFrom || n.DataTo > a1.DataTo {
			t.Fatal("subtree node outside the root's data range")
		}
	}
}

func TestChildForAndEntryFor(t *testing.T) {
	tr, err := Build(seqKeys(81), 3)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root
	if j := root.ChildFor(tr.Keys[0]); j != 0 {
		t.Fatalf("ChildFor(min) = %d, want 0", j)
	}
	if j := root.ChildFor(tr.Keys[80]); j != 2 {
		t.Fatalf("ChildFor(max) = %d, want 2", j)
	}
	if j := root.ChildFor(tr.Keys[80] + 1); j != -1 {
		t.Fatalf("ChildFor(beyond) = %d, want -1", j)
	}
	leaf := tr.ByLevel[3][0]
	if j := leaf.EntryFor(tr.Keys[1]); j != 1 {
		t.Fatalf("EntryFor = %d, want 1", j)
	}
	if j := leaf.EntryFor(tr.Keys[1] + 1); j != -1 {
		t.Fatalf("EntryFor(missing) = %d, want -1", j)
	}
}

func TestLevelsMatchLogFormula(t *testing.T) {
	// k = ceil(log_n(Nr)) for full-ish trees, as the analysis assumes.
	for _, c := range []struct{ nr, fanout int }{
		{81, 3}, {1000, 10}, {17500, 12}, {35000, 12}, {100, 100}, {101, 100},
	} {
		tr, err := Build(seqKeys(c.nr), c.fanout)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Ceil(math.Log(float64(c.nr))/math.Log(float64(c.fanout)) - 1e-9))
		if want < 1 {
			want = 1
		}
		if tr.Levels != want {
			t.Errorf("Nr=%d n=%d: Levels=%d, want %d", c.nr, c.fanout, tr.Levels, want)
		}
	}
}

// Property: every key is found, every key+1 (absent by construction) is
// not, and each node's Keys are its children's max keys.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(rawN uint16, rawFanout uint8) bool {
		n := int(rawN)%2000 + 1
		fanout := int(rawFanout)%30 + 2
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(2 * (i + 1)) // even keys; odd keys absent
		}
		tr, err := Build(keys, fanout)
		if err != nil {
			return false
		}
		ok := true
		tr.Walk(func(nd *Node) {
			if len(nd.Keys) > fanout {
				ok = false
			}
			if nd.MaxKey(keys) != nd.Keys[len(nd.Keys)-1] {
				ok = false
			}
			for j, c := range nd.Children {
				if nd.Keys[j] != keys[c.DataTo-1] {
					ok = false
				}
			}
		})
		if !ok {
			return false
		}
		for i, k := range keys {
			if idx, found := tr.Lookup(k); !found || idx != i {
				return false
			}
			if _, found := tr.Lookup(k + 1); found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
