// Package btree builds the n-ary index trees that the B+-tree-based
// wireless indexing schemes ((1,m) indexing and distributed indexing)
// broadcast. The tree is built once over the key-sorted dataset and never
// mutated — broadcast cycles are constructed offline by the server — so
// this is a bulk-loaded, read-only structure, not an insert/delete B+ tree.
//
// Levels are numbered top-down: level 0 is the root, level Levels-1 is the
// leaf index level whose entries point at individual data records. This
// matches the paper's use of k = log_n(Nr) index levels (§2.1).
package btree

import "fmt"

// Node is one index node. It becomes exactly one index bucket per
// occurrence on the broadcast channel.
type Node struct {
	// ID is the node's position in a preorder walk of the tree; unique.
	ID int
	// Level is the node's depth: 0 for the root.
	Level int
	// Parent is nil for the root.
	Parent *Node
	// Children is nil at the leaf index level.
	Children []*Node
	// Keys[j] is the largest key in child j's subtree (internal nodes) or
	// the exact data key of entry j (leaf index nodes).
	Keys []uint64
	// DataFrom and DataTo delimit the half-open range of dataset record
	// indices the node's subtree covers.
	DataFrom, DataTo int
}

// MinKey returns the smallest key in the node's subtree.
func (n *Node) MinKey(keys []uint64) uint64 { return keys[n.DataFrom] }

// MaxKey returns the largest key in the node's subtree.
func (n *Node) MaxKey(keys []uint64) uint64 { return keys[n.DataTo-1] }

// Covers reports whether key falls inside the node's subtree key range.
func (n *Node) Covers(keys []uint64, key uint64) bool {
	return key >= n.MinKey(keys) && key <= n.MaxKey(keys)
}

// IsLeaf reports whether the node is on the leaf index level.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// ChildFor returns the index of the child whose subtree may cover key: the
// first child whose separator key is >= key. It returns -1 when key exceeds
// every separator (the key is beyond the node's range). Callers that need
// an exact containment check combine this with Covers.
func (n *Node) ChildFor(key uint64) int {
	for j, maxKey := range n.Keys {
		if key <= maxKey {
			return j
		}
	}
	return -1
}

// EntryFor returns the index of the leaf entry exactly matching key, or -1
// (leaf index nodes only).
func (n *Node) EntryFor(key uint64) int {
	for j, k := range n.Keys {
		if k == key {
			return j
		}
	}
	return -1
}

// Tree is a bulk-loaded n-ary index tree.
type Tree struct {
	// Root is the top node.
	Root *Node
	// Fanout is the maximum entries per node, the paper's n.
	Fanout int
	// Levels is the number of index levels, the paper's k.
	Levels int
	// ByLevel[l] lists the nodes of level l in key order.
	ByLevel [][]*Node
	// Keys is the sorted data key slice the tree indexes.
	Keys []uint64
}

// Build bulk-loads a tree with the given fanout over sorted unique keys.
func Build(keys []uint64, fanout int) (*Tree, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("btree: no keys")
	}
	if fanout < 2 {
		return nil, fmt.Errorf("btree: fanout %d must be at least 2", fanout)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return nil, fmt.Errorf("btree: keys not strictly increasing at %d", i)
		}
	}

	// Leaf index level: one entry per data record.
	var level []*Node
	for from := 0; from < len(keys); from += fanout {
		to := from + fanout
		if to > len(keys) {
			to = len(keys)
		}
		n := &Node{Keys: keys[from:to:to], DataFrom: from, DataTo: to}
		level = append(level, n)
	}
	levels := [][]*Node{level}

	// Grow upward until a single root remains.
	for len(level) > 1 {
		var up []*Node
		for from := 0; from < len(level); from += fanout {
			to := from + fanout
			if to > len(level) {
				to = len(level)
			}
			children := level[from:to:to]
			n := &Node{
				Children: children,
				DataFrom: children[0].DataFrom,
				DataTo:   children[len(children)-1].DataTo,
			}
			n.Keys = make([]uint64, len(children))
			for j, c := range children {
				n.Keys[j] = keys[c.DataTo-1]
				c.Parent = n
			}
			up = append(up, n)
		}
		levels = append(levels, up)
		level = up
	}

	// Reverse to top-down order and assign levels, IDs.
	byLevel := make([][]*Node, len(levels))
	for i := range levels {
		byLevel[i] = levels[len(levels)-1-i]
		for _, n := range byLevel[i] {
			n.Level = i
		}
	}
	t := &Tree{
		Root:    byLevel[0][0],
		Fanout:  fanout,
		Levels:  len(byLevel),
		ByLevel: byLevel,
		Keys:    keys,
	}
	id := 0
	t.Walk(func(n *Node) {
		n.ID = id
		id++
	})
	return t, nil
}

// Walk visits every node in preorder (node before its children).
func (t *Tree) Walk(fn func(*Node)) { walk(t.Root, fn) }

func walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		walk(c, fn)
	}
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int {
	n := 0
	for _, lvl := range t.ByLevel {
		n += len(lvl)
	}
	return n
}

// Path returns the root-to-leaf node path whose leaf range covers key. The
// returned path always has length Levels; the caller checks the leaf for an
// exact match. The paper calls this the key's index path (§2.1).
func (t *Tree) Path(key uint64) []*Node {
	path := make([]*Node, 0, t.Levels)
	n := t.Root
	for {
		path = append(path, n)
		if n.IsLeaf() {
			return path
		}
		j := 0
		for j < len(n.Keys)-1 && key > n.Keys[j] {
			j++
		}
		n = n.Children[j]
	}
}

// Lookup returns the dataset record index for key, or (-1, false).
func (t *Tree) Lookup(key uint64) (int, bool) {
	path := t.Path(key)
	leaf := path[len(path)-1]
	for j, k := range leaf.Keys {
		if k == key {
			return leaf.DataFrom + j, true
		}
	}
	return -1, false
}

// Ancestors returns the node's ancestor chain from the root down to (and
// excluding) the node itself.
func Ancestors(n *Node) []*Node {
	var rev []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		rev = append(rev, p)
	}
	out := make([]*Node, len(rev))
	for i, a := range rev {
		out[len(rev)-1-i] = a
	}
	return out
}

// Subtree returns the nodes of n's subtree in preorder.
func Subtree(n *Node) []*Node {
	var out []*Node
	walk(n, func(m *Node) { out = append(out, m) })
	return out
}
