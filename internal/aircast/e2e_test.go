package aircast_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/aircast"
	"github.com/airindex/airindex/internal/airborne"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/units"
)

var paperSchemes = []string{"flat", "(1,m)", "distributed", "hashing", "signature"}

// buildHarness constructs one scheme's broadcast plus the aircast
// program a network client would be handed out of band.
func buildHarness(t testing.TB, scheme string, records int, seed int64) (access.Broadcast, *datagen.Dataset, aircast.Program) {
	t.Helper()
	cfg := core.DefaultConfig(scheme, records)
	cfg.Data.Seed = seed
	ds, err := datagen.Generate(cfg.Data)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := core.BuildBroadcast(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := airborne.Contract{
		RecordSize:   cfg.Data.RecordSize,
		KeySize:      cfg.Data.KeySize,
		NumRecords:   cfg.Data.NumRecords,
		SigBytes:     cfg.Signature.SigBytes,
		BitsPerField: cfg.Signature.BitsPerField,
	}
	switch b := bc.(type) {
	case *dist.Broadcast:
		c.TreeLayout = b.Layout()
	case *onem.Broadcast:
		c.TreeLayout = b.Layout()
	case *hashing.Broadcast:
		c.HashPositions = int(b.Params()["Na"])
	}
	return bc, ds, aircast.Program{Scheme: scheme, Contract: c}
}

// predict replays the request in the byte-clock simulator: the same
// airborne client walked by access.Walk, arriving at the in-cycle start
// of the first bucket the live session fed. Every airborne protocol is
// shift-invariant (all decisions are offsets from bucket end times), so
// on a lossless transport the live accounting must equal this bit for
// bit.
func predict(bc access.Broadcast, prog aircast.Program, key uint64, first units.BucketIndex) (access.Result, error) {
	ch := bc.Channel()
	if !first.InCycle(ch.NumBuckets()) {
		return access.Result{}, fmt.Errorf("predict: bad first bucket %d", first)
	}
	cl, err := airborne.NewClient(prog.Scheme, airborne.NewBytes(ch), prog.Contract, key)
	if err != nil {
		return access.Result{}, err
	}
	return access.Walk(ch, cl, ch.StartInCycle(first).At(0), 0)
}

// TestE2EInmemExactAcrossSchemes is the tentpole's measurement claim: N
// concurrent network clients per scheme resolve keys over the live
// in-process transport and their measured access/tuning byte counters
// are bit-identical to the simulator's predictions.
func TestE2EInmemExactAcrossSchemes(t *testing.T) {
	for _, scheme := range paperSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			bc, ds, prog := buildHarness(t, scheme, 300, 1)
			img, err := aircast.BuildImage(1, prog, bc.Channel())
			if err != nil {
				t.Fatal(err)
			}
			srv, err := aircast.NewServer(aircast.Config{}, img)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Start(); err != nil {
				t.Fatal(err)
			}
			defer srv.Stop()
			prog = srv.Program()

			const clients = 8
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rx, err := aircast.Dial(aircast.TransportInmem, srv)
					if err != nil {
						errs <- err
						return
					}
					sess := aircast.NewSession(rx, prog)
					defer sess.Close()
					for q := 0; q < 4; q++ {
						var key uint64
						if (c+q)%4 == 3 {
							key = ds.MissingKeyNear((c*7 + q) % ds.Len())
						} else {
							key = ds.KeyAt((c*31 + q*13) % ds.Len())
						}
						res, err := sess.ResolveKey(key)
						if err != nil {
							errs <- fmt.Errorf("client %d key %d: %v", c, key, err)
							return
						}
						if res.Restarts != 0 || res.EpochRestarts != 0 || res.Unrecovered {
							errs <- fmt.Errorf("client %d key %d: lossless transport reported recovery: %+v", c, key, res)
							return
						}
						pred, err := predict(bc, prog, key, res.FirstBucket)
						if err != nil {
							errs <- err
							return
						}
						if res.Result != pred {
							errs <- fmt.Errorf("client %d key %d first bucket %d: live %+v != simulator %+v",
								c, key, res.FirstBucket, res.Result, pred)
							return
						}
						if res.Found != bc.Contains(key) {
							errs <- fmt.Errorf("client %d key %d: found %v, ground truth %v", c, key, res.Found, bc.Contains(key))
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			m := srv.Metrics()
			if m.Datagrams.Load() == 0 || m.Cycles.Load() == 0 {
				t.Fatalf("daemon served nothing: datagrams %d cycles %d", m.Datagrams.Load(), m.Cycles.Load())
			}
			if m.SlowReaderDrops.Load() != 0 {
				t.Fatalf("lossless transport dropped %d datagrams", m.SlowReaderDrops.Load())
			}
		})
	}
}

// TestE2EGracefulReconfig swaps the broadcast image mid-run: a request
// in flight across the cycle boundary observes the epoch bump and
// restarts cleanly, and requests after the swap resolve the new image's
// keys bit-exact against its simulator.
func TestE2EGracefulReconfig(t *testing.T) {
	bcA, dsA, prog := buildHarness(t, "flat", 400, 1)
	bcB, dsB, progB := buildHarness(t, "flat", 400, 2)
	if bcA.Channel().CycleLen() != bcB.Channel().CycleLen() {
		t.Fatal("flat images with identical geometry expected")
	}
	imgA, err := aircast.BuildImage(1, prog, bcA.Channel())
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := aircast.BuildImage(2, progB, bcB.Channel())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := aircast.NewServer(aircast.Config{}, imgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	prog = srv.Program()

	rx, err := aircast.Dial(aircast.TransportInmem, srv)
	if err != nil {
		t.Fatal(err)
	}
	sess := aircast.NewSession(rx, prog)
	defer sess.Close()

	// Anchor mid-cycle on the old image: a key deep in the cycle leaves
	// the session hundreds of buckets from the next boundary, and the
	// blocking transport keeps the server within a few frames of us.
	keyA := dsA.KeyAt(200)
	res, err := sess.ResolveKey(keyA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.EpochRestarts != 0 {
		t.Fatalf("pre-swap resolve: %+v", res)
	}

	// Queue the swap; it takes effect at the next cycle boundary. A key
	// present in neither image forces a full-cycle scan that must cross
	// that boundary, so the request observes the reconfiguration.
	if err := srv.Swap(imgA); err == nil {
		t.Fatal("swap without an epoch bump accepted")
	}
	if err := srv.Swap(imgB); err != nil {
		t.Fatal(err)
	}
	missing := dsA.MissingKeyNear(3)
	for i := 4; bcB.Contains(missing) && i < dsA.Len(); i++ {
		missing = dsA.MissingKeyNear(i)
	}
	res, err = sess.ResolveKey(missing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("key %d in neither image reported found", missing)
	}
	if res.EpochRestarts == 0 {
		t.Fatalf("in-flight request did not observe the reconfiguration: %+v", res)
	}

	// The new image is now on the air: its keys resolve bit-exact
	// against its own simulator, and old-image-only keys are gone.
	checked := false
	for i := 0; i < dsB.Len(); i++ {
		key := dsB.KeyAt(i)
		if bcA.Contains(key) {
			continue
		}
		res, err := sess.ResolveKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.EpochRestarts != 0 {
			t.Fatalf("post-swap resolve of new key %d: %+v", key, res)
		}
		pred, err := predict(bcB, prog, key, res.FirstBucket)
		if err != nil {
			t.Fatal(err)
		}
		if res.Result != pred {
			t.Fatalf("post-swap key %d: live %+v != simulator %+v", key, res.Result, pred)
		}
		checked = true
		break
	}
	if !checked {
		t.Fatal("no key unique to the new image")
	}
	for i := 0; i < dsA.Len(); i++ {
		key := dsA.KeyAt(i)
		if bcB.Contains(key) {
			continue
		}
		res, err := sess.ResolveKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("old-image key %d still found after swap", key)
		}
		break
	}

	m := srv.Metrics()
	if m.Reconfigs.Load() != 1 {
		t.Fatalf("reconfigs = %d, want 1", m.Reconfigs.Load())
	}
	if m.Epoch.Load() != 2 {
		t.Fatalf("epoch gauge = %d, want 2", m.Epoch.Load())
	}
}

// TestE2ETCPCatchup rides the length-prefixed TCP fallback. The stream
// is paced well under loopback TCP throughput, so no queue drops are
// expected and the accounting stays bit-exact.
func TestE2ETCPCatchup(t *testing.T) {
	bc, ds, prog := buildHarness(t, "hashing", 200, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := aircast.NewServer(aircast.Config{TCPAddr: "127.0.0.1:0", BytesPerSec: 8 << 20}, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	prog = srv.Program()

	rx, err := aircast.Dial(aircast.TransportTCP, srv)
	if err != nil {
		t.Fatal(err)
	}
	sess := aircast.NewSession(rx, prog)
	sess.Policy = access.RecoverPolicy{MaxRetries: 64}
	defer sess.Close()
	for q := 0; q < 3; q++ {
		key := ds.KeyAt((q * 17) % ds.Len())
		res, err := sess.ResolveKey(key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found over TCP: %+v", key, res)
		}
		if res.Restarts == 0 {
			pred, err := predict(bc, prog, key, res.FirstBucket)
			if err != nil {
				t.Fatal(err)
			}
			if res.Result != pred {
				t.Fatalf("key %d: live %+v != simulator %+v", key, res.Result, pred)
			}
		}
	}
	if got := srv.Metrics().ActiveReaders.Load(); got != 1 {
		t.Fatalf("active readers = %d, want 1", got)
	}
}

// TestMetricsAndHealth scrapes the HTTP endpoints while the daemon
// serves.
func TestMetricsAndHealth(t *testing.T) {
	bc, _, prog := buildHarness(t, "flat", 50, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := aircast.NewServer(aircast.Config{HTTPAddr: "127.0.0.1:0"}, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	// Consume a few frames so the counters move.
	rx, err := aircast.Dial(aircast.TransportInmem, srv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := rx.Recv(); !ok {
			t.Fatal("stream ended early")
		}
	}
	if err := rx.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"aircast_epoch 1",
		"aircast_cycles_total",
		"aircast_datagrams_sent_total",
		"aircast_active_readers",
		"aircast_slow_reader_drops_total",
		"aircast_reconfigs_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get("http://" + srv.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(health), "ok") {
		t.Fatalf("/healthz status %d body %q", resp.StatusCode, health)
	}
}
