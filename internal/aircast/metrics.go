package aircast

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// Metrics is the daemon's operational counter set, exposed in Prometheus
// text format at /metrics. Counters are plain atomics: the broadcast
// loop bumps them on its hot path and the HTTP handler reads them
// without coordination.
type Metrics struct {
	// Epoch is the epoch of the image currently on the air.
	Epoch atomic.Int64
	// Cycles counts complete broadcast cycles served.
	Cycles atomic.Int64
	// Datagrams counts datagrams actually transmitted (chaos drops are
	// not transmitted and count in ChaosDropped instead).
	Datagrams atomic.Int64
	// BytesSent counts sealed frame bytes transmitted, overhead included.
	BytesSent atomic.Int64
	// ActiveReaders gauges currently connected TCP catch-up readers.
	ActiveReaders atomic.Int64
	// InmemSubscribers gauges currently attached in-process receivers.
	InmemSubscribers atomic.Int64
	// SlowReaderDrops counts datagrams dropped because a TCP reader's
	// bounded queue was full — the backpressure policy: the cycle never
	// stalls for a slow reader.
	SlowReaderDrops atomic.Int64
	// Reconfigs counts graceful image swaps taken at cycle boundaries.
	Reconfigs atomic.Int64
	// ChaosDropped counts datagrams the chaos proxy discarded.
	ChaosDropped atomic.Int64
	// ChaosCorrupted counts datagrams the chaos proxy bit-mangled.
	ChaosCorrupted atomic.Int64
}

// Render writes the counters in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	for _, c := range []struct {
		name, kind, help string
		v                int64
	}{
		{"aircast_epoch", "gauge", "Epoch of the broadcast image on the air.", m.Epoch.Load()},
		{"aircast_cycles_total", "counter", "Complete broadcast cycles served.", m.Cycles.Load()},
		{"aircast_datagrams_sent_total", "counter", "Datagrams transmitted.", m.Datagrams.Load()},
		{"aircast_bytes_sent_total", "counter", "Sealed frame bytes transmitted.", m.BytesSent.Load()},
		{"aircast_active_readers", "gauge", "Connected TCP catch-up readers.", m.ActiveReaders.Load()},
		{"aircast_inmem_subscribers", "gauge", "Attached in-process receivers.", m.InmemSubscribers.Load()},
		{"aircast_slow_reader_drops_total", "counter", "Datagrams dropped on full reader queues.", m.SlowReaderDrops.Load()},
		{"aircast_reconfigs_total", "counter", "Graceful image swaps at cycle boundaries.", m.Reconfigs.Load()},
		{"aircast_chaos_dropped_total", "counter", "Datagrams discarded by the chaos proxy.", m.ChaosDropped.Load()},
		{"aircast_chaos_corrupted_total", "counter", "Datagrams bit-mangled by the chaos proxy.", m.ChaosCorrupted.Load()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", c.name, c.help, c.name, c.kind, c.name, c.v)
	}
}

// handler returns the daemon's HTTP mux: /metrics in Prometheus text
// format and /healthz reporting liveness.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.Render(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		select {
		case <-s.stop:
			http.Error(w, "stopping", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	return mux
}
