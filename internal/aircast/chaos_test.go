package aircast_test

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/aircast"
	"github.com/airindex/airindex/internal/faults"
)

// TestE2EChaosInmemDropRecovers drives the lossless transport through
// the chaos proxy's bucket-drop model at a fixed (seed, rate): the
// proxy deterministically discards datagrams at the transmitter, so
// receivers see gaps exactly where the simulator's ModelDrop would
// corrupt reads. Clients must detect the losses (missing doze targets,
// broken bucket contiguity) and recover through the WalkRecover restart
// policy within the retry bound.
func TestE2EChaosInmemDropRecovers(t *testing.T) {
	bc, ds, prog := buildHarness(t, "(1,m)", 300, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		t.Fatal(err)
	}
	cfg := aircast.Config{
		Chaos:       aircast.ChaosOn,
		ChaosFaults: faults.FromRate(faults.ModelDrop, 0.08),
		ChaosSeed:   42,
	}
	srv, err := aircast.NewServer(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	prog = srv.Program()

	rx, err := aircast.Dial(aircast.TransportInmem, srv)
	if err != nil {
		t.Fatal(err)
	}
	sess := aircast.NewSession(rx, prog)
	sess.Policy = access.RecoverPolicy{MaxRetries: 200}
	defer sess.Close()

	totalRestarts := 0
	for q := 0; q < 16; q++ {
		key := ds.KeyAt((q * 29) % ds.Len())
		res, err := sess.ResolveKey(key)
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		if res.Unrecovered {
			t.Fatalf("key %d abandoned inside a 200-retry budget at 8%% drop: %+v", key, res)
		}
		if !res.Found {
			t.Fatalf("key %d present but not found under drops: %+v", key, res)
		}
		if res.Restarts > sess.Policy.MaxRetries {
			t.Fatalf("key %d exceeded the retry bound: %+v", key, res)
		}
		totalRestarts += res.Restarts
	}
	if totalRestarts == 0 {
		t.Fatal("an 8% drop rate produced no restarts across 16 requests")
	}
	if got := srv.Metrics().ChaosDropped.Load(); got == 0 {
		t.Fatal("chaos proxy reported no drops")
	}
}

// TestE2EChaosUDPRecovers runs the real UDP datagram path through the
// bit-flip (IID BER) chaos model: mangled frames fail wire.Verify at
// the receiver and charge tuning as wasted reads, exactly like a
// Corrupter verdict in WalkRecover. The stream is paced so the loopback
// socket keeps up.
func TestE2EChaosUDPRecovers(t *testing.T) {
	bc, ds, prog := buildHarness(t, "flat", 150, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		t.Fatal(err)
	}
	rx, err := aircast.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := aircast.Config{
		UDPAddr:     rx.Addr(),
		BytesPerSec: 4 << 20,
		Chaos:       aircast.ChaosOn,
		ChaosFaults: faults.FromRate(faults.ModelIID, 5e-5),
		ChaosSeed:   7,
	}
	srv, err := aircast.NewServer(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	prog = srv.Program()

	sess := aircast.NewSession(rx, prog)
	sess.Policy = access.RecoverPolicy{MaxRetries: 500}
	defer sess.Close()

	totalRestarts, found := 0, 0
	const requests = 6
	for q := 0; q < requests; q++ {
		key := ds.KeyAt((q * 23) % ds.Len())
		res, err := sess.ResolveKey(key)
		if err != nil {
			t.Fatalf("key %d: %v", key, err)
		}
		if res.Restarts > sess.Policy.MaxRetries {
			t.Fatalf("key %d exceeded the retry bound: %+v", key, res)
		}
		if res.Found {
			found++
		}
		totalRestarts += res.Restarts
	}
	// UDP adds its own (timing-dependent) losses on top of the
	// deterministic chaos stream, so the assertions are behavioral:
	// recovery happened, and it worked for the bulk of the requests.
	if found < requests-1 {
		t.Fatalf("only %d/%d present keys found under chaos", found, requests)
	}
	if totalRestarts == 0 {
		t.Fatal("a ~5% per-bucket corruption rate produced no restarts")
	}
	m := srv.Metrics()
	if m.ChaosCorrupted.Load() == 0 {
		t.Fatal("chaos proxy reported no corruptions")
	}
}
