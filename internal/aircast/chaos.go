package aircast

import (
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/units"
)

// chaosProxy sits between the broadcast loop and every transport,
// driving the simulator's deterministic error models at the datagram
// layer. Decisions come from the same faults.Injector substream the
// simulated unreliable channel uses — splitmix(seed, shard, "faults"),
// indexed by a running datagram serial — so a chaos run is replayable
// from (model, rate, seed) alone.
//
// The proxy corrupts at the transmitter, which is what a broadcast
// medium does: every receiver of a given datagram sees the same fate.
// ModelDrop discards the datagram (receivers observe a gap in the
// bucket sequence); the bit-level models (iid, ge) flip one
// deterministically chosen bit in a copy of the sealed frame, which the
// CRC32C trailer is guaranteed to catch at every receiver
// (wire.Verify), triggering the walkers' recovery policies exactly as a
// Corrupter verdict does in simulation.
type chaosProxy struct {
	inj    *faults.Injector
	drop   bool // ModelDrop discards; other models mangle
	serial int  // datagram serial within the proxy's single "request"
}

// newChaosProxy builds the proxy for one deterministic substream. The
// whole broadcast is one fault "request": the serial counter advances
// per datagram, mirroring the per-probe coordinate of the simulator.
func newChaosProxy(cfg faults.Config, seed int64) *chaosProxy {
	inj := faults.New(cfg, seed, 0)
	inj.StartRequest()
	return &chaosProxy{inj: inj, drop: cfg.Model == faults.ModelDrop}
}

// filter decides one datagram's fate. It returns the frame to transmit
// (the original, or a mangled copy) and false when the datagram is
// dropped. payloadBytes is the bucket payload size — the same per-read
// size coordinate the simulator feeds its Corrupt decisions.
func (p *chaosProxy) filter(frame []byte, payloadBytes int64) ([]byte, bool) {
	serial := p.serial
	p.serial++
	if !p.inj.Corrupt(serial, units.Bytes64(payloadBytes)) {
		return frame, true
	}
	if p.drop {
		return nil, false
	}
	return p.inj.MangleCopy(serial, frame), true
}
