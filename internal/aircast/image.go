package aircast

import (
	"fmt"

	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Image is one immutable broadcast image: every bucket of a constructed
// cycle pre-framed into sealed datagrams under a single epoch. Building
// the image is a pure function of (epoch, program, channel) — the
// daemon's deterministic core. Once built an Image is never mutated, so
// the broadcast loop, every subscriber queue and every TCP writer may
// share its frames without copying or locking.
type Image struct {
	epoch  uint32
	prog   Program
	frames [][]byte          // sealed datagram per bucket, in cycle order
	sizes  []units.ByteCount // payload size per bucket (the byte-clock cost)
}

// BuildImage frames a constructed channel into the broadcast image for
// the given epoch. The program's cycle geometry is filled in from the
// channel, so callers supply only the scheme name and contract.
func BuildImage(epoch uint32, prog Program, ch *channel.Channel) (*Image, error) {
	n := int(ch.NumBuckets())
	if n <= 0 {
		return nil, fmt.Errorf("aircast: cannot frame an empty cycle")
	}
	prog.CycleLen = ch.CycleLen()
	prog.NumBuckets = ch.NumBuckets()
	im := &Image{
		epoch:  epoch,
		prog:   prog,
		frames: make([][]byte, n),
		sizes:  make([]units.ByteCount, n),
	}
	for i := 0; i < n; i++ {
		idx := units.Index(i)
		payload := ch.Bucket(idx).Encode()
		im.frames[i] = wire.EncodeDatagram(wire.Datagram{
			Epoch:   epoch,
			Offset:  ch.StartInCycle(idx),
			Bucket:  idx,
			Payload: payload,
		})
		im.sizes[i] = units.Bytes(len(payload))
	}
	return im, nil
}

// Epoch returns the image's broadcast epoch.
func (im *Image) Epoch() uint32 { return im.epoch }

// Program returns the image's published service contract, with the cycle
// geometry filled in.
func (im *Image) Program() Program { return im.prog }

// NumFrames returns the number of datagrams per cycle.
func (im *Image) NumFrames() int { return len(im.frames) }

// CycleLen returns the cycle length in payload (byte-clock) bytes.
func (im *Image) CycleLen() units.ByteCount { return im.prog.CycleLen }

// FrameBytes returns the total sealed frame bytes per cycle — the wire
// footprint including the per-datagram transport overhead.
func (im *Image) FrameBytes() int64 {
	var total int64
	for _, f := range im.frames {
		total += int64(len(f))
	}
	return total
}
