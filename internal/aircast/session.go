package aircast

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/airborne"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Session is the netclient layer: it promotes the byte-driven airborne
// clients into network receivers. The session reconstructs the
// broadcast byte-clock from datagram headers (epoch + cycle offset),
// feeds each received bucket payload to the scheme's unmodified
// protocol state machine, and realizes doze intervals by skipping
// datagrams — tuning time is therefore *measured* as the payload bytes
// of frames actually read, never inferred from server-side metadata.
//
// Measurement contract: on a lossless transport a request's Result is
// bit-identical to access.Walk over the same cycle with arrival at the
// first fed bucket's start (the e2e tests pin this). On a lossy or
// chaos-injected path the session additionally reproduces
// access.WalkRecover's recovery accounting: a frame failing
// wire.Verify is a corrupted read (tuning charged, Restarts/Wasted
// bumped, fresh client per RecoverPolicy), and a datagram that never
// arrives — detected as a gap where the protocol expected the next
// contiguous bucket, or a doze target that went missing — is a restart
// with no tuning charge (nothing was read). The paper's clients always
// doze to exact bucket starts, so a woken frame that does not start
// precisely at the wake time means the target was lost in flight.
//
// An epoch bump observed mid-request means the broadcast was
// reconfigured: the protocol state and clock anchor are stale, so the
// session restarts the request with a fresh client (counted in
// EpochRestarts, not Restarts) and re-anchors its clock.
type Session struct {
	// Policy is the recovery policy applied to corrupted or lost
	// datagrams, exactly as in access.WalkRecover.
	Policy access.RecoverPolicy
	// MaxSteps bounds datagrams consumed per request (doze skips
	// included); <= 0 selects access.DefaultMaxSteps.
	MaxSteps int

	rx   Receiver
	prog Program
	src  *liveSource

	// Byte-clock reconstruction: the session's private clock starts at 0
	// at the first frame and advances with the air, not the wall.
	started    bool
	epoch      uint32
	base       sim.Time // absolute time of the current cycle's offset 0
	lastOffset units.ByteOffset
	lastEnd    sim.Time // absolute end of the last frame accounted
}

// NetResult is one network request's outcome: the simulator's recovery
// accounting plus the live path's own coordinates.
type NetResult struct {
	access.FaultyResult
	// Arrival is the request's tune-in instant on the session's clock:
	// the start of the first bucket fed to the client.
	Arrival sim.Time
	// FirstBucket is that bucket's cycle index — the anchor for
	// simulator predictions (arrival = StartInCycle(FirstBucket)); -1 if
	// the session never fed a clean bucket.
	FirstBucket units.BucketIndex
	// EpochRestarts counts restarts forced by mid-request broadcast
	// reconfigurations (distinct from loss-driven Restarts).
	EpochRestarts int
}

// NewSession attaches a netclient to a datagram stream serving the
// given program.
func NewSession(rx Receiver, prog Program) *Session {
	return &Session{
		rx:   rx,
		prog: prog,
		src:  &liveSource{n: prog.NumBuckets},
	}
}

// Close detaches the session from its transport.
func (s *Session) Close() error { return s.rx.Close() }

// Source returns the session's airborne.Source: it serves exactly the
// bucket most recently fed to the client, straight off the wire.
func (s *Session) Source() airborne.Source { return s.src }

// liveSource implements airborne.Source over the live stream: the only
// bucket it can serve is the one the walker was just charged for, which
// is precisely the byteclock analyzer's call discipline.
type liveSource struct {
	n       units.BucketCount
	idx     units.BucketIndex
	payload []byte
}

// Of returns the on-air bucket's payload.
func (ls *liveSource) Of(i units.BucketIndex) []byte {
	if i != ls.idx {
		panic(fmt.Sprintf("aircast: client asked for bucket %d while bucket %d is on the air", i, ls.idx))
	}
	return ls.payload
}

// NumBuckets returns the cycle's bucket count.
func (ls *liveSource) NumBuckets() units.BucketCount { return ls.n }

// liveFrame is one datagram mapped onto the session's byte-clock. A
// frame that failed verification has a nil payload and an unknown
// bucket index; its position is inferred from stream contiguity and its
// size from the frame length (the receiver listened to all of it).
type liveFrame struct {
	start        sim.Time
	size         units.ByteCount
	idx          units.BucketIndex
	payload      []byte
	epochChanged bool
}

// next receives and clocks one frame. Stale frames (duplicates or
// reorderings that land before the clock's high-water mark) are
// dropped transparently.
func (s *Session) next() (liveFrame, bool) {
	for {
		raw, ok := s.rx.Recv()
		if !ok {
			return liveFrame{}, false
		}
		size := units.Bytes(len(raw)) - wire.DatagramOverhead
		if size < 0 {
			size = 0
		}
		d, err := wire.DecodeDatagram(raw)
		if err != nil {
			// Corrupted in flight: the header cannot be trusted, so the
			// position is inferred from contiguity — exact whenever loss
			// and corruption do not mix (each chaos model does one).
			f := liveFrame{start: s.lastEnd, size: size, idx: -1}
			s.lastEnd = f.start + size.Span()
			return f, true
		}
		size = units.Bytes(len(d.Payload))
		if !s.started || d.Epoch != s.epoch {
			// First frame, or a reconfigured broadcast: anchor the new
			// cycle so this frame continues the clock without a gap.
			f := liveFrame{epochChanged: s.started}
			s.started = true
			s.epoch = d.Epoch
			s.base = s.lastEnd - d.Offset.Extent().Span()
			s.lastOffset = d.Offset
			f.start, f.size, f.idx, f.payload = s.lastEnd, size, d.Bucket, d.Payload
			s.lastEnd = f.start + size.Span()
			return f, true
		}
		if d.Offset < s.lastOffset {
			// The cycle wrapped.
			s.base += s.prog.CycleLen.Span()
		}
		start := d.Offset.At(s.base)
		if start < s.lastEnd {
			continue // stale duplicate/reordering
		}
		s.lastOffset = d.Offset
		s.lastEnd = start + size.Span()
		return liveFrame{start: start, size: size, idx: d.Bucket, payload: d.Payload}, true
	}
}

// nextCycleStart returns the start of the broadcast cycle after the
// one currently on the air.
func (s *Session) nextCycleStart() sim.Time {
	return s.base + s.prog.CycleLen.Span()
}

// fail accounts one loss-driven restart and reports whether the retry
// budget is exhausted, mirroring access.WalkRecover's abandonment.
func (s *Session) fail(res *NetResult, haveArrival bool, at sim.Time) bool {
	res.Restarts++
	if s.Policy.MaxRetries > 0 && res.Restarts > s.Policy.MaxRetries {
		if haveArrival {
			res.Access = units.Elapsed(res.Arrival, at)
		}
		res.Found = false
		res.Unrecovered = true
		return true
	}
	return false
}

// Resolve runs one request: newClient must return a fresh protocol
// state machine reading from this session's Source. The walk mechanics
// mirror access.Walk/WalkRecover, driven by received datagrams instead
// of channel geometry.
func (s *Session) Resolve(newClient func() access.Client) (NetResult, error) {
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = access.DefaultMaxSteps
	}
	var res NetResult
	res.FirstBucket = -1
	cl := newClient()
	haveArrival := false
	var dozing, targeted bool
	var wake sim.Time
	expect := units.Index(-1)
	var expectAt sim.Time

	for step := 0; step < maxSteps; step++ {
		f, ok := s.next()
		if !ok {
			return res, fmt.Errorf("aircast: transport closed mid-request")
		}
		if f.epochChanged && haveArrival {
			// Broadcast reconfigured mid-request: protocol state and all
			// pending targets are stale. Restart at this frame.
			res.EpochRestarts++
			cl = newClient()
			dozing, targeted = false, false
			expect = -1
		}
		corrupt := f.payload == nil
		if dozing {
			if f.start < wake {
				continue // dozing through: skipped datagrams cost nothing
			}
			missed := targeted && f.start != wake
			dozing, targeted = false, false
			if missed && !corrupt {
				// The doze target was dropped in flight: nothing was read
				// (no tuning), but the protocol state is stale.
				if s.fail(&res, haveArrival, f.start) {
					return res, nil
				}
				cl = newClient()
				if s.Policy.NextCycle {
					dozing, wake = true, s.nextCycleStart()
					if f.start < wake {
						continue
					}
					dozing = false
				}
			}
		} else if expect >= 0 && !corrupt && (f.idx != expect || f.start != expectAt) {
			// The immediately-next bucket never arrived.
			if s.fail(&res, haveArrival, f.start) {
				return res, nil
			}
			cl = newClient()
			if s.Policy.NextCycle {
				dozing, wake = true, s.nextCycleStart()
				expect = -1
				if f.start < wake {
					continue
				}
				dozing = false
			}
		}
		expect = -1

		// Read the frame: the receiver pays the payload in tuning time
		// whether or not it verifies.
		end := f.start + f.size.Span()
		if !haveArrival {
			haveArrival = true
			res.Arrival = f.start
			res.FirstBucket = f.idx
		}
		res.Tuning += f.size
		res.Probes++
		if corrupt {
			res.Wasted += f.size
			if s.fail(&res, true, end) {
				return res, nil
			}
			cl = newClient()
			if s.Policy.NextCycle {
				dozing, wake = true, s.nextCycleStart()
			}
			continue
		}
		s.src.idx, s.src.payload = f.idx, f.payload
		st := cl.OnBucket(f.idx, end)
		switch st.Kind {
		case access.StepNext:
			expect = f.idx.Next(s.prog.NumBuckets)
			expectAt = end
		case access.StepDoze:
			if st.At < end {
				return res, fmt.Errorf("aircast: client dozed into the past: %d < %d", st.At, end)
			}
			dozing, wake, targeted = true, st.At, true
		case access.StepDone:
			res.Access = units.Elapsed(res.Arrival, end)
			res.Found = st.Found
			return res, nil
		default:
			return res, fmt.Errorf("aircast: invalid step kind %d", st.Kind)
		}
	}
	return res, fmt.Errorf("aircast: request exceeded %d datagrams without terminating", maxSteps)
}

// ResolveKey runs one primary-key request with the program's scheme
// riding the session, building a fresh byte-driven airborne client per
// protocol (re)start.
func (s *Session) ResolveKey(key uint64) (NetResult, error) {
	if _, err := airborne.NewClient(s.prog.Scheme, s.src, s.prog.Contract, key); err != nil {
		return NetResult{}, err
	}
	return s.Resolve(func() access.Client {
		c, _ := airborne.NewClient(s.prog.Scheme, s.src, s.prog.Contract, key)
		return c
	})
}
