package aircast

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Server is the broadcast daemon: one goroutine walks the current image
// frame by frame, paced to the configured bandwidth, and fans each
// sealed datagram out to the UDP socket, every in-process subscriber,
// and every connected TCP reader. Reconfiguration swaps the image
// atomically at a cycle boundary under a bumped epoch; backpressure is
// per-reader (bounded queues, drop-with-counter) so one slow reader can
// never stall the cycle — exactly the broadcast medium's indifference
// to its listeners.
type Server struct {
	cfg     Config
	metrics Metrics
	chaos   *chaosProxy

	mu      sync.Mutex
	subs    []*subscriber
	cur     *Image // image on the air (written by the loop at boundaries)
	pending *Image // queued reconfiguration, nil when none

	udp    *net.UDPConn
	tcpLn  net.Listener
	httpLn net.Listener

	stop     chan struct{} // closed by Stop: all goroutines drain out
	done     chan struct{} // closed when the broadcast loop has exited
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer validates the configuration and prepares a daemon serving
// the given initial image. Call Start to bind sockets and begin
// broadcasting.
func NewServer(cfg Config, img *Image) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if img == nil || img.NumFrames() == 0 {
		return nil, fmt.Errorf("aircast: no broadcast image")
	}
	s := &Server{
		cfg:  cfg,
		cur:  img,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Chaos == ChaosOn && cfg.ChaosFaults.Enabled() {
		s.chaos = newChaosProxy(cfg.ChaosFaults, cfg.ChaosSeed)
	}
	return s, nil
}

// Start binds the configured sockets and launches the broadcast loop.
func (s *Server) Start() error {
	if s.cfg.UDPAddr != "" {
		ua, err := net.ResolveUDPAddr("udp", s.cfg.UDPAddr)
		if err != nil {
			return fmt.Errorf("aircast: udp target: %w", err)
		}
		conn, err := net.DialUDP("udp", nil, ua)
		if err != nil {
			return fmt.Errorf("aircast: udp target: %w", err)
		}
		s.udp = conn
	}
	if s.cfg.TCPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.TCPAddr)
		if err != nil {
			s.closeSockets()
			return fmt.Errorf("aircast: tcp listen: %w", err)
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptTCP()
	}
	if s.cfg.HTTPAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			s.closeSockets()
			return fmt.Errorf("aircast: http listen: %w", err)
		}
		s.httpLn = ln
		srv := &http.Server{Handler: s.handler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = srv.Serve(ln) // returns on listener close at Stop
		}()
	}
	s.metrics.Epoch.Store(int64(s.cur.epoch))
	s.wg.Add(1)
	go s.run()
	return nil
}

// Stop halts the broadcast, closes every socket, unblocks all
// subscribers, and waits for the daemon's goroutines to drain.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		s.closeSockets()
	})
	s.wg.Wait()
}

// closeSockets closes whichever sockets were bound.
func (s *Server) closeSockets() {
	if s.udp != nil {
		_ = s.udp.Close()
	}
	if s.tcpLn != nil {
		_ = s.tcpLn.Close()
	}
	if s.httpLn != nil {
		_ = s.httpLn.Close()
	}
}

// Done is closed when the broadcast loop has exited.
func (s *Server) Done() <-chan struct{} { return s.done }

// Metrics returns the daemon's counter set.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Program returns the service contract of the image currently on the
// air (the geometry clients need before tuning in).
func (s *Server) Program() Program {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.Program()
}

// TCPAddr returns the bound TCP listen address, or "" when disabled.
func (s *Server) TCPAddr() string {
	if s.tcpLn == nil {
		return ""
	}
	return s.tcpLn.Addr().String()
}

// HTTPAddr returns the bound HTTP listen address, or "" when disabled.
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// Swap queues a graceful reconfiguration: the new image goes on the air
// at the next cycle boundary. Its epoch must differ from the current
// one — receivers detect the bump and restart in-flight requests
// cleanly. A second Swap before the boundary replaces the first.
func (s *Server) Swap(img *Image) error {
	if img == nil || img.NumFrames() == 0 {
		return fmt.Errorf("aircast: no broadcast image")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if img.epoch == s.cur.epoch {
		return fmt.Errorf("aircast: reconfiguration must bump the epoch (still %d)", img.epoch)
	}
	s.pending = img
	return nil
}

// takePending claims the queued reconfiguration, if any, making it the
// current image.
func (s *Server) takePending() *Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := s.pending
	if img != nil {
		s.pending = nil
		s.cur = img
	}
	return img
}

// run is the broadcast loop: frames go on the air in cycle order,
// forever, with reconfigurations taken only between cycles.
func (s *Server) run() {
	defer s.wg.Done()
	defer close(s.done)
	pace := newPacer(s.cfg.BytesPerSec)
	img := s.cur
	for {
		for i, frame := range img.frames {
			select {
			case <-s.stop:
				return
			default:
			}
			// The byte-clock advances by the payload whether or not the
			// datagram survives the chaos proxy: the air time was spent.
			payload := int64(img.sizes[i])
			pace.pace(payload)
			out := frame
			if s.chaos != nil {
				mangled, ok := s.chaos.filter(frame, payload)
				if !ok {
					s.metrics.ChaosDropped.Add(1)
					continue
				}
				if len(mangled) > 0 && &mangled[0] != &frame[0] {
					s.metrics.ChaosCorrupted.Add(1)
				}
				out = mangled
			}
			s.transmit(out)
			s.metrics.Datagrams.Add(1)
			s.metrics.BytesSent.Add(int64(len(out)))
		}
		s.metrics.Cycles.Add(1)
		if next := s.takePending(); next != nil {
			img = next
			s.metrics.Reconfigs.Add(1)
			s.metrics.Epoch.Store(int64(img.epoch))
		}
	}
}

// transmit fans one sealed frame out to every transport. Frames are
// immutable shared slices; receivers never write into them.
func (s *Server) transmit(frame []byte) {
	if s.udp != nil {
		_, _ = s.udp.Write(frame) // datagram loss is the medium's business
	}
	s.mu.Lock()
	subs := s.subs
	s.mu.Unlock()
	for _, sub := range subs {
		sub.deliver(frame, s)
	}
}

// subscriber is one fanout queue: blocking for the lossless in-process
// transport, bounded drop-with-counter for TCP readers.
type subscriber struct {
	ch        chan []byte
	done      chan struct{}
	blocking  bool
	closeOnce sync.Once
}

// deliver enqueues one frame. Blocking subscribers exert flow control
// on the cycle (the lossless reference transport); non-blocking ones
// lose the frame when full, counted in SlowReaderDrops.
func (sub *subscriber) deliver(frame []byte, s *Server) {
	if sub.blocking {
		select {
		case sub.ch <- frame:
		case <-sub.done:
		case <-s.stop:
		}
		return
	}
	select {
	case sub.ch <- frame:
	default:
		s.metrics.SlowReaderDrops.Add(1)
	}
}

// close marks the subscriber detached; deliveries stop immediately and
// any blocked sender unblocks.
func (sub *subscriber) close() {
	sub.closeOnce.Do(func() { close(sub.done) })
}

// addSub registers a fanout queue.
func (s *Server) addSub(blocking bool, depth int) *subscriber {
	sub := &subscriber{
		ch:       make(chan []byte, depth),
		done:     make(chan struct{}),
		blocking: blocking,
	}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// removeSub unregisters a fanout queue and unblocks its deliveries.
// The subscriber list is copy-on-write: transmit iterates a snapshot of
// the slice outside the lock, so removal must never shift elements of a
// backing array a snapshot may still be walking.
func (s *Server) removeSub(sub *subscriber) {
	sub.close()
	s.mu.Lock()
	for i, x := range s.subs {
		if x == sub {
			next := make([]*subscriber, 0, len(s.subs)-1)
			next = append(next, s.subs[:i]...)
			next = append(next, s.subs[i+1:]...)
			s.subs = next
			break
		}
	}
	s.mu.Unlock()
}

// InmemReceiver is the lossless in-process transport: a blocking
// subscription that exerts flow control on the broadcast loop, so no
// datagram is ever lost. It is the reference transport the exactness
// tests pin the simulator equivalence on.
type InmemReceiver struct {
	s   *Server
	sub *subscriber
}

// Subscribe attaches a lossless in-process receiver. It observes the
// stream from the next transmitted datagram onward.
func (s *Server) Subscribe() *InmemReceiver {
	sub := s.addSub(true, 16)
	s.metrics.InmemSubscribers.Add(1)
	return &InmemReceiver{s: s, sub: sub}
}

// Recv returns the next datagram frame, or false when the receiver is
// closed or the server has stopped and its queue is drained.
func (r *InmemReceiver) Recv() ([]byte, bool) {
	select {
	case f := <-r.sub.ch:
		return f, true
	default:
	}
	select {
	case f := <-r.sub.ch:
		return f, true
	case <-r.sub.done:
		return nil, false
	case <-r.s.done:
		// Server stopped; drain anything still queued.
		select {
		case f := <-r.sub.ch:
			return f, true
		default:
			return nil, false
		}
	}
}

// Close detaches the receiver.
func (r *InmemReceiver) Close() error {
	s := r.s
	s.mu.Lock()
	attached := false
	for _, x := range s.subs {
		if x == r.sub {
			attached = true
			break
		}
	}
	s.mu.Unlock()
	if attached {
		s.removeSub(r.sub)
		s.metrics.InmemSubscribers.Add(-1)
	}
	return nil
}

// acceptTCP admits catch-up readers: each gets a bounded queue and a
// writer goroutine streaming length-prefixed sealed frames.
func (s *Server) acceptTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return // listener closed at Stop
		}
		sub := s.addSub(false, s.cfg.readerQueue())
		s.metrics.ActiveReaders.Add(1)
		s.wg.Add(1)
		go s.serveReader(conn, sub)
	}
}

// serveReader drains one TCP reader's queue onto its connection as
// length-prefixed frames, until the reader hangs up or the daemon
// stops.
func (s *Server) serveReader(conn net.Conn, sub *subscriber) {
	defer func() {
		_ = conn.Close()
		s.removeSub(sub)
		s.metrics.ActiveReaders.Add(-1)
		s.wg.Done()
	}()
	var lenbuf [4]byte
	for {
		select {
		case frame := <-sub.ch:
			binary.BigEndian.PutUint32(lenbuf[:], uint32(len(frame)))
			if _, err := conn.Write(lenbuf[:]); err != nil {
				return
			}
			if _, err := conn.Write(frame); err != nil {
				return
			}
		case <-s.stop:
			return
		}
	}
}
