package aircast

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Receiver is a client's view of the datagram stream, whatever the
// transport: Recv blocks for the next raw sealed frame and returns
// false when the stream has ended. Frames may arrive corrupted (chaos,
// link noise) or not at all (UDP loss); interpreting them is the
// Session's job.
type Receiver interface {
	Recv() ([]byte, bool)
	Close() error
}

// maxFrame bounds a received frame: comfortably above any bucket
// encoding the testbed produces, small enough to reject garbage length
// prefixes before allocating.
const maxFrame = 1 << 22

// UDPReceiver listens for datagrams on a unicast or multicast address.
type UDPReceiver struct {
	conn *net.UDPConn
	buf  []byte
}

// ListenUDP binds a datagram receiver. A multicast group address joins
// the group; a unicast address (":0" for ephemeral) binds directly —
// the server's Config.UDPAddr must then target the bound address
// (Addr).
func ListenUDP(addr string) (*UDPReceiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("aircast: udp listen: %w", err)
	}
	var conn *net.UDPConn
	if ua.IP != nil && ua.IP.IsMulticast() {
		conn, err = net.ListenMulticastUDP("udp", nil, ua)
	} else {
		conn, err = net.ListenUDP("udp", ua)
	}
	if err != nil {
		return nil, fmt.Errorf("aircast: udp listen: %w", err)
	}
	return &UDPReceiver{conn: conn, buf: make([]byte, maxFrame)}, nil
}

// Addr returns the bound address, for pointing a server's UDPAddr at an
// ephemeral listener.
func (r *UDPReceiver) Addr() string { return r.conn.LocalAddr().String() }

// Recv returns the next datagram, copied out of the socket buffer.
func (r *UDPReceiver) Recv() ([]byte, bool) {
	n, _, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		return nil, false
	}
	frame := make([]byte, n)
	copy(frame, r.buf[:n])
	return frame, true
}

// Close shuts the socket; a blocked Recv returns false.
func (r *UDPReceiver) Close() error { return r.conn.Close() }

// TCPReceiver reads the catch-up stream: length-prefixed sealed frames
// over one connection.
type TCPReceiver struct {
	conn net.Conn
}

// DialTCP connects a catch-up reader to a server's TCP listener.
func DialTCP(addr string) (*TCPReceiver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("aircast: tcp dial: %w", err)
	}
	return &TCPReceiver{conn: conn}, nil
}

// Recv returns the next frame off the stream.
func (r *TCPReceiver) Recv() ([]byte, bool) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r.conn, lenbuf[:]); err != nil {
		return nil, false
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n == 0 || n > maxFrame {
		return nil, false
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r.conn, frame); err != nil {
		return nil, false
	}
	return frame, true
}

// Close hangs up; a blocked Recv returns false.
func (r *TCPReceiver) Close() error { return r.conn.Close() }

// Dial attaches a receiver to a running server over the chosen
// transport. TransportInmem subscribes in-process (srv must be local);
// TransportUDP listens on the server's configured datagram target;
// TransportTCP connects to the server's catch-up listener.
func Dial(kind TransportKind, srv *Server) (Receiver, error) {
	switch kind {
	case TransportInmem:
		return srv.Subscribe(), nil
	case TransportUDP:
		if srv.cfg.UDPAddr == "" {
			return nil, fmt.Errorf("aircast: server has no UDP target")
		}
		return ListenUDP(srv.cfg.UDPAddr)
	case TransportTCP:
		addr := srv.TCPAddr()
		if addr == "" {
			return nil, fmt.Errorf("aircast: server has no TCP listener")
		}
		return DialTCP(addr)
	default:
		return nil, fmt.Errorf("aircast: unknown transport %d", kind)
	}
}
