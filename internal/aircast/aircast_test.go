package aircast

import (
	"strings"
	"testing"
	"time"

	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/wire"
)

func TestTransportKindRoundTrip(t *testing.T) {
	for _, k := range []TransportKind{TransportInmem, TransportUDP, TransportTCP} {
		back, err := ParseTransport(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip %v: got %v, %v", k, back, err)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if k, err := ParseTransport(""); err != nil || k != TransportInmem {
		t.Fatalf("empty transport: %v, %v", k, err)
	}
}

func TestChaosKindRoundTrip(t *testing.T) {
	for _, k := range []ChaosKind{ChaosOff, ChaosOn} {
		back, err := ParseChaos(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip %v: got %v, %v", k, back, err)
		}
	}
	if _, err := ParseChaos("maybe"); err == nil {
		t.Fatal("unknown chaos mode accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	if err := (Config{BytesPerSec: -1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (Config{ReaderQueue: -1}).Validate(); err == nil {
		t.Fatal("negative queue accepted")
	}
	bad := Config{Chaos: ChaosOn, ChaosFaults: faults.Config{Model: faults.ModelDrop, DropRate: 2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid chaos faults accepted")
	}
	ok := Config{Chaos: ChaosOn, ChaosFaults: faults.FromRate(faults.ModelDrop, 0.1)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{}).readerQueue() != DefaultReaderQueue {
		t.Fatal("default reader queue not applied")
	}
}

// TestPacerMapsByteClockToWallClock checks the absolute-pacing law:
// after accounting B bytes at rate R, at least B/R wall seconds have
// passed since the pacer started.
func TestPacerMapsByteClockToWallClock(t *testing.T) {
	p := newPacer(1 << 20) // 1 MiB/s
	start := time.Now()
	for i := 0; i < 8; i++ {
		p.pace(8 << 10)
	}
	// 64 KiB at 1 MiB/s is 62.5 ms on the byte-clock.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("paced 64KiB at 1MiB/s in %v", elapsed)
	}
	// Unpaced: returns immediately (just exercise the path).
	newPacer(0).pace(1 << 40)
}

// TestChaosProxyDeterministic pins the proxy to its substream: the same
// (config, seed) replays the same per-datagram fates, drops actually
// discard, and mangles fail wire verification.
func TestChaosProxyDeterministic(t *testing.T) {
	frame := wire.EncodeDatagram(wire.Datagram{Epoch: 1, Offset: 0, Bucket: 0, Payload: make([]byte, 96)})
	run := func() []bool {
		p := newChaosProxy(faults.FromRate(faults.ModelDrop, 0.2), 99)
		fates := make([]bool, 500)
		for i := range fates {
			_, ok := p.filter(frame, 96)
			fates[i] = ok
		}
		return fates
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d differs between identical replays", i)
		}
		if !a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("drop model dropped %d/%d", drops, len(a))
	}

	mangler := newChaosProxy(faults.FromRate(faults.ModelIID, 1e-3), 7)
	corrupted := 0
	for i := 0; i < 500; i++ {
		out, ok := mangler.filter(frame, 96)
		if !ok {
			t.Fatal("bit-flip model dropped a datagram")
		}
		if &out[0] != &frame[0] {
			corrupted++
			if _, err := wire.DecodeDatagram(out); err == nil {
				t.Fatal("mangled frame passed verification")
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("bit-flip model corrupted nothing at BER 1e-3 over 500 frames")
	}
}

func TestMetricsRender(t *testing.T) {
	var m Metrics
	m.Cycles.Add(3)
	m.Datagrams.Add(77)
	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE aircast_cycles_total counter",
		"aircast_cycles_total 3",
		"aircast_datagrams_sent_total 77",
		"# TYPE aircast_epoch gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
