package aircast

import "time"

// pacer maps the byte-clock onto the wall clock: after accounting n
// payload bytes it sleeps until the wall time at which a channel of the
// configured bandwidth would have finished broadcasting them. Pacing is
// absolute, not incremental — each sleep targets start + sent/rate — so
// scheduling jitter never accumulates into drift: over any window the
// served byte-clock tracks rate * elapsed wall time.
//
// This file is the reason internal/aircast is the one sanctioned
// wall-clock package (DESIGN.md §10): the daemon's whole purpose is to
// put the byte-clock on the air in real time. Nothing measured — access
// time, tuning time, chaos decisions — ever reads the wall clock.
type pacer struct {
	rate  int64 // bytes per second; 0 disables pacing
	start time.Time
	sent  int64 // payload bytes accounted so far
}

// newPacer starts a pacer at the current wall time. rate 0 returns a
// pacer whose pace is a no-op.
func newPacer(rate int64) *pacer {
	return &pacer{rate: rate, start: time.Now()}
}

// pace accounts n payload bytes and blocks until the wall clock catches
// up with the byte-clock.
func (p *pacer) pace(n int64) {
	p.sent += n
	if p.rate <= 0 {
		return
	}
	target := p.start.Add(time.Duration(p.sent * int64(time.Second) / p.rate))
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}
