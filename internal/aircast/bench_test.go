package aircast_test

import (
	"testing"

	"github.com/airindex/airindex/internal/aircast"
)

// BenchmarkInmemDatagrams measures the transmitter's fan-out ceiling on
// the lossless in-process transport: one blocking subscriber draining
// an unpaced broadcast, so every framed datagram is accounted.
func BenchmarkInmemDatagrams(b *testing.B) {
	bc, _, prog := buildHarness(b, "flat", 300, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := aircast.NewServer(aircast.Config{}, img)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	rx, err := aircast.Dial(aircast.TransportInmem, srv)
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, ok := rx.Recv()
		if !ok {
			b.Fatal("stream ended")
		}
		bytes += int64(len(raw))
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkUDPLoopbackDatagrams measures datagrams/sec sustained at a
// receiver over loopback UDP: the server floods unpaced, the kernel
// drops what the socket cannot hold, and only datagrams actually
// received count — the honest "sustained" number from BENCH.md.
func BenchmarkUDPLoopbackDatagrams(b *testing.B) {
	bc, _, prog := buildHarness(b, "flat", 300, 1)
	img, err := aircast.BuildImage(1, prog, bc.Channel())
	if err != nil {
		b.Fatal(err)
	}
	rx, err := aircast.ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	srv, err := aircast.NewServer(aircast.Config{UDPAddr: rx.Addr()}, img)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, ok := rx.Recv()
		if !ok {
			b.Fatal("socket closed")
		}
		bytes += int64(len(raw))
	}
	b.SetBytes(bytes / int64(b.N))
}
