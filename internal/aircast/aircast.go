// Package aircast promotes the simulator's broadcast cycle onto a real
// transport: a long-running daemon streams the encoded bucket cycle as
// sequenced datagrams (wire.EncodeDatagram: epoch + cycle offset +
// bucket index, CRC32C-sealed) over UDP and an in-process lossless
// conduit, with a TCP fallback for catch-up readers, paced to a
// configurable bandwidth so wall-clock maps onto the byte-clock. The
// Session type turns the internal/airborne byte-driven receivers into
// genuine network clients: they tune in, sleep through doze intervals by
// skipping datagrams, ride the schemes' protocol state machines
// unchanged, and report the paper's access/tuning byte counters measured
// off the wire.
//
// Determinism boundary (DESIGN.md §10): this is the one package allowed
// to read the wall clock and spawn goroutines — a live daemon is
// inherently concurrent and paced in real time. The determinism contract
// holds at its edges instead: the broadcast image is a pure function of
// the simulator's channel construction, the chaos proxy draws every
// drop/corruption decision from the same deterministic faults.Injector
// substream as the simulated unreliable channel, and on the lossless
// in-memory transport a Session's per-request accounting is bit-identical
// to access.Walk over the same cycle (the e2e tests pin this).
package aircast

import (
	"fmt"

	"github.com/airindex/airindex/internal/airborne"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/units"
)

// TransportKind selects how a client receives the datagram stream. It is
// a closed enum: the airlint exhaustive analyzer requires every switch
// over it to cover all constants or carry a default.
type TransportKind uint8

const (
	// TransportInmem subscribes in-process through Server.Subscribe —
	// the lossless flow-controlled reference transport the exactness
	// tests and the demo use.
	TransportInmem TransportKind = iota
	// TransportUDP listens for datagrams on the server's UDP target
	// address (unicast loopback or a multicast group).
	TransportUDP
	// TransportTCP connects to the server's TCP listener and reads the
	// length-prefixed catch-up stream.
	TransportTCP
)

// String returns the transport's CLI name.
func (k TransportKind) String() string {
	switch k {
	case TransportInmem:
		return "inmem"
	case TransportUDP:
		return "udp"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", uint8(k))
	}
}

// ParseTransport maps a CLI name to its TransportKind.
func ParseTransport(s string) (TransportKind, error) {
	switch s {
	case "", "inmem":
		return TransportInmem, nil
	case "udp":
		return TransportUDP, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return TransportInmem, fmt.Errorf("aircast: unknown transport %q (have inmem, udp, tcp)", s)
	}
}

// ChaosKind switches the transport chaos proxy on or off. Like
// TransportKind it is a closed enum under the exhaustive analyzer.
type ChaosKind uint8

const (
	// ChaosOff (the zero value) transmits every datagram verbatim.
	ChaosOff ChaosKind = iota
	// ChaosOn routes every datagram through the faults-driven proxy:
	// ModelDrop discards datagrams, the bit-level models (iid, ge) flip
	// one deterministically chosen bit so receivers see a CRC failure.
	ChaosOn
)

// String returns the chaos mode's CLI name.
func (k ChaosKind) String() string {
	switch k {
	case ChaosOff:
		return "off"
	case ChaosOn:
		return "on"
	default:
		return fmt.Sprintf("chaos(%d)", uint8(k))
	}
}

// ParseChaos maps a CLI name to its ChaosKind.
func ParseChaos(s string) (ChaosKind, error) {
	switch s {
	case "", "off":
		return ChaosOff, nil
	case "on":
		return ChaosOn, nil
	default:
		return ChaosOff, fmt.Errorf("aircast: unknown chaos mode %q (have off, on)", s)
	}
}

// Config parameterizes the daemon. The zero value serves the in-memory
// transport only, unpaced, with chaos off.
type Config struct {
	// BytesPerSec paces the broadcast: the wall-clock bandwidth the
	// byte-clock is mapped onto. 0 broadcasts as fast as receivers and
	// sockets allow (the test configuration).
	BytesPerSec int64

	// UDPAddr is the datagram target — a unicast address (one listener)
	// or a multicast group. Empty disables the UDP path.
	UDPAddr string
	// TCPAddr is the listen address for catch-up readers. Empty disables
	// the TCP listener. ":0" binds an ephemeral port (see Server.TCPAddr).
	TCPAddr string
	// HTTPAddr is the listen address for the /metrics and /healthz
	// endpoints. Empty disables HTTP. ":0" binds an ephemeral port.
	HTTPAddr string

	// ReaderQueue bounds each TCP reader's datagram queue; a slow reader
	// overflowing it loses datagrams (counted in
	// aircast_slow_reader_drops_total) rather than stalling the cycle.
	// 0 selects DefaultReaderQueue.
	ReaderQueue int

	// Chaos switches the transport chaos proxy; ChaosFaults selects the
	// deterministic error model and ChaosSeed its substream, exactly as
	// in the simulator's unreliable-channel layer.
	Chaos      ChaosKind
	ChaosFaults faults.Config
	ChaosSeed  int64
}

// DefaultReaderQueue is the per-reader bounded queue length used when
// Config.ReaderQueue is 0.
const DefaultReaderQueue = 256

// readerQueue returns the effective per-reader queue bound.
func (c Config) readerQueue() int {
	if c.ReaderQueue <= 0 {
		return DefaultReaderQueue
	}
	return c.ReaderQueue
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.BytesPerSec < 0 {
		return fmt.Errorf("aircast: bytes per second %d must be non-negative", c.BytesPerSec)
	}
	if c.ReaderQueue < 0 {
		return fmt.Errorf("aircast: reader queue %d must be non-negative", c.ReaderQueue)
	}
	switch c.Chaos {
	case ChaosOff:
	case ChaosOn:
		if err := c.ChaosFaults.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("aircast: unknown chaos mode %d", c.Chaos)
	}
	return nil
}

// Program is the published service contract a client knows before tuning
// in: which scheme is on the air, the airborne contract (data geometry
// and scheme parameters), and the cycle geometry the receiver needs to
// reconstruct the byte-clock from datagram headers. Everything else
// comes off the wire.
type Program struct {
	// Scheme is the airborne scheme name ("flat", "(1,m)", "distributed",
	// "hashing", "signature").
	Scheme string
	// Contract is the byte-driven clients' service contract.
	Contract airborne.Contract
	// CycleLen is the broadcast cycle length in bytes.
	CycleLen units.ByteCount
	// NumBuckets is the cycle's bucket count.
	NumBuckets units.BucketCount
}
