// Package datagen synthesizes the dictionary-style database the paper's
// testbed broadcasts (§4.1: "a dictionary database consisting of about
// 35,000 records", text records of 500 bytes with 25-byte keys).
//
// The study depends only on the record count, record size, key size and key
// uniqueness — never on the actual English words — so a deterministic
// generator is a faithful substitute (see DESIGN.md §5). Keys are strictly
// increasing integers with random gaps of at least two, which guarantees
// that for every stored key there exists an adjacent key value that is
// provably absent from the broadcast; the data-availability experiments
// (paper §5.1) rely on that property to generate failing queries.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config describes a synthetic database.
type Config struct {
	// NumRecords is the number of records to generate.
	NumRecords int
	// RecordSize is the full record payload in bytes, including the key
	// field (paper default: 500).
	RecordSize int
	// KeySize is the encoded key width in bytes (paper default: 25).
	KeySize int
	// NumAttributes is how many text attributes each record carries in
	// addition to the key. Signature indexing superimposes one hash per
	// attribute (paper §2.3), so this controls false-drop behaviour.
	NumAttributes int
	// Seed makes generation reproducible.
	Seed int64
}

// Default returns the paper's Table 1 settings with the given record count.
func Default(numRecords int) Config {
	return Config{
		NumRecords:    numRecords,
		RecordSize:    500,
		KeySize:       25,
		NumAttributes: 4,
		Seed:          1,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.NumRecords <= 0:
		return fmt.Errorf("datagen: NumRecords %d must be positive", c.NumRecords)
	case c.KeySize < 4:
		return fmt.Errorf("datagen: KeySize %d must be at least 4 bytes", c.KeySize)
	case c.RecordSize <= c.KeySize:
		return fmt.Errorf("datagen: RecordSize %d must exceed KeySize %d", c.RecordSize, c.KeySize)
	case c.NumAttributes < 1:
		return fmt.Errorf("datagen: NumAttributes %d must be at least 1", c.NumAttributes)
	}
	return nil
}

// Record is one broadcast data item: a primary key plus text attributes.
type Record struct {
	// Key is the primary key value. Records are sorted by Key and keys are
	// unique; lexicographic order of the encoded key equals numeric order.
	Key uint64
	// Attrs are the record's text attributes (word, definition, ...).
	Attrs []string
}

// Dataset is an immutable, key-sorted synthetic database.
type Dataset struct {
	cfg     Config
	records []Record
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	words := newWordGen(rng)
	records := make([]Record, cfg.NumRecords)
	attrBudget := cfg.RecordSize - cfg.KeySize
	key := uint64(1000 + rng.Intn(1000))
	for i := range records {
		attrs := make([]string, cfg.NumAttributes)
		per := attrBudget / cfg.NumAttributes
		for j := range attrs {
			n := per
			if j == cfg.NumAttributes-1 {
				n = attrBudget - per*(cfg.NumAttributes-1)
			}
			attrs[j] = words.text(n)
		}
		records[i] = Record{Key: key, Attrs: attrs}
		// Gap of at least 2 so key+1 is always a provably missing key.
		key += 2 + uint64(rng.Intn(3))
	}
	// The fixed-width base-36 key encoding must be able to hold every key
	// (narrow keys are legitimate — the record/key-ratio experiments use
	// them — but silent truncation would corrupt ordering).
	if cfg.KeySize < 13 {
		max := uint64(1)
		for i := 0; i < cfg.KeySize; i++ {
			max *= 36
		}
		if records[len(records)-1].Key >= max {
			return nil, fmt.Errorf("datagen: max key %d does not fit in %d base-36 digits",
				records[len(records)-1].Key, cfg.KeySize)
		}
	}
	return &Dataset{cfg: cfg, records: records}, nil
}

// Config returns the configuration the dataset was generated from.
func (d *Dataset) Config() Config { return d.cfg }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Record returns the i-th record in key order.
func (d *Dataset) Record(i int) Record { return d.records[i] }

// Records returns the full key-sorted record slice. Callers must not
// mutate it.
func (d *Dataset) Records() []Record { return d.records }

// KeyAt returns the key of the i-th record.
func (d *Dataset) KeyAt(i int) uint64 { return d.records[i].Key }

// MinKey and MaxKey bound the stored key range.
func (d *Dataset) MinKey() uint64 { return d.records[0].Key }

// MaxKey returns the largest stored key.
func (d *Dataset) MaxKey() uint64 { return d.records[len(d.records)-1].Key }

// Find returns the index of the record with the given key via binary
// search, or (-1, false) if the key is not stored.
func (d *Dataset) Find(key uint64) (int, bool) {
	lo, hi := 0, len(d.records)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.records[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.records) && d.records[lo].Key == key {
		return lo, true
	}
	return -1, false
}

// MissingKeyNear returns a key value that is guaranteed absent from the
// dataset and falls just after the i-th stored key. The generator's
// minimum inter-key gap of 2 makes key+1 always safe.
func (d *Dataset) MissingKeyNear(i int) uint64 {
	return d.records[i].Key + 1
}

// EncodeKey writes a key in the dataset's fixed-width wire form: a
// zero-padded 20-digit decimal (so byte order equals numeric order) padded
// to KeySize with deterministic lowercase filler. The fixed width is what
// gives the record/key-ratio experiments their meaning: a bigger KeySize is
// pure per-entry overhead.
func (d *Dataset) EncodeKey(key uint64) []byte {
	return EncodeKeyWidth(key, d.cfg.KeySize)
}

// EncodeKeyWidth is EncodeKey for an explicit width (at least 8 bytes).
func EncodeKeyWidth(key uint64, width int) []byte {
	buf := make([]byte, width)
	// Base-36 digits from the least significant end keep the encoding
	// compact enough for any uint64 within 13 bytes; remaining leading
	// bytes are '0' padding so lexicographic order matches numeric order.
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	for i := range buf {
		buf[i] = '0'
	}
	k := key
	for i := width - 1; i >= 0 && k > 0; i-- {
		buf[i] = digits[k%36]
		k /= 36
	}
	return buf
}

// DecodeKey parses a key encoded by EncodeKeyWidth.
func DecodeKey(buf []byte) (uint64, error) {
	var k uint64
	for _, b := range buf {
		var v uint64
		switch {
		case b >= '0' && b <= '9':
			v = uint64(b - '0')
		case b >= 'a' && b <= 'z':
			v = uint64(b-'a') + 10
		default:
			return 0, fmt.Errorf("datagen: invalid key byte %q", b)
		}
		k = k*36 + v
	}
	return k, nil
}

// wordGen produces deterministic pseudo-English filler text.
type wordGen struct {
	rng *rand.Rand
}

var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "br", "cr", "dr", "st", "tr", "pl", "sh", "th"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	codas   = []string{"", "n", "r", "s", "t", "l", "m", "nd", "rt", "ck"}
	endings = []string{"", "ing", "ed", "ly", "ness", "tion"}
)

func newWordGen(rng *rand.Rand) *wordGen { return &wordGen{rng: rng} }

func (w *wordGen) word() string {
	var b strings.Builder
	syll := 1 + w.rng.Intn(3)
	for i := 0; i < syll; i++ {
		b.WriteString(onsets[w.rng.Intn(len(onsets))])
		b.WriteString(vowels[w.rng.Intn(len(vowels))])
		b.WriteString(codas[w.rng.Intn(len(codas))])
	}
	b.WriteString(endings[w.rng.Intn(len(endings))])
	return b.String()
}

// text returns exactly n bytes of space-separated pseudo-words.
func (w *wordGen) text(n int) string {
	if n <= 0 {
		return ""
	}
	var b strings.Builder
	for b.Len() < n {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w.word())
	}
	return b.String()[:n]
}
