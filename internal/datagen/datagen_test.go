package datagen

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	cfg := Default(1000)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		r := ds.Record(i)
		if len(r.Attrs) != cfg.NumAttributes {
			t.Fatalf("record %d has %d attrs, want %d", i, len(r.Attrs), cfg.NumAttributes)
		}
		total := cfg.KeySize
		for _, a := range r.Attrs {
			total += len(a)
		}
		if total != cfg.RecordSize {
			t.Fatalf("record %d payload %d bytes, want %d", i, total, cfg.RecordSize)
		}
	}
}

func TestKeysStrictlyIncreasingWithGap(t *testing.T) {
	ds, err := Generate(Default(5000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < ds.Len(); i++ {
		if ds.KeyAt(i) < ds.KeyAt(i-1)+2 {
			t.Fatalf("keys %d and %d too close: %d, %d", i-1, i, ds.KeyAt(i-1), ds.KeyAt(i))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(Default(500))
	b, _ := Generate(Default(500))
	for i := 0; i < a.Len(); i++ {
		if a.KeyAt(i) != b.KeyAt(i) || a.Record(i).Attrs[0] != b.Record(i).Attrs[0] {
			t.Fatal("same config produced different datasets")
		}
	}
	cfg := Default(500)
	cfg.Seed = 2
	c, _ := Generate(cfg)
	if a.KeyAt(0) == c.KeyAt(0) && a.KeyAt(100) == c.KeyAt(100) {
		t.Fatal("different seeds produced identical key streams")
	}
}

func TestFind(t *testing.T) {
	ds, err := Generate(Default(2000))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 999, 1998, 1999} {
		idx, ok := ds.Find(ds.KeyAt(i))
		if !ok || idx != i {
			t.Fatalf("Find(KeyAt(%d)) = %d, %v", i, idx, ok)
		}
	}
	for _, i := range []int{0, 500, 1999} {
		if _, ok := ds.Find(ds.MissingKeyNear(i)); ok {
			t.Fatalf("MissingKeyNear(%d) found in dataset", i)
		}
	}
	if _, ok := ds.Find(0); ok {
		t.Fatal("Find(0) should fail")
	}
	if _, ok := ds.Find(ds.MaxKey() + 100); ok {
		t.Fatal("Find beyond max should fail")
	}
}

func TestEncodeKeyOrderAndRoundTrip(t *testing.T) {
	ds, err := Generate(Default(300))
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for i := 0; i < ds.Len(); i++ {
		enc := ds.EncodeKey(ds.KeyAt(i))
		if len(enc) != 25 {
			t.Fatalf("encoded key width %d, want 25", len(enc))
		}
		if prev != nil && bytes.Compare(prev, enc) >= 0 {
			t.Fatalf("encoded key order broken at %d", i)
		}
		dec, err := DecodeKey(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec != ds.KeyAt(i) {
			t.Fatalf("round trip %d != %d", dec, ds.KeyAt(i))
		}
		prev = enc
	}
}

func TestQuickKeyEncodingOrder(t *testing.T) {
	f := func(a, b uint64, w uint8) bool {
		width := 13 + int(w)%12 // 13..24, wide enough for any uint64
		ea := EncodeKeyWidth(a, width)
		eb := EncodeKeyWidth(b, width)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(k uint64) bool {
		enc := EncodeKeyWidth(k, 16)
		dec, err := DecodeKey(enc)
		return err == nil && dec == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeKeyRejectsGarbage(t *testing.T) {
	if _, err := DecodeKey([]byte("ABC!")); err == nil {
		t.Fatal("DecodeKey accepted invalid bytes")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumRecords: 0, RecordSize: 500, KeySize: 25, NumAttributes: 1},
		{NumRecords: 10, RecordSize: 500, KeySize: 3, NumAttributes: 1},
		{NumRecords: 10, RecordSize: 20, KeySize: 25, NumAttributes: 1},
		{NumRecords: 10, RecordSize: 500, KeySize: 25, NumAttributes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate accepted invalid config %d", i)
		}
	}
	if err := Default(100).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRatioConfigs(t *testing.T) {
	// Record/key ratio sweep configurations (paper §5.2) must all generate.
	for _, ratio := range []int{5, 10, 20, 50, 100} {
		cfg := Default(200)
		cfg.KeySize = cfg.RecordSize / ratio
		if cfg.KeySize < 4 {
			cfg.KeySize = 4
		}
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("ratio %d: %v", ratio, err)
		}
		if got := len(ds.EncodeKey(ds.KeyAt(0))); got != cfg.KeySize {
			t.Fatalf("ratio %d: key width %d, want %d", ratio, got, cfg.KeySize)
		}
	}
}
