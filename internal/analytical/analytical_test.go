package analytical

import (
	"math"
	"testing"
)

func TestFlat(t *testing.T) {
	if FlatAccess(999) != 500 || FlatTuning(999) != 500 {
		t.Fatal("flat formulas wrong")
	}
	if FlatAccess(0) != 0.5 {
		t.Fatal("flat edge wrong")
	}
}

func TestDistIndexBucketsPaperExample(t *testing.T) {
	// Figure 1: n=3, k=4, r=2. Replicated occurrences: 3 (root) + 9
	// (a-nodes) = 12; non-replicated: 9 + 27 = 36. Total 48.
	p := TreeParams{Fanout: 3, Levels: 4, Replicated: 2, Records: 81}
	if got := DistIndexBuckets(p); math.Abs(got-48) > 1e-9 {
		t.Fatalf("DistIndexBuckets = %v, want 48", got)
	}
	if got := DistCycleBuckets(p); math.Abs(got-129) > 1e-9 {
		t.Fatalf("DistCycleBuckets = %v, want 129", got)
	}
}

func TestDistAccessComponents(t *testing.T) {
	p := TreeParams{Fanout: 3, Levels: 4, Replicated: 2, Records: 81}
	// Index segment average: (n^{k-r}-1)/(n-1) + (n^{r+1}-n)/(n^{r+1}-n^r)
	// = (9-1)/2 + (27-3)/(27-9) = 4 + 4/3.
	// Data segment average: 81/9 = 9.
	wantProbe := (4 + 4.0/3 + 9) / 2
	if got := DistInitialProbe(p); math.Abs(got-wantProbe) > 1e-9 {
		t.Fatalf("DistInitialProbe = %v, want %v", got, wantProbe)
	}
	wantAccess := 0.5 + wantProbe + 129.0/2
	if got := DistAccess(p); math.Abs(got-wantAccess) > 1e-9 {
		t.Fatalf("DistAccess = %v, want %v", got, wantAccess)
	}
	if got := DistTuning(p); got != 5.5 {
		t.Fatalf("DistTuning = %v, want 5.5", got)
	}
}

func TestDistAccessDecreasesThenIncreasesInR(t *testing.T) {
	// Replication trades probe time against cycle growth; the paper's
	// optimal r is interior for big trees.
	p := TreeParams{Fanout: 10, Levels: 5, Records: 100000}
	var costs []float64
	for r := 0; r < int(p.Levels); r++ {
		p.Replicated = r
		costs = append(costs, DistAccess(p))
	}
	best := 0
	for i, c := range costs {
		if c < costs[best] {
			best = i
		}
	}
	if best == 0 || best == len(costs)-1 {
		t.Fatalf("optimal r should be interior, costs %v", costs)
	}
}

func TestOneMFormulas(t *testing.T) {
	p := TreeParams{Fanout: 3, Levels: 4, Records: 81}
	if got := OneMTreeBuckets(p); math.Abs(got-40) > 1e-9 {
		t.Fatalf("OneMTreeBuckets = %v, want 40", got)
	}
	if got := OneMCycleBuckets(p, 2); math.Abs(got-161) > 1e-9 {
		t.Fatalf("OneMCycleBuckets = %v, want 161", got)
	}
	if got := OneMTuning(p); got != 6.5 {
		t.Fatalf("OneMTuning = %v, want 6.5", got)
	}
}

func TestOneMOptimalIsLocalMinimum(t *testing.T) {
	for _, p := range []TreeParams{
		{Fanout: 12, Levels: 4, Records: 17500},
		{Fanout: 3, Levels: 9, Records: 35000},
		{Fanout: 26, Levels: 3, Records: 7000},
	} {
		m := OneMOptimal(p)
		if m < 1 {
			t.Fatalf("OneMOptimal = %d", m)
		}
		if m > 1 && OneMAccess(p, m-1) < OneMAccess(p, m) {
			t.Fatalf("m-1 beats claimed optimum %d for %+v", m, p)
		}
		if OneMAccess(p, m+1) < OneMAccess(p, m) {
			t.Fatalf("m+1 beats claimed optimum %d for %+v", m, p)
		}
	}
}

func TestHashingFormulas(t *testing.T) {
	// Nr=6000 at load factor 3: Na=2000, Nc=4000, N=6000.
	p := HashParams{Allocated: 2000, Colliding: 4000, Records: 6000}
	if p.CycleBuckets() != 6000 {
		t.Fatal("N wrong")
	}
	// At = 0.5 + 3000 + 2000 + 2/3 + 1.
	want := 0.5 + 3000 + 2000 + 2.0/3 + 1
	if got := HashingAccess(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HashingAccess = %v, want %v", got, want)
	}
	// Tt = 0.5 + (4000+3000)/10000 + 2/3 + 3 — a handful of buckets.
	tt := HashingTuning(p)
	if tt < 4 || tt > 5.5 {
		t.Fatalf("HashingTuning = %v, want ~4-5 buckets", tt)
	}
}

func TestHashingNoCollisions(t *testing.T) {
	p := HashParams{Allocated: 1000, Colliding: 0, Records: 1000}
	// With no collisions access is about half the cycle plus constants.
	if got := HashingAccess(p); math.Abs(got-(0.5+500+0+0+1)) > 1e-9 {
		t.Fatalf("HashingAccess = %v", got)
	}
	if got := HashingTuning(p); got != 4 {
		t.Fatalf("HashingTuning = %v, want 4", got)
	}
}

func TestHashingTuningFlatInRecords(t *testing.T) {
	// With a fixed load factor the tuning time is independent of Nr —
	// the flat line of Figure 4(b).
	tt := func(nr float64) float64 {
		return HashingTuning(HashParams{Allocated: nr / 3, Colliding: nr * 2 / 3, Records: nr})
	}
	if math.Abs(tt(7000)-tt(34000)) > 1e-9 {
		t.Fatal("hashing tuning should not depend on record count at fixed load")
	}
}

func TestSignatureFormulas(t *testing.T) {
	// Dt=505, It=21, Nr=999.
	if got := SignatureAccess(999, 505, 21); got != (505.0+21)*500 {
		t.Fatalf("SignatureAccess = %v", got)
	}
	want := 500*21.0 + (3+0.5)*505
	if got := SignatureTuning(999, 505, 21, 3); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SignatureTuning = %v, want %v", got, want)
	}
}

func TestFalseDropProbBehaviour(t *testing.T) {
	// Longer signatures mean fewer false drops.
	p8 := SignatureFalseDropProb(8, 8, 5)
	p32 := SignatureFalseDropProb(32, 8, 5)
	if p32 >= p8 {
		t.Fatalf("false drop prob should fall with length: %v vs %v", p8, p32)
	}
	if p8 <= 0 || p8 >= 1 {
		t.Fatalf("prob out of range: %v", p8)
	}
	// More superimposed fields mean more false drops.
	few := SignatureFalseDropProb(16, 8, 2)
	many := SignatureFalseDropProb(16, 8, 10)
	if many <= few {
		t.Fatalf("false drop prob should rise with fields: %v vs %v", few, many)
	}
	// Expected drops scale with Nr.
	a := SignatureExpectedFalseDrops(1000, 4, 8, 5)
	b := SignatureExpectedFalseDrops(2000, 4, 8, 5)
	if math.Abs(b-2*a) > 1e-9 {
		t.Fatal("expected false drops should be linear in Nr")
	}
}

func TestOrderingMatchesFigure4(t *testing.T) {
	// At the paper's default geometry the analytical models must reproduce
	// Figure 4's qualitative ordering.
	nr := 20000
	dataBytes := 505.0
	flatA := FlatAccess(nr) * dataBytes
	sigA := SignatureAccess(nr, 505, 21)
	tp := TreeParams{Fanout: 12, Levels: 4, Replicated: 2, Records: nr}
	distA := DistAccess(tp) * 513
	hp := HashParams{Allocated: float64(nr) / 3, Colliding: float64(nr) * 2 / 3, Records: float64(nr)}
	hashA := HashingAccess(hp) * 518
	if !(flatA < sigA && sigA < distA && distA < hashA) {
		t.Fatalf("access ordering broken: flat=%v sig=%v dist=%v hash=%v", flatA, sigA, distA, hashA)
	}
	// Tuning: hashing < distributed < signature < flat.
	hashT := HashingTuning(hp) * 518
	distT := DistTuning(tp) * 513
	sigT := SignatureTuning(nr, 505, 21, SignatureExpectedFalseDrops(nr, 16, 8, 5)) // 16-byte sigs
	flatT := FlatTuning(nr) * dataBytes
	if !(hashT < distT && distT < sigT && sigT < flatT) {
		t.Fatalf("tuning ordering broken: hash=%v dist=%v sig=%v flat=%v", hashT, distT, sigT, flatT)
	}
}
