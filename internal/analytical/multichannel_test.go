package analytical

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWrapWait(t *testing.T) {
	// Distance within one cycle: plain uniform wait D/2.
	if got := WrapWait(10, 40); !approx(got, 5) {
		t.Fatalf("WrapWait(10,40) = %v, want 5", got)
	}
	if got := WrapWait(40, 40); !approx(got, 20) {
		t.Fatalf("WrapWait(40,40) = %v, want 20", got)
	}
	// Distance spanning whole cycles exactly: wait uniform over one cycle.
	if got := WrapWait(80, 40); !approx(got, 20) {
		t.Fatalf("WrapWait(80,40) = %v, want 20", got)
	}
	// Mixed: 1 whole cycle of 40 plus a remainder of 20 over D=60:
	// (40*40/2 + 20*20/2)/60 = 1000/60.
	if got := WrapWait(60, 40); !approx(got, 1000.0/60) {
		t.Fatalf("WrapWait(60,40) = %v, want %v", got, 1000.0/60)
	}
	if WrapWait(0, 40) != 0 || WrapWait(10, 0) != 0 {
		t.Fatal("degenerate WrapWait not zero")
	}
	// Never more than half a cycle, never more than half the distance.
	for d := 1.0; d < 200; d += 7 {
		for p := 1.0; p < 100; p += 13 {
			w := WrapWait(d, p)
			if w > p/2+1e-9 || w > d/2+1e-9 || w < 0 {
				t.Fatalf("WrapWait(%v,%v) = %v outside [0, min(d,p)/2]", d, p, w)
			}
		}
	}
}

// TestKFormsReduceToSingleChannel: every K-channel form at K=1 is exactly
// the paper's single-channel expression.
func TestKFormsReduceToSingleChannel(t *testing.T) {
	tp := TreeParams{Fanout: 64, Levels: LevelsFor(64, 20000), Replicated: 2, Records: 20000}
	hp := HashParams{Allocated: 20000, Colliding: 5000, Records: 20000}
	if got, want := FlatAccessK(20000, 1), FlatAccess(20000); !approx(got, want) {
		t.Fatalf("FlatAccessK(.,1) = %v, want %v", got, want)
	}
	if got, want := SignatureAccessK(20000, 512, 64, 1), SignatureAccess(20000, 512, 64); !approx(got, want) {
		t.Fatalf("SignatureAccessK(.,1) = %v, want %v", got, want)
	}
	if got, want := OneMAccessK(tp, 4, 1), OneMAccess(tp, 4); !approx(got, want) {
		t.Fatalf("OneMAccessK(.,1) = %v, want %v", got, want)
	}
	if got, want := DistAccessK(tp, 15, 1), DistAccess(tp); !approx(got, want) {
		t.Fatalf("DistAccessK(.,1) = %v, want %v", got, want)
	}
	if got, want := HashingAccessK(hp, 1), HashingAccess(hp); !approx(got, want) {
		t.Fatalf("HashingAccessK(.,1) = %v, want %v", got, want)
	}
	if got, want := OneMTuningK(tp), OneMTuning(tp); !approx(got, want) {
		t.Fatalf("OneMTuningK = %v, want %v", got, want)
	}
	if got, want := DistTuningK(tp), DistTuning(tp); !approx(got, want) {
		t.Fatalf("DistTuningK = %v, want %v", got, want)
	}
}

// TestKFormsMonotone: for the dozing schemes, access time strictly
// improves with more replicated channels and approaches the fixed probe
// floor; the serial schemes are K-invariant.
func TestKFormsMonotone(t *testing.T) {
	tp := TreeParams{Fanout: 64, Levels: LevelsFor(64, 20000), Replicated: 2, Records: 20000}
	hp := HashParams{Allocated: 20000, Colliding: 5000, Records: 20000}
	for k := 2; k <= 8; k++ {
		if !(OneMAccessK(tp, 4, k) < OneMAccessK(tp, 4, k-1)) {
			t.Fatalf("OneMAccessK not decreasing at K=%d", k)
		}
		if !(DistAccessK(tp, 15, k) < DistAccessK(tp, 15, k-1)) {
			t.Fatalf("DistAccessK not decreasing at K=%d", k)
		}
		if !(HashingAccessK(hp, k) < HashingAccessK(hp, k-1)) {
			t.Fatalf("HashingAccessK not decreasing at K=%d", k)
		}
		if FlatAccessK(20000, k) != FlatAccessK(20000, 1) {
			t.Fatalf("FlatAccessK varies with K")
		}
	}
	if OneMAccessK(tp, 4, 1000) < tp.Levels+1 {
		t.Fatal("OneMAccessK fell below its fixed probe floor")
	}
}

// TestIndexDataFormsImproveDataWait: striping data over more channels
// shrinks the index/data access time.
func TestIndexDataFormsImproveDataWait(t *testing.T) {
	tp := TreeParams{Fanout: 64, Levels: LevelsFor(64, 20000), Replicated: 2, Records: 20000}
	for dc := 2; dc <= 7; dc++ {
		if !(OneMIndexDataAccess(tp, dc) < OneMIndexDataAccess(tp, dc-1)) {
			t.Fatalf("OneMIndexDataAccess not decreasing at %d data channels", dc)
		}
		if !(DistIndexDataAccess(tp, 15, dc) < DistIndexDataAccess(tp, 15, dc-1)) {
			t.Fatalf("DistIndexDataAccess not decreasing at %d data channels", dc)
		}
	}
}
