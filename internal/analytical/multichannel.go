package analytical

import "math"

// K-channel extensions of the paper's closed forms. The paper evaluates a
// single broadcast channel; these models extend §2's expressions to the
// multichannel subsystem's allocation policies (DESIGN.md §8).
//
// Replicated allocation broadcasts the full cycle on every channel with
// phases staggered by 1/K of the cycle, so a specific bucket recurs every
// N/K buckets. A doze toward a target at residual distance d therefore
// waits d mod N/K: waits that span many stagger intervals shrink by K,
// while short hops (descending an index tree, chasing a hash chain) and
// the bucket reads themselves are unchanged — which is why tuning time is
// K-invariant and why the serial schemes (flat, the signature family)
// gain nothing. The forms below restate each scheme's access time with
// exactly that split, as deltas on the paper's single-channel expression
// so each reduces to it at K=1.
//
// Index/data allocation dedicates channels to the scheme's index-like
// buckets and stripes the data buckets over the rest, generalizing (1,m)
// to physical channels: the index cycle shrinks to the index bytes alone
// and the data wait to the stripe's half-cycle. All forms keep the
// paper's full-tree idealization and are validated against the
// simulation at the same 20% tolerance as the single-channel curves.

// WrapWait returns the expected wait, in buckets, for a target at a
// uniform residual distance in [0, D) buckets on a schedule that repeats
// the target every P buckets: E[d mod P] for d ~ U(0, D). It reduces to
// D/2 when the distance fits inside one repetition (P >= D) and decays
// toward P/2 as the distance spans many.
func WrapWait(d, p float64) float64 {
	if d <= 0 || p <= 0 {
		return 0
	}
	q := math.Floor(d / p)
	r := d - q*p
	return (q*p*p/2 + r*r/2) / d
}

// FlatAccessK returns flat-broadcast access time in Dt units on a
// K-channel replicated allocation. The flat client scans serially and
// never dozes, so replication leaves it unchanged.
func FlatAccessK(nr, k int) float64 { return FlatAccess(nr) }

// SignatureAccessK returns simple-signature access time in bytes on a
// K-channel replicated allocation; like flat, the signature scan is
// serial and gains nothing from staggered replicas.
func SignatureAccessK(nr int, dataBytes, sigBytes float64, k int) float64 {
	return SignatureAccess(nr, dataBytes, sigBytes)
}

// OneMAccessK returns (1,m)-indexing access time in Dt units on a
// K-channel replicated allocation. The wait to the next tree copy (the
// client aims at one specific copy) and the broadcast wait both wrap to
// the stagger interval N/K; the in-copy descent, absorbed by the
// single-channel broadcast wait, emerges un-shrunk as about half a tree
// copy.
func OneMAccessK(p TreeParams, m, k int) float64 {
	t := OneMTreeBuckets(p)
	n := OneMCycleBuckets(p, m)
	seg := n / float64(m)
	stagger := n / float64(k)
	return OneMAccess(p, m) - seg/2 - n/2 +
		WrapWait(seg, stagger) + WrapWait(n, stagger) +
		t / 2 * (1 - 1/float64(k))
}

// DistAccessK returns distributed-indexing access time in Dt units on a
// K-channel replicated allocation: the broadcast wait wraps to the
// stagger interval, while the within-segment work (index descent and the
// leaf-to-record wait, absorbed by the single-channel N/2) stays fixed at
// about half an index-plus-data segment plus half a data segment.
// segments is the actual per-cycle segment count (n^r under the paper's
// full-tree idealization, passed explicitly because real trees have far
// fewer level-r nodes); pass 0 to use the idealization.
func DistAccessK(p TreeParams, segments, k int) float64 {
	n := DistCycleBuckets(p)
	s := float64(segments)
	if segments <= 0 {
		s = math.Pow(float64(p.Fanout), float64(p.Replicated))
	}
	return DistAccess(p) - n/2 + WrapWait(n, n/float64(k)) +
		(n+float64(p.Records))/(2*s)*(1-1/float64(k))
}

// HashingAccessK returns simple-hashing access time in Dt units on a
// K-channel replicated allocation. The seek phase hits the hash position
// with one doze half the time and misses with two (cycle start, then the
// position) the other half; on staggered channels each doze waits about
// half a stagger interval, giving 3N/(4K) in place of the single-channel
// Ht = N/2. The collision chase wraps its up-to-Nc shift to the stagger
// interval. The half-interval approximation needs K >= 2; K=1 is the
// paper's exact form.
func HashingAccessK(p HashParams, k int) float64 {
	if k <= 1 {
		return HashingAccess(p)
	}
	n := p.CycleBuckets()
	return 0.5 + 3*n/(4*float64(k)) + WrapWait(p.Colliding, n/float64(k)) +
		p.Colliding/p.Records + 1
}

// OneMIndexDataAccess returns (1,m)-indexing access time in Dt units on
// an index/data allocation with dataChannels data stripes. The dedicated
// index channel carries the tree copies back to back, so the receiver
// reaches the nearest copy's root in T/2 and descends within it (~T/2
// more); the target data bucket then waits half its stripe's cycle of
// Nr/dataChannels buckets, after k+1 probe reads.
func OneMIndexDataAccess(p TreeParams, dataChannels int) float64 {
	t := OneMTreeBuckets(p)
	stripe := float64(p.Records) / float64(dataChannels)
	return 0.5 + t + p.Levels + 1 + stripe/2
}

// DistIndexDataAccess returns distributed-indexing access time in Dt
// units on an index/data allocation. The index channel carries the Ci
// index occurrences with an entry point every Ci/segments buckets; the
// descent to the target segment's path crosses about half the index
// cycle, and the data wait is the stripe's half-cycle. segments as in
// DistAccessK.
func DistIndexDataAccess(p TreeParams, segments, dataChannels int) float64 {
	ci := DistIndexBuckets(p)
	s := float64(segments)
	if segments <= 0 {
		s = math.Pow(float64(p.Fanout), float64(p.Replicated))
	}
	stripe := float64(p.Records) / float64(dataChannels)
	return 0.5 + ci/(2*s) + ci/2 + p.Levels + 1 + stripe/2
}

// OneMTuningK returns the K-channel (1,m) tuning time: channel
// allocation changes where buckets are, not how many the selective probe
// reads, so tuning is the single-channel value under every policy.
func OneMTuningK(p TreeParams) float64 { return OneMTuning(p) }

// DistTuningK returns distributed-indexing tuning time on K channels.
func DistTuningK(p TreeParams) float64 { return DistTuning(p) }
