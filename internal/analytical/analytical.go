// Package analytical implements the paper's closed-form access-time and
// tuning-time models (§2) for every evaluated scheme. The experiment
// harness overlays these curves on the simulation results exactly as the
// paper's figures plot "(A)" analytical against "(S)" simulated series.
//
// Results are expressed in Dt units — the broadcast time of one bucket —
// except for signature indexing, whose two bucket sizes (Dt for data, It
// for signatures) appear explicitly, and are converted to bytes by the
// caller using the scheme's real bucket sizes. The formulas assume full
// index trees (n^k ~= Nr), as the paper's do; the simulation uses real
// trees, which is the source of the small constant offsets discussed in
// EXPERIMENTS.md.
package analytical

import "math"

// Flat broadcast (§4.2): no index, expected access and tuning are both
// about half the broadcast cycle of Nr data buckets.

// FlatAccess returns flat-broadcast access time in Dt units.
func FlatAccess(nr int) float64 { return (float64(nr) + 1) / 2 }

// FlatTuning returns flat-broadcast tuning time in Dt units.
func FlatTuning(nr int) float64 { return (float64(nr) + 1) / 2 }

// TreeParams carries the B+-tree geometry shared by the paper's index-tree
// formulas.
type TreeParams struct {
	// Fanout is n, indices per bucket.
	Fanout int
	// Levels is k, the number of index-tree levels. The paper treats k =
	// log_n(Nr) as a real number (a full-tree idealization: n^k == Nr);
	// LevelsFor computes it. Integer tree depths from a real build also
	// work but overestimate n^k badly for partially filled trees.
	Levels float64
	// Replicated is r, the number of replicated levels (distributed
	// indexing only).
	Replicated int
	// Records is Nr.
	Records int
}

// DistIndexBuckets returns the paper's count of index buckets per cycle
// for distributed indexing: n*(n^r - 1)/(n-1) replicated occurrences plus
// (n^k - n^r)/(n-1) non-replicated buckets.
func DistIndexBuckets(p TreeParams) float64 {
	n := float64(p.Fanout)
	r := float64(p.Replicated)
	return (math.Pow(n, r+1) + math.Pow(n, p.Levels) - math.Pow(n, r) - n) / (n - 1)
}

// DistCycleBuckets returns N, the total buckets per distributed-indexing
// cycle.
func DistCycleBuckets(p TreeParams) float64 {
	return DistIndexBuckets(p) + float64(p.Records)
}

// DistInitialProbe returns Pt, the expected time to reach the first index
// segment, in Dt units (§2.1): half the average index-plus-data segment
// pair length.
func DistInitialProbe(p TreeParams) float64 {
	n := float64(p.Fanout)
	r := float64(p.Replicated)
	k := p.Levels
	nr := float64(p.Records)
	idxSeg := (math.Pow(n, k-r)-1)/(n-1) + (math.Pow(n, r+1)-n)/(math.Pow(n, r+1)-math.Pow(n, r))
	dataSeg := nr / math.Pow(n, r)
	return (idxSeg + dataSeg) / 2
}

// DistAccess returns distributed-indexing access time in Dt units:
// At = Ft + Pt + Wt (§2.1).
func DistAccess(p TreeParams) float64 {
	return 0.5 + DistInitialProbe(p) + DistCycleBuckets(p)/2
}

// DistTuning returns distributed-indexing tuning time in Dt units, the
// paper's Tt = (k + 3/2)·Dt.
func DistTuning(p TreeParams) float64 { return p.Levels + 1.5 }

// OneMTreeBuckets returns the bucket count of one full index-tree copy,
// (n^k - 1)/(n - 1), assuming a full tree.
func OneMTreeBuckets(p TreeParams) float64 {
	n := float64(p.Fanout)
	return (math.Pow(n, p.Levels) - 1) / (n - 1)
}

// OneMCycleBuckets returns N for (1,m) indexing with m tree copies.
func OneMCycleBuckets(p TreeParams, m int) float64 {
	return float64(p.Records) + float64(m)*OneMTreeBuckets(p)
}

// OneMAccess returns (1,m)-indexing access time in Dt units: initial wait,
// half an index-plus-data segment period to reach the next tree copy, and
// half the cycle.
func OneMAccess(p TreeParams, m int) float64 {
	t := OneMTreeBuckets(p)
	probe := (float64(p.Records)/float64(m) + t) / 2
	return 0.5 + probe + OneMCycleBuckets(p, m)/2
}

// OneMTuning returns (1,m)-indexing tuning time in Dt units: initial wait,
// the first probed bucket, k index levels, and the data bucket.
func OneMTuning(p TreeParams) float64 { return p.Levels + 2.5 }

// OneMOptimal returns the access-optimal m for the paper's model,
// sqrt(Nr / treeBuckets) rounded to the better neighbour.
func OneMOptimal(p TreeParams) int {
	t := OneMTreeBuckets(p)
	if t <= 0 {
		return 1
	}
	mf := math.Sqrt(float64(p.Records) / t)
	lo := int(math.Floor(mf))
	if lo < 1 {
		lo = 1
	}
	if OneMAccess(p, lo) <= OneMAccess(p, lo+1) {
		return lo
	}
	return lo + 1
}

// HashParams carries the simple-hashing geometry.
type HashParams struct {
	// Allocated is Na, the initially allocated buckets.
	Allocated float64
	// Colliding is Nc, the colliding (shifted) buckets.
	Colliding float64
	// Records is Nr.
	Records float64
}

// CycleBuckets returns N = Na + Nc.
func (p HashParams) CycleBuckets() float64 { return p.Allocated + p.Colliding }

// HashingAccess returns simple-hashing access time in Dt units (§2.2):
// Ft + Ht + St + Ct + Dt with Ht = N/2, St = Nc/2, Ct = Nc/Nr.
func HashingAccess(p HashParams) float64 {
	n := p.CycleBuckets()
	return 0.5 + n/2 + p.Colliding/2 + p.Colliding/p.Records + 1
}

// HashingTuning returns simple-hashing tuning time in Dt units (§2.2).
func HashingTuning(p HashParams) float64 {
	extra := (p.Colliding + p.Records/2) / (p.Colliding + p.Records)
	return 0.5 + extra + p.Colliding/p.Records + 3
}

// LevelsFor returns the paper's real-valued tree depth k = log_n(Nr).
func LevelsFor(fanout, records int) float64 {
	return math.Log(float64(records)) / math.Log(float64(fanout))
}

// SignatureAccess returns simple-signature access time in BYTES given the
// real data and signature bucket byte sizes (§2.3):
// At = (Dt + It)(Nr + 1)/2.
func SignatureAccess(nr int, dataBytes, sigBytes float64) float64 {
	return (dataBytes + sigBytes) * (float64(nr) + 1) / 2
}

// SignatureTuning returns simple-signature tuning time in BYTES:
// Tt = (Nr + 1)/2 · It + (Fd + 1/2) · Dt, with Fd the expected number of
// false drops per query.
func SignatureTuning(nr int, dataBytes, sigBytes, falseDrops float64) float64 {
	return (float64(nr)+1)/2*sigBytes + (falseDrops+0.5)*dataBytes
}

// SignatureFalseDropProb estimates the probability that one non-matching
// record signature covers a weight-w query signature, for L signature
// bytes, w bits per field and f fields superimposed per record: each query
// bit is covered independently with probability equal to the record
// signature's fill factor.
func SignatureFalseDropProb(sigBytes, bitsPerField, fields int) float64 {
	bits := float64(sigBytes * 8)
	// Expected fraction of bits set in a record signature after
	// superimposing fields*bitsPerField draws with replacement.
	fill := 1 - math.Pow(1-1/bits, float64(fields*bitsPerField))
	return math.Pow(fill, float64(bitsPerField))
}

// SignatureExpectedFalseDrops returns Fd for a query that scans about half
// the cycle before reaching its record.
func SignatureExpectedFalseDrops(nr, sigBytes, bitsPerField, fields int) float64 {
	return float64(nr) / 2 * SignatureFalseDropProb(sigBytes, bitsPerField, fields)
}
