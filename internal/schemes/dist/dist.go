// Package dist implements distributed indexing [6], the B+-tree scheme the
// paper analyzes in §2.1.
//
// The index tree is split at replication depth r: the top r levels are the
// replicated part, everything below is non-replicated. The broadcast cycle
// is a sequence of index segments and data segments, one pair per node at
// level r. A replicated node is broadcast once before the first segment of
// each of its children's subtrees (so it appears as many times as it has
// children); every non-replicated node is broadcast exactly once, in its
// subtree's segment. Each index bucket carries local indices (pointers to
// its children's next occurrences, or to data buckets at the leaf level)
// and control indices (pointers to the next occurrence of each ancestor),
// which let a client that tuned in anywhere steer to the right part of the
// tree without waiting for a full cycle.
package dist

import (
	"fmt"
	"sort"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/btree"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// Name is the scheme's registry name.
const Name = "distributed"

// Options configures distributed indexing.
type Options struct {
	// R is the number of replicated levels, in [0, k-1]. R < 0 selects the
	// access-time-optimal value, as the paper's simulations do ("we use the
	// optimal value of r as defined in [6]").
	R int
}

// DefaultOptions selects the optimal replication depth.
func DefaultOptions() Options { return Options{R: -1} }

// Broadcast is a distributed-indexing broadcast cycle.
type Broadcast struct {
	ds     *datagen.Dataset
	ch     *channel.Channel
	tree   *btree.Tree
	layout treeidx.Layout
	r      int

	nodeOf    []*btree.Node // per bucket; nil for data buckets
	recOf     []int         // per bucket; -1 for index buckets
	nextSeg   []int         // per bucket: first bucket of the next index segment
	segStarts []int         // bucket index of each index segment's first bucket
	instances map[*btree.Node][]int
	dataIdx   []int // record index -> data bucket index
}

// Build constructs the distributed-indexing broadcast for a dataset.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	layout, tree, err := treeidx.Compute(ds)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	r := opts.R
	if r < 0 {
		r = OptimalR(tree, ds.Len())
	}
	if r > tree.Levels-1 {
		return nil, fmt.Errorf("dist: replication depth %d out of range [0,%d]", r, tree.Levels-1)
	}

	b := &Broadcast{
		ds:        ds,
		tree:      tree,
		layout:    layout,
		r:         r,
		instances: make(map[*btree.Node][]int),
		dataIdx:   make([]int, ds.Len()),
	}
	info := &treeidx.CycleInfo{BucketSize: layout.BucketSize}

	segRoots := tree.ByLevel[r]
	var buckets []channel.Bucket
	var idxBuckets []*treeidx.IndexBucket
	var dataBuckets []*treeidx.DataBucket
	lastKey := treeidx.NoKey

	addIndex := func(n *btree.Node) {
		ib := &treeidx.IndexBucket{
			Seq:     len(buckets),
			Node:    n,
			LastKey: lastKey,
			Layout:  layout,
			Info:    info,
			DS:      ds,
		}
		b.instances[n] = append(b.instances[n], ib.Seq)
		idxBuckets = append(idxBuckets, ib)
		buckets = append(buckets, ib)
		b.nodeOf = append(b.nodeOf, n)
		b.recOf = append(b.recOf, -1)
	}

	for _, v := range segRoots {
		b.segStarts = append(b.segStarts, len(buckets))
		// Replicated prefix: ancestor at level j appears here iff this
		// segment is the first within its path child's subtree, i.e. the
		// segment root is the leftmost level-r node under that child.
		anc := btree.Ancestors(v) // root .. parent(v)
		path := append(anc, v)    // path[j] is the level-j ancestor
		for j := 0; j < r; j++ {
			if path[j+1].DataFrom == v.DataFrom {
				addIndex(path[j])
			}
		}
		// Non-replicated part: the segment subtree in preorder.
		for _, n := range btree.Subtree(v) {
			addIndex(n)
		}
		// The data segment.
		for rec := v.DataFrom; rec < v.DataTo; rec++ {
			db := &treeidx.DataBucket{
				Seq:    len(buckets),
				RecIdx: rec,
				Layout: layout,
				Info:   info,
				DS:     ds,
			}
			b.dataIdx[rec] = len(buckets)
			dataBuckets = append(dataBuckets, db)
			buckets = append(buckets, db)
			b.nodeOf = append(b.nodeOf, nil)
			b.recOf = append(b.recOf, rec)
			lastKey = ds.KeyAt(rec)
		}
	}
	info.NumBuckets = len(buckets)

	// Resolve per-bucket next-index-segment pointers.
	b.nextSeg = make([]int, len(buckets))
	for i := range buckets {
		b.nextSeg[i] = b.segAfter(i)
	}
	// Resolve per-instance control and local pointers.
	for _, ib := range idxBuckets {
		n := ib.Node
		ib.NextSeg = b.nextSeg[ib.Seq]
		for l := 0; l < n.Level; l++ {
			ib.Ctrl = append(ib.Ctrl, b.nextInstance(ancestorAt(n, l), ib.Seq))
		}
		if n.IsLeaf() {
			for e := 0; e < len(n.Keys); e++ {
				ib.Local = append(ib.Local, b.dataIdx[n.DataFrom+e])
			}
		} else {
			for _, c := range n.Children {
				ib.Local = append(ib.Local, b.nextInstance(c, ib.Seq))
			}
		}
	}
	for _, db := range dataBuckets {
		db.NextSeg = b.nextSeg[db.Seq]
	}

	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	b.ch = ch
	return b, nil
}

// segAfter returns the first bucket of the first index segment that starts
// strictly after bucket i (wrapping to segment 0).
func (b *Broadcast) segAfter(i int) int {
	j := sort.SearchInts(b.segStarts, i+1)
	if j == len(b.segStarts) {
		return b.segStarts[0]
	}
	return b.segStarts[j]
}

// nextInstance returns the bucket index of node n's first occurrence
// strictly after bucket pos, wrapping to its first occurrence.
func (b *Broadcast) nextInstance(n *btree.Node, pos int) int {
	inst := b.instances[n]
	j := sort.SearchInts(inst, pos+1)
	if j == len(inst) {
		return inst[0]
	}
	return inst[j]
}

// ancestorAt returns n's ancestor at the given level.
func ancestorAt(n *btree.Node, level int) *btree.Node {
	a := n
	for a.Level > level {
		a = a.Parent
	}
	return a
}

// OptimalR returns the replication depth minimizing the expected access
// time, evaluated from the tree's exact per-level node counts.
func OptimalR(tree *btree.Tree, nr int) int {
	best, bestCost := 0, 0.0
	for r := 0; r <= tree.Levels-1; r++ {
		cost := expectedAccessBuckets(tree, nr, r)
		if r == 0 || cost < bestCost {
			best, bestCost = r, cost
		}
	}
	return best
}

// expectedAccessBuckets estimates access time in bucket units for
// replication depth r: initial wait, average probe to the next index
// segment, and half the cycle.
func expectedAccessBuckets(tree *btree.Tree, nr, r int) float64 {
	idx := 0
	for l := 1; l <= r; l++ {
		idx += len(tree.ByLevel[l]) // replicated occurrences
	}
	for l := r; l < tree.Levels; l++ {
		idx += len(tree.ByLevel[l]) // non-replicated, once each
	}
	segs := len(tree.ByLevel[r])
	cycle := float64(idx + nr)
	probe := (float64(idx) + float64(nr)) / float64(segs) / 2
	return 0.5 + probe + cycle/2
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":     float64(b.ds.Len()),
		"cycle_bytes": float64(b.ch.CycleLen()),
		"r":           float64(b.r),
		"fanout":      float64(b.layout.Fanout),
		"levels":      float64(b.layout.Levels),
		"segments":    float64(len(b.segStarts)),
		"bucket_size": float64(b.layout.BucketSize),
	}
}

// R returns the replication depth in use.
func (b *Broadcast) R() int { return b.r }

// Tree exposes the index tree for tests.
func (b *Broadcast) Tree() *btree.Tree { return b.tree }

// Layout exposes the bucket layout for tests.
func (b *Broadcast) Layout() treeidx.Layout { return b.layout }

// Instances exposes a node's occurrence positions for tests.
func (b *Broadcast) Instances(n *btree.Node) []int { return b.instances[n] }

// SegmentStarts exposes the index segment start positions for tests.
func (b *Broadcast) SegmentStarts() []int { return b.segStarts }

// NewClient implements access.Broadcast.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{b: b, key: key}
}

type clientPhase uint8

const (
	phaseFirstProbe clientPhase = iota
	phaseNavigate
	phaseDownload
)

type client struct {
	b     *Broadcast
	key   uint64
	phase clientPhase
	// descended is set once the client has been routed downward by a
	// parent's local index. A routed node that does not cover the key
	// proves the key absent (the parent's separators made this node the
	// only possible home), whereas a segment-start or control-index target
	// that does not cover it merely means "steer elsewhere".
	descended bool
}

// Rewind implements access.Rewinder: after Rewind(k) the client is
// indistinguishable from NewClient(k).
func (c *client) Rewind(key uint64) {
	c.key = key
	c.phase = phaseFirstProbe
	c.descended = false
}

func (c *client) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	b := c.b
	switch c.phase {
	case phaseFirstProbe:
		c.phase = phaseNavigate
		nxt := units.Index(b.nextSeg[i])
		return access.DozeAt(nxt, b.ch.NextOccurrence(nxt, end))

	case phaseNavigate:
		node := b.nodeOf[i]
		if node == nil {
			panic("dist: navigation landed on a data bucket")
		}
		ib := b.ch.Bucket(i).(*treeidx.IndexBucket)
		if !node.Covers(b.tree.Keys, c.key) {
			if c.descended {
				// The parent's separators routed the key here; nowhere
				// else could hold it.
				return access.Done(false)
			}
			// Steer up one level via the control index (an on-air bucket
			// carries only its own separators, so a client can decide "not
			// under me" but not which ancestor covers the key — it climbs
			// until one does). The root covers every in-range key; a key
			// outside the root's range is not broadcast.
			if node.Parent == nil {
				return access.Done(false)
			}
			up := units.Index(ib.Ctrl[node.Level-1])
			return access.DozeAt(up, b.ch.NextOccurrence(up, end))
		}
		if node.IsLeaf() {
			e := node.EntryFor(c.key)
			if e < 0 {
				return access.Done(false)
			}
			c.phase = phaseDownload
			tgt := units.Index(ib.Local[e])
			return access.DozeAt(tgt, b.ch.NextOccurrence(tgt, end))
		}
		tgt := units.Index(ib.Local[node.ChildFor(c.key)])
		c.descended = true
		return access.DozeAt(tgt, b.ch.NextOccurrence(tgt, end))

	case phaseDownload:
		if b.recOf[i] < 0 || b.ds.KeyAt(b.recOf[i]) != c.key {
			panic("dist: downloaded the wrong bucket")
		}
		return access.Done(true)
	}
	panic("dist: invalid client phase")
}
