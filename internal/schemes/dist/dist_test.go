package dist

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n, r int) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds := dataset(t, n)
	b, err := Build(ds, Options{R: r})
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

// figure1Dataset produces the paper's Figure 1 shape: 81 records indexed by
// a fanout-3, 4-level tree (1 root, 3 a-nodes, 9 b-nodes, 27 c-nodes). The
// record/key geometry is chosen so the layout fixpoint lands on fanout 3.
func figure1Dataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	cfg := datagen.Config{NumRecords: 81, RecordSize: 100, KeySize: 8, NumAttributes: 1, Seed: 1}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFigure1TreeShape(t *testing.T) {
	ds := figure1Dataset(t)
	b, err := Build(ds, Options{R: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Tree()
	if tr.Fanout != 3 || tr.Levels != 4 {
		t.Fatalf("tree fanout/levels = %d/%d, want 3/4 (Figure 1)", tr.Fanout, tr.Levels)
	}
	want := []int{1, 3, 9, 27}
	for l, w := range want {
		if len(tr.ByLevel[l]) != w {
			t.Fatalf("level %d has %d nodes, want %d", l, len(tr.ByLevel[l]), w)
		}
	}
}

// TestFigure1ReplicationPattern pins the broadcast organization of the
// paper's worked example (§2.1): with r=2 the first index segment is
// I, a1, b1, c1, c2, c3 and the second is a1, b2, c4, c5, c6; the root is
// broadcast before the first segment of each a-subtree (segments 0, 3, 6)
// and each a-node before each of its b-children's segments.
func TestFigure1ReplicationPattern(t *testing.T) {
	ds := figure1Dataset(t)
	b, err := Build(ds, Options{R: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Tree()
	if len(b.SegmentStarts()) != 9 {
		t.Fatalf("segments = %d, want 9", len(b.SegmentStarts()))
	}

	// Segment 0: I, a1, b1, then b1's three leaf children.
	seg0 := b.SegmentStarts()[0]
	wantSeg0 := []interface{}{tr.Root, tr.ByLevel[1][0], tr.ByLevel[2][0],
		tr.ByLevel[3][0], tr.ByLevel[3][1], tr.ByLevel[3][2]}
	for off, wn := range wantSeg0 {
		if b.nodeOf[seg0+off] != wn {
			t.Fatalf("segment 0 position %d holds wrong node", off)
		}
	}
	// Segment 1: a1, b2, leaves c4..c6 — no root.
	seg1 := b.SegmentStarts()[1]
	wantSeg1 := []interface{}{tr.ByLevel[1][0], tr.ByLevel[2][1],
		tr.ByLevel[3][3], tr.ByLevel[3][4], tr.ByLevel[3][5]}
	for off, wn := range wantSeg1 {
		if b.nodeOf[seg1+off] != wn {
			t.Fatalf("segment 1 position %d holds wrong node", off)
		}
	}

	// Root occurrences: first bucket of segments 0, 3, 6.
	rootInst := b.Instances(tr.Root)
	if len(rootInst) != 3 {
		t.Fatalf("root broadcast %d times, want 3 (one per child)", len(rootInst))
	}
	for i, seg := range []int{0, 3, 6} {
		if rootInst[i] != b.SegmentStarts()[seg] {
			t.Fatalf("root occurrence %d at bucket %d, want segment %d start %d",
				i, rootInst[i], seg, b.SegmentStarts()[seg])
		}
	}
	// a2 appears in segments 3, 4, 5 (before each of b4, b5, b6).
	a2Inst := b.Instances(tr.ByLevel[1][1])
	if len(a2Inst) != 3 {
		t.Fatalf("a2 broadcast %d times, want 3", len(a2Inst))
	}
	// Non-replicated nodes appear exactly once.
	for _, n := range tr.ByLevel[2] {
		if len(b.Instances(n)) != 1 {
			t.Fatalf("level-2 node broadcast %d times, want 1", len(b.Instances(n)))
		}
	}
	for _, n := range tr.ByLevel[3] {
		if len(b.Instances(n)) != 1 {
			t.Fatalf("leaf node broadcast %d times, want 1", len(b.Instances(n)))
		}
	}

	// Total index buckets: replicated occurrences (3 + 9) + non-replicated
	// (9 + 27) = 48.
	if got := b.Channel().CountKind(wire.KindIndex); got != 48 {
		t.Fatalf("index buckets = %d, want 48", got)
	}
	if got := b.Channel().CountKind(wire.KindData); got != 81 {
		t.Fatalf("data buckets = %d, want 81", got)
	}
}

func TestFindsEveryKeyEveryR(t *testing.T) {
	ds := dataset(t, 400)
	for r := 0; r < 3; r++ {
		b, err := Build(ds, Options{R: r})
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		rng := sim.NewRNG(int64(100 + r))
		for i := 0; i < ds.Len(); i += 3 {
			arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
			res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
			if err != nil {
				t.Fatalf("r=%d key %d: %v", r, ds.KeyAt(i), err)
			}
			if !res.Found {
				t.Fatalf("r=%d: key %d not found", r, ds.KeyAt(i))
			}
		}
	}
}

func TestMissingKeysFail(t *testing.T) {
	ds, b := build(t, 400, -1)
	rng := sim.NewRNG(31)
	for i := 0; i < ds.Len(); i += 11 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("missing key near %d reported found", i)
		}
		// Absence is detected from index buckets alone, within a bounded
		// number of probes (first probe + up-jump + descent).
		if res.Probes > b.Tree().Levels+3 {
			t.Fatalf("missing key took %d probes", res.Probes)
		}
	}
}

func TestOutOfRangeKeysFailFromIndexAlone(t *testing.T) {
	ds, b := build(t, 200, -1)
	for _, key := range []uint64{0, ds.MaxKey() + 10} {
		res, err := access.Walk(b.Channel(), b.NewClient(key), 50, 0)
		if err != nil {
			t.Fatal(err)
		}
		// First probe, segment start, then at most a climb to the root:
		// never a data bucket.
		if res.Found || res.Probes > 2+b.R() {
			t.Fatalf("out-of-range key: found=%v probes=%d", res.Found, res.Probes)
		}
	}
}

func TestTuningBound(t *testing.T) {
	ds, b := build(t, 2000, -1)
	k := b.Tree().Levels
	rng := sim.NewRNG(37)
	for i := 0; i < 400; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(key), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		// 1 first probe + 1 segment start + <=1 up-jump + (k-1) descent +
		// 1 data download.
		if res.Probes > k+3 {
			t.Fatalf("present key took %d probes, want <= %d", res.Probes, k+3)
		}
	}
}

func TestReplicationReducesAccessVersusRZero(t *testing.T) {
	// r=0 broadcasts the tree once per cycle: long average wait for the
	// single index segment. The optimal r must beat it on mean access.
	ds := dataset(t, 3000)
	b0, err := Build(ds, Options{R: 0})
	if err != nil {
		t.Fatal(err)
	}
	bOpt, err := Build(ds, Options{R: -1})
	if err != nil {
		t.Fatal(err)
	}
	if bOpt.R() == 0 {
		t.Skip("optimal r is 0 for this configuration")
	}
	mean := func(b *Broadcast) float64 {
		rng := sim.NewRNG(77)
		var sum float64
		const n = 400
		for i := 0; i < n; i++ {
			key := ds.KeyAt(rng.Intn(ds.Len()))
			arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
			res, err := access.Walk(b.Channel(), b.NewClient(key), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Access)
		}
		return sum / n
	}
	if m0, mOpt := mean(b0), mean(bOpt); mOpt >= m0 {
		t.Fatalf("optimal r=%d mean access %.0f should beat r=0's %.0f", bOpt.R(), mOpt, m0)
	}
}

func TestSegmentStartsAreIndexBuckets(t *testing.T) {
	_, b := build(t, 1000, -1)
	for _, s := range b.SegmentStarts() {
		if b.nodeOf[s] == nil {
			t.Fatalf("segment start %d is a data bucket", s)
		}
	}
	// nextSeg of every bucket points at a segment start.
	starts := make(map[int]bool)
	for _, s := range b.SegmentStarts() {
		starts[s] = true
	}
	for i, ns := range b.nextSeg {
		if !starts[ns] {
			t.Fatalf("bucket %d nextSeg %d is not a segment start", i, ns)
		}
	}
}

func TestEncodeSizeAgreement(t *testing.T) {
	_, b := build(t, 300, -1)
	ch := b.Channel()
	for i := 0; i < int(ch.NumBuckets()); i++ {
		bk := ch.Bucket(units.Index(i))
		if units.Bytes(len(bk.Encode())) != bk.Size() || bk.Size() != b.Layout().BucketSize {
			t.Fatalf("bucket %d encode/size mismatch", i)
		}
	}
}

func TestInvalidR(t *testing.T) {
	ds := dataset(t, 200)
	if _, err := Build(ds, Options{R: 99}); err == nil {
		t.Fatal("huge r accepted")
	}
}

func TestAccessFromEveryArrivalBucket(t *testing.T) {
	ds, b := build(t, 150, -1)
	for p := 0; p < int(b.Channel().NumBuckets()); p += 2 {
		arrival := b.Channel().StartInCycle(units.Index(p)).At(1)
		for _, i := range []int{0, 75, 149} {
			res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
			if err != nil {
				t.Fatalf("arrival bucket %d key %d: %v", p, i, err)
			}
			if !res.Found {
				t.Fatalf("key %d not found from bucket %d", ds.KeyAt(i), p)
			}
			if res.Access > 3*b.Channel().CycleLen() {
				t.Fatalf("access %d exceeds 3 cycles from bucket %d", res.Access, p)
			}
		}
	}
}
