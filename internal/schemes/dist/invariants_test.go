package dist

import (
	"sort"
	"testing"

	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/units"
)

// nextInstanceAfter reproduces the expected "next occurrence strictly
// after pos, wrapping" rule from a node's sorted instance list.
func nextInstanceAfter(instances []int, pos int) int {
	i := sort.SearchInts(instances, pos+1)
	if i == len(instances) {
		return instances[0]
	}
	return instances[i]
}

// TestPointerGraphInvariants verifies, across several geometries, the
// wiring the client protocol relies on: every control pointer targets the
// next occurrence of the right ancestor, every local pointer the next
// occurrence of the right child (or the unique data bucket of the entry),
// and every next-segment pointer the first index segment strictly after
// the bucket.
func TestPointerGraphInvariants(t *testing.T) {
	for _, n := range []int{50, 333, 1200} {
		for _, r := range []int{-1, 0, 1} {
			ds, err := datagen.Generate(datagen.Default(n))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Build(ds, Options{R: r})
			if err != nil {
				t.Fatalf("n=%d r=%d: %v", n, r, err)
			}
			checkPointers(t, ds, b)
		}
	}
}

func checkPointers(t *testing.T, ds *datagen.Dataset, b *Broadcast) {
	t.Helper()
	ch := b.Channel()
	segSet := make(map[int]bool, len(b.segStarts))
	for _, s := range b.segStarts {
		segSet[s] = true
	}
	for i := 0; i < int(ch.NumBuckets()); i++ {
		// Next-segment pointers: a segment start strictly after i (or the
		// wrap to segment 0).
		ns := b.nextSeg[i]
		if !segSet[ns] {
			t.Fatalf("bucket %d nextSeg %d is not a segment start", i, ns)
		}
		wantNS := b.segStarts[0]
		for _, s := range b.segStarts {
			if s > i {
				wantNS = s
				break
			}
		}
		if ns != wantNS {
			t.Fatalf("bucket %d nextSeg %d, want %d", i, ns, wantNS)
		}

		ib, ok := ch.Bucket(units.Index(i)).(*treeidx.IndexBucket)
		if !ok {
			continue
		}
		node := ib.Node
		// Control pointers: one per ancestor level, each the next
		// occurrence of exactly that ancestor.
		if len(ib.Ctrl) != node.Level {
			t.Fatalf("bucket %d has %d ctrl pointers for level %d", i, len(ib.Ctrl), node.Level)
		}
		for l, target := range ib.Ctrl {
			anc := ancestorAt(node, l)
			if b.nodeOf[target] != anc {
				t.Fatalf("bucket %d ctrl[%d] -> bucket %d holds the wrong node", i, l, target)
			}
			if want := nextInstanceAfter(b.instances[anc], i); target != want {
				t.Fatalf("bucket %d ctrl[%d] = %d, want next occurrence %d", i, l, target, want)
			}
		}
		// Local pointers.
		if node.IsLeaf() {
			if len(ib.Local) != len(node.Keys) {
				t.Fatalf("leaf bucket %d has %d locals for %d entries", i, len(ib.Local), len(node.Keys))
			}
			for e, target := range ib.Local {
				if b.recOf[target] != node.DataFrom+e {
					t.Fatalf("leaf bucket %d entry %d points at record %d, want %d",
						i, e, b.recOf[target], node.DataFrom+e)
				}
			}
		} else {
			if len(ib.Local) != len(node.Children) {
				t.Fatalf("bucket %d has %d locals for %d children", i, len(ib.Local), len(node.Children))
			}
			for j, target := range ib.Local {
				child := node.Children[j]
				if b.nodeOf[target] != child {
					t.Fatalf("bucket %d local[%d] holds the wrong child", i, j)
				}
				if want := nextInstanceAfter(b.instances[child], i); target != want {
					t.Fatalf("bucket %d local[%d] = %d, want next occurrence %d", i, j, target, want)
				}
			}
		}
	}
}

// TestLastKeyFieldMonotone checks the "last broadcast key" bucket field:
// within one cycle it must equal the key of the most recent data bucket
// before the index bucket (NoKey before any data).
func TestLastKeyFieldMonotone(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(400))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ch := b.Channel()
	last := treeidx.NoKey
	for i := 0; i < int(ch.NumBuckets()); i++ {
		if ib, ok := ch.Bucket(units.Index(i)).(*treeidx.IndexBucket); ok {
			if ib.LastKey != last {
				t.Fatalf("bucket %d LastKey %d, want %d", i, ib.LastKey, last)
			}
			continue
		}
		last = ds.KeyAt(b.recOf[i])
	}
}

// TestEveryRecordExactlyOneDataBucket pins the data side of the cycle.
func TestEveryRecordExactlyOneDataBucket(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(777))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < int(b.Channel().NumBuckets()); i++ {
		if r := b.recOf[i]; r >= 0 {
			seen[r]++
		}
	}
	if len(seen) != ds.Len() {
		t.Fatalf("%d records have data buckets, want %d", len(seen), ds.Len())
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("record %d broadcast %d times", r, c)
		}
	}
}
