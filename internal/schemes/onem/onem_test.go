package onem

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n, m int) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds := dataset(t, n)
	b, err := Build(ds, Options{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestChannelStructure(t *testing.T) {
	ds, b := build(t, 600, 4)
	ch := b.Channel()
	treeNodes := b.Tree().NumNodes()
	if got := ch.CountKind(wire.KindIndex); int(got) != 4*treeNodes {
		t.Fatalf("index buckets = %d, want %d (4 full copies)", got, 4*treeNodes)
	}
	if got := ch.CountKind(wire.KindData); int(got) != ds.Len() {
		t.Fatalf("data buckets = %d, want %d", got, ds.Len())
	}
	// Each copy starts with the root.
	for s, base := range b.copyBase {
		if b.nodeOf[base] != b.Tree().Root {
			t.Fatalf("copy %d does not start with the root", s)
		}
	}
	// Uniform bucket size, encode/size agreement.
	for i := 0; i < int(ch.NumBuckets()); i++ {
		bk := ch.Bucket(units.Index(i))
		if bk.Size() != b.Layout().BucketSize || units.Bytes(len(bk.Encode())) != bk.Size() {
			t.Fatalf("bucket %d size/encode mismatch", i)
		}
	}
}

func TestFindsEveryKey(t *testing.T) {
	ds, b := build(t, 500, 3)
	rng := sim.NewRNG(17)
	for i := 0; i < ds.Len(); i++ {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatalf("key %d: %v", ds.KeyAt(i), err)
		}
		if !res.Found {
			t.Fatalf("key %d not found", ds.KeyAt(i))
		}
	}
}

func TestMissingKeysFailFast(t *testing.T) {
	ds, b := build(t, 500, 3)
	k := b.Tree().Levels
	rng := sim.NewRNG(18)
	for i := 0; i < ds.Len(); i += 17 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("missing key near %d reported found", i)
		}
		// Absence is determined from one full tree copy: at most
		// 1 (first probe) + k (descent) bucket reads.
		if res.Probes > 1+k {
			t.Fatalf("missing key took %d probes, want <= %d", res.Probes, 1+k)
		}
	}
}

func TestTuningIsTreeDepthBound(t *testing.T) {
	ds, b := build(t, 2000, 4)
	k := b.Tree().Levels
	rng := sim.NewRNG(19)
	for i := 0; i < 300; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(key), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		// 1 first probe + k tree levels + 1 data bucket.
		if res.Probes > k+2 {
			t.Fatalf("present key took %d probes, want <= %d", res.Probes, k+2)
		}
		if res.Tuning != b.Layout().BucketSize.Times(res.Probes) {
			t.Fatal("tuning bytes must equal probes x uniform bucket size")
		}
	}
}

func TestOptimalM(t *testing.T) {
	// The optimum balances segment-probe wait against cycle growth:
	// m* ~ sqrt(nr/treeNodes).
	for _, c := range []struct{ nr, nodes int }{
		{1000, 100}, {10000, 900}, {35000, 3200},
	} {
		m := OptimalM(c.nr, c.nodes)
		if m < 1 {
			t.Fatalf("OptimalM(%d,%d) = %d", c.nr, c.nodes, m)
		}
		// Check it is at least as good as its neighbours.
		cost := func(m int) float64 {
			return 0.5 + (float64(c.nr)/float64(m)+float64(c.nodes))/2 + float64(c.nr+m*c.nodes)/2
		}
		if m > 1 && cost(m-1) < cost(m) {
			t.Fatalf("OptimalM(%d,%d)=%d but m-1 is cheaper", c.nr, c.nodes, m)
		}
		if cost(m+1) < cost(m) {
			t.Fatalf("OptimalM(%d,%d)=%d but m+1 is cheaper", c.nr, c.nodes, m)
		}
	}
}

func TestAutoMUsed(t *testing.T) {
	ds := dataset(t, 800)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := OptimalM(ds.Len(), b.Tree().NumNodes())
	if b.M() != want {
		t.Fatalf("auto m = %d, want %d", b.M(), want)
	}
}

func TestInvalidM(t *testing.T) {
	ds := dataset(t, 100)
	if _, err := Build(ds, Options{M: -3}); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := Build(ds, Options{M: 101}); err == nil {
		t.Fatal("m > record count accepted")
	}
}

func TestMEqualsOneSingleCopy(t *testing.T) {
	ds, b := build(t, 300, 1)
	if got := b.Channel().CountKind(wire.KindIndex); int(got) != b.Tree().NumNodes() {
		t.Fatalf("m=1: index buckets %d, want %d", got, b.Tree().NumNodes())
	}
	res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(299)), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("key not found with m=1")
	}
}

func TestAccessFromEveryArrivalBucket(t *testing.T) {
	ds, b := build(t, 120, 3)
	for p := 0; p < int(b.Channel().NumBuckets()); p += 3 {
		arrival := b.Channel().StartInCycle(units.Index(p)).At(2)
		for _, i := range []int{0, 60, 119} {
			res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
			if err != nil {
				t.Fatalf("arrival bucket %d key %d: %v", p, i, err)
			}
			if !res.Found {
				t.Fatalf("key %d not found from bucket %d", ds.KeyAt(i), p)
			}
			if res.Access > 3*b.Channel().CycleLen() {
				t.Fatalf("access %d exceeds 3 cycles", res.Access)
			}
		}
	}
}
