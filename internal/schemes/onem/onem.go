// Package onem implements (1,m) indexing [6]: the entire index tree is
// broadcast m times per cycle, once before each of m equal data segments.
//
// Clients tune in, read any bucket to learn the offset to the next index
// segment, traverse the full tree copy there top-down (dozing between
// probes), and doze until the data bucket. Because every index segment
// holds the whole tree, a failed search is detected after at most k index
// probes — the property that makes the tree schemes shine under low data
// availability (paper §5.1).
//
// Larger m shortens the wait for an index segment but lengthens the cycle
// by m tree copies; the optimal m balances the two (computed here by
// minimizing the expected access time over all m).
package onem

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/btree"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// Name is the scheme's registry name.
const Name = "(1,m)"

// Options configures (1,m) indexing.
type Options struct {
	// M is the number of index-tree copies (and data segments) per cycle.
	// Zero selects the access-time-optimal value.
	M int
}

// DefaultOptions selects the optimal m.
func DefaultOptions() Options { return Options{} }

// Broadcast is a (1,m)-indexed broadcast cycle.
type Broadcast struct {
	ds     *datagen.Dataset
	ch     *channel.Channel
	tree   *btree.Tree
	layout treeidx.Layout
	m      int

	// meta, parallel to the channel
	nodeOf   []*btree.Node // index buckets; nil for data buckets
	recOf    []int         // data buckets; -1 for index buckets
	segOf    []int         // tree copy / data segment number
	copyBase []int         // bucket index of each tree copy's root
	dataIdx  []int         // record index -> its data bucket index
}

// Build constructs the (1,m) broadcast for a dataset.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	layout, tree, err := treeidx.Compute(ds)
	if err != nil {
		return nil, fmt.Errorf("onem: %w", err)
	}
	m := opts.M
	if m == 0 {
		m = OptimalM(ds.Len(), tree.NumNodes())
	}
	if m < 1 || m > ds.Len() {
		return nil, fmt.Errorf("onem: m %d out of range [1,%d]", m, ds.Len())
	}

	b := &Broadcast{ds: ds, tree: tree, layout: layout, m: m, dataIdx: make([]int, ds.Len())}
	info := &treeidx.CycleInfo{BucketSize: layout.BucketSize}

	// Preorder node list: bucket position of node within a copy is its
	// preorder ID.
	nodes := make([]*btree.Node, 0, tree.NumNodes())
	tree.Walk(func(n *btree.Node) { nodes = append(nodes, n) })

	var buckets []channel.Bucket
	// Segment s covers records [s*per+min(s,extra) ...): split Nr as evenly
	// as possible into m contiguous runs.
	per, extra := ds.Len()/m, ds.Len()%m
	segStartRec := make([]int, m+1)
	for s := 0; s < m; s++ {
		size := per
		if s < extra {
			size++
		}
		segStartRec[s+1] = segStartRec[s] + size
	}

	// First pass: lay out buckets and remember positions.
	var idxBuckets []*treeidx.IndexBucket
	var dataBuckets []*treeidx.DataBucket
	lastKey := treeidx.NoKey
	for s := 0; s < m; s++ {
		b.copyBase = append(b.copyBase, len(buckets))
		for _, n := range nodes {
			ib := &treeidx.IndexBucket{
				Seq:     len(buckets),
				Node:    n,
				LastKey: lastKey,
				Layout:  layout,
				Info:    info,
				DS:      ds,
			}
			idxBuckets = append(idxBuckets, ib)
			buckets = append(buckets, ib)
			b.nodeOf = append(b.nodeOf, n)
			b.recOf = append(b.recOf, -1)
			b.segOf = append(b.segOf, s)
		}
		for r := segStartRec[s]; r < segStartRec[s+1]; r++ {
			db := &treeidx.DataBucket{
				Seq:    len(buckets),
				RecIdx: r,
				Layout: layout,
				Info:   info,
				DS:     ds,
			}
			b.dataIdx[r] = len(buckets)
			dataBuckets = append(dataBuckets, db)
			buckets = append(buckets, db)
			b.nodeOf = append(b.nodeOf, nil)
			b.recOf = append(b.recOf, r)
			b.segOf = append(b.segOf, s)
			lastKey = ds.KeyAt(r)
		}
	}
	info.NumBuckets = len(buckets)

	// Second pass: resolve pointers now that every position is known.
	for _, ib := range idxBuckets {
		s := b.segOf[ib.Seq]
		ib.NextSeg = b.copyBase[(s+1)%m]
		// Control index: within a copy the parent chain sits earlier in
		// the same copy; its next occurrence is in the NEXT copy.
		base := b.copyBase[(s+1)%m]
		for l := 0; l < ib.Node.Level; l++ {
			anc := ancestorAt(ib.Node, l)
			ib.Ctrl = append(ib.Ctrl, base+anc.ID)
		}
		// Local index: children live in the same copy (preorder, ahead of
		// the parent); leaf entries point at data buckets.
		if ib.Node.IsLeaf() {
			for e := 0; e < len(ib.Node.Keys); e++ {
				ib.Local = append(ib.Local, b.dataIdx[ib.Node.DataFrom+e])
			}
		} else {
			for _, c := range ib.Node.Children {
				ib.Local = append(ib.Local, b.copyBase[s]+c.ID)
			}
		}
	}
	for _, db := range dataBuckets {
		db.NextSeg = b.copyBase[(b.segOf[db.Seq]+1)%m]
	}

	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("onem: %w", err)
	}
	b.ch = ch
	return b, nil
}

// ancestorAt returns n's ancestor at the given level (level < n.Level).
func ancestorAt(n *btree.Node, level int) *btree.Node {
	a := n
	for a.Level > level {
		a = a.Parent
	}
	return a
}

// OptimalM returns the m minimizing expected access time for nr records
// and treeNodes index buckets per copy: the balance point between the wait
// for the next index segment and the cycle growth from replication.
func OptimalM(nr, treeNodes int) int {
	best, bestCost := 1, float64(0)
	for m := 1; m <= nr; m++ {
		// In bucket units: initial wait + half the segment period (probe)
		// + half the cycle (broadcast wait).
		cycle := float64(nr + m*treeNodes)
		probe := (float64(nr)/float64(m) + float64(treeNodes)) / 2
		cost := 0.5 + probe + cycle/2
		if m == 1 || cost < bestCost {
			best, bestCost = m, cost
		}
		// Cost is convex in m; stop once it starts rising.
		if m > 1 && cost > bestCost {
			break
		}
	}
	return best
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":     float64(b.ds.Len()),
		"cycle_bytes": float64(b.ch.CycleLen()),
		"m":           float64(b.m),
		"fanout":      float64(b.layout.Fanout),
		"levels":      float64(b.layout.Levels),
		"tree_nodes":  float64(b.tree.NumNodes()),
		"bucket_size": float64(b.layout.BucketSize),
	}
}

// M returns the number of tree copies in use.
func (b *Broadcast) M() int { return b.m }

// Tree exposes the index tree for tests.
func (b *Broadcast) Tree() *btree.Tree { return b.tree }

// Layout exposes the bucket layout for tests.
func (b *Broadcast) Layout() treeidx.Layout { return b.layout }

// NewClient implements access.Broadcast.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{b: b, key: key}
}

type clientPhase uint8

const (
	phaseFirstProbe clientPhase = iota // read any bucket for the next-segment offset
	phaseNavigate                      // descending the tree copy
	phaseDownload                      // reading the data bucket
)

type client struct {
	b     *Broadcast
	key   uint64
	phase clientPhase
}

// Rewind implements access.Rewinder: after Rewind(k) the client is
// indistinguishable from NewClient(k).
func (c *client) Rewind(key uint64) {
	c.key = key
	c.phase = phaseFirstProbe
}

func (c *client) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	b := c.b
	switch c.phase {
	case phaseFirstProbe:
		c.phase = phaseNavigate
		var next int
		if b.nodeOf[i] != nil {
			next = findIndexBucket(b, i).NextSeg
		} else {
			next = b.copyBase[(b.segOf[i]+1)%b.m]
		}
		nxt := units.Index(next)
		return access.DozeAt(nxt, b.ch.NextOccurrence(nxt, end))

	case phaseNavigate:
		node := b.nodeOf[i]
		if node == nil {
			panic("onem: navigation landed on a data bucket")
		}
		if !node.Covers(b.tree.Keys, c.key) {
			// Only the root can see an out-of-range key; the full tree copy
			// proves absence immediately.
			return access.Done(false)
		}
		ib := findIndexBucket(b, i)
		if node.IsLeaf() {
			e := node.EntryFor(c.key)
			if e < 0 {
				return access.Done(false)
			}
			c.phase = phaseDownload
			tgt := units.Index(ib.Local[e])
			return access.DozeAt(tgt, b.ch.NextOccurrence(tgt, end))
		}
		tgt := units.Index(ib.Local[node.ChildFor(c.key)])
		return access.DozeAt(tgt, b.ch.NextOccurrence(tgt, end))

	case phaseDownload:
		if b.recOf[i] < 0 || b.ds.KeyAt(b.recOf[i]) != c.key {
			panic("onem: downloaded the wrong bucket")
		}
		return access.Done(true)
	}
	panic("onem: invalid client phase")
}

// findIndexBucket recovers the IndexBucket instance at channel position i.
func findIndexBucket(b *Broadcast, i units.BucketIndex) *treeidx.IndexBucket {
	return b.ch.Bucket(i).(*treeidx.IndexBucket)
}
