package onem

import (
	"testing"

	"github.com/airindex/airindex/internal/btree"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/units"
)

// TestCopyStructure verifies that every index segment is a complete
// preorder copy of the tree and that data segments partition the records
// contiguously.
func TestCopyStructure(t *testing.T) {
	for _, m := range []int{1, 3, 7} {
		ds, err := datagen.Generate(datagen.Default(450))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(ds, Options{M: m})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		var preorder []*btree.Node
		b.Tree().Walk(func(n *btree.Node) { preorder = append(preorder, n) })

		for s, base := range b.copyBase {
			for off, want := range preorder {
				if b.nodeOf[base+off] != want {
					t.Fatalf("m=%d copy %d offset %d: wrong node", m, s, off)
				}
			}
		}
		// Records appear exactly once, in key order across the cycle.
		prev := -1
		count := 0
		for i := 0; i < int(b.Channel().NumBuckets()); i++ {
			if r := b.recOf[i]; r >= 0 {
				if r != prev+1 {
					t.Fatalf("m=%d: record order broken at bucket %d (%d after %d)", m, i, r, prev)
				}
				prev = r
				count++
			}
		}
		if count != ds.Len() {
			t.Fatalf("m=%d: %d data buckets, want %d", m, count, ds.Len())
		}
	}
}

// TestLocalPointersWithinCopy checks that non-leaf local pointers stay
// inside the same tree copy (preorder, ahead of the parent) and leaf
// pointers target the entry's unique data bucket.
func TestLocalPointersWithinCopy(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, Options{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	ch := b.Channel()
	treeLen := b.Tree().NumNodes()
	for i := 0; i < int(ch.NumBuckets()); i++ {
		ib, ok := ch.Bucket(units.Index(i)).(*treeidx.IndexBucket)
		if !ok {
			continue
		}
		s := b.segOf[i]
		base := b.copyBase[s]
		if ib.Node.IsLeaf() {
			for e, target := range ib.Local {
				if b.recOf[target] != ib.Node.DataFrom+e {
					t.Fatalf("leaf bucket %d entry %d targets record %d, want %d",
						i, e, b.recOf[target], ib.Node.DataFrom+e)
				}
			}
			continue
		}
		for j, target := range ib.Local {
			if target < base || target >= base+treeLen {
				t.Fatalf("bucket %d local[%d]=%d escapes copy %d [%d,%d)", i, j, target, s, base, base+treeLen)
			}
			if target <= i {
				t.Fatalf("bucket %d local[%d]=%d not ahead in preorder", i, j, target)
			}
			if b.nodeOf[target] != ib.Node.Children[j] {
				t.Fatalf("bucket %d local[%d] holds the wrong child", i, j)
			}
		}
	}
}
