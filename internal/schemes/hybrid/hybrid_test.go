package hybrid

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n int) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds := dataset(t, n)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{GroupSize: 0, SigBytes: 16, BitsPerField: 8},
		{GroupSize: 16, SigBytes: 0, BitsPerField: 8},
		{GroupSize: 16, SigBytes: 2, BitsPerField: 17},
		{GroupSize: 16, SigBytes: 2, BitsPerField: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelStructure(t *testing.T) {
	ds, b := build(t, 640)
	ch := b.Channel()
	// 640 records in 16-record groups: 40 groups, tree over 40 keys.
	if b.groups != 40 {
		t.Fatalf("groups = %d, want 40", b.groups)
	}
	if got := ch.CountKind(wire.KindSignature); int(got) != ds.Len() {
		t.Fatalf("sig buckets = %d, want %d", got, ds.Len())
	}
	if got := ch.CountKind(wire.KindData); int(got) != ds.Len() {
		t.Fatalf("data buckets = %d, want %d", got, ds.Len())
	}
	if got := ch.CountKind(wire.KindIndex); int(got) != b.M()*b.Tree().NumNodes() {
		t.Fatalf("index buckets = %d, want %d copies of %d nodes", got, b.M(), b.Tree().NumNodes())
	}
	for i := 0; i < int(ch.NumBuckets()); i++ {
		bk := ch.Bucket(units.Index(i))
		if units.Bytes(len(bk.Encode())) != bk.Size() {
			t.Fatalf("bucket %d encode/size mismatch", i)
		}
	}
}

func TestFindsEveryKey(t *testing.T) {
	ds, b := build(t, 500)
	rng := sim.NewRNG(5)
	for i := 0; i < ds.Len(); i++ {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatalf("key %d: %v", ds.KeyAt(i), err)
		}
		if !res.Found {
			t.Fatalf("key %d not found", ds.KeyAt(i))
		}
	}
}

func TestMissingKeysFailWithinOneGroup(t *testing.T) {
	ds, b := build(t, 500)
	k := b.Tree().Levels
	g := b.opts.GroupSize
	rng := sim.NewRNG(6)
	for i := 0; i < ds.Len(); i += 9 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("missing key near %d reported found", i)
		}
		// Bounded by first probe + tree descent + one group of signature
		// reads (plus rare false-drop data reads).
		if res.Probes > 1+k+2*g {
			t.Fatalf("missing key took %d probes", res.Probes)
		}
	}
}

func TestOutOfRangeKeyFailsFast(t *testing.T) {
	ds, b := build(t, 300)
	res, err := access.Walk(b.Channel(), b.NewClient(ds.MaxKey()+5), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Probes > 2 {
		t.Fatalf("out-of-range key: found=%v probes=%d", res.Found, res.Probes)
	}
}

func TestTuningBetweenTreeAndSignature(t *testing.T) {
	// The hybrid's raison d'être: tuning close to the tree schemes (a
	// descent plus part of one group), far below simple signature.
	ds := dataset(t, 2000)
	hy, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := signature.Build(ds, signature.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dt, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mean := func(bc access.Broadcast) float64 {
		rng := sim.NewRNG(77)
		var sum float64
		const n = 500
		for i := 0; i < n; i++ {
			key := ds.KeyAt(rng.Intn(ds.Len()))
			arrival := sim.Time(rng.Int63n(int64(bc.Channel().CycleLen())))
			res, err := access.Walk(bc.Channel(), bc.NewClient(key), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Tuning)
		}
		return sum / n
	}
	hyT, sigT, distT := mean(hy), mean(sig), mean(dt)
	if hyT >= sigT/10 {
		t.Fatalf("hybrid tuning %.0f should be >=10x below simple signature %.0f", hyT, sigT)
	}
	if hyT >= 4*distT {
		t.Fatalf("hybrid tuning %.0f should be within 4x of distributed %.0f", hyT, distT)
	}
}

func TestIndexOverheadBelowPureTree(t *testing.T) {
	// One leaf entry per group instead of per record: far fewer index
	// buckets than (1,m)/distributed at the same m.
	ds := dataset(t, 2000)
	hy, err := Build(ds, Options{GroupSize: 16, M: 2, SigBytes: 16, BitsPerField: 8})
	if err != nil {
		t.Fatal(err)
	}
	dt, err := dist.Build(ds, dist.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hyIdx := hy.Channel().CountKind(wire.KindIndex)
	distIdx := dt.Channel().CountKind(wire.KindIndex)
	if hyIdx*4 > distIdx {
		t.Fatalf("hybrid index buckets %d should be far below distributed's %d", hyIdx, distIdx)
	}
}

func TestGroupSizeOne(t *testing.T) {
	// Degenerate group size: every record its own group; still correct.
	ds := dataset(t, 120)
	b, err := Build(ds, Options{GroupSize: 1, SigBytes: 8, BitsPerField: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i += 5 {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found with group size 1", ds.KeyAt(i))
		}
	}
}

func TestParams(t *testing.T) {
	ds, b := build(t, 320)
	p := b.Params()
	if p["records"] != float64(ds.Len()) || p["groups"] != 20 || p["group_size"] != 16 {
		t.Fatalf("params %v", p)
	}
	if b.Name() != Name {
		t.Fatal("name mismatch")
	}
	if !b.Contains(ds.KeyAt(1)) || b.Contains(ds.MissingKeyNear(1)) {
		t.Fatal("Contains wrong")
	}
}
