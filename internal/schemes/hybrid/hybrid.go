// Package hybrid implements an index-tree + signature hybrid access method
// in the spirit of the paper's references [3,4] (Hu, Lee & Lee): a B+
// index tree over *groups* of records steers the client close to its
// target with tree-like tuning cost, and record signatures inside each
// group filter the final candidates without reading full records.
//
// The broadcast cycle is (1,m)-shaped: m copies of the group-level index
// tree, each followed by a data segment whose groups are laid out as
// [sig, data] pairs. Compared to the paper's pure schemes the hybrid
// carries far fewer index buckets than distributed/(1,m) (one leaf entry
// per group instead of per record) and far fewer signature reads than
// simple signature indexing (only the target group's).
package hybrid

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/btree"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Name is the scheme's registry name.
const Name = "hybrid"

// Options configures the hybrid broadcast.
type Options struct {
	// GroupSize is the number of records per signature group.
	GroupSize int
	// M is the number of index-tree copies per cycle (0 = optimal).
	M int
	// SigBytes and BitsPerField configure the record signatures.
	SigBytes     int
	BitsPerField int
}

// DefaultOptions returns 16-record groups with 16-byte signatures and the
// access-optimal tree replication.
func DefaultOptions() Options {
	return Options{GroupSize: 16, SigBytes: 16, BitsPerField: 8}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.GroupSize < 1:
		return fmt.Errorf("hybrid: GroupSize %d must be positive", o.GroupSize)
	case o.SigBytes < 1:
		return fmt.Errorf("hybrid: SigBytes %d must be positive", o.SigBytes)
	case o.BitsPerField < 1 || o.BitsPerField > o.SigBytes*8:
		return fmt.Errorf("hybrid: BitsPerField %d outside [1,%d]", o.BitsPerField, o.SigBytes*8)
	}
	return nil
}

// indexBucket is one tree node occurrence: header, next-index-segment
// offset, and up to fanout (key, offset) entries, padded to a fixed size
// so the tree geometry is honest on the wire.
type indexBucket struct {
	seq     int
	node    *btree.Node
	nextSeg int
	local   []int
	b       *Broadcast
}

func (ib *indexBucket) Size() units.ByteCount { return ib.b.idxBucketSize }
func (ib *indexBucket) Kind() wire.Kind       { return wire.KindIndex }

func (ib *indexBucket) Encode() []byte {
	w := wire.NewWriter(ib.Size())
	w.Header(wire.Header{Kind: wire.KindIndex, Seq: uint32(ib.seq)})
	w.Offset(ib.b.deltaBytes(ib.seq, ib.nextSeg))
	w.U16(uint16(len(ib.local)))
	keySize := ib.b.ds.Config().KeySize
	for j := 0; j < ib.b.fanout; j++ {
		if j < len(ib.local) {
			w.Raw(datagen.EncodeKeyWidth(ib.node.Keys[j], keySize))
			w.Offset(ib.b.deltaBytes(ib.seq, ib.local[j]))
		} else {
			w.Pad(units.Bytes(keySize) + wire.OffsetSize)
		}
	}
	w.Pad(ib.Size() - w.Len())
	return w.Bytes()
}

// sigBucket carries one record signature.
type sigBucket struct {
	seq int
	sig signature.Sig
}

func (sb *sigBucket) Size() units.ByteCount { return wire.HeaderSize + units.Bytes(len(sb.sig)) }
func (sb *sigBucket) Kind() wire.Kind       { return wire.KindSignature }

func (sb *sigBucket) Encode() []byte {
	w := wire.NewWriter(sb.Size())
	w.Header(wire.Header{Kind: wire.KindSignature, Seq: uint32(sb.seq)})
	w.Raw(sb.sig)
	return w.Bytes()
}

// dataBucket carries one record plus the next-index-segment offset.
type dataBucket struct {
	seq     int
	recIdx  int
	nextSeg int
	b       *Broadcast
}

func (db *dataBucket) Size() units.ByteCount {
	return wire.HeaderSize + wire.OffsetSize + units.Bytes(db.b.ds.Config().RecordSize)
}

func (db *dataBucket) Kind() wire.Kind { return wire.KindData }

func (db *dataBucket) Encode() []byte {
	w := wire.NewWriter(db.Size())
	w.Header(wire.Header{Kind: wire.KindData, Seq: uint32(db.seq)})
	w.Offset(db.b.deltaBytes(db.seq, db.nextSeg))
	rec := db.b.ds.Record(db.recIdx)
	w.Raw(db.b.ds.EncodeKey(rec.Key))
	for _, a := range rec.Attrs {
		w.Raw([]byte(a))
	}
	return w.Bytes()
}

// Broadcast is the hybrid cycle.
type Broadcast struct {
	ds   *datagen.Dataset
	ch   *channel.Channel
	opts Options
	tree *btree.Tree
	m    int

	fanout        int
	idxBucketSize units.ByteCount
	groups        int
	groupFrom     []int // first record index of each group
	sigs          []signature.Sig

	// per-bucket metadata
	nodeOf   []*btree.Node
	recOf    []int // record index for sig and data buckets; -1 otherwise
	isSig    []bool
	nextSeg  []int
	copyBase []int
	groupIdx []int // record index -> group

	// byte-position bookkeeping for wire offsets
	starts []units.ByteOffset
	cycle  units.ByteCount
}

// deltaBytes is the on-air distance from the end of bucket `from` to the
// start of bucket `to` (buckets here are not uniform, so positions are
// tracked explicitly).
func (b *Broadcast) deltaBytes(from, to int) int64 {
	endOfFrom := b.starts[from].Advance(b.sizeOf(from))
	d := b.starts[to] - endOfFrom
	if d < 0 {
		d = d.Advance(b.cycle)
	}
	return int64(d)
}

func (b *Broadcast) sizeOf(i int) units.ByteCount { return b.ch.Bucket(units.Index(i)).Size() }

// Build constructs the hybrid broadcast for a dataset.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cfg := ds.Config()
	b := &Broadcast{ds: ds, opts: opts, groupIdx: make([]int, ds.Len())}

	// Group the records and build the group-level tree.
	var groupMax []uint64
	for from := 0; from < ds.Len(); from += opts.GroupSize {
		to := from + opts.GroupSize
		if to > ds.Len() {
			to = ds.Len()
		}
		g := len(groupMax)
		b.groupFrom = append(b.groupFrom, from)
		groupMax = append(groupMax, ds.KeyAt(to-1))
		for r := from; r < to; r++ {
			b.groupIdx[r] = g
		}
	}
	b.groups = len(groupMax)

	// Index bucket geometry: same fixed bucket size as the pure tree
	// schemes so comparisons are apples-to-apples.
	bucketSize := wire.HeaderSize + wire.OffsetSize + units.Bytes(cfg.RecordSize)
	b.idxBucketSize = bucketSize
	b.fanout = (bucketSize - wire.HeaderSize - wire.OffsetSize - 2).Div(units.Bytes(cfg.KeySize) + wire.OffsetSize)
	if b.fanout < 2 {
		return nil, fmt.Errorf("hybrid: key size %d too large for record size %d", cfg.KeySize, cfg.RecordSize)
	}
	tree, err := btree.Build(groupMax, b.fanout)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	b.tree = tree

	m := opts.M
	if m == 0 {
		m = optimalM(b.groups*(opts.GroupSize+1), tree.NumNodes())
	}
	if m < 1 || m > b.groups {
		m = 1
	}
	b.m = m

	// Record signatures.
	b.sigs = make([]signature.Sig, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		rec := ds.Record(i)
		fields := make([][]byte, 0, 1+len(rec.Attrs))
		fields = append(fields, ds.EncodeKey(rec.Key))
		for _, a := range rec.Attrs {
			fields = append(fields, []byte(a))
		}
		b.sigs[i] = signature.RecordSig(fields, opts.SigBytes, opts.BitsPerField)
	}

	// Lay out m (tree copy + group run) segments.
	nodes := make([]*btree.Node, 0, tree.NumNodes())
	tree.Walk(func(n *btree.Node) { nodes = append(nodes, n) })
	per, extra := b.groups/m, b.groups%m
	segFromGroup := make([]int, m+1)
	for s := 0; s < m; s++ {
		size := per
		if s < extra {
			size++
		}
		segFromGroup[s+1] = segFromGroup[s] + size
	}

	var buckets []channel.Bucket
	var idxBuckets []*indexBucket
	var dataBuckets []*dataBucket
	groupStartBucket := make([]int, b.groups)
	segOf := make([]int, 0)
	for s := 0; s < m; s++ {
		b.copyBase = append(b.copyBase, len(buckets))
		for _, n := range nodes {
			ib := &indexBucket{seq: len(buckets), node: n, b: b}
			idxBuckets = append(idxBuckets, ib)
			buckets = append(buckets, ib)
			b.nodeOf = append(b.nodeOf, n)
			b.recOf = append(b.recOf, -1)
			b.isSig = append(b.isSig, false)
			segOf = append(segOf, s)
		}
		for g := segFromGroup[s]; g < segFromGroup[s+1]; g++ {
			from := b.groupFrom[g]
			to := from + opts.GroupSize
			if to > ds.Len() {
				to = ds.Len()
			}
			groupStartBucket[g] = len(buckets)
			for r := from; r < to; r++ {
				buckets = append(buckets, &sigBucket{seq: len(buckets), sig: b.sigs[r]})
				b.nodeOf = append(b.nodeOf, nil)
				b.recOf = append(b.recOf, r)
				b.isSig = append(b.isSig, true)
				segOf = append(segOf, s)

				db := &dataBucket{seq: len(buckets), recIdx: r, b: b}
				dataBuckets = append(dataBuckets, db)
				buckets = append(buckets, db)
				b.nodeOf = append(b.nodeOf, nil)
				b.recOf = append(b.recOf, r)
				b.isSig = append(b.isSig, false)
				segOf = append(segOf, s)
			}
		}
	}

	// Byte positions, then pointers.
	b.starts = make([]units.ByteOffset, len(buckets))
	var off units.ByteOffset
	var total units.ByteCount
	for i, bk := range buckets {
		b.starts[i] = off
		off = off.Advance(bk.Size())
		total += bk.Size()
	}
	b.cycle = total
	b.nextSeg = make([]int, len(buckets))
	for i := range buckets {
		b.nextSeg[i] = b.copyBase[(segOf[i]+1)%m]
	}
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	b.ch = ch
	for _, ib := range idxBuckets {
		ib.nextSeg = b.nextSeg[ib.seq]
		s := segOf[ib.seq]
		if ib.node.IsLeaf() {
			for e := 0; e < len(ib.node.Keys); e++ {
				ib.local = append(ib.local, groupStartBucket[ib.node.DataFrom+e])
			}
		} else {
			for _, c := range ib.node.Children {
				ib.local = append(ib.local, b.copyBase[s]+c.ID)
			}
		}
	}
	for _, db := range dataBuckets {
		db.nextSeg = b.nextSeg[db.seq]
	}
	return b, nil
}

// optimalM balances segment-probe wait against cycle growth, as in (1,m)
// indexing, with the group run length standing in for the data segment.
func optimalM(dataBuckets, treeNodes int) int {
	best, bestCost := 1, 0.0
	for m := 1; m <= dataBuckets; m++ {
		cost := 0.5 + (float64(dataBuckets)/float64(m)+float64(treeNodes))/2 +
			float64(dataBuckets+m*treeNodes)/2
		if m == 1 || cost < bestCost {
			best, bestCost = m, cost
		}
		if m > 1 && cost > bestCost {
			break
		}
	}
	return best
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":     float64(b.ds.Len()),
		"cycle_bytes": float64(b.ch.CycleLen()),
		"m":           float64(b.m),
		"groups":      float64(b.groups),
		"group_size":  float64(b.opts.GroupSize),
		"fanout":      float64(b.fanout),
		"levels":      float64(b.tree.Levels),
		"sig_bytes":   float64(b.opts.SigBytes),
	}
}

// M returns the tree copies per cycle.
func (b *Broadcast) M() int { return b.m }

// Tree exposes the group-level index tree for tests.
func (b *Broadcast) Tree() *btree.Tree { return b.tree }

// NewClient implements access.Broadcast.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{
		b:     b,
		key:   key,
		query: signature.QuerySig(b.ds.EncodeKey(key), b.opts.SigBytes, b.opts.BitsPerField),
	}
}

type clientPhase uint8

const (
	phaseFirstProbe clientPhase = iota
	phaseNavigate
	phaseGroup
)

type client struct {
	b     *Broadcast
	key   uint64
	query signature.Sig
	phase clientPhase
	group int
}

func (c *client) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	b := c.b
	switch c.phase {
	case phaseFirstProbe:
		c.phase = phaseNavigate
		next := units.Index(b.nextSeg[i])
		return access.DozeAt(next, b.ch.NextOccurrence(next, end))

	case phaseNavigate:
		node := b.nodeOf[i]
		if node == nil {
			panic("hybrid: navigation landed off the index tree")
		}
		// Group-level routing: the first entry whose max key is >= the
		// query covers the only group that could hold it.
		j := node.ChildFor(c.key)
		if j < 0 {
			return access.Done(false) // beyond the broadcast key range
		}
		ib := b.ch.Bucket(i).(*indexBucket)
		tgt := units.Index(ib.local[j])
		if node.IsLeaf() {
			c.phase = phaseGroup
			c.group = node.DataFrom + j
		}
		return access.DozeAt(tgt, b.ch.NextOccurrence(tgt, end))

	case phaseGroup:
		r := b.recOf[i]
		if r < 0 || b.groupIdx[r] != c.group {
			// Ran past the routed group: the key is not broadcast.
			return access.Done(false)
		}
		if b.isSig[i] {
			if b.sigs[r].Covers(c.query) {
				return access.Next() // download the candidate record
			}
			// Doze over the data bucket to the next signature (or group end).
			next := i.Step(2, b.ch.NumBuckets())
			if b.recOf[next] < 0 || b.groupIdx[b.recOf[next]] != c.group {
				return access.Done(false)
			}
			return access.DozeAt(next, b.ch.NextOccurrence(next, end))
		}
		if b.ds.KeyAt(r) == c.key {
			return access.Done(true)
		}
		// False drop: continue with the next signature in the group.
		next := i.Next(b.ch.NumBuckets())
		if b.recOf[next] < 0 || b.groupIdx[b.recOf[next]] != c.group {
			return access.Done(false)
		}
		return access.DozeAt(next, b.ch.NextOccurrence(next, end))
	}
	panic("hybrid: invalid client phase")
}
