// Package bdisk implements broadcast disks (Acharya et al., SIGMOD '95) as
// an extension to the paper's scheme set: a flat, index-free broadcast
// whose hot records are broadcast more often than cold ones.
//
// Records are ranked by assumed popularity and partitioned into D "disks";
// disk i spins at relative frequency rel[i]. With L = lcm(rel), disk i is
// split into L/rel[i] chunks and the major cycle is L minor cycles, each
// carrying the next chunk of every disk — so over a major cycle disk i's
// records appear exactly rel[i] times. Under a skewed (Zipf) demand this
// cuts expected access time below flat broadcast at the cost of a longer
// major cycle; under uniform demand it is strictly worse. Tuning time
// equals access time, as for any index-free scheme.
package bdisk

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Name is the scheme's registry name.
const Name = "broadcast-disks"

// Options configures the disk layout. Fractions and frequencies are
// parallel: disk i holds Fractions[i] of the records (hottest first) and
// spins at RelFreq[i].
type Options struct {
	// Fractions of the popularity-ranked records per disk; must sum to ~1.
	Fractions []float64
	// RelFreq are the relative broadcast frequencies, hottest disk first,
	// non-increasing.
	RelFreq []int
}

// DefaultOptions is the classic 3-disk pyramid: the hottest 10% of records
// broadcast 4x, the next 30% 2x, the cold 60% 1x.
func DefaultOptions() Options {
	return Options{Fractions: []float64{0.1, 0.3, 0.6}, RelFreq: []int{4, 2, 1}}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if len(o.Fractions) == 0 || len(o.Fractions) != len(o.RelFreq) {
		return fmt.Errorf("bdisk: need equal, non-empty Fractions and RelFreq")
	}
	sum := 0.0
	for i, f := range o.Fractions {
		if f <= 0 {
			return fmt.Errorf("bdisk: fraction %d is %v, must be positive", i, f)
		}
		sum += f
		if o.RelFreq[i] < 1 {
			return fmt.Errorf("bdisk: frequency %d is %d, must be >= 1", i, o.RelFreq[i])
		}
		if i > 0 && o.RelFreq[i] > o.RelFreq[i-1] {
			return fmt.Errorf("bdisk: frequencies must be non-increasing (hot disks first)")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("bdisk: fractions sum to %v, want 1", sum)
	}
	return nil
}

// dataBucket is one record slot on the air (same layout as flat broadcast).
type dataBucket struct {
	seq    int
	recIdx int
	ds     *datagen.Dataset
}

func (b *dataBucket) Size() units.ByteCount {
	return wire.HeaderSize + units.Bytes(b.ds.Config().RecordSize)
}
func (b *dataBucket) Kind() wire.Kind { return wire.KindData }

func (b *dataBucket) Encode() []byte {
	w := wire.NewWriter(b.Size())
	w.Header(wire.Header{Kind: wire.KindData, Seq: uint32(b.seq)})
	rec := b.ds.Record(b.recIdx)
	w.Raw(b.ds.EncodeKey(rec.Key))
	for _, a := range rec.Attrs {
		w.Raw([]byte(a))
	}
	return w.Bytes()
}

// Broadcast is a broadcast-disk major cycle.
type Broadcast struct {
	ds    *datagen.Dataset
	ch    *channel.Channel
	opts  Options
	recOf []int // bucket -> record index
	// diskOf maps record index -> disk, for tests and Params.
	diskOf []int
	minors int
	// occ inverts recOf: record -> its bucket slots within the major
	// cycle, ascending. Resolve binary-searches it for the first
	// occurrence at or after a tune-in slot.
	occ [][]int32
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Build constructs the broadcast-disk schedule. Popularity rank equals the
// dataset record index (rank 0 hottest): callers generating skewed
// workloads use the same convention.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	b := &Broadcast{ds: ds, opts: opts, diskOf: make([]int, ds.Len())}

	// Partition popularity-ranked records into disks.
	disks := make([][]int, len(opts.Fractions))
	next := 0
	for i, f := range opts.Fractions {
		n := int(f * float64(ds.Len()))
		if i == len(opts.Fractions)-1 || next+n > ds.Len() {
			n = ds.Len() - next
		}
		if n < 1 {
			n = 1
			if next+n > ds.Len() {
				return nil, fmt.Errorf("bdisk: too many disks for %d records", ds.Len())
			}
		}
		for r := next; r < next+n; r++ {
			b.diskOf[r] = i
		}
		disks[i] = make([]int, 0, n)
		for r := next; r < next+n; r++ {
			disks[i] = append(disks[i], r)
		}
		next += n
	}

	// Acharya's schedule: L = lcm(rel); disk i has L/rel[i] chunks; minor
	// cycle j carries chunk (j mod chunks[i]) of each disk.
	L := 1
	for _, f := range opts.RelFreq {
		L = lcm(L, f)
	}
	b.minors = L
	var buckets []channel.Bucket
	for j := 0; j < L; j++ {
		for i, disk := range disks {
			chunks := L / opts.RelFreq[i]
			c := j % chunks
			from := c * len(disk) / chunks
			to := (c + 1) * len(disk) / chunks
			for _, rec := range disk[from:to] {
				buckets = append(buckets, &dataBucket{seq: len(buckets), recIdx: rec, ds: ds})
				b.recOf = append(b.recOf, rec)
			}
		}
	}
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("bdisk: %w", err)
	}
	b.ch = ch
	b.occ = make([][]int32, ds.Len())
	for slot, rec := range b.recOf {
		b.occ[rec] = append(b.occ[rec], int32(slot))
	}
	return b, nil
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":      float64(b.ds.Len()),
		"cycle_bytes":  float64(b.ch.CycleLen()),
		"disks":        float64(len(b.opts.Fractions)),
		"minor_cycles": float64(b.minors),
		"slots":        float64(b.ch.NumBuckets()),
	}
}

// DiskOf exposes the record-to-disk mapping for tests.
func (b *Broadcast) DiskOf(rec int) int { return b.diskOf[rec] }

// NewClient implements access.Broadcast: an index-free scan, like flat
// broadcast, but over the major cycle (a record may appear several times;
// absence is only proven after a full major cycle).
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{b: b, key: key}
}

type client struct {
	b    *Broadcast
	key  uint64
	read int
}

// Resolve implements access.Resolver: the serial scan over the
// disk-frequency layout in closed form, bit-identical to stepping the
// client. Buckets are uniform, so the geometry matches flat broadcast;
// the difference is that a record occurs once per minor cycle of its
// disk, so the scan length to a present key is the distance from the
// first complete bucket to the key's next occurrence slot (binary
// search over the record's ascending slot list), and a missing key
// needs the full major cycle.
//
//airlint:hotpath
func (b *Broadcast) Resolve(key uint64, arrival sim.Time) (access.Result, bool) {
	n := int(b.ch.NumBuckets())
	size := b.ch.SizeOf(0) // uniform: header + record
	cyc := b.ch.CycleLen()
	base := units.CycleBase(arrival, cyc)
	off := units.CycleOffset(arrival, cyc).Extent()
	slot := (off + size - 1).Div(size) // first complete bucket, in [0, n]
	start := base + size.Times(slot).Span()
	first := slot % n

	var res access.Result
	rec, ok := b.ds.Find(key)
	if ok {
		occ := b.occ[rec]
		// First occurrence slot at or after first, wrapping to the next
		// major cycle when the record only occurs earlier.
		lo, hi := 0, len(occ)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int(occ[mid]) >= first {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < len(occ) {
			res.Probes = int(occ[lo]) - first + 1
		} else {
			res.Probes = int(occ[0]) + n - first + 1
		}
	} else {
		res.Probes = n
	}
	res.Tuning = size.Times(res.Probes)
	res.Access = units.Elapsed(arrival, start+res.Tuning.Span())
	res.Found = ok
	return res, true
}

// Rewind implements access.Rewinder: after Rewind(k) the client is
// indistinguishable from NewClient(k).
func (c *client) Rewind(key uint64) {
	c.key = key
	c.read = 0
}

func (c *client) OnBucket(i units.BucketIndex, _ sim.Time) access.Step {
	c.read++
	if c.b.ds.KeyAt(c.b.recOf[i]) == c.key {
		return access.Done(true)
	}
	if units.Count(c.read) >= c.b.ch.NumBuckets() {
		return access.Done(false)
	}
	return access.Next()
}
