package bdisk

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n int) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds := dataset(t, n)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Fractions: []float64{0.5, 0.5}, RelFreq: []int{2}},
		{Fractions: []float64{0.5, 0.4}, RelFreq: []int{2, 1}},  // sums to 0.9
		{Fractions: []float64{0.5, 0.5}, RelFreq: []int{1, 2}},  // increasing freq
		{Fractions: []float64{0.5, 0.5}, RelFreq: []int{2, 0}},  // zero freq
		{Fractions: []float64{-0.1, 1.1}, RelFreq: []int{2, 1}}, // negative
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFrequencies(t *testing.T) {
	ds, b := build(t, 1000)
	// Default pyramid: lcm(4,2,1) = 4 minor cycles.
	if b.minors != 4 {
		t.Fatalf("minor cycles = %d, want 4", b.minors)
	}
	// Count appearances per record over the major cycle.
	counts := make([]int, ds.Len())
	for _, r := range b.recOf {
		counts[r]++
	}
	want := []int{4, 2, 1}
	for r, c := range counts {
		if c != want[b.DiskOf(r)] {
			t.Fatalf("record %d (disk %d) appears %d times, want %d", r, b.DiskOf(r), c, want[b.DiskOf(r)])
		}
	}
	// Disk membership follows the popularity ranking: hottest 10% on disk 0.
	if b.DiskOf(0) != 0 || b.DiskOf(99) != 0 || b.DiskOf(100) != 1 || b.DiskOf(399) != 1 || b.DiskOf(400) != 2 {
		t.Fatal("disk partition boundaries wrong")
	}
	// Total slots = 100*4 + 300*2 + 600*1.
	if b.Channel().NumBuckets() != 100*4+300*2+600 {
		t.Fatalf("slots = %d", b.Channel().NumBuckets())
	}
}

func TestChunksInterleavePerMinorCycle(t *testing.T) {
	// Every minor cycle must contain one chunk of every disk, so the gap
	// between consecutive appearances of a hot record is about a minor
	// cycle, not the whole major cycle.
	_, b := build(t, 400)
	positions := map[int][]units.ByteOffset{}
	for i, r := range b.recOf {
		positions[r] = append(positions[r], b.Channel().StartInCycle(units.Index(i)))
	}
	cycle := b.Channel().CycleLen()
	minor := int64(cycle.Div(units.Bytes(b.minors)))
	for r, pos := range positions {
		if b.DiskOf(r) != 0 {
			continue
		}
		for j := 1; j < len(pos); j++ {
			gap := int64(pos[j] - pos[j-1])
			if gap > 2*minor {
				t.Fatalf("hot record %d has a %d-byte gap (minor cycle %d)", r, gap, minor)
			}
		}
	}
}

func TestFindsEveryKey(t *testing.T) {
	ds, b := build(t, 500)
	rng := sim.NewRNG(4)
	for i := 0; i < ds.Len(); i += 3 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found", ds.KeyAt(i))
		}
	}
}

func TestMissingKeyFails(t *testing.T) {
	ds, b := build(t, 300)
	res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(100)), 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("missing key reported found")
	}
	if units.Count(res.Probes) != b.Channel().NumBuckets() {
		t.Fatalf("missing key probes = %d, want the full major cycle %d", res.Probes, b.Channel().NumBuckets())
	}
}

func TestHotRecordsWaitLess(t *testing.T) {
	ds, b := build(t, 600)
	rng := sim.NewRNG(9)
	meanAccess := func(rec int) float64 {
		var sum float64
		const n = 300
		for i := 0; i < n; i++ {
			arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
			res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(rec)), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Access)
		}
		return sum / n
	}
	hot := meanAccess(5)    // disk 0, broadcast 4x
	cold := meanAccess(599) // disk 2, broadcast 1x
	if hot*2 > cold {
		t.Fatalf("hot record access %.0f should be far below cold %.0f", hot, cold)
	}
}

func TestEncodeSizes(t *testing.T) {
	_, b := build(t, 200)
	for i := 0; i < int(b.Channel().NumBuckets()); i++ {
		bk := b.Channel().Bucket(units.Index(i))
		if units.Bytes(len(bk.Encode())) != bk.Size() {
			t.Fatalf("bucket %d encode/size mismatch", i)
		}
	}
}

func TestSingleDiskEqualsFlatOrder(t *testing.T) {
	ds := dataset(t, 150)
	b, err := Build(ds, Options{Fractions: []float64{1}, RelFreq: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if int(b.Channel().NumBuckets()) != ds.Len() {
		t.Fatalf("single disk should broadcast each record once, got %d slots", b.Channel().NumBuckets())
	}
}
