// Package flat implements plain broadcast — the paper's baseline with no
// access method at all (§4.2 "flat or plain broadcast").
//
// The server broadcasts one data bucket per record, in key order, with no
// index information. Clients have no way to selectively tune: they listen
// to every bucket until the requested record arrives, so the expected
// access time and tuning time are both about half the broadcast cycle, and
// a failed search must scan the entire cycle.
package flat

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Name is the scheme's registry name.
const Name = "flat"

// dataBucket is one record on the air: common header + key + attributes.
type dataBucket struct {
	seq int
	rec datagen.Record
	ds  *datagen.Dataset
}

func (b *dataBucket) Size() units.ByteCount {
	return wire.HeaderSize + units.Bytes(b.ds.Config().RecordSize)
}

func (b *dataBucket) Kind() wire.Kind { return wire.KindData }

func (b *dataBucket) Encode() []byte {
	w := wire.NewWriter(b.Size())
	w.Header(wire.Header{Kind: wire.KindData, Seq: uint32(b.seq)})
	w.Raw(b.ds.EncodeKey(b.rec.Key))
	for _, a := range b.rec.Attrs {
		w.Raw([]byte(a))
	}
	return w.Bytes()
}

// Broadcast is a flat broadcast cycle over a dataset.
type Broadcast struct {
	ds *datagen.Dataset
	ch *channel.Channel
}

// Build constructs the flat broadcast for a dataset.
func Build(ds *datagen.Dataset) (*Broadcast, error) {
	buckets := make([]channel.Bucket, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		buckets[i] = &dataBucket{seq: i, rec: ds.Record(i), ds: ds}
	}
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("flat: %w", err)
	}
	return &Broadcast{ds: ds, ch: ch}, nil
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":     float64(b.ds.Len()),
		"cycle_bytes": float64(b.ch.CycleLen()),
		"bucket_size": float64(b.ch.SizeOf(0)),
	}
}

// NewClient implements access.Broadcast: scan every bucket until the key
// matches or a full cycle has been examined.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{b: b, key: key}
}

// Resolve implements access.Resolver: the serial scan over uniform
// buckets in closed form, bit-identical to stepping the client. From
// the first complete bucket at or after the arrival (index f), the
// client reads consecutive buckets; bucket i carries record i in key
// order, so a present key at record r is found on read ((r-f) mod N)+1
// and a missing key is proven absent after exactly N reads. Buckets are
// contiguous and uniform, so the final read ends probes·size bytes
// after the first bucket's start.
//
//airlint:hotpath
func (b *Broadcast) Resolve(key uint64, arrival sim.Time) (access.Result, bool) {
	n := b.ds.Len()
	size := b.ch.SizeOf(0) // uniform: header + record
	cyc := b.ch.CycleLen()
	base := units.CycleBase(arrival, cyc)
	off := units.CycleOffset(arrival, cyc).Extent()
	// First complete bucket at or after the arrival, as a cycle slot in
	// [0, n]; slot n is the next cycle's bucket 0 and needs no wrapping
	// because n·size is exactly the cycle length.
	slot := (off + size - 1).Div(size)
	start := base + size.Times(slot).Span()
	first := slot % n

	var res access.Result
	rec, ok := b.ds.Find(key)
	if ok {
		res.Probes = (rec-first+n)%n + 1
	} else {
		res.Probes = n
	}
	res.Tuning = size.Times(res.Probes)
	res.Access = units.Elapsed(arrival, start+res.Tuning.Span())
	res.Found = ok
	return res, true
}

type client struct {
	b    *Broadcast
	key  uint64
	read int
}

// Rewind implements access.Rewinder: after Rewind(k) the client is
// indistinguishable from NewClient(k).
func (c *client) Rewind(key uint64) {
	c.key = key
	c.read = 0
}

func (c *client) OnBucket(i units.BucketIndex, _ sim.Time) access.Step {
	c.read++
	if c.b.ds.KeyAt(int(i)) == c.key {
		return access.Done(true)
	}
	if units.Count(c.read) >= c.b.ch.NumBuckets() {
		// A full cycle scanned without a match: the record is not being
		// broadcast.
		return access.Done(false)
	}
	return access.Next()
}

// NewAttrClient implements access.AttrQuerier. Flat broadcast has no
// filtering aid, so attribute queries scan record after record just like
// key queries — the baseline the signature schemes improve on.
func (b *Broadcast) NewAttrClient(attr int, value string) access.Client {
	return &attrClient{b: b, attr: attr, value: value}
}

type attrClient struct {
	b     *Broadcast
	attr  int
	value string
	read  int
}

func (c *attrClient) OnBucket(i units.BucketIndex, _ sim.Time) access.Step {
	c.read++
	attrs := c.b.ds.Record(int(i)).Attrs
	if c.attr >= 0 && c.attr < len(attrs) && attrs[c.attr] == c.value {
		return access.Done(true)
	}
	if units.Count(c.read) >= c.b.ch.NumBuckets() {
		return access.Done(false)
	}
	return access.Next()
}
