package flat

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func build(t *testing.T, n int) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestBucketSizeMatchesEncoding(t *testing.T) {
	_, b := build(t, 50)
	for i := 0; i < int(b.Channel().NumBuckets()); i++ {
		bk := b.Channel().Bucket(units.Index(i))
		if got := units.Bytes(len(bk.Encode())); got != bk.Size() {
			t.Fatalf("bucket %d encodes to %d bytes, Size() says %d", i, got, bk.Size())
		}
	}
}

func TestFindsEveryKeyFromCycleStart(t *testing.T) {
	ds, b := build(t, 200)
	for i := 0; i < ds.Len(); i++ {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found", ds.KeyAt(i))
		}
		// From cycle start the i-th record needs exactly i+1 bucket reads.
		if res.Probes != i+1 {
			t.Fatalf("key %d took %d probes, want %d", ds.KeyAt(i), res.Probes, i+1)
		}
		wantBytes := b.Channel().SizeOf(0).Times(i + 1)
		if res.Tuning != wantBytes || res.Access != wantBytes {
			t.Fatalf("key %d: access/tuning = %d/%d, want %d", ds.KeyAt(i), res.Access, res.Tuning, wantBytes)
		}
	}
}

func TestMissingKeyScansFullCycle(t *testing.T) {
	ds, b := build(t, 100)
	res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(42)), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("missing key reported found")
	}
	if res.Probes != 100 {
		t.Fatalf("missing key probes = %d, want full cycle of 100", res.Probes)
	}
	if res.Tuning != b.Channel().CycleLen() {
		t.Fatalf("missing key tuning = %d, want full cycle %d", res.Tuning, b.Channel().CycleLen())
	}
}

func TestMidCycleArrivalWrapsToFindEarlierKey(t *testing.T) {
	ds, b := build(t, 100)
	// Arrive just after record 10's bucket started: the client must wrap a
	// whole cycle to get back to it.
	arrival := sim.Time(b.Channel().StartInCycle(10) + 1)
	res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(10)), arrival, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("key not found after wrap")
	}
	if res.Probes != 100 {
		t.Fatalf("wrap probes = %d, want 100", res.Probes)
	}
}

func TestTuningEqualsAccessAlways(t *testing.T) {
	// Flat broadcast clients never doze, so tuning bytes == bytes from the
	// first complete bucket onward. Access includes the initial wait.
	ds, b := build(t, 64)
	for _, arrival := range []sim.Time{0, 7, 333, 12345} {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(33)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, start := b.Channel().NextBucketAt(arrival)
		if res.Access != res.Tuning+units.Elapsed(arrival, start) {
			t.Fatalf("arrival %d: access %d != tuning %d + initial wait %d", arrival, res.Access, res.Tuning, start-arrival)
		}
	}
}

func TestContainsAndParams(t *testing.T) {
	ds, b := build(t, 30)
	if !b.Contains(ds.KeyAt(0)) || b.Contains(ds.MissingKeyNear(0)) {
		t.Fatal("Contains ground truth wrong")
	}
	p := b.Params()
	if p["records"] != 30 || p["cycle_bytes"] != float64(b.Channel().CycleLen()) {
		t.Fatalf("params %v", p)
	}
	if b.Name() != Name {
		t.Fatal("name mismatch")
	}
}

func TestAverageAccessIsHalfCycle(t *testing.T) {
	// Sample uniform arrivals and uniform keys: mean access and tuning
	// should both be about half the cycle (paper §4.2).
	ds, b := build(t, 500)
	rng := sim.NewRNG(5)
	cycle := int64(b.Channel().CycleLen())
	var sumA, sumT float64
	const n = 4000
	for i := 0; i < n; i++ {
		arrival := sim.Time(rng.Int63n(cycle))
		key := ds.KeyAt(rng.Intn(ds.Len()))
		res, err := access.Walk(b.Channel(), b.NewClient(key), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		sumA += float64(res.Access)
		sumT += float64(res.Tuning)
	}
	half := float64(cycle) / 2
	if got := sumA / n; got < 0.9*half || got > 1.1*half {
		t.Fatalf("mean access %.0f, want about %.0f", got, half)
	}
	if got := sumT / n; got < 0.9*half || got > 1.1*half {
		t.Fatalf("mean tuning %.0f, want about %.0f", got, half)
	}
}

func TestAttrQueryScansLikeKeyQuery(t *testing.T) {
	ds, b := build(t, 150)
	for _, i := range []int{0, 75, 149} {
		for attr := 0; attr < ds.Config().NumAttributes; attr++ {
			value := ds.Record(i).Attrs[attr]
			res, err := access.Walk(b.Channel(), b.NewAttrClient(attr, value), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Fatalf("record %d attr %d not found", i, attr)
			}
			// Flat broadcast has no filtering aid: tuning equals the scan.
			if res.Tuning != b.Channel().SizeOf(0).Times(res.Probes) {
				t.Fatal("attr scan accounting wrong")
			}
		}
	}
}

func TestAttrQueryMissingValue(t *testing.T) {
	ds, b := build(t, 100)
	res, err := access.Walk(b.Channel(), b.NewAttrClient(0, "value that exists nowhere"), 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("nonexistent attribute value found")
	}
	if res.Probes != ds.Len() {
		t.Fatalf("missing attr value probes = %d, want full cycle %d", res.Probes, ds.Len())
	}
	// Out-of-range attribute index behaves like a failed search.
	res, err = access.Walk(b.Channel(), b.NewAttrClient(77, ds.Record(0).Attrs[0]), 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("out-of-range attribute index found a record")
	}
}
