package hashing

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n int, load float64) (*datagen.Dataset, *Broadcast) {
	t.Helper()
	ds := dataset(t, n)
	b, err := Build(ds, Options{LoadFactor: load})
	if err != nil {
		t.Fatal(err)
	}
	return ds, b
}

func TestLayoutInvariants(t *testing.T) {
	_, b := build(t, 500, 3)
	// Directory property: every hash value's chain starts at or after its
	// position.
	for h := 0; h < b.na; h++ {
		if b.chainStart[h] < h {
			t.Fatalf("chainStart[%d] = %d violates directory property", h, b.chainStart[h])
		}
	}
	// Chains are contiguous runs of equal hash values in increasing order.
	for i := 1; i < len(b.hashOf); i++ {
		if b.hashOf[i] < b.hashOf[i-1] {
			t.Fatalf("hash values out of order at bucket %d", i)
		}
	}
	// Every record appears exactly once.
	seen := make(map[int]bool)
	records := 0
	for _, r := range b.recIdx {
		if r >= 0 {
			if seen[r] {
				t.Fatalf("record %d appears twice", r)
			}
			seen[r] = true
			records++
		}
	}
	if records != 500 {
		t.Fatalf("%d records laid out, want 500", records)
	}
	// Bucket count accounting: N = records + empties.
	if int(b.ch.NumBuckets()) != 500+b.empties {
		t.Fatalf("buckets = %d, want %d", b.ch.NumBuckets(), 500+b.empties)
	}
}

func TestBucketEncodingSizes(t *testing.T) {
	_, b := build(t, 100, 3)
	for i := 0; i < int(b.ch.NumBuckets()); i++ {
		bk := b.ch.Bucket(units.Index(i))
		if units.Bytes(len(bk.Encode())) != bk.Size() {
			t.Fatalf("bucket %d: encode/size mismatch", i)
		}
		if bk.Size() != b.ch.Bucket(0).Size() {
			t.Fatal("hashing buckets must be uniform size")
		}
	}
}

func TestFindsEveryKey(t *testing.T) {
	ds, b := build(t, 400, 3)
	rng := sim.NewRNG(7)
	for i := 0; i < ds.Len(); i++ {
		arrival := sim.Time(rng.Int63n(int64(b.ch.CycleLen())))
		res, err := access.Walk(b.ch, b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatalf("key %d: %v", ds.KeyAt(i), err)
		}
		if !res.Found {
			t.Fatalf("key %d not found", ds.KeyAt(i))
		}
	}
}

func TestMissingKeysFail(t *testing.T) {
	ds, b := build(t, 400, 3)
	rng := sim.NewRNG(8)
	for i := 0; i < ds.Len(); i += 13 {
		arrival := sim.Time(rng.Int63n(int64(b.ch.CycleLen())))
		res, err := access.Walk(b.ch, b.NewClient(ds.MissingKeyNear(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("missing key near %d reported found", i)
		}
	}
}

func TestTuningIsSmallAndFlat(t *testing.T) {
	// The paper's key result for hashing: tuning time is a handful of
	// bucket reads, independent of the number of records.
	var means []float64
	for _, n := range []int{200, 800, 3200} {
		ds, b := build(t, n, 3)
		rng := sim.NewRNG(11)
		var sum float64
		const reqs = 500
		for i := 0; i < reqs; i++ {
			key := ds.KeyAt(rng.Intn(ds.Len()))
			arrival := sim.Time(rng.Int63n(int64(b.ch.CycleLen())))
			res, err := access.Walk(b.ch, b.NewClient(key), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(res.Probes)
		}
		means = append(means, sum/reqs)
	}
	for i, m := range means {
		if m > 8 {
			t.Fatalf("mean probes %v at size index %d; hashing should need only a few", m, i)
		}
	}
	// Flatness: the largest and smallest means stay close.
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo > 1.5 {
		t.Fatalf("mean probes vary too much across sizes: %v", means)
	}
}

func TestSeekFromEveryArrivalPosition(t *testing.T) {
	// Exhaustively check a small broadcast from arrivals in every bucket.
	ds, b := build(t, 60, 2)
	bucketSize := b.ch.SizeOf(0)
	for p := 0; p < int(b.ch.NumBuckets()); p++ {
		arrival := bucketSize.Times(p).Span() + 1
		for _, i := range []int{0, 30, 59} {
			res, err := access.Walk(b.ch, b.NewClient(ds.KeyAt(i)), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Fatalf("key %d not found from arrival bucket %d", ds.KeyAt(i), p)
			}
			// Access can never exceed two full cycles plus a chain.
			if res.Access > 3*b.ch.CycleLen() {
				t.Fatalf("access %d too large from arrival bucket %d", res.Access, p)
			}
		}
	}
}

func TestHighLoadFactorLongChains(t *testing.T) {
	ds, b := build(t, 300, 30)
	if b.na >= 30 {
		t.Fatalf("Na = %d, want 10", b.na)
	}
	rng := sim.NewRNG(3)
	var sum float64
	const reqs = 200
	for i := 0; i < reqs; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		arrival := sim.Time(rng.Int63n(int64(b.ch.CycleLen())))
		res, err := access.Walk(b.ch, b.NewClient(key), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatal("key not found")
		}
		sum += float64(res.Probes)
	}
	// Average chain ~30, so mean probes must be far above the low-load
	// case: roughly half a chain.
	if mean := sum / reqs; mean < 8 {
		t.Fatalf("mean probes %v with load 30, expected long chain scans", mean)
	}
}

func TestExtremeLoadFactorSingleChain(t *testing.T) {
	// LoadFactor >= Nr collapses to Na = 1: everything in one chain.
	ds, b := build(t, 50, 1000)
	if b.na != 1 {
		t.Fatalf("Na = %d, want 1", b.na)
	}
	res, err := access.Walk(b.ch, b.NewClient(ds.KeyAt(49)), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("key not found in single-chain layout")
	}
	res, err = access.Walk(b.ch, b.NewClient(ds.MissingKeyNear(0)), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("missing key found in single-chain layout")
	}
}

func TestLoadFactorOne(t *testing.T) {
	// Load factor 1: Na = Nr, mostly empty/full positions, some chains.
	ds, b := build(t, 200, 1)
	for i := 0; i < ds.Len(); i += 11 {
		res, err := access.Walk(b.ch, b.NewClient(ds.KeyAt(i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found at load 1", ds.KeyAt(i))
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	for _, lf := range []float64{0, -2, 0.5} {
		if err := (Options{LoadFactor: lf}).Validate(); err == nil {
			t.Errorf("LoadFactor %v should be invalid", lf)
		}
	}
	ds := dataset(t, 10)
	if _, err := Build(ds, Options{LoadFactor: 0}); err == nil {
		t.Fatal("Build accepted invalid options")
	}
}

func TestParamsAccounting(t *testing.T) {
	_, b := build(t, 300, 3)
	p := b.Params()
	if p["Na"] != float64(b.na) || p["records"] != 300 {
		t.Fatalf("params %v", p)
	}
	// Nc + non-empty chain heads = Nr.
	if int(p["Nc"])+b.na-b.empties != 300 {
		t.Fatalf("overflow accounting wrong: Nc=%v empties=%d Na=%d", p["Nc"], b.empties, b.na)
	}
}
