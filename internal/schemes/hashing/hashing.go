// Package hashing implements the simple hashing scheme for wireless
// broadcast (paper §2.2, after Imielinski et al. [7]).
//
// There are no separate index buckets: every data bucket carries a control
// part next to its record. The server allocates Na hash positions and maps
// keys to positions with a hash function; colliding records are inserted
// right after the bucket with the same hash value, shifting later records
// ("out of place"). The control part of each of the first Na buckets holds
// a shift value pointing at the true start of that position's chain; later
// buckets point at the beginning of the next broadcast cycle instead.
//
// A client hashes its key, dozes to the hash position (wrapping to the
// next cycle if it already passed — the paper's extra bucket read), follows
// the shift value to the chain, and scans the chain until the record or a
// bucket with a different hash value arrives (search failure).
//
// A hash position to which no record maps would break the directory
// property (chains could start before their position), so such positions
// hold an explicitly flagged empty bucket; clients treat an empty bucket
// with their hash value as a failed search. The paper assumes a hash
// function that leaves no position empty; the flag makes the scheme sound
// for any function.
package hashing

import (
	"fmt"
	"hash/fnv"
	"math"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Name is the scheme's registry name.
const Name = "hashing"

// Options configures the hashing broadcast.
type Options struct {
	// LoadFactor is the target average chain length: the server allocates
	// Na = round(Nr / LoadFactor) hash positions. Larger values shrink the
	// directory but lengthen overflow chains (paper: "the average
	// overflow").
	LoadFactor float64
}

// DefaultOptions matches the behaviour the paper's figures show: a fixed
// overflow rate independent of the record count.
func DefaultOptions() Options { return Options{LoadFactor: 3} }

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LoadFactor < 1 || math.IsNaN(o.LoadFactor) || math.IsInf(o.LoadFactor, 0) {
		return fmt.Errorf("hashing: LoadFactor %v must be at least 1", o.LoadFactor)
	}
	return nil
}

// hashBucket is one on-air bucket: control part (flags, hash value, shift
// offset, next-cycle offset) plus the data part (a full record, or zero
// padding for an empty position).
type hashBucket struct {
	seq     int
	hashVal uint32
	empty   bool
	// offsetBytes is the wire form of the shift value for directory
	// buckets (seq < Na): the byte delta from this bucket's end to its
	// position's chain head; -1 for non-directory buckets.
	offsetBytes int64
	// cycleRemain is the byte delta from this bucket's end to the start of
	// the next broadcast cycle. The paper stores it only in buckets past
	// Na; carrying it everywhere is what lets a client that tuned in at a
	// directory bucket past its hash position wait out the cycle without
	// scanning for a trailer bucket.
	cycleRemain int64
	rec         datagen.Record
	ds          *datagen.Dataset
}

// controlSize is flags (1) + hash value (4) + shift offset + next-cycle
// offset.
const controlSize = 1 + 4 + wire.OffsetSize + wire.OffsetSize

func (b *hashBucket) Size() units.ByteCount {
	return wire.HeaderSize + controlSize + units.Bytes(b.ds.Config().RecordSize)
}

func (b *hashBucket) Kind() wire.Kind { return wire.KindHash }

func (b *hashBucket) Encode() []byte {
	w := wire.NewWriter(b.Size())
	w.Header(wire.Header{Kind: wire.KindHash, Seq: uint32(b.seq)})
	if b.empty {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(b.hashVal)
	w.Offset(b.offsetBytes)
	w.Offset(b.cycleRemain)
	if b.empty {
		w.Pad(units.Bytes(b.ds.Config().RecordSize))
	} else {
		w.Raw(b.ds.EncodeKey(b.rec.Key))
		for _, a := range b.rec.Attrs {
			w.Raw([]byte(a))
		}
	}
	return w.Bytes()
}

// Broadcast is a hash-organized broadcast cycle.
type Broadcast struct {
	ds   *datagen.Dataset
	ch   *channel.Channel
	opts Options

	na         int   // allocated hash positions
	chainStart []int // bucket index where each hash value's region begins
	recIdx     []int // record index per bucket, -1 for empty buckets
	hashOf     []uint32
	overflow   int // colliding (shifted) buckets, the paper's Nc
	empties    int
}

// Build constructs the hashing broadcast for a dataset.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	na := int(math.Round(float64(ds.Len()) / opts.LoadFactor))
	if na < 1 {
		na = 1
	}
	b := &Broadcast{ds: ds, opts: opts, na: na, chainStart: make([]int, na)}

	// Bucket records by hash value, preserving key order within chains.
	chains := make([][]int, na)
	for i := 0; i < ds.Len(); i++ {
		h := b.hashKey(ds.KeyAt(i))
		chains[h] = append(chains[h], i)
	}

	// Physical layout: each hash value's chain (or an empty bucket) in
	// hash-value order. The directory property chainStart[h] >= h holds
	// because every value occupies at least one bucket.
	var buckets []*hashBucket
	for h := 0; h < na; h++ {
		b.chainStart[h] = len(buckets)
		if len(chains[h]) == 0 {
			b.empties++
			buckets = append(buckets, &hashBucket{seq: len(buckets), hashVal: uint32(h), empty: true, ds: ds})
			b.recIdx = append(b.recIdx, -1)
			b.hashOf = append(b.hashOf, uint32(h))
			continue
		}
		b.overflow += len(chains[h]) - 1
		for _, rec := range chains[h] {
			buckets = append(buckets, &hashBucket{seq: len(buckets), hashVal: uint32(h), rec: ds.Record(rec), ds: ds})
			b.recIdx = append(b.recIdx, rec)
			b.hashOf = append(b.hashOf, uint32(h))
		}
	}

	// Fill in wire control offsets now that positions are final.
	chBuckets := make([]channel.Bucket, len(buckets))
	bucketSize := buckets[0].Size()
	total := bucketSize.Times(len(buckets))
	for p, bk := range buckets {
		endOfP := bucketSize.Times(p + 1)
		bk.cycleRemain = int64(total - endOfP)
		if p < na {
			// Shift value: byte delta from this bucket's end to the start
			// of position p's chain (possibly this very bucket: delta of
			// one full wrap is never needed since chainStart[p] >= p).
			delta := bucketSize.Times(b.chainStart[p]) - endOfP
			if delta < 0 {
				delta = 0 // chain starts at or before this bucket: it IS the chain head
			}
			bk.offsetBytes = int64(delta)
		} else {
			bk.offsetBytes = -1
		}
		chBuckets[p] = bk
	}
	ch, err := channel.Build(chBuckets)
	if err != nil {
		return nil, fmt.Errorf("hashing: %w", err)
	}
	b.ch = ch
	return b, nil
}

// hashKey maps a key to a hash position via FNV-64a over the encoded key.
func (b *Broadcast) hashKey(key uint64) int {
	h := fnv.New64a()
	h.Write(b.ds.EncodeKey(key))
	return int(h.Sum64() % uint64(b.na))
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":     float64(b.ds.Len()),
		"cycle_bytes": float64(b.ch.CycleLen()),
		"Na":          float64(b.na),
		"Nc":          float64(b.overflow),
		"empties":     float64(b.empties),
		"load_factor": b.opts.LoadFactor,
	}
}

// NewClient implements access.Broadcast.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{b: b, key: key, target: b.hashKey(key)}
}

type clientPhase uint8

const (
	phaseSeek  clientPhase = iota // locating the hash position
	phaseChain                    // scanning the chain at the shift position
)

type client struct {
	b         *Broadcast
	key       uint64
	target    int // H(K): hash position, also the bucket index of the directory entry
	phase     clientPhase
	chainRead int // buckets examined in the chain phase
}

// Rewind implements access.Rewinder: after Rewind(k) the client is
// indistinguishable from NewClient(k).
func (c *client) Rewind(key uint64) {
	c.key = key
	c.target = c.b.hashKey(key)
	c.phase = phaseSeek
	c.chainRead = 0
}

func (c *client) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	b := c.b
	ch := b.ch
	tgt := units.Index(c.target)
	switch c.phase {
	case phaseSeek:
		switch {
		case i == tgt:
			// At the hash position: follow the shift value to the chain.
			start := units.Index(b.chainStart[c.target])
			if start == i {
				// This bucket heads the chain; examine it immediately.
				c.phase = phaseChain
				return c.examine(i, end)
			}
			c.phase = phaseChain
			return access.DozeAt(start, ch.NextOccurrence(start, end))
		case i < tgt:
			// Hash position still ahead in this cycle.
			return access.DozeAt(tgt, ch.NextOccurrence(tgt, end))
		default:
			// Missed it: wait for the beginning of the next broadcast and
			// probe again from there (the paper's extra bucket read).
			return access.DozeAt(0, ch.NextCycleStart(end))
		}
	case phaseChain:
		return c.examine(i, end)
	}
	panic("hashing: invalid client phase")
}

// examine checks one chain bucket: success, continue, or chain end.
func (c *client) examine(i units.BucketIndex, _ sim.Time) access.Step {
	b := c.b
	c.chainRead++
	if units.Count(c.chainRead) > b.ch.NumBuckets() {
		// A full cycle of chain reads without a terminator can only happen
		// when every bucket shares one hash value; the record is absent.
		return access.Done(false)
	}
	if int(b.hashOf[i]) != c.target {
		// A bucket with a different hashing value ends the chain: failure.
		return access.Done(false)
	}
	if b.recIdx[i] < 0 {
		// Explicitly empty position: nothing hashes here.
		return access.Done(false)
	}
	if b.ds.KeyAt(b.recIdx[i]) == c.key {
		return access.Done(true)
	}
	return access.Next()
}
