package treeidx

import (
	"testing"

	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/units"
)

func TestComputeDefaults(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(17500))
	if err != nil {
		t.Fatal(err)
	}
	layout, tree, err := Compute(ds)
	if err != nil {
		t.Fatal(err)
	}
	if layout.BucketSize != 13+500 {
		t.Fatalf("bucket size %d, want 513", layout.BucketSize)
	}
	if layout.Fanout < 8 || layout.Fanout > 20 {
		t.Fatalf("fanout %d outside plausible range for 25-byte keys", layout.Fanout)
	}
	if tree.Levels != layout.Levels {
		t.Fatalf("layout levels %d != tree levels %d", layout.Levels, tree.Levels)
	}
	if layout.CtrlSlots < layout.Levels-1 {
		t.Fatalf("ctrl slots %d cannot hold %d ancestor levels", layout.CtrlSlots, layout.Levels-1)
	}
}

func TestComputeFixpointConsistency(t *testing.T) {
	// The encoded index bucket must actually fit in BucketSize for every
	// ratio the experiments sweep.
	for _, keySize := range []int{8, 10, 25, 50, 100} {
		cfg := datagen.Config{NumRecords: 2000, RecordSize: 500, KeySize: keySize, NumAttributes: 2, Seed: 1}
		ds, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		layout, tree, err := Compute(ds)
		if err != nil {
			t.Fatalf("keySize %d: %v", keySize, err)
		}
		used := 5 + 8 + keySize + 8 + 4 + layout.CtrlSlots*8 + layout.Fanout*(keySize+8)
		if units.Bytes(used) > layout.BucketSize {
			t.Fatalf("keySize %d: index layout needs %d bytes, bucket is %d", keySize, used, layout.BucketSize)
		}
		if tree.Fanout != layout.Fanout {
			t.Fatalf("keySize %d: tree fanout %d != layout %d", keySize, tree.Fanout, layout.Fanout)
		}
	}
}

func TestComputeRejectsHugeKeys(t *testing.T) {
	cfg := datagen.Config{NumRecords: 100, RecordSize: 300, KeySize: 200, NumAttributes: 1, Seed: 1}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compute(ds); err == nil {
		t.Fatal("Compute accepted a key too large for any fanout")
	}
}

func TestDeltaBytes(t *testing.T) {
	ci := &CycleInfo{NumBuckets: 10, BucketSize: 100}
	cases := []struct {
		from, to int
		want     int64
	}{
		{0, 1, 0},   // adjacent: zero gap
		{0, 5, 400}, // four buckets between
		{5, 0, 400}, // wrap: buckets 6..9
		{3, 3, 900}, // self: a full cycle minus own size
		{9, 0, 0},   // last to first
	}
	for _, c := range cases {
		if got := ci.DeltaBytes(c.from, c.to); got != c.want {
			t.Errorf("DeltaBytes(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestIndexBucketEncodeDecodeRoundTrip(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(500))
	if err != nil {
		t.Fatal(err)
	}
	layout, tree, err := Compute(ds)
	if err != nil {
		t.Fatal(err)
	}
	info := &CycleInfo{NumBuckets: 100, BucketSize: layout.BucketSize}
	node := tree.ByLevel[1][0]
	ib := &IndexBucket{
		Seq:     7,
		Node:    node,
		LastKey: ds.KeyAt(3),
		NextSeg: 20,
		Ctrl:    []int{15},
		Local:   make([]int, len(node.Keys)),
		Layout:  layout,
		Info:    info,
		DS:      ds,
	}
	for j := range ib.Local {
		ib.Local[j] = 30 + j
	}
	enc := ib.Encode()
	if units.Bytes(len(enc)) != layout.BucketSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), layout.BucketSize)
	}
	d, err := DecodeIndex(enc, layout)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 7 || d.LastKey != ds.KeyAt(3) {
		t.Fatalf("decoded seq/lastKey %d/%d", d.Seq, d.LastKey)
	}
	if d.NextSeg != info.DeltaBytes(7, 20) {
		t.Fatalf("NextSeg delta %d", d.NextSeg)
	}
	if d.NextCycle != info.DeltaBytes(7, 0) {
		t.Fatalf("NextCycle delta %d", d.NextCycle)
	}
	if len(d.Ctrl) != 1 || d.Ctrl[0] != info.DeltaBytes(7, 15) {
		t.Fatalf("Ctrl %v", d.Ctrl)
	}
	if len(d.Keys) != len(node.Keys) {
		t.Fatalf("decoded %d entries, want %d", len(d.Keys), len(node.Keys))
	}
	for j, k := range node.Keys {
		if d.Keys[j] != k || d.Local[j] != info.DeltaBytes(7, 30+j) {
			t.Fatalf("entry %d mismatch", j)
		}
	}
}

func TestDataBucketEncode(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(50))
	if err != nil {
		t.Fatal(err)
	}
	layout, _, err := Compute(ds)
	if err != nil {
		t.Fatal(err)
	}
	info := &CycleInfo{NumBuckets: 60, BucketSize: layout.BucketSize}
	db := &DataBucket{Seq: 10, RecIdx: 5, NextSeg: 55, Layout: layout, Info: info, DS: ds}
	enc := db.Encode()
	if units.Bytes(len(enc)) != layout.BucketSize {
		t.Fatalf("data bucket encoded %d bytes, want %d", len(enc), layout.BucketSize)
	}
	if db.Size() != layout.BucketSize {
		t.Fatal("Size mismatch")
	}
}

func TestDecodeIndexRejectsWrongKind(t *testing.T) {
	ds, err := datagen.Generate(datagen.Default(50))
	if err != nil {
		t.Fatal(err)
	}
	layout, _, err := Compute(ds)
	if err != nil {
		t.Fatal(err)
	}
	info := &CycleInfo{NumBuckets: 60, BucketSize: layout.BucketSize}
	db := &DataBucket{Seq: 0, RecIdx: 0, NextSeg: 1, Layout: layout, Info: info, DS: ds}
	if _, err := DecodeIndex(db.Encode(), layout); err == nil {
		t.Fatal("DecodeIndex accepted a data bucket")
	}
}
