// Package treeidx holds the machinery shared by the two B+-tree-based
// wireless indexing schemes, (1,m) indexing and distributed indexing [6]:
// the uniform bucket layout, the fanout/depth fixpoint, and the index/data
// bucket wire formats.
//
// Both schemes broadcast fixed-size buckets (the paper's analysis measures
// both index and data buckets in the same Dt units). A data bucket is the
// common header, the offset to the next index segment, and the record. An
// index bucket replaces the record payload with the fields of the paper's
// Figure 2: last broadcast key, offset to the next broadcast cycle, control
// indices (one per replicated ancestor level) and local indices (up to n
// key/offset pairs).
//
// The fanout n and tree depth k are interdependent — deeper trees need
// more control slots, which shrink the room for local entries, which
// lowers n, which deepens the tree — so the layout is computed as a
// fixpoint. This is also what gives the record/key-ratio experiments
// (paper §5.2) their bite: big keys crater the fanout.
package treeidx

import (
	"fmt"

	"github.com/airindex/airindex/internal/btree"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Layout describes the uniform bucket geometry for a tree-indexed cycle.
type Layout struct {
	// BucketSize is the byte size of every bucket on the channel.
	BucketSize units.ByteCount
	// Fanout is n, the number of local index entries per index bucket.
	Fanout int
	// Levels is k, the depth of the index tree built at this fanout.
	Levels int
	// CtrlSlots is the number of control-index offsets reserved per index
	// bucket (one per possible replicated ancestor level, k-1).
	CtrlSlots int
	// KeySize is the encoded key width.
	KeySize int
}

// fixedIndexOverhead is the index bucket's non-entry, non-key byte cost:
// next-index-segment offset, next-cycle offset, and the two entry counts.
const fixedIndexOverhead = wire.OffsetSize + wire.OffsetSize + 2 + 2

// entrySize returns the byte cost of one local index entry.
func entrySize(keySize int) units.ByteCount { return units.Bytes(keySize) + wire.OffsetSize }

// Compute derives the bucket layout and builds the index tree for a
// dataset, iterating fanout and depth to their fixpoint.
func Compute(ds *datagen.Dataset) (Layout, *btree.Tree, error) {
	cfg := ds.Config()
	bucketSize := wire.HeaderSize + wire.OffsetSize + units.Bytes(cfg.RecordSize)

	keys := make([]uint64, ds.Len())
	for i := range keys {
		keys[i] = ds.KeyAt(i)
	}

	levels := 1
	for iter := 0; ; iter++ {
		if iter > 64 {
			return Layout{}, nil, fmt.Errorf("treeidx: layout fixpoint did not converge")
		}
		ctrlSlots := levels - 1
		space := bucketSize - wire.HeaderSize - units.Bytes(cfg.KeySize) - fixedIndexOverhead - wire.OffsetSize.Times(ctrlSlots)
		fanout := space.Div(entrySize(cfg.KeySize))
		if fanout < 2 {
			return Layout{}, nil, fmt.Errorf(
				"treeidx: key size %d too large for record size %d: index bucket fits %d entries, need 2",
				cfg.KeySize, cfg.RecordSize, fanout)
		}
		tree, err := btree.Build(keys, fanout)
		if err != nil {
			return Layout{}, nil, fmt.Errorf("treeidx: %w", err)
		}
		if tree.Levels <= levels {
			return Layout{
				BucketSize: bucketSize,
				Fanout:     fanout,
				Levels:     tree.Levels,
				CtrlSlots:  ctrlSlots,
				KeySize:    cfg.KeySize,
			}, tree, nil
		}
		levels = tree.Levels
	}
}

// CycleInfo is shared by all buckets of one cycle so wire offsets (byte
// deltas) can be derived from bucket indices. It is filled in by the
// builder once the channel length is known.
type CycleInfo struct {
	// NumBuckets is the cycle's bucket count.
	NumBuckets int
	// BucketSize is the uniform bucket size.
	BucketSize units.ByteCount
}

// DeltaBytes returns the on-air byte distance from the END of bucket `from`
// to the START of bucket `to`, wrapping around the cycle. A bucket pointing
// at itself means "one full cycle minus my own length ahead".
func (ci *CycleInfo) DeltaBytes(from, to int) int64 {
	d := (to - from - 1) % ci.NumBuckets
	if d < 0 {
		d += ci.NumBuckets
	}
	return int64(ci.BucketSize.Times(d))
}

// NoKey is the wire sentinel for "no data broadcast yet this cycle" in the
// last-broadcast-key field.
const NoKey = uint64(0)

// IndexBucket is one occurrence of an index node on the channel. The same
// tree node appears as multiple IndexBucket instances when its level is
// replicated (distributed indexing) or the whole tree is repeated ((1,m)
// indexing); each instance carries occurrence-specific offsets.
type IndexBucket struct {
	// Seq is the bucket's position in the cycle.
	Seq int
	// Node is the tree node this bucket carries.
	Node *btree.Node
	// LastKey is the largest data key broadcast before this bucket in the
	// cycle (the paper's "last broadcast key"), or NoKey.
	LastKey uint64
	// NextSeg is the bucket index of the next index segment's first bucket.
	NextSeg int
	// Ctrl[l] is the bucket index of the next occurrence of this node's
	// ancestor at level l (control index). len(Ctrl) == Node.Level.
	Ctrl []int
	// Local[j] is the bucket index this node's j-th entry points at: the
	// next occurrence of child j (internal nodes) or the data bucket of
	// entry j (leaf index nodes).
	Local []int

	Layout Layout
	Info   *CycleInfo
	DS     *datagen.Dataset
}

// Size implements channel.Bucket.
func (b *IndexBucket) Size() units.ByteCount { return b.Layout.BucketSize }

// Kind implements channel.Bucket.
func (b *IndexBucket) Kind() wire.Kind { return wire.KindIndex }

// Encode implements channel.Bucket, producing the Figure-2 bucket layout.
func (b *IndexBucket) Encode() []byte {
	w := wire.NewWriter(b.Layout.BucketSize)
	w.Header(wire.Header{Kind: wire.KindIndex, Seq: uint32(b.Seq)})
	w.Offset(b.Info.DeltaBytes(b.Seq, b.NextSeg))
	w.Raw(datagen.EncodeKeyWidth(b.LastKey, b.Layout.KeySize))
	w.Offset(b.Info.DeltaBytes(b.Seq, 0)) // next broadcast cycle start
	w.U16(uint16(len(b.Local)))
	w.U16(uint16(len(b.Ctrl)))
	for l := 0; l < b.Layout.CtrlSlots; l++ {
		if l < len(b.Ctrl) {
			w.Offset(b.Info.DeltaBytes(b.Seq, b.Ctrl[l]))
		} else {
			w.Offset(-1)
		}
	}
	for j := 0; j < b.Layout.Fanout; j++ {
		if j < len(b.Local) {
			w.Raw(datagen.EncodeKeyWidth(b.Node.Keys[j], b.Layout.KeySize))
			w.Offset(b.Info.DeltaBytes(b.Seq, b.Local[j]))
		} else {
			w.Pad(entrySize(b.Layout.KeySize))
		}
	}
	w.Pad(b.Layout.BucketSize - w.Len())
	return w.Bytes()
}

// DecodedIndex is the client-visible content of an index bucket, used by
// wire round-trip tests.
type DecodedIndex struct {
	Seq       uint32
	NextSeg   int64
	LastKey   uint64
	NextCycle int64
	Ctrl      []int64
	Keys      []uint64
	Local     []int64
}

// DecodeIndex parses an encoded index bucket.
func DecodeIndex(p []byte, layout Layout) (DecodedIndex, error) {
	r := wire.NewReader(p)
	h := r.Header()
	var d DecodedIndex
	if h.Kind != wire.KindIndex {
		return d, fmt.Errorf("treeidx: bucket kind %v, want index", h.Kind)
	}
	d.Seq = h.Seq
	d.NextSeg = r.Offset()
	lastKey, err := datagen.DecodeKey(r.Raw(units.Bytes(layout.KeySize)))
	if err != nil {
		return d, err
	}
	d.LastKey = lastKey
	d.NextCycle = r.Offset()
	numLocal := int(r.U16())
	numCtrl := int(r.U16())
	for l := 0; l < layout.CtrlSlots; l++ {
		v := r.Offset()
		if l < numCtrl {
			d.Ctrl = append(d.Ctrl, v)
		}
	}
	for j := 0; j < layout.Fanout; j++ {
		if j < numLocal {
			k, err := datagen.DecodeKey(r.Raw(units.Bytes(layout.KeySize)))
			if err != nil {
				return d, err
			}
			d.Keys = append(d.Keys, k)
			d.Local = append(d.Local, r.Offset())
		} else {
			r.Skip(entrySize(layout.KeySize))
		}
	}
	return d, r.Err()
}

// DataBucket is one record on a tree-indexed channel.
type DataBucket struct {
	// Seq is the bucket's position in the cycle.
	Seq int
	// RecIdx is the dataset record index.
	RecIdx int
	// NextSeg is the bucket index of the next index segment's first bucket.
	NextSeg int

	Layout Layout
	Info   *CycleInfo
	DS     *datagen.Dataset
}

// Size implements channel.Bucket.
func (b *DataBucket) Size() units.ByteCount { return b.Layout.BucketSize }

// Kind implements channel.Bucket.
func (b *DataBucket) Kind() wire.Kind { return wire.KindData }

// Encode implements channel.Bucket.
func (b *DataBucket) Encode() []byte {
	w := wire.NewWriter(b.Layout.BucketSize)
	w.Header(wire.Header{Kind: wire.KindData, Seq: uint32(b.Seq)})
	w.Offset(b.Info.DeltaBytes(b.Seq, b.NextSeg))
	rec := b.DS.Record(b.RecIdx)
	w.Raw(b.DS.EncodeKey(rec.Key))
	for _, a := range rec.Attrs {
		w.Raw([]byte(a))
	}
	return w.Bytes()
}
