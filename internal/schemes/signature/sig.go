// Package signature implements signature indexing for wireless broadcast
// (paper §2.3, after Lee & Lee [8]).
//
// A signature is an abstraction of a record: every field (the key and each
// attribute) is hashed into a sparse random bit string and the strings are
// superimposed (bitwise OR) into the record signature. A query forms its
// own signature from the search key; any record whose signature covers the
// query signature *possibly* matches and must be downloaded to check — a
// covering signature with a non-matching key is a false drop.
//
// Three schemes are provided: the simple scheme the paper evaluates (one
// signature bucket before every data bucket), plus the integrated and
// multi-level schemes of [8] as extensions (group signatures that let
// clients skip whole record groups).
package signature

import (
	"fmt"
	"hash/fnv"
)

// Options configures signature generation and the group-based extensions.
type Options struct {
	// SigBytes is the record signature length in bytes (the paper's
	// tradeoff knob: shorter signatures shrink the cycle but raise the
	// false-drop rate).
	SigBytes int
	// BitsPerField is how many bits each hashed field sets in the
	// signature (the weight of the superimposed code).
	BitsPerField int
	// GroupSize is the number of records per group for the integrated and
	// multi-level schemes.
	GroupSize int
	// GroupSigBytes is the integrated (group) signature length in bytes.
	GroupSigBytes int
}

// DefaultOptions returns sensible defaults: 16-byte record signatures with
// weight 8, and 16-record groups with 32-byte integrated signatures.
func DefaultOptions() Options {
	return Options{SigBytes: 16, BitsPerField: 8, GroupSize: 16, GroupSigBytes: 32}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.SigBytes < 1:
		return fmt.Errorf("signature: SigBytes %d must be positive", o.SigBytes)
	case o.BitsPerField < 1:
		return fmt.Errorf("signature: BitsPerField %d must be positive", o.BitsPerField)
	case o.BitsPerField > o.SigBytes*8:
		return fmt.Errorf("signature: BitsPerField %d exceeds signature bits %d", o.BitsPerField, o.SigBytes*8)
	case o.GroupSize < 1:
		return fmt.Errorf("signature: GroupSize %d must be positive", o.GroupSize)
	case o.GroupSigBytes < 1:
		return fmt.Errorf("signature: GroupSigBytes %d must be positive", o.GroupSigBytes)
	}
	return nil
}

// Sig is a fixed-length superimposed-code signature.
type Sig []byte

// fieldSig sets weight pseudo-random bits derived from the field bytes in
// an nbytes-long signature. The bit positions come from a splitmix64
// sequence seeded by the FNV-64a hash of the field, so generation is
// deterministic and well spread.
func fieldSig(field []byte, nbytes, weight int) Sig {
	s := make(Sig, nbytes)
	h := fnv.New64a()
	h.Write(field)
	state := h.Sum64()
	bits := uint64(nbytes * 8)
	for i := 0; i < weight; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		pos := z % bits
		s[pos/8] |= 1 << (pos % 8)
	}
	return s
}

// Superimpose ORs other into s in place.
func (s Sig) Superimpose(other Sig) {
	for i := range s {
		s[i] |= other[i]
	}
}

// Covers reports whether every bit of q is also set in s — the signature
// match test. A covering record signature means "possibly the requested
// record".
func (s Sig) Covers(q Sig) bool {
	for i := range s {
		if s[i]&q[i] != q[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits, used by tests and the
// false-drop estimate.
func (s Sig) PopCount() int {
	n := 0
	for _, b := range s {
		for b != 0 {
			n += int(b & 1)
			b >>= 1
		}
	}
	return n
}

// RecordSig builds the signature of a record from its encoded key and
// attribute fields.
func RecordSig(fields [][]byte, nbytes, weight int) Sig {
	s := make(Sig, nbytes)
	for _, f := range fields {
		s.Superimpose(fieldSig(f, nbytes, weight))
	}
	return s
}

// QuerySig builds the signature a client generates for a key-equality
// query: the hash of the key field alone.
func QuerySig(keyField []byte, nbytes, weight int) Sig {
	return fieldSig(keyField, nbytes, weight)
}
