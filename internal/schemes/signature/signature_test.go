package signature

import (
	"testing"
	"testing/quick"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

func dataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(n))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSigGenerationDeterministic(t *testing.T) {
	a := fieldSig([]byte("hello"), 16, 8)
	b := fieldSig([]byte("hello"), 16, 8)
	c := fieldSig([]byte("world"), 16, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same field produced different signatures")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different fields produced identical signatures")
	}
}

func TestSigWeight(t *testing.T) {
	s := fieldSig([]byte("field"), 32, 20)
	if pc := s.PopCount(); pc < 15 || pc > 20 {
		t.Fatalf("weight-20 signature has %d bits set (collisions may drop a few, not this many)", pc)
	}
}

func TestCoversProperties(t *testing.T) {
	f := func(raw []byte, extra []byte) bool {
		s := RecordSig([][]byte{raw}, 8, 6)
		// A signature covers itself and covers the signature of its own field.
		if !s.Covers(s) {
			return false
		}
		sup := RecordSig([][]byte{raw, extra}, 8, 6)
		return sup.Covers(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{SigBytes: 0, BitsPerField: 1, GroupSize: 1, GroupSigBytes: 1},
		{SigBytes: 2, BitsPerField: 0, GroupSize: 1, GroupSigBytes: 1},
		{SigBytes: 2, BitsPerField: 17, GroupSize: 1, GroupSigBytes: 1},
		{SigBytes: 2, BitsPerField: 2, GroupSize: 0, GroupSigBytes: 1},
		{SigBytes: 2, BitsPerField: 2, GroupSize: 4, GroupSigBytes: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleChannelLayout(t *testing.T) {
	ds := dataset(t, 100)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ch := b.Channel()
	if ch.NumBuckets() != 200 {
		t.Fatalf("buckets = %d, want 200", ch.NumBuckets())
	}
	if ch.CountKind(wire.KindSignature) != 100 || ch.CountKind(wire.KindData) != 100 {
		t.Fatal("bucket kind counts wrong")
	}
	for i := 0; i < int(ch.NumBuckets()); i++ {
		bk := ch.Bucket(units.Index(i))
		if units.Bytes(len(bk.Encode())) != bk.Size() {
			t.Fatalf("bucket %d: encode/size mismatch", i)
		}
		wantKind := wire.KindSignature
		if i%2 == 1 {
			wantKind = wire.KindData
		}
		if bk.Kind() != wantKind {
			t.Fatalf("bucket %d kind %v, want %v", i, bk.Kind(), wantKind)
		}
	}
}

func TestSimpleFindsEveryKeyNoFalseNegatives(t *testing.T) {
	ds := dataset(t, 300)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	for i := 0; i < ds.Len(); i += 7 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("key %d not found (false negative: superimposition broken)", ds.KeyAt(i))
		}
	}
}

func TestSimpleMissingKeyScansAllSignatures(t *testing.T) {
	ds := dataset(t, 150)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(75)), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("missing key reported found")
	}
	// At least every signature bucket must have been read.
	if res.Probes < ds.Len() {
		t.Fatalf("missing key probes = %d, want >= %d", res.Probes, ds.Len())
	}
}

func TestSimpleTuningSkipsData(t *testing.T) {
	// With long signatures false drops are essentially zero, so tuning for
	// a key at position i from cycle start = (i+1) signature reads + 1 data
	// read.
	ds := dataset(t, 200)
	opts := DefaultOptions()
	opts.SigBytes = 32
	b, err := Build(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	sigSize := b.Channel().SizeOf(0)
	dataSize := b.Channel().SizeOf(1)
	for _, i := range []int{0, 50, 199} {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := sigSize.Times(i+1) + dataSize
		if res.Tuning != want {
			t.Fatalf("key %d tuning %d, want %d (false drop with 256-bit sigs?)", i, res.Tuning, want)
		}
	}
}

func TestShortSignaturesCauseFalseDrops(t *testing.T) {
	// 1-byte signatures with weight 4 collide massively; scanning for the
	// last record must download some wrong buckets along the way.
	ds := dataset(t, 400)
	opts := DefaultOptions()
	opts.SigBytes = 1
	opts.BitsPerField = 4
	b, err := Build(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	last := ds.Len() - 1
	res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(last)), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("key not found")
	}
	// Probes = sig reads + data reads; data reads > 1 indicates false drops.
	dataReads := res.Probes - (last + 1)
	if dataReads < 2 {
		t.Fatalf("expected false drops with 8-bit signatures, got %d data reads", dataReads)
	}
}

func TestIntegratedFindsEveryKey(t *testing.T) {
	ds := dataset(t, 256)
	b, err := BuildIntegrated(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(4)
	for i := 0; i < ds.Len(); i += 5 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("integrated: key %d not found", ds.KeyAt(i))
		}
	}
}

func TestIntegratedMissingKeyFails(t *testing.T) {
	ds := dataset(t, 256)
	b, err := BuildIntegrated(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 100, 255} {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(i)), 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatal("integrated: missing key reported found")
		}
	}
}

func TestIntegratedCycleShorterThanSimple(t *testing.T) {
	ds := dataset(t, 512)
	simple, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	integ, err := BuildIntegrated(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if integ.Channel().CycleLen() >= simple.Channel().CycleLen() {
		t.Fatalf("integrated cycle %d should be shorter than simple %d",
			integ.Channel().CycleLen(), simple.Channel().CycleLen())
	}
}

func TestMultiLevelFindsEveryKey(t *testing.T) {
	ds := dataset(t, 256)
	b, err := BuildMultiLevel(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	for i := 0; i < ds.Len(); i += 5 {
		arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
		res, err := access.Walk(b.Channel(), b.NewClient(ds.KeyAt(i)), arrival, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("multilevel: key %d not found", ds.KeyAt(i))
		}
	}
}

func TestMultiLevelMissingKeyFails(t *testing.T) {
	ds := dataset(t, 200)
	b, err := BuildMultiLevel(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 99, 199} {
		res, err := access.Walk(b.Channel(), b.NewClient(ds.MissingKeyNear(i)), 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatal("multilevel: missing key reported found")
		}
	}
}

func TestMultiLevelTuningBeatsSimpleOnAverage(t *testing.T) {
	// Group skipping should reduce tuning time versus the simple scheme
	// for random present keys.
	ds := dataset(t, 600)
	simple, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ml, err := BuildMultiLevel(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(21)
	var sumSimple, sumML units.ByteCount
	const n = 300
	for i := 0; i < n; i++ {
		key := ds.KeyAt(rng.Intn(ds.Len()))
		a1 := sim.Time(rng.Int63n(int64(simple.Channel().CycleLen())))
		a2 := sim.Time(rng.Int63n(int64(ml.Channel().CycleLen())))
		r1, err := access.Walk(simple.Channel(), simple.NewClient(key), a1, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := access.Walk(ml.Channel(), ml.NewClient(key), a2, 0)
		if err != nil {
			t.Fatal(err)
		}
		sumSimple += r1.Tuning
		sumML += r2.Tuning
	}
	if sumML >= sumSimple {
		t.Fatalf("multi-level mean tuning %d should beat simple %d", sumML.Div(units.Bytes(n)), sumSimple.Div(units.Bytes(n)))
	}
}

func TestBroadcastInterfaces(t *testing.T) {
	ds := dataset(t, 64)
	var bs []access.Broadcast
	b1, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := BuildIntegrated(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b3, err := BuildMultiLevel(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bs = append(bs, b1, b2, b3)
	for _, b := range bs {
		if b.Name() == "" || b.Channel() == nil {
			t.Fatal("broadcast interface incomplete")
		}
		if !b.Contains(ds.KeyAt(5)) || b.Contains(ds.MissingKeyNear(5)) {
			t.Fatalf("%s: Contains wrong", b.Name())
		}
		if b.Params()["cycle_bytes"] != float64(b.Channel().CycleLen()) {
			t.Fatalf("%s: params wrong", b.Name())
		}
	}
}
