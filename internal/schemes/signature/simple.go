package signature

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Name is the simple scheme's registry name.
const Name = "signature"

// sigBucket carries one record signature; it precedes the record's data
// bucket on the channel.
type sigBucket struct {
	seq int
	sig Sig
}

func (b *sigBucket) Size() units.ByteCount { return wire.HeaderSize + units.Bytes(len(b.sig)) }
func (b *sigBucket) Kind() wire.Kind       { return wire.KindSignature }

func (b *sigBucket) Encode() []byte {
	w := wire.NewWriter(b.Size())
	w.Header(wire.Header{Kind: wire.KindSignature, Seq: uint32(b.seq)})
	w.Raw(b.sig)
	return w.Bytes()
}

// dataBucket carries one full record.
type dataBucket struct {
	seq int
	rec datagen.Record
	ds  *datagen.Dataset
}

func (b *dataBucket) Size() units.ByteCount {
	return wire.HeaderSize + units.Bytes(b.ds.Config().RecordSize)
}
func (b *dataBucket) Kind() wire.Kind { return wire.KindData }

func (b *dataBucket) Encode() []byte {
	w := wire.NewWriter(b.Size())
	w.Header(wire.Header{Kind: wire.KindData, Seq: uint32(b.seq)})
	w.Raw(b.ds.EncodeKey(b.rec.Key))
	for _, a := range b.rec.Attrs {
		w.Raw([]byte(a))
	}
	return w.Bytes()
}

// Broadcast is the simple signature-indexed cycle: sig(0), data(0),
// sig(1), data(1), ...
type Broadcast struct {
	ds   *datagen.Dataset
	ch   *channel.Channel
	opts Options
	sigs []Sig
}

// Build constructs the simple signature broadcast.
func Build(ds *datagen.Dataset, opts Options) (*Broadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sigs := make([]Sig, ds.Len())
	buckets := make([]channel.Bucket, 0, 2*ds.Len())
	for i := 0; i < ds.Len(); i++ {
		rec := ds.Record(i)
		fields := make([][]byte, 0, 1+len(rec.Attrs))
		fields = append(fields, ds.EncodeKey(rec.Key))
		for _, a := range rec.Attrs {
			fields = append(fields, []byte(a))
		}
		sigs[i] = RecordSig(fields, opts.SigBytes, opts.BitsPerField)
		buckets = append(buckets,
			&sigBucket{seq: 2 * i, sig: sigs[i]},
			&dataBucket{seq: 2*i + 1, rec: rec, ds: ds},
		)
	}
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("signature: %w", err)
	}
	return &Broadcast{ds: ds, ch: ch, opts: opts, sigs: sigs}, nil
}

// Name implements access.Broadcast.
func (b *Broadcast) Name() string { return Name }

// Channel implements access.Broadcast.
func (b *Broadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *Broadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *Broadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":        float64(b.ds.Len()),
		"cycle_bytes":    float64(b.ch.CycleLen()),
		"sig_bytes":      float64(b.opts.SigBytes),
		"bits_per_field": float64(b.opts.BitsPerField),
	}
}

// SigOf exposes record i's signature for tests and the extensions.
func (b *Broadcast) SigOf(i int) Sig { return b.sigs[i] }

// NewClient implements access.Broadcast: read each signature bucket; on a
// covering signature read the following data bucket and check the key
// (false drops keep scanning); doze over data buckets whose signatures do
// not match.
func (b *Broadcast) NewClient(key uint64) access.Client {
	return &client{
		b:     b,
		query: QuerySig(b.ds.EncodeKey(key), b.opts.SigBytes, b.opts.BitsPerField),
		match: func(rec int) bool { return b.ds.KeyAt(rec) == key },
	}
}

// NewAttrClient implements access.AttrQuerier: record signatures
// superimpose every field, so an attribute-equality query runs the same
// protocol with a query signature hashed from the attribute value instead
// of the key — the multi-attribute filtering of [8].
func (b *Broadcast) NewAttrClient(attr int, value string) access.Client {
	return &client{
		b:     b,
		query: QuerySig([]byte(value), b.opts.SigBytes, b.opts.BitsPerField),
		match: func(rec int) bool {
			attrs := b.ds.Record(rec).Attrs
			return attr >= 0 && attr < len(attrs) && attrs[attr] == value
		},
	}
}

type client struct {
	b       *Broadcast
	query   Sig
	match   func(rec int) bool
	scanned int // signature buckets examined
}

func (c *client) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	ch := c.b.ch
	if i%2 == 0 {
		// Signature bucket for record i/2.
		c.scanned++
		if c.b.sigs[i/2].Covers(c.query) {
			return access.Next() // download the data bucket that follows
		}
		if c.scanned >= c.b.ds.Len() {
			return access.Done(false)
		}
		// Doze over the data bucket to the next signature bucket.
		next := i.Step(2, ch.NumBuckets())
		return access.DozeAt(next, ch.NextOccurrence(next, end))
	}
	// Data bucket for record i/2: either the request or a false drop.
	if c.match(int(i / 2)) {
		return access.Done(true)
	}
	if c.scanned >= c.b.ds.Len() {
		return access.Done(false)
	}
	next := i.Next(ch.NumBuckets())
	return access.DozeAt(next, ch.NextOccurrence(next, end))
}
