package signature

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// IntegratedName is the integrated scheme's registry name.
const IntegratedName = "signature-integrated"

// An integrated signature superimposes the signatures of a whole group of
// consecutive records ([8]). The cycle is [isig(g0), data..., isig(g1),
// data...]: one group signature bucket before each group of GroupSize data
// buckets. A non-covering group signature lets the client doze over the
// entire group; a covering one forces it to scan the group's records.

// IntegratedBroadcast is the integrated-signature cycle.
type IntegratedBroadcast struct {
	ds        *datagen.Dataset
	ch        *channel.Channel
	opts      Options
	groupSigs []Sig
	// bucket metadata, parallel to the channel
	groupOf  []int // group index for every bucket
	recordOf []int // record index for data buckets, -1 for signature buckets
	groups   int
	// sigStart[g] is the bucket index of group g's signature bucket.
	sigStart []int
}

// BuildIntegrated constructs the integrated-signature broadcast.
func BuildIntegrated(ds *datagen.Dataset, opts Options) (*IntegratedBroadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	b := &IntegratedBroadcast{ds: ds, opts: opts}
	var buckets []channel.Bucket
	for from := 0; from < ds.Len(); from += opts.GroupSize {
		to := from + opts.GroupSize
		if to > ds.Len() {
			to = ds.Len()
		}
		g := len(b.groupSigs)
		gsig := make(Sig, opts.GroupSigBytes)
		for i := from; i < to; i++ {
			rec := ds.Record(i)
			fields := make([][]byte, 0, 1+len(rec.Attrs))
			fields = append(fields, ds.EncodeKey(rec.Key))
			for _, a := range rec.Attrs {
				fields = append(fields, []byte(a))
			}
			gsig.Superimpose(RecordSig(fields, opts.GroupSigBytes, opts.BitsPerField))
		}
		b.groupSigs = append(b.groupSigs, gsig)
		b.sigStart = append(b.sigStart, len(buckets))
		buckets = append(buckets, &sigBucket{seq: len(buckets), sig: gsig})
		b.groupOf = append(b.groupOf, g)
		b.recordOf = append(b.recordOf, -1)
		for i := from; i < to; i++ {
			buckets = append(buckets, &dataBucket{seq: len(buckets), rec: ds.Record(i), ds: ds})
			b.groupOf = append(b.groupOf, g)
			b.recordOf = append(b.recordOf, i)
		}
	}
	b.groups = len(b.groupSigs)
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("signature-integrated: %w", err)
	}
	b.ch = ch
	return b, nil
}

// Name implements access.Broadcast.
func (b *IntegratedBroadcast) Name() string { return IntegratedName }

// Channel implements access.Broadcast.
func (b *IntegratedBroadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *IntegratedBroadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *IntegratedBroadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":         float64(b.ds.Len()),
		"cycle_bytes":     float64(b.ch.CycleLen()),
		"groups":          float64(b.groups),
		"group_size":      float64(b.opts.GroupSize),
		"group_sig_bytes": float64(b.opts.GroupSigBytes),
	}
}

// NewClient implements access.Broadcast.
func (b *IntegratedBroadcast) NewClient(key uint64) access.Client {
	return &integratedClient{
		b:     b,
		key:   key,
		query: QuerySig(b.ds.EncodeKey(key), b.opts.GroupSigBytes, b.opts.BitsPerField),
	}
}

type integratedClient struct {
	b       *IntegratedBroadcast
	key     uint64
	query   Sig
	scanned int // group signatures examined
	inGroup bool
}

func (c *integratedClient) nextGroupStep(i units.BucketIndex, end sim.Time) access.Step {
	if c.scanned >= c.b.groups {
		return access.Done(false)
	}
	g := (c.b.groupOf[i] + 1) % c.b.groups
	tgt := units.Index(c.b.sigStart[g])
	return access.DozeAt(tgt, c.b.ch.NextOccurrence(tgt, end))
}

func (c *integratedClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	if c.b.recordOf[i] < 0 {
		// Group signature bucket.
		c.scanned++
		c.inGroup = false
		if c.b.groupSigs[c.b.groupOf[i]].Covers(c.query) {
			c.inGroup = true
			return access.Next() // scan the group's records
		}
		return c.nextGroupStep(i, end)
	}
	// Data bucket inside a group the client is scanning.
	if c.b.ds.KeyAt(c.b.recordOf[i]) == c.key {
		return access.Done(true)
	}
	// Last record of the group? Move to the next group signature.
	last := i.IsLast(c.b.ch.NumBuckets()) || c.b.recordOf[i.Next(c.b.ch.NumBuckets())] < 0
	if last {
		return c.nextGroupStep(i, end)
	}
	return access.Next()
}
