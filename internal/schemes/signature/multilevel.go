package signature

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// MultiLevelName is the multi-level scheme's registry name.
const MultiLevelName = "signature-multilevel"

// The multi-level scheme ([8]) combines both granularities: an integrated
// signature precedes each group, and a simple record signature still
// precedes every data bucket. Clients skip whole groups on an integrated
// mismatch and skip individual records on a record-signature mismatch, at
// the cost of both overheads in the cycle.

// MultiLevelBroadcast is the two-level signature cycle.
type MultiLevelBroadcast struct {
	ds        *datagen.Dataset
	ch        *channel.Channel
	opts      Options
	groupSigs []Sig
	recSigs   []Sig
	groups    int
	groupOf   []int
	recordOf  []int // record index for record-sig and data buckets, -1 for group sigs
	isRecSig  []bool
	sigStart  []int // bucket index of each group's integrated signature
}

// BuildMultiLevel constructs the multi-level signature broadcast.
func BuildMultiLevel(ds *datagen.Dataset, opts Options) (*MultiLevelBroadcast, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	b := &MultiLevelBroadcast{ds: ds, opts: opts, recSigs: make([]Sig, ds.Len())}
	var buckets []channel.Bucket
	for from := 0; from < ds.Len(); from += opts.GroupSize {
		to := from + opts.GroupSize
		if to > ds.Len() {
			to = ds.Len()
		}
		g := len(b.groupSigs)
		gsig := make(Sig, opts.GroupSigBytes)
		for i := from; i < to; i++ {
			rec := ds.Record(i)
			fields := make([][]byte, 0, 1+len(rec.Attrs))
			fields = append(fields, ds.EncodeKey(rec.Key))
			for _, a := range rec.Attrs {
				fields = append(fields, []byte(a))
			}
			b.recSigs[i] = RecordSig(fields, opts.SigBytes, opts.BitsPerField)
			gsig.Superimpose(RecordSig(fields, opts.GroupSigBytes, opts.BitsPerField))
		}
		b.groupSigs = append(b.groupSigs, gsig)
		b.sigStart = append(b.sigStart, len(buckets))
		buckets = append(buckets, &sigBucket{seq: len(buckets), sig: gsig})
		b.groupOf = append(b.groupOf, g)
		b.recordOf = append(b.recordOf, -1)
		b.isRecSig = append(b.isRecSig, false)
		for i := from; i < to; i++ {
			buckets = append(buckets, &sigBucket{seq: len(buckets), sig: b.recSigs[i]})
			b.groupOf = append(b.groupOf, g)
			b.recordOf = append(b.recordOf, i)
			b.isRecSig = append(b.isRecSig, true)

			buckets = append(buckets, &dataBucket{seq: len(buckets), rec: ds.Record(i), ds: ds})
			b.groupOf = append(b.groupOf, g)
			b.recordOf = append(b.recordOf, i)
			b.isRecSig = append(b.isRecSig, false)
		}
	}
	b.groups = len(b.groupSigs)
	ch, err := channel.Build(buckets)
	if err != nil {
		return nil, fmt.Errorf("signature-multilevel: %w", err)
	}
	b.ch = ch
	return b, nil
}

// Name implements access.Broadcast.
func (b *MultiLevelBroadcast) Name() string { return MultiLevelName }

// Channel implements access.Broadcast.
func (b *MultiLevelBroadcast) Channel() *channel.Channel { return b.ch }

// Contains implements access.Broadcast.
func (b *MultiLevelBroadcast) Contains(key uint64) bool {
	_, ok := b.ds.Find(key)
	return ok
}

// Params implements access.Broadcast.
func (b *MultiLevelBroadcast) Params() map[string]float64 {
	return map[string]float64{
		"records":         float64(b.ds.Len()),
		"cycle_bytes":     float64(b.ch.CycleLen()),
		"groups":          float64(b.groups),
		"group_size":      float64(b.opts.GroupSize),
		"sig_bytes":       float64(b.opts.SigBytes),
		"group_sig_bytes": float64(b.opts.GroupSigBytes),
	}
}

// NewClient implements access.Broadcast.
func (b *MultiLevelBroadcast) NewClient(key uint64) access.Client {
	return &multiLevelClient{
		b:      b,
		key:    key,
		groupQ: QuerySig(b.ds.EncodeKey(key), b.opts.GroupSigBytes, b.opts.BitsPerField),
		recQ:   QuerySig(b.ds.EncodeKey(key), b.opts.SigBytes, b.opts.BitsPerField),
	}
}

type multiLevelClient struct {
	b       *MultiLevelBroadcast
	key     uint64
	groupQ  Sig
	recQ    Sig
	scanned int // integrated signatures examined
}

func (c *multiLevelClient) nextGroupStep(i units.BucketIndex, end sim.Time) access.Step {
	if c.scanned >= c.b.groups {
		return access.Done(false)
	}
	g := (c.b.groupOf[i] + 1) % c.b.groups
	tgt := units.Index(c.b.sigStart[g])
	return access.DozeAt(tgt, c.b.ch.NextOccurrence(tgt, end))
}

// nextRecSigStep dozes to the record signature after record rec within the
// same group, or to the next group signature when rec closes the group.
func (c *multiLevelClient) nextRecSigStep(i units.BucketIndex, end sim.Time) access.Step {
	ch := c.b.ch
	// The record signature bucket for the following record directly
	// follows this data bucket unless this record closed its group.
	next := i.Next(ch.NumBuckets())
	if c.b.recordOf[next] < 0 || c.b.groupOf[next] != c.b.groupOf[i] {
		return c.nextGroupStep(i, end)
	}
	return access.DozeAt(next, ch.NextOccurrence(next, end))
}

func (c *multiLevelClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	b := c.b
	if b.recordOf[i] < 0 {
		// Integrated (group) signature.
		c.scanned++
		if b.groupSigs[b.groupOf[i]].Covers(c.groupQ) {
			return access.Next() // descend into the group's record sigs
		}
		return c.nextGroupStep(i, end)
	}
	if b.isRecSig[i] {
		// Record signature within a matched group.
		if b.recSigs[b.recordOf[i]].Covers(c.recQ) {
			return access.Next() // download the data bucket
		}
		// Doze over the data bucket to the next bucket (record sig or next
		// group sig).
		next := i.Step(2, b.ch.NumBuckets())
		if b.recordOf[next] < 0 {
			return c.nextGroupStep(i, end)
		}
		return access.DozeAt(next, b.ch.NextOccurrence(next, end))
	}
	// Data bucket: the request or a false drop.
	if b.ds.KeyAt(b.recordOf[i]) == c.key {
		return access.Done(true)
	}
	return c.nextRecSigStep(i, end)
}
