package signature

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

func TestAttrQueryFindsEveryAttribute(t *testing.T) {
	ds := dataset(t, 250)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(41)
	for i := 0; i < ds.Len(); i += 11 {
		for attr := 0; attr < ds.Config().NumAttributes; attr++ {
			value := ds.Record(i).Attrs[attr]
			arrival := sim.Time(rng.Int63n(int64(b.Channel().CycleLen())))
			res, err := access.Walk(b.Channel(), b.NewAttrClient(attr, value), arrival, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Fatalf("record %d attr %d value %q not found", i, attr, value)
			}
		}
	}
}

func TestAttrQueryMissingValueFails(t *testing.T) {
	ds := dataset(t, 200)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := access.Walk(b.Channel(), b.NewAttrClient(0, "no such attribute value anywhere"), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("nonexistent attribute value reported found")
	}
	if res.Probes < ds.Len() {
		t.Fatalf("failed attr search should scan every signature, probes=%d", res.Probes)
	}
}

func TestAttrQueryWrongIndexFails(t *testing.T) {
	ds := dataset(t, 100)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The value exists at attr 0, but the query names attr 99: signatures
	// may match (the field hash is position-independent) but the record
	// check must reject it.
	res, err := access.Walk(b.Channel(), b.NewAttrClient(99, ds.Record(3).Attrs[0]), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("out-of-range attribute index reported found")
	}
}

func TestAttrQueryTuningFarBelowFlatScan(t *testing.T) {
	// The reason signatures exist ([8]): attribute queries cost signature
	// reads, not record reads.
	ds := dataset(t, 400)
	b, err := Build(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	value := ds.Record(300).Attrs[1]
	res, err := access.Walk(b.Channel(), b.NewAttrClient(1, value), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("value not found")
	}
	// Scanning 301 signatures (21 B each) plus the record is far below the
	// 301 full records a flat scan would read.
	flatCost := int64(301) * 505
	if res.Tuning.Times(5) > units.Bytes64(flatCost) {
		t.Fatalf("attr query tuning %d should be >5x below flat's %d", res.Tuning, flatCost)
	}
}
