package cohort

import (
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/sim"
)

// buildFlat constructs a small flat broadcast for kernel tests; flat
// both resolves in closed form and rewinds, so one scheme exercises
// every steady-state path.
func buildFlat(t testing.TB, records int) (*flat.Broadcast, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Default(records))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := flat.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return bc, ds
}

// fill generates a deterministic mixed batch: present keys at uneven
// arrival phases, with every fifth lane asking for an absent key.
func fill(b *Batch, ds *datagen.Dataset, n int) {
	b.Reset(n)
	for i := 0; i < n; i++ {
		b.Arrival[i] = sim.Time(i*977 + i*i*13)
		if i%5 == 4 {
			b.Key[i] = ds.MissingKeyNear(i % ds.Len())
		} else {
			b.Key[i] = ds.KeyAt((i * 3) % ds.Len())
		}
	}
}

// prime readies the Clients column the way the cohort driver does:
// rewind in place when possible, allocate otherwise.
func prime(b *Batch, bc access.Broadcast) {
	for i := 0; i < b.Len(); i++ {
		if rw, ok := b.Clients[i].(access.Rewinder); ok {
			rw.Rewind(b.Key[i])
			continue
		}
		b.Clients[i] = bc.NewClient(b.Key[i])
	}
}

// TestKernelsAllocFree is the runtime backstop behind escapecheck for
// the batch kernels: after the arena and client column warm up, a full
// generate→advance round performs zero heap allocations per request for
// both the resolver and the stepped kernel.
func TestKernelsAllocFree(t *testing.T) {
	bc, ds := buildFlat(t, 64)
	const lanes = 32

	resolved := New()
	fill(resolved, ds, lanes) // warm the arena
	if avg := testing.AllocsPerRun(50, func() {
		fill(resolved, ds, lanes)
		if !resolved.ResolveLanes(bc) {
			t.Fatal("flat resolver declined")
		}
	}); avg != 0 {
		t.Errorf("ResolveLanes round allocates %v times, want 0", avg)
	}

	stepped := New()
	fill(stepped, ds, lanes)
	prime(stepped, bc) // warm the arena and the client column
	if avg := testing.AllocsPerRun(50, func() {
		fill(stepped, ds, lanes)
		prime(stepped, bc)
		if !stepped.AdvanceClean(bc.Channel(), 0) {
			t.Fatal("clean walk failed")
		}
	}); avg != 0 {
		t.Errorf("AdvanceClean round allocates %v times, want 0", avg)
	}
}

// TestKernelsAgree pins the per-lane bit-identity of the two kernels on
// the same batch contents.
func TestKernelsAgree(t *testing.T) {
	bc, ds := buildFlat(t, 64)
	const lanes = 48

	a := New()
	fill(a, ds, lanes)
	if !a.ResolveLanes(bc) {
		t.Fatal("flat resolver declined")
	}
	b := New()
	fill(b, ds, lanes)
	prime(b, bc)
	if !b.AdvanceClean(bc.Channel(), 0) {
		t.Fatal("clean walk failed")
	}
	for i := 0; i < lanes; i++ {
		if a.Access[i] != b.Access[i] || a.Tuning[i] != b.Tuning[i] ||
			a.Probes[i] != b.Probes[i] || a.Found[i] != b.Found[i] {
			t.Fatalf("lane %d: resolver (%d/%d/%d/%v) != stepped (%d/%d/%d/%v)",
				i, a.Access[i], a.Tuning[i], a.Probes[i], a.Found[i],
				b.Access[i], b.Tuning[i], b.Probes[i], b.Found[i])
		}
		if a.State[i] != LaneDone || b.State[i] != LaneDone {
			t.Fatalf("lane %d not done: %d %d", i, a.State[i], b.State[i])
		}
	}
}

// TestResetPreservesClientsAndZeroesResults covers the arena contract:
// Reset keeps the client column for rewinding, zeroes result columns,
// and grows capacity without losing clients.
func TestResetPreservesClientsAndZeroesResults(t *testing.T) {
	bc, ds := buildFlat(t, 16)
	b := New()
	fill(b, ds, 8)
	prime(b, bc)
	if !b.AdvanceClean(bc.Channel(), 0) {
		t.Fatal("walk failed")
	}
	kept := b.Clients[3]
	if kept == nil {
		t.Fatal("client column not populated")
	}
	b.Reset(8)
	if b.Clients[3] != kept {
		t.Fatal("Reset dropped a reusable client")
	}
	for i := 0; i < 8; i++ {
		if b.State[i] != LanePending || b.Access[i] != 0 || b.Tuning[i] != 0 ||
			b.Probes[i] != 0 || b.Found[i] || b.Restarts[i] != 0 {
			t.Fatalf("lane %d not reset: %+v", i, b.State[i])
		}
	}
	if b.FailLane != -1 || b.FailKind != FailNone {
		t.Fatal("failure fields not reset")
	}
	b.Reset(16) // grow
	if b.Len() != 16 {
		t.Fatalf("grow to 16 lanes failed: %d", b.Len())
	}
	if b.Clients[3] != kept {
		t.Fatal("grow dropped a reusable client")
	}
}

// TestAdvanceCleanBudget covers the step-budget failure path: a
// one-step budget cannot finish a scan, and the batch must record the
// failing lane.
func TestAdvanceCleanBudget(t *testing.T) {
	bc, ds := buildFlat(t, 16)
	b := New()
	fill(b, ds, 4)
	prime(b, bc)
	if b.AdvanceClean(bc.Channel(), 1) {
		t.Fatal("one-step budget should fail a multi-bucket scan")
	}
	if b.FailKind != FailBudget || b.FailLane < 0 || b.State[b.FailLane] != LaneFailed {
		t.Fatalf("budget failure not recorded: kind=%d lane=%d", b.FailKind, b.FailLane)
	}
}
