// Package cohort implements the columnar request engine's batch state: a
// struct-of-arrays ("SoA") layout in which one in-flight request occupies
// lane i of every column, and batched kernels advance a whole cohort of
// requests against the immutable broadcast cycle in one call.
//
// The event-driven engine (internal/core) resolves each request at its
// arrival event through the access.Walk family, paying per-request
// interface plumbing, a Result struct, and error-path bookkeeping. At
// paper scale (10⁶ clients) that plumbing dominates. The cohort engine
// instead pre-draws a round's worth of (arrival, key) pairs into the
// Arrival/Key columns — in exactly the RNG order the event engine would
// have used — and then advances every lane with one of two kernels:
//
//   - ResolveLanes, when the broadcast implements access.Resolver:
//     the whole walk collapses to closed-form occurrence arithmetic
//     per lane (serial-scan schemes answer in O(1)–O(log) integer math);
//   - AdvanceClean, the stepped kernel: the same loop body as
//     access.Walk, inlined over the columns, driving the per-lane
//     protocol state machines (the Clients column) with no Result
//     values, closures or error allocations on the hot path.
//
// Lanes of a clean single-channel batch share no mutable state — the
// channel is immutable and each client is private to its lane — so the
// kernels may process lanes in any order; they use lane-major order
// (each lane to completion) because it is cache-optimal and equals the
// event engine's arrival order anyway. Paths with shared per-stream
// state (fault injection's corruption counter, multichannel recovery)
// are driven lane-by-lane in arrival order by internal/core using the
// ordinary walkers, filling the same result columns.
//
// The Batch is an arena: Reset reslices the columns for the next round
// without freeing, and the Clients column persists across rounds so
// rewindable schemes (access.Rewinder) reuse one client allocation per
// lane for the whole run. Steady-state batch advance performs zero heap
// allocations (see alloc_test.go).
package cohort

import (
	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// LaneState tags one lane's lifecycle within a batch.
type LaneState uint8

const (
	// LanePending marks a generated request the kernels have not finished.
	LanePending LaneState = iota
	// LaneDone marks a lane whose result columns are valid.
	LaneDone
	// LaneFailed marks a lane whose walk violated the protocol contract;
	// the batch's Fail* fields identify the failure.
	LaneFailed
)

// FailKind classifies a failed lane, mirroring access.Walk's error cases.
type FailKind uint8

const (
	// FailNone means no lane failed.
	FailNone FailKind = iota
	// FailPastDoze is a client dozing before the current bucket's end.
	FailPastDoze
	// FailBadStep is an invalid StepKind from a client.
	FailBadStep
	// FailBudget is a walk exceeding its step budget.
	FailBudget
)

// Batch is the struct-of-arrays state for one cohort of requests. All
// column slices share a common length (Len); lane i of every column
// belongs to request i, in arrival order.
type Batch struct {
	// Arrival is the request's arrival time on the byte-clock.
	Arrival []sim.Time
	// Key is the requested record key.
	Key []uint64

	// Idx and Start are the stepped kernel's walk state: the bucket the
	// lane will read next and that bucket's start time (for a parked
	// lane, Start is its doze wake-up). ResolveLanes leaves them unused.
	Idx   []units.BucketIndex
	Start []sim.Time
	// State is the per-lane lifecycle tag.
	State []LaneState
	// Clients holds each lane's protocol state machine for the stepped
	// kernel. The column persists across Reset so that rewindable
	// clients are reused; internal/core primes it before each batch.
	Clients []access.Client

	// Result columns, valid once State is LaneDone.
	Access []units.ByteCount
	Tuning []units.ByteCount
	Probes []int
	Found  []bool
	// Fault/multichannel accounting, filled by the lane-ordered walker
	// paths; the clean kernels leave them zero.
	Restarts    []int
	Wasted      []units.ByteCount
	Unrecovered []bool
	Switches    []int
	SwitchWait  []units.ByteCount

	// AccessF/TuningF/EnergyF/ProbesF are float scratch columns for the
	// bulk stats fold (stats.Sample.AddAll), sized with the batch.
	AccessF, TuningF, EnergyF, ProbesF []float64

	// FailLane/FailKind/FailArg1/FailArg2 describe the first failed lane
	// when an advance kernel aborts: for FailPastDoze the requested wake
	// time and the bucket end, for FailBadStep the step kind, for
	// FailBudget the step budget.
	FailLane           int
	FailKind           FailKind
	FailArg1, FailArg2 int64
}

// New returns an empty batch arena.
func New() *Batch { return &Batch{} }

// Len returns the number of lanes in the current batch.
func (b *Batch) Len() int { return len(b.Arrival) }

// Reset prepares the arena for a batch of n lanes: columns are resliced
// (growing capacity only when needed), result and state columns are
// zeroed, and the Clients column keeps its existing entries so they can
// be rewound instead of reallocated.
func (b *Batch) Reset(n int) {
	if cap(b.Arrival) < n {
		b.grow(n)
	}
	b.Arrival = b.Arrival[:n]
	b.Key = b.Key[:n]
	b.Idx = b.Idx[:n]
	b.Start = b.Start[:n]
	b.State = b.State[:n]
	b.Clients = b.Clients[:n]
	b.Access = b.Access[:n]
	b.Tuning = b.Tuning[:n]
	b.Probes = b.Probes[:n]
	b.Found = b.Found[:n]
	b.Restarts = b.Restarts[:n]
	b.Wasted = b.Wasted[:n]
	b.Unrecovered = b.Unrecovered[:n]
	b.Switches = b.Switches[:n]
	b.SwitchWait = b.SwitchWait[:n]
	b.AccessF = b.AccessF[:n]
	b.TuningF = b.TuningF[:n]
	b.EnergyF = b.EnergyF[:n]
	b.ProbesF = b.ProbesF[:n]
	for i := 0; i < n; i++ {
		b.State[i] = LanePending
		b.Access[i] = 0
		b.Tuning[i] = 0
		b.Probes[i] = 0
		b.Found[i] = false
		b.Restarts[i] = 0
		b.Wasted[i] = 0
		b.Unrecovered[i] = false
		b.Switches[i] = 0
		b.SwitchWait[i] = 0
	}
	b.FailLane = -1
	b.FailKind = FailNone
	b.FailArg1 = 0
	b.FailArg2 = 0
}

// grow reallocates every column to capacity n, copying the Clients
// column (the only one whose old contents outlive a Reset).
func (b *Batch) grow(n int) {
	clients := make([]access.Client, n)
	copy(clients, b.Clients)
	b.Clients = clients
	b.Arrival = make([]sim.Time, n)
	b.Key = make([]uint64, n)
	b.Idx = make([]units.BucketIndex, n)
	b.Start = make([]sim.Time, n)
	b.State = make([]LaneState, n)
	b.Access = make([]units.ByteCount, n)
	b.Tuning = make([]units.ByteCount, n)
	b.Probes = make([]int, n)
	b.Found = make([]bool, n)
	b.Restarts = make([]int, n)
	b.Wasted = make([]units.ByteCount, n)
	b.Unrecovered = make([]bool, n)
	b.Switches = make([]int, n)
	b.SwitchWait = make([]units.ByteCount, n)
	b.AccessF = make([]float64, n)
	b.TuningF = make([]float64, n)
	b.EnergyF = make([]float64, n)
	b.ProbesF = make([]float64, n)
}

// ResolveLanes answers every pending lane through the broadcast's
// closed-form resolver. It returns false (leaving the remaining lanes
// pending) as soon as the resolver declines a query, so the caller can
// fall back to the stepped kernel; lanes already resolved stay LaneDone
// and are skipped there. The resolver's bit-identity obligation
// (access.Resolver) makes the two kernels interchangeable per lane.
//
//airlint:hotpath
func (b *Batch) ResolveLanes(r access.Resolver) bool {
	for i := 0; i < len(b.Arrival); i++ {
		if b.State[i] != LanePending {
			continue
		}
		res, ok := r.Resolve(b.Key[i], b.Arrival[i])
		if !ok {
			return false
		}
		b.Access[i] = res.Access
		b.Tuning[i] = res.Tuning
		b.Probes[i] = res.Probes
		b.Found[i] = res.Found
		b.State[i] = LaneDone
	}
	return true
}

// AdvanceClean runs every pending lane's walk to completion against a
// perfect single channel: the exact loop body of access.Walk, inlined
// over the columns. maxSteps <= 0 selects access.DefaultMaxSteps. It
// returns false if a lane failed, with the batch's Fail* fields set and
// later lanes left pending — the caller materializes the error (lanes
// are independent, so aborting at the first failure matches the event
// engine, which stops its loop on the first walk error).
//
//airlint:hotpath
func (b *Batch) AdvanceClean(ch *channel.Channel, maxSteps int) bool {
	if maxSteps <= 0 {
		maxSteps = access.DefaultMaxSteps
	}
	n := ch.NumBuckets()
	cyc := ch.CycleLen()
	for i := 0; i < len(b.Arrival); i++ {
		if b.State[i] != LanePending {
			continue
		}
		c := b.Clients[i]
		arrival := b.Arrival[i]
		idx, start := ch.NextBucketAt(arrival)
		var tuning units.ByteCount
		probes := 0
		done := false
		for step := 0; step < maxSteps; step++ {
			end := ch.EndGiven(idx, start)
			tuning += ch.SizeOf(idx)
			probes++
			s := c.OnBucket(idx, end)
			switch s.Kind {
			case access.StepNext:
				// Buckets are contiguous: the next starts where this ended.
				idx = idx.Next(n)
				start = end
			case access.StepDoze:
				if s.At < end {
					b.fail(i, FailPastDoze, int64(s.At), int64(end))
					b.Tuning[i] = tuning
					b.Probes[i] = probes
					return false
				}
				if s.Hint.InCycle(n) && units.CycleOffset(s.At, cyc) == ch.StartInCycle(s.Hint) {
					idx, start = s.Hint, s.At
				} else {
					idx, start = ch.NextBucketAt(s.At)
				}
			case access.StepDone:
				b.Access[i] = units.Elapsed(arrival, end)
				b.Found[i] = s.Found
				done = true
			default:
				b.fail(i, FailBadStep, int64(s.Kind), 0)
				b.Tuning[i] = tuning
				b.Probes[i] = probes
				return false
			}
			if done {
				break
			}
		}
		if !done {
			b.fail(i, FailBudget, int64(maxSteps), 0)
			b.Tuning[i] = tuning
			b.Probes[i] = probes
			return false
		}
		b.Tuning[i] = tuning
		b.Probes[i] = probes
		b.Idx[i] = idx
		b.Start[i] = start
		b.State[i] = LaneDone
	}
	return true
}

// fail records the first failing lane.
func (b *Batch) fail(lane int, kind FailKind, a1, a2 int64) {
	b.State[lane] = LaneFailed
	b.FailLane = lane
	b.FailKind = kind
	b.FailArg1 = a1
	b.FailArg2 = a2
}
