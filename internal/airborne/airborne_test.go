package airborne

import (
	"math"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
)

// harness builds one scheme plus its airborne contract over a dataset.
type harness struct {
	ds    *datagen.Dataset
	bc    access.Broadcast
	bytes *Bytes
	c     Contract
}

func newHarness(t *testing.T, scheme string, records int) *harness {
	t.Helper()
	cfg := core.DefaultConfig(scheme, records)
	ds, err := datagen.Generate(cfg.Data)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := core.BuildBroadcast(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Contract{
		RecordSize:   cfg.Data.RecordSize,
		KeySize:      cfg.Data.KeySize,
		NumRecords:   cfg.Data.NumRecords,
		SigBytes:     cfg.Signature.SigBytes,
		BitsPerField: cfg.Signature.BitsPerField,
	}
	switch b := bc.(type) {
	case *dist.Broadcast:
		c.TreeLayout = b.Layout()
	case *onem.Broadcast:
		c.TreeLayout = b.Layout()
	case *hashing.Broadcast:
		c.HashPositions = int(b.Params()["Na"])
	}
	return &harness{ds: ds, bc: bc, bytes: NewBytes(bc.Channel()), c: c}
}

func (h *harness) airborneWalk(t *testing.T, scheme string, key uint64, arrival sim.Time) access.Result {
	t.Helper()
	cl, err := NewClient(scheme, h.bytes, h.c, key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := access.Walk(h.bc.Channel(), cl, arrival, 0)
	if err != nil {
		t.Fatalf("airborne %s key %d arrival %d: %v", scheme, key, arrival, err)
	}
	return res
}

var paperSchemes = []string{"flat", "(1,m)", "distributed", "hashing", "signature"}

// TestAirborneFindsEveryKey proves the wire formats are self-describing:
// byte-only clients locate every record of every paper scheme.
func TestAirborneFindsEveryKey(t *testing.T) {
	for _, scheme := range paperSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			h := newHarness(t, scheme, 400)
			rng := sim.NewRNG(6)
			for i := 0; i < h.ds.Len(); i += 3 {
				arrival := sim.Time(rng.Int63n(int64(h.bc.Channel().CycleLen())))
				res := h.airborneWalk(t, scheme, h.ds.KeyAt(i), arrival)
				if !res.Found {
					t.Fatalf("key %d not found from bytes alone", h.ds.KeyAt(i))
				}
				if res.Tuning > res.Access {
					t.Fatalf("accounting broken: %+v", res)
				}
			}
		})
	}
}

func TestAirborneMissingKeysFail(t *testing.T) {
	for _, scheme := range paperSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			h := newHarness(t, scheme, 300)
			rng := sim.NewRNG(8)
			for i := 0; i < h.ds.Len(); i += 17 {
				arrival := sim.Time(rng.Int63n(int64(h.bc.Channel().CycleLen())))
				res := h.airborneWalk(t, scheme, h.ds.MissingKeyNear(i), arrival)
				if res.Found {
					t.Fatalf("missing key near %d reported found", i)
				}
			}
			for _, key := range []uint64{1, h.ds.MaxKey() + 99} {
				res := h.airborneWalk(t, scheme, key, 42)
				if res.Found {
					t.Fatalf("out-of-range key %d reported found", key)
				}
			}
		})
	}
}

// TestDifferentialAgainstMetadataClients drives the byte-driven and
// metadata clients over identical channels and queries. Outcomes must
// agree exactly; the serial schemes must also agree on every byte of
// accounting, while the selectively tuning schemes may differ bounded-ly
// where the wire protocol takes the paper's next-cycle shortcut instead of
// the metadata client's direct steering.
func TestDifferentialAgainstMetadataClients(t *testing.T) {
	for _, scheme := range paperSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			h := newHarness(t, scheme, 500)
			rng := sim.NewRNG(99)
			cycle := int64(h.bc.Channel().CycleLen())
			var sumMetaA, sumWireA, sumMetaT, sumWireT float64
			const n = 400
			for q := 0; q < n; q++ {
				var key uint64
				if q%5 == 4 {
					key = h.ds.MissingKeyNear(rng.Intn(h.ds.Len()))
				} else {
					key = h.ds.KeyAt(rng.Intn(h.ds.Len()))
				}
				arrival := sim.Time(rng.Int63n(2 * cycle))
				meta, err := access.Walk(h.bc.Channel(), h.bc.NewClient(key), arrival, 0)
				if err != nil {
					t.Fatal(err)
				}
				aero := h.airborneWalk(t, scheme, key, arrival)
				if meta.Found != aero.Found {
					t.Fatalf("key %d arrival %d: found %v (metadata) vs %v (airborne)",
						key, arrival, meta.Found, aero.Found)
				}
				switch scheme {
				case "flat", "signature", "hashing":
					// These protocols are identical step for step.
					if meta != aero {
						t.Fatalf("key %d arrival %d: metadata %+v != airborne %+v", key, arrival, meta, aero)
					}
				default:
					// Tree schemes: both must stay within three cycles.
					if aero.Access > units.Bytes64(3*cycle) || meta.Access > units.Bytes64(3*cycle) {
						t.Fatalf("access out of bounds: meta %+v aero %+v", meta, aero)
					}
				}
				sumMetaA += float64(meta.Access)
				sumWireA += float64(aero.Access)
				sumMetaT += float64(meta.Tuning)
				sumWireT += float64(aero.Tuning)
			}
			// Aggregate behaviour must match closely even where individual
			// walks diverge.
			if r := sumWireA / sumMetaA; math.Abs(r-1) > 0.12 {
				t.Fatalf("mean access ratio airborne/metadata = %.3f", r)
			}
			if r := sumWireT / sumMetaT; math.Abs(r-1) > 0.25 {
				t.Fatalf("mean tuning ratio airborne/metadata = %.3f", r)
			}
		})
	}
}

func TestNewClientUnknownScheme(t *testing.T) {
	h := newHarness(t, "flat", 50)
	if _, err := NewClient("bogus", h.bytes, h.c, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestBytesCache(t *testing.T) {
	h := newHarness(t, "flat", 50)
	a := h.bytes.Of(3)
	b := h.bytes.Of(3)
	if &a[0] != &b[0] {
		t.Fatal("encode cache not reused")
	}
	if h.bytes.NumBuckets() != h.bc.Channel().NumBuckets() {
		t.Fatal("NumBuckets mismatch")
	}
}
