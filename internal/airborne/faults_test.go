package airborne

import (
	"errors"
	"testing"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// TestRecoveryDifferentialAgainstMetadataClients drives the metadata and
// byte-driven client families through access.WalkRecover under identical
// fault streams. The injector is a pure function of (cfg, seed, shard),
// so two injectors replay the same corruption pattern; for the schemes
// whose two client families are step-identical the full FaultyResult
// accounting must match probe for probe, restart for restart.
func TestRecoveryDifferentialAgainstMetadataClients(t *testing.T) {
	fcfg := faults.FromRate(faults.ModelDrop, 0.08)
	for _, scheme := range paperSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			h := newHarness(t, scheme, 400)
			rng := sim.NewRNG(31)
			cycle := int64(h.bc.Channel().CycleLen())
			injMeta := faults.New(fcfg, 7, 0)
			injAero := faults.New(fcfg, 7, 0)
			// Bounded retries: a serial scheme can only conclude a key is
			// absent after a full clean pass of the cycle, which an 8%
			// per-bucket drop rate essentially never grants — exactly the
			// situation MaxRetries exists for.
			pol := access.RecoverPolicy{MaxRetries: 6}
			var restarts int
			const n = 250
			for q := 0; q < n; q++ {
				var key uint64
				if q%5 == 4 {
					key = h.ds.MissingKeyNear(rng.Intn(h.ds.Len()))
				} else {
					key = h.ds.KeyAt(rng.Intn(h.ds.Len()))
				}
				arrival := sim.Time(rng.Int63n(2 * cycle))
				injMeta.StartRequest()
				meta, err := access.WalkRecover(h.bc.Channel(),
					func() access.Client { return h.bc.NewClient(key) },
					arrival, injMeta, pol, 0)
				if err != nil {
					t.Fatal(err)
				}
				injAero.StartRequest()
				aero, err := access.WalkRecover(h.bc.Channel(),
					func() access.Client {
						cl, cerr := NewClient(scheme, h.bytes, h.c, key)
						if cerr != nil {
							t.Fatal(cerr)
						}
						return cl
					},
					arrival, injAero, pol, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !meta.Unrecovered && !aero.Unrecovered && meta.Found != aero.Found {
					t.Fatalf("key %d arrival %d: found %v (metadata) vs %v (airborne)",
						key, arrival, meta.Found, aero.Found)
				}
				restarts += meta.Restarts
				switch scheme {
				case "flat", "signature", "hashing":
					// Step-identical protocols see identical fault streams,
					// so every counter matches.
					if meta != aero {
						t.Fatalf("key %d arrival %d: metadata %+v != airborne %+v", key, arrival, meta, aero)
					}
				default:
					// Tree schemes may steer differently after a restart, but
					// both must terminate within a bounded number of cycles.
					if aero.Access > units.Bytes64(6*cycle) || meta.Access > units.Bytes64(6*cycle) {
						t.Fatalf("access out of bounds: meta %+v aero %+v", meta, aero)
					}
				}
			}
			if restarts == 0 {
				t.Fatalf("8%% drop rate over %d queries injected no faults", n)
			}
		})
	}
}

// TestCRCDetectsInjectedCorruption closes the loop between the fault model
// and the wire layer: sealed frames mangled at the injector's corrupt
// coordinates fail wire.Verify with ErrChecksum, while untouched frames
// verify and decode to the original bucket bytes.
func TestCRCDetectsInjectedCorruption(t *testing.T) {
	h := newHarness(t, "distributed", 200)
	inj := faults.New(faults.FromRate(faults.ModelDrop, 0.2), 11, 0)
	inj.StartRequest()
	var corrupted, clean int
	for i := units.BucketIndex(0); i < units.BucketIndex(h.bytes.NumBuckets()); i++ {
		probe := int(i)
		payload := h.bytes.Of(i)
		sealed := wire.Seal(payload)
		if inj.Corrupt(probe, units.ByteCount(len(payload))) {
			corrupted++
			mangled := inj.MangleCopy(probe, sealed)
			if _, err := wire.Verify(mangled); !errors.Is(err, wire.ErrChecksum) {
				t.Fatalf("bucket %d: mangled frame passed verification (err %v)", i, err)
			}
			if _, err := wire.NewVerified(mangled); err == nil {
				t.Fatalf("bucket %d: NewVerified accepted a mangled frame", i)
			}
			continue
		}
		clean++
		got, err := wire.Verify(sealed)
		if err != nil {
			t.Fatalf("bucket %d: clean frame rejected: %v", i, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("bucket %d: verified payload differs from the original", i)
		}
		r, err := wire.NewVerified(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if hdr := r.Header(); hdr != header(payload) {
			t.Fatalf("bucket %d: verified reader decoded header %+v, want %+v", i, hdr, header(payload))
		}
	}
	if corrupted == 0 || clean == 0 {
		t.Fatalf("sweep not exercising both paths: %d corrupted, %d clean", corrupted, clean)
	}
}
