// Package airborne implements receiver-side clients that operate on the
// encoded broadcast alone: every protocol decision is computed from the
// bytes of the buckets they read — header sequence numbers, control parts,
// time-offset deltas — plus the published service contract (bucket
// geometry, hash function, signature parameters). Nothing references the
// server's in-memory structures.
//
// The scheme packages' own clients consult build-time metadata, which is
// faster for large simulation campaigns; the airborne clients exist to
// prove the broadcast formats are genuinely self-describing. The
// differential tests in this package drive both client families over the
// same channels and compare outcomes.
package airborne

import (
	"fmt"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/channel"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Contract is the service contract a mobile client is assumed to know
// before tuning in: the data geometry and the scheme's published
// parameters. Everything else comes off the air.
type Contract struct {
	// RecordSize and KeySize fix the data bucket geometry, and NumRecords
	// is the announced database size (used by the serial protocols to
	// conclude a search failed after one full pass).
	RecordSize, KeySize, NumRecords int

	// TreeLayout is the index bucket geometry for the tree schemes.
	TreeLayout treeidx.Layout

	// HashPositions is Na, the hashing scheme's published directory size
	// (the paper broadcasts the hashing function in every control part).
	HashPositions int

	// SigBytes and BitsPerField parameterize the signature scheme.
	SigBytes, BitsPerField int
}

// Source provides the encoded form of broadcast buckets to the
// byte-driven clients. Of returns the bytes of the bucket the walker
// just read and charged — implementations must only ever be asked for
// that bucket (the byteclock analyzer enforces the call discipline).
// Bytes is the simulator-side implementation, decoding from the local
// channel image; internal/aircast supplies a live implementation whose
// bytes come off the wire, so the same client state machines ride both
// the byte-clock simulator and a real transport unchanged.
type Source interface {
	// Of returns bucket i's encoded bytes.
	Of(i units.BucketIndex) []byte
	// NumBuckets returns the cycle's bucket count.
	NumBuckets() units.BucketCount
}

// Bytes provides the encoded form of broadcast buckets, memoized so
// differential sweeps do not re-encode per probe.
type Bytes struct {
	ch    *channel.Channel
	cache [][]byte
}

// NewBytes wraps a channel with an encode cache.
func NewBytes(ch *channel.Channel) *Bytes {
	return &Bytes{ch: ch, cache: make([][]byte, ch.NumBuckets())}
}

// Of returns bucket i's encoded bytes.
func (e *Bytes) Of(i units.BucketIndex) []byte {
	if e.cache[i] == nil {
		e.cache[i] = e.ch.Bucket(i).Encode() //airlint:allow byteclock memoized decode of the bucket the caller was just charged for via OnBucket
	}
	return e.cache[i]
}

// NumBuckets returns the cycle's bucket count.
func (e *Bytes) NumBuckets() units.BucketCount { return e.ch.NumBuckets() }

// NewClient returns a byte-driven client for the named paper scheme. The
// supported names are flat, (1,m), distributed, hashing and signature.
func NewClient(scheme string, bytes Source, c Contract, key uint64) (access.Client, error) {
	switch scheme {
	case "flat":
		return newFlatClient(bytes, c, key), nil
	case "(1,m)", "distributed":
		return newTreeClient(bytes, c, key), nil
	case "hashing":
		return newHashClient(bytes, c, key), nil
	case "signature":
		return newSigClient(bytes, c, key), nil
	default:
		return nil, fmt.Errorf("airborne: no byte-driven client for scheme %q", scheme)
	}
}

// decodeKeyAt parses a fixed-width key field at the given offset.
func decodeKeyAt(p []byte, off, width int) (uint64, error) {
	if off+width > len(p) {
		return 0, fmt.Errorf("airborne: bucket too short for key at %d", off)
	}
	return datagen.DecodeKey(p[off : off+width])
}

// header decodes the common bucket prefix.
func header(p []byte) wire.Header {
	r := wire.NewReader(p)
	return r.Header()
}
