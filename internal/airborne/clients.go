package airborne

import (
	"bytes"

	"github.com/airindex/airindex/internal/access"
	"github.com/airindex/airindex/internal/datagen"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/schemes/treeidx"
	"github.com/airindex/airindex/internal/sim"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// --- flat broadcast -------------------------------------------------------

type flatClient struct {
	b        Source
	c        Contract
	queryKey []byte
	read     int
}

func newFlatClient(b Source, c Contract, key uint64) *flatClient {
	return &flatClient{b: b, c: c, queryKey: datagen.EncodeKeyWidth(key, c.KeySize)}
}

func (cl *flatClient) OnBucket(i units.BucketIndex, _ sim.Time) access.Step {
	p := cl.b.Of(i)
	cl.read++
	keyOff := int(wire.HeaderSize)
	if bytes.Equal(p[keyOff:keyOff+cl.c.KeySize], cl.queryKey) {
		return access.Done(true)
	}
	if cl.read >= cl.c.NumRecords {
		// One full pass over the announced database: not broadcast.
		return access.Done(false)
	}
	return access.Next()
}

// --- simple signature -----------------------------------------------------

type sigClient struct {
	b        Source
	c        Contract
	query    signature.Sig
	queryKey []byte
	scanned  int
	dataSize units.ByteCount
}

func newSigClient(b Source, c Contract, key uint64) *sigClient {
	keyEnc := datagen.EncodeKeyWidth(key, c.KeySize)
	return &sigClient{
		b:        b,
		c:        c,
		query:    signature.QuerySig(keyEnc, c.SigBytes, c.BitsPerField),
		queryKey: keyEnc,
		dataSize: wire.HeaderSize + units.Bytes(c.RecordSize),
	}
}

func (cl *sigClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	p := cl.b.Of(i)
	h := header(p)
	payloadOff := int(wire.HeaderSize)
	if h.Kind == wire.KindSignature {
		cl.scanned++
		rec := signature.Sig(p[payloadOff : payloadOff+cl.c.SigBytes])
		if rec.Covers(cl.query) {
			return access.Next() // download the following data bucket
		}
		if cl.scanned >= cl.c.NumRecords {
			return access.Done(false)
		}
		// Doze over the fixed-size data bucket to the next signature.
		return access.Doze(end + cl.dataSize.Span())
	}
	// Data bucket: requested record or false drop.
	if bytes.Equal(p[payloadOff:payloadOff+cl.c.KeySize], cl.queryKey) {
		return access.Done(true)
	}
	if cl.scanned >= cl.c.NumRecords {
		return access.Done(false)
	}
	return access.Next() // the next signature bucket is adjacent
}

// --- simple hashing -------------------------------------------------------

type hashPhase uint8

const (
	hashSeek hashPhase = iota
	hashChain
)

type hashClient struct {
	b        Source
	c        Contract
	queryKey []byte
	target   int // H(K)
	phase    hashPhase
	read     int
}

func newHashClient(b Source, c Contract, key uint64) *hashClient {
	keyEnc := datagen.EncodeKeyWidth(key, c.KeySize)
	return &hashClient{
		b:        b,
		c:        c,
		queryKey: keyEnc,
		target:   hashPosition(keyEnc, c.HashPositions),
	}
}

// hashPosition applies the published hash function (FNV-64a mod Na).
func hashPosition(keyEnc []byte, na int) int {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, b := range keyEnc {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(na))
}

// control decodes a hash bucket's control part.
func (cl *hashClient) control(p []byte) (empty bool, hashVal uint32, shift, cycleRemain int64) {
	r := wire.NewReader(p)
	r.Header()
	empty = r.U8() == 1
	hashVal = r.U32()
	shift = r.Offset()
	cycleRemain = r.Offset()
	return
}

func (cl *hashClient) bucketSize() units.ByteCount {
	return wire.HeaderSize + 1 + 4 + 2*wire.OffsetSize + units.Bytes(cl.c.RecordSize)
}

func (cl *hashClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	p := cl.b.Of(i)
	h := header(p)
	empty, hashVal, shift, cycleRemain := cl.control(p)
	seq := int(h.Seq)
	switch cl.phase {
	case hashSeek:
		switch {
		case seq == cl.target:
			cl.phase = hashChain
			if shift <= 0 {
				return cl.examine(empty, hashVal, p)
			}
			return access.Doze(end + units.Bytes64(shift).Span())
		case seq < cl.target:
			// Uniform buckets: the hash position's start time is computable
			// from the sequence delta.
			return access.Doze(end + cl.bucketSize().Times(cl.target-seq-1).Span())
		default:
			// Missed it: wait out the cycle and probe again from the top
			// (the paper's extra bucket read).
			return access.Doze(end + units.Bytes64(cycleRemain).Span())
		}
	case hashChain:
		return cl.examine(empty, hashVal, p)
	}
	panic("airborne: invalid hash client phase")
}

func (cl *hashClient) examine(empty bool, hashVal uint32, p []byte) access.Step {
	cl.read++
	if units.Count(cl.read) > cl.b.NumBuckets() {
		return access.Done(false)
	}
	// A different hash value or an explicitly empty position ends the
	// chain without a match.
	if int(hashVal) != cl.target || empty {
		return access.Done(false)
	}
	keyOff := int(wire.HeaderSize + 1 + 4 + 2*wire.OffsetSize)
	if bytes.Equal(p[keyOff:keyOff+cl.c.KeySize], cl.queryKey) {
		return access.Done(true)
	}
	return access.Next()
}

// --- tree schemes ((1,m) and distributed indexing) -------------------------

type treePhase uint8

const (
	treeFirstProbe treePhase = iota
	treeNavigate
	treeDownload
)

type treeClient struct {
	b        Source
	c        Contract
	key      uint64
	queryKey []byte
	phase    treePhase
}

func newTreeClient(b Source, c Contract, key uint64) *treeClient {
	return &treeClient{
		b:        b,
		c:        c,
		key:      key,
		queryKey: datagen.EncodeKeyWidth(key, c.TreeLayout.KeySize),
	}
}

// nextSegDelta reads the next-index-segment offset shared by every bucket
// layout of the tree schemes (directly after the header).
func nextSegDelta(p []byte) int64 {
	r := wire.NewReader(p)
	r.Header()
	return r.Offset()
}

func (cl *treeClient) OnBucket(i units.BucketIndex, end sim.Time) access.Step {
	p := cl.b.Of(i)
	switch cl.phase {
	case treeFirstProbe:
		cl.phase = treeNavigate
		return access.Doze(end + units.Bytes64(nextSegDelta(p)).Span())

	case treeNavigate:
		d, err := treeidx.DecodeIndex(p, cl.c.TreeLayout)
		if err != nil {
			panic("airborne: navigation read a non-index bucket: " + err.Error())
		}
		// The paper's shortcut: if the key was broadcast before this
		// segment, its data bucket has passed — wait for the next cycle.
		if d.LastKey != treeidx.NoKey && cl.key <= d.LastKey {
			return access.Doze(end + units.Bytes64(d.NextCycle).Span())
		}
		// Route by separator keys: first entry covering the query.
		j := -1
		for e, sep := range d.Keys {
			if cl.key <= sep {
				j = e
				break
			}
		}
		if j < 0 {
			// Beyond this node's range: climb one level via the control
			// index; at the root that proves the key absent.
			if len(d.Ctrl) == 0 {
				return access.Done(false)
			}
			return access.Doze(end + units.Bytes64(d.Ctrl[len(d.Ctrl)-1]).Span())
		}
		// The node's level equals its control-entry count; the leaf index
		// level is Levels-1.
		if len(d.Ctrl) == cl.c.TreeLayout.Levels-1 {
			if d.Keys[j] != cl.key {
				return access.Done(false) // routed leaf has no exact entry
			}
			cl.phase = treeDownload
			return access.Doze(end + units.Bytes64(d.Local[j]).Span())
		}
		return access.Doze(end + units.Bytes64(d.Local[j]).Span())

	case treeDownload:
		keyOff := int(wire.HeaderSize + wire.OffsetSize)
		if !bytes.Equal(p[keyOff:keyOff+cl.c.TreeLayout.KeySize], cl.queryKey) {
			panic("airborne: downloaded the wrong data bucket")
		}
		return access.Done(true)
	}
	panic("airborne: invalid tree client phase")
}
