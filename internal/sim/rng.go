package sim

import (
	"math"
	"math/rand"
)

// RNG wraps the seeded random source shared by a simulation run. All
// stochastic behaviour in the testbed (request arrival times, key choices,
// availability draws) flows through a single RNG so that a run is exactly
// reproducible from its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// SplitMix derives the seed of the shard-th RNG substream from a base
// seed with the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA 2014):
// the shard index advances the golden-gamma counter and the output mix
// decorrelates even adjacent shards. Substreams are what let the
// round-sharded engine give every shard its own arrival process while a
// run stays a pure function of (seed, shards).
func SplitMix(seed int64, shard int) int64 {
	x := uint64(seed) + uint64(shard+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}

// NewShardRNG returns the deterministic generator for one shard's
// substream: NewRNG(SplitMix(seed, shard)).
func NewShardRNG(seed int64, shard int) *RNG {
	return NewRNG(SplitMix(seed, shard))
}

// StreamSeed derives the seed of a named per-shard substream:
// splitmix(seed, shard, label). The label is folded into the base seed
// with FNV-1a before the SplitMix64 shard derivation, so differently
// named streams of the same (seed, shard) pair are decorrelated from each
// other and from the unnamed arrival stream. The fault-injection layer
// draws from splitmix(seed, shard, "faults") so that enabling faults
// never perturbs the arrival process (DESIGN.md §7).
func StreamSeed(seed int64, shard int, label string) int64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 1099511628211 // FNV-1a prime
	}
	return SplitMix(int64(uint64(seed)^h), shard)
}

// Exponential draws an exponentially distributed duration with the given
// mean, rounded up to at least one time unit. The paper's request
// generation process "follows exponential distribution" (§3).
func (g *RNG) Exponential(mean float64) Time {
	if mean <= 0 {
		return 1
	}
	d := g.r.ExpFloat64() * mean
	if d <= 1 {
		return 1
	}
	if d > math.MaxInt64/2 {
		return Time(math.MaxInt64 / 2)
	}
	return Time(math.Ceil(d))
}

// Intn draws a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n draws a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Float64 draws a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf returns a generator of Zipf-distributed ranks in [0, n) with
// exponent s > 1 (smaller ranks are hotter). Skewed request workloads use
// it to model popularity.
func (g *RNG) Zipf(s float64, n int) func() int {
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
