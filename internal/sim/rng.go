package sim

import (
	"math"
	"math/rand"
)

// RNG wraps the seeded random source shared by a simulation run. All
// stochastic behaviour in the testbed (request arrival times, key choices,
// availability draws) flows through a single RNG so that a run is exactly
// reproducible from its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Exponential draws an exponentially distributed duration with the given
// mean, rounded up to at least one time unit. The paper's request
// generation process "follows exponential distribution" (§3).
func (g *RNG) Exponential(mean float64) Time {
	if mean <= 0 {
		return 1
	}
	d := g.r.ExpFloat64() * mean
	if d < 1 {
		return 1
	}
	if d > math.MaxInt64/2 {
		return Time(math.MaxInt64 / 2)
	}
	return Time(d)
}

// Intn draws a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n draws a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Float64 draws a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf returns a generator of Zipf-distributed ranks in [0, n) with
// exponent s > 1 (smaller ranks are hotter). Skewed request workloads use
// it to model popularity.
func (g *RNG) Zipf(s float64, n int) func() int {
	z := rand.NewZipf(g.r, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
