package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestStreamSeedLabelsUnique is the runtime backstop behind the
// rngdiscipline analyzer: it enumerates every StreamSeed call site in
// the module and asserts each label is a string literal and no label is
// used twice. The analyzer enforces the same contract at lint time; this
// test keeps the invariant covered by `go test ./...` alone.
func TestStreamSeedLabelsUnique(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}

	fset := token.NewFileSet()
	type site struct {
		pos   token.Position
		label string
	}
	var sites []site
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "StreamSeed" {
					return true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name != "StreamSeed" {
					return true
				}
			default:
				return true
			}
			pos := fset.Position(call.Args[2].Pos())
			lit, ok := call.Args[2].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				t.Errorf("%s: StreamSeed label is not a string literal", pos)
				return true
			}
			label, err := strconv.Unquote(lit.Value)
			if err != nil || label == "" {
				t.Errorf("%s: StreamSeed label %s is empty or malformed", pos, lit.Value)
				return true
			}
			sites = append(sites, site{pos: pos, label: label})
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(sites) == 0 {
		t.Fatal("no StreamSeed call sites found in the module; the backstop is scanning the wrong tree")
	}
	first := make(map[string]token.Position)
	for _, s := range sites {
		if prev, ok := first[s.label]; ok {
			t.Errorf("StreamSeed label %q used at both %s and %s; duplicate labels yield identical substreams", s.label, prev, s.pos)
			continue
		}
		first[s.label] = s.pos
	}
}
