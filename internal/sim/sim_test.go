package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, func(s *Simulator) { got = append(got, s.Now()) })
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(*Simulator) { got = append(got, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order %v, want insertion order", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(100, func(s *Simulator) {
		s.After(25, func(s *Simulator) { fired = s.Now() })
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 125 {
		t.Fatalf("relative event fired at %d, want 125", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func(s *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func(*Simulator) {})
	})
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After delay did not panic")
		}
	}()
	s.After(-1, func(*Simulator) {})
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	ev := s.At(10, func(*Simulator) { fired = true })
	s.Cancel(ev)
	s.Cancel(ev) // double-cancel is a no-op
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	s := New()
	s.Cancel(nil)
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStopReturnsErrStopped(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func(s *Simulator) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(0); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("fired %d events before stop, want 3", count)
	}
	// Run again resumes with the remaining events.
	if err := s.Run(0); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("fired %d total events, want 10", count)
	}
}

func TestEventBudget(t *testing.T) {
	s := New()
	var reschedule func(*Simulator)
	reschedule = func(s *Simulator) { s.After(1, reschedule) }
	s.At(0, reschedule)
	if err := s.Run(100); err == nil {
		t.Fatal("Run with runaway self-scheduling returned nil, want budget error")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func(s *Simulator) { fired = append(fired, s.Now()) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %d events, want 2", len(fired))
	}
	if s.Now() != 12 {
		t.Fatalf("clock at %d after RunUntil(12), want 12", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", s.Pending())
	}
}

func TestProcessedCounts(t *testing.T) {
	s := New()
	for i := Time(0); i < 7; i++ {
		s.At(i, func(*Simulator) {})
	}
	if err := s.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed)
	}
}

// Property: for any set of (non-negative) firing times, Run visits them in
// nondecreasing order and fires exactly one event per scheduled time.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var got []Time
		for _, r := range raw {
			at := Time(r)
			s.At(at, func(s *Simulator) { got = append(got, s.Now()) })
		}
		if err := s.Run(0); err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(42)
	const mean = 1000.0
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Exponential(mean))
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("exponential sample mean %.1f, want within 2%% of %.1f", got, mean)
	}
}

func TestExponentialAlwaysPositive(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if d := g.Exponential(0.001); d < 1 {
			t.Fatalf("Exponential returned %d < 1", d)
		}
	}
	if d := g.Exponential(-5); d != 1 {
		t.Fatalf("Exponential with nonpositive mean = %d, want 1", d)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Exponential(500) != b.Exponential(500) || a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed produced diverging streams")
		}
	}
}
