package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestExponentialRoundsUp pins the documented rounding: interarrival
// draws are rounded *up* to at least one time unit, never truncated.
// Truncation biased the mean ~0.5 bytes low; this test fails on that code.
func TestExponentialRoundsUp(t *testing.T) {
	const seed, mean = 123, 700.0
	g := NewRNG(seed)
	ref := rand.New(rand.NewSource(seed))
	sawFraction := false
	for i := 0; i < 5000; i++ {
		raw := ref.ExpFloat64() * mean
		want := Time(math.Ceil(raw))
		if raw <= 1 {
			want = 1
		}
		got := g.Exponential(mean)
		if got != want {
			t.Fatalf("draw %d: Exponential = %d, want ceil(%v) = %d", i, got, raw, want)
		}
		if raw > 1 && raw != math.Trunc(raw) && Time(raw) != want {
			sawFraction = true
		}
	}
	if !sawFraction {
		t.Fatal("no fractional draw exercised the ceil/truncate distinction")
	}
}

// TestExponentialOverflowClamp pins the overflow clamp: a huge mean must
// not wrap the byte-clock.
func TestExponentialOverflowClamp(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		d := g.Exponential(math.MaxFloat64)
		if d < 1 || d > Time(math.MaxInt64/2) {
			t.Fatalf("clamped draw %d outside [1, MaxInt64/2]", d)
		}
	}
}

func TestSplitMixDeterministic(t *testing.T) {
	for shard := 0; shard < 8; shard++ {
		if SplitMix(42, shard) != SplitMix(42, shard) {
			t.Fatal("SplitMix not a pure function")
		}
	}
	a, b := NewShardRNG(42, 3), NewShardRNG(42, 3)
	for i := 0; i < 100; i++ {
		if a.Intn(1<<30) != b.Intn(1<<30) {
			t.Fatal("same (seed, shard) produced diverging substreams")
		}
	}
}

// TestSplitMixSubstreamsDistinct checks that substreams of one base seed
// are pairwise distinct, distinct from the base stream, and that shard 0
// is not the identity (splitmix advances the counter even for shard 0).
func TestSplitMixSubstreamsDistinct(t *testing.T) {
	const seed = 42
	seen := map[int64]int{seed: -1}
	for shard := 0; shard < 64; shard++ {
		sub := SplitMix(seed, shard)
		if prev, dup := seen[sub]; dup {
			t.Fatalf("substream seed collision: shard %d and %d both map to %d", shard, prev, sub)
		}
		seen[sub] = shard
	}
	base, sub := NewRNG(seed), NewShardRNG(seed, 0)
	same := 0
	for i := 0; i < 64; i++ {
		if base.Intn(1<<30) == sub.Intn(1<<30) {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("shard-0 substream tracks the base stream (%d/64 equal draws)", same)
	}
}

// TestStreamSeedLabeledSubstreams: labeled substreams are pure functions
// of (seed, shard, label), distinct per label, and decorrelated from the
// unlabeled arrival substream of the same (seed, shard).
func TestStreamSeedLabeledSubstreams(t *testing.T) {
	if StreamSeed(42, 3, "faults") != StreamSeed(42, 3, "faults") {
		t.Fatal("StreamSeed not a pure function")
	}
	seen := map[int64]string{}
	for _, label := range []string{"", "faults", "faultt", "arrivals"} {
		for shard := 0; shard < 16; shard++ {
			s := StreamSeed(42, shard, label)
			if prev, dup := seen[s]; dup {
				t.Fatalf("labeled substream collision: %q/%d vs %s", label, shard, prev)
			}
			seen[s] = fmt.Sprintf("%q/%d", label, shard)
			if s == SplitMix(42, shard) && label != "" {
				t.Fatalf("label %q shard %d collides with the arrival substream", label, shard)
			}
		}
	}
	arrival, labeled := NewShardRNG(42, 0), NewRNG(StreamSeed(42, 0, "faults"))
	same := 0
	for i := 0; i < 64; i++ {
		if arrival.Intn(1<<30) == labeled.Intn(1<<30) {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("faults substream tracks the arrival stream (%d/64 equal draws)", same)
	}
}

// TestSplitMixSubstreamMeansUnbiased is a coarse statistical check that a
// substream still draws a correct exponential distribution.
func TestSplitMixSubstreamMeansUnbiased(t *testing.T) {
	const mean = 1000.0
	for shard := 0; shard < 4; shard++ {
		g := NewShardRNG(7, shard)
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			sum += float64(g.Exponential(mean))
		}
		if got := sum / n; math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("shard %d: sample mean %.1f, want within 3%% of %.1f", shard, got, mean)
		}
	}
}
