// Package sim provides the discrete-event simulation kernel used by the
// wireless broadcast testbed.
//
// Time in the simulator is a virtual byte-clock: the broadcast channel
// transmits exactly one byte per time unit, so every duration is expressed
// in bytes. This mirrors the paper's measurement model (EDBT 2002, §4.1),
// which evaluates access time and tuning time "in terms of the number of
// bytes read" to remove CPU-speed and network-delay noise from the results.
//
// The kernel is a classic event-queue design: events carry a firing time
// and a callback, ties are broken by insertion order so that runs are fully
// deterministic for a fixed seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is a point on the simulation's virtual byte-clock. One unit equals
// the transmission time of one byte on the broadcast channel.
type Time int64

// Event is a scheduled callback. The callback receives the simulator so it
// can schedule follow-up events.
type Event struct {
	At Time
	Do func(*Simulator)

	seq int64 // insertion order, used as a deterministic tie-breaker
	idx int   // heap index
}

// eventQueue is a min-heap of events ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop rather than by draining the event queue.
var ErrStopped = errors.New("sim: stopped")

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now     Time
	queue   eventQueue
	nextSeq int64
	stopped bool

	// Processed counts events that have fired since construction.
	Processed int64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: broadcast protocols only ever wait forward.
func (s *Simulator) At(t Time, fn func(*Simulator)) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	ev := &Event{At: t, Do: fn, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d time units from now.
func (s *Simulator) After(d Time, fn func(*Simulator)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(s.queue) || s.queue[ev.idx] != ev {
		return
	}
	heap.Remove(&s.queue, ev.idx)
}

// Stop makes Run return after the currently firing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run fires events in time order until the queue drains, Stop is called, or
// maxEvents events have fired (maxEvents <= 0 means no limit). It returns
// ErrStopped if stopped, or an error if the event budget was exhausted.
//
//airlint:hotpath
func (s *Simulator) Run(maxEvents int64) error {
	fired := int64(0)
	for len(s.queue) > 0 {
		if s.stopped {
			s.stopped = false
			return ErrStopped
		}
		if maxEvents > 0 && fired >= maxEvents {
			//airlint:allow escapecheck fmt.Errorf boxes its operands on this terminal error path
			return fmt.Errorf("sim: event budget %d exhausted at t=%d with %d pending", maxEvents, s.now, len(s.queue)) //airlint:allow hotalloc terminal budget-exhaustion path, once per failed run
		}
		ev := heap.Pop(&s.queue).(*Event)
		s.now = ev.At
		s.Processed++
		fired++
		ev.Do(s)
	}
	return nil
}

// RunUntil fires events whose time is <= deadline, leaving later events
// queued, and advances the clock to the deadline.
//
//airlint:hotpath
func (s *Simulator) RunUntil(deadline Time) {
	for len(s.queue) > 0 && s.queue[0].At <= deadline {
		ev := heap.Pop(&s.queue).(*Event)
		s.now = ev.At
		s.Processed++
		ev.Do(s)
	}
	if s.now < deadline {
		s.now = deadline
	}
}
