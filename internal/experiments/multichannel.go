package experiments

import (
	"fmt"

	"github.com/airindex/airindex/internal/analytical"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/units"
)

// multichChannels is the K sweep of the multichannel family. The K=1
// point anchors the single-channel baseline: with zero switch cost it is
// byte-identical to the fig4/fig5 runs (the differential test and CI gate
// pin exactly that).
func multichChannels(opt Options) []int {
	if opt.Fast {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 3, 4, 5, 6, 7, 8}
}

// multichSwitchCosts is the retune-cost sweep, in bytes elapsed while the
// receiver re-tunes (dozing): a free switch and a one-page cost.
func multichSwitchCosts() []units.ByteCount {
	return []units.ByteCount{0, 1024}
}

// MultichSweep sweeps the replicated K-channel allocation over all five
// comparison schemes, for each channel-switch cost. It produces two
// tables: access time (multich-at) and tuning time (multich-tt, flat
// excluded as in the paper's figures), with one column per scheme and
// switch cost.
//
// The headline allocation is Replicated — the full cycle on every
// channel, phases staggered by 1/K of the cycle — because it admits every
// scheme unchanged and has clean closed forms; the IndexData and Skewed
// policies are exercised by the unit and agreement tests. Tuning time is
// expected flat in K: allocation moves buckets between channels, it does
// not change how many a selective probe reads.
func MultichSweep(opt Options) ([]*Table, error) {
	schemes := []string{"flat", "signature", "(1,m)", "distributed", "hashing"}
	ks := multichChannels(opt)
	costs := multichSwitchCosts()
	acc := &Table{
		ID:     "multich-at",
		Title:  "Access time vs. number of broadcast channels",
		XLabel: "channels K",
		YLabel: "access time (bytes)",
	}
	tun := &Table{
		ID:     "multich-tt",
		Title:  "Tuning time vs. number of broadcast channels",
		XLabel: "channels K",
		YLabel: "tuning time (bytes)",
	}
	for _, cost := range costs {
		for _, s := range schemes {
			col := fmt.Sprintf("%s sw%d", s, cost)
			acc.Columns = append(acc.Columns, col)
			if s != "flat" {
				tun.Columns = append(tun.Columns, col)
			}
		}
	}
	nr := opt.comparisonRecords()
	acc.Note("workload: %d records; replicated allocation, phases staggered by 1/K; swN = channel-switch cost in bytes", nr)
	tun.Note("switch cost is dozed through, so tuning time stays flat in K by construction")

	var cfgs []core.Config
	for _, k := range ks {
		for _, cost := range costs {
			for _, s := range schemes {
				cfg := opt.baseConfig(s, nr)
				cfg.Multi = multichannel.Config{Channels: k, SwitchCost: cost}
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := runPoints(opt, cfgs)
	if err != nil {
		return nil, err
	}
	per := len(costs) * len(schemes)
	for xi, k := range ks {
		accCells := make([]float64, 0, per)
		tunCells := make([]float64, 0, per-len(costs))
		for ci := range costs {
			for si, s := range schemes {
				res := results[xi*per+ci*len(schemes)+si]
				accCells = append(accCells, res.Access.Mean())
				if s != "flat" {
					tunCells = append(tunCells, res.Tuning.Mean())
				}
			}
		}
		acc.AddRow(float64(k), accCells...)
		tun.AddRow(float64(k), tunCells...)
	}
	return []*Table{acc, tun}, nil
}

// analyticMulti returns the K-channel model predictions in bytes for a
// finished multichannel run, or NaNs where no closed form applies (the
// skewed policy, and nonzero switch costs — the models assume a free
// retune; the walker's cost gating keeps the simulated curves between the
// free-switch and single-channel predictions).
func analyticMulti(cfg core.Config, res *core.Result) (accessBytes, tuningBytes float64) {
	nan := func() (float64, float64) { return nanF, nanF }
	if cfg.Multi.SwitchCost > 0 {
		return nan()
	}
	// Tuning (and the serial schemes' access) follow the single-channel
	// forms under every allocation.
	single := cfg
	single.Multi = multichannel.Config{}
	at1, tt1 := analytic(single, res)

	p := res.Params
	k := cfg.Multi.Channels
	switch cfg.Multi.Policy {
	case multichannel.PolicyReplicated:
		switch cfg.Scheme {
		case flat.Name, signature.Name:
			// Serial scans never doze; replication gains them nothing.
			return at1, tt1
		case onem.Name:
			tp := analytical.TreeParams{
				Fanout:  int(p["fanout"]),
				Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Records: cfg.Data.NumRecords,
			}
			return analytical.OneMAccessK(tp, int(p["m"]), k) * p["bucket_size"], tt1
		case dist.Name:
			tp := analytical.TreeParams{
				Fanout:     int(p["fanout"]),
				Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Replicated: int(p["r"]),
				Records:    cfg.Data.NumRecords,
			}
			return analytical.DistAccessK(tp, int(p["segments"]), k) * p["bucket_size"], tt1
		case hashing.Name:
			hp := analytical.HashParams{
				Allocated: p["Na"],
				Colliding: p["Nc"],
				Records:   float64(cfg.Data.NumRecords),
			}
			bucket := float64(res.CycleBytes) / (p["Na"] + p["Nc"])
			return analytical.HashingAccessK(hp, k) * bucket, tt1
		default:
			return nan()
		}
	case multichannel.PolicyIndexData:
		ic := cfg.Multi.IndexChannels
		if ic == 0 {
			ic = 1
		}
		switch cfg.Scheme {
		case onem.Name:
			tp := analytical.TreeParams{
				Fanout:  int(p["fanout"]),
				Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Records: cfg.Data.NumRecords,
			}
			return analytical.OneMIndexDataAccess(tp, k-ic) * p["bucket_size"], tt1
		case dist.Name:
			tp := analytical.TreeParams{
				Fanout:     int(p["fanout"]),
				Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
				Replicated: int(p["r"]),
				Records:    cfg.Data.NumRecords,
			}
			return analytical.DistIndexDataAccess(tp, int(p["segments"]), k-ic) * p["bucket_size"], tt1
		default:
			return nan()
		}
	default:
		return nan()
	}
}
