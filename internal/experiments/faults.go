package experiments

import (
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
)

// faultRates is the error-rate sweep of the faults family: 0–10% bucket
// loss, with a zero point anchoring the perfect-channel baseline.
func faultRates(opt Options) []float64 {
	if opt.Fast {
		return []float64{0, 0.01, 0.05, 0.1}
	}
	return []float64{0, 0.001, 0.01, 0.02, 0.05, 0.1}
}

// FaultSweep sweeps the unreliable-channel error rate over all five
// comparison schemes. It produces three tables: access time (faults-at),
// tuning time (faults-tt, flat excluded as in the paper's figures), and
// per-request recovery cost (faults-recovery: protocol restarts and
// tuning bytes wasted on corrupted reads).
//
// The headline model is whole-bucket drop (every read fails independently
// with the swept probability) under the restart recovery policy with an
// unbounded retry budget, so every request eventually completes and the
// At/Tt degradation is attributable to the channel, not to abandoned
// requests. Rate 0 takes the same injected code path and reproduces the
// perfect channel byte for byte.
func FaultSweep(opt Options) ([]*Table, error) {
	schemes := []string{"flat", "signature", "(1,m)", "distributed", "hashing"}
	rates := faultRates(opt)
	acc := &Table{
		ID:     "faults-at",
		Title:  "Access time vs. bucket error rate",
		XLabel: "error rate %",
		YLabel: "access time (bytes)",
	}
	tun := &Table{
		ID:     "faults-tt",
		Title:  "Tuning time vs. bucket error rate",
		XLabel: "error rate %",
		YLabel: "tuning time (bytes)",
	}
	rec := &Table{
		ID:     "faults-recovery",
		Title:  "Recovery cost vs. bucket error rate",
		XLabel: "error rate %",
		YLabel: "per request",
	}
	for _, s := range schemes {
		acc.Columns = append(acc.Columns, s)
		if s != "flat" {
			tun.Columns = append(tun.Columns, s)
		}
		rec.Columns = append(rec.Columns, s+" restarts/req", s+" wasted/req")
	}
	nr := opt.comparisonRecords()
	acc.Note("workload: %d records; whole-bucket drop model, restart recovery, unbounded retries", nr)
	rec.Note("wasted/req is tuning bytes spent on reads that turned out corrupted")

	var cfgs []core.Config
	for _, rate := range rates {
		for _, s := range schemes {
			cfg := opt.baseConfig(s, nr)
			cfg.Faults = faults.FromRate(faults.ModelDrop, rate)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runPoints(opt, cfgs)
	if err != nil {
		return nil, err
	}
	for xi, rate := range rates {
		x := rate * 100
		accCells := make([]float64, 0, len(schemes))
		tunCells := make([]float64, 0, len(schemes)-1)
		recCells := make([]float64, 0, 2*len(schemes))
		for si, s := range schemes {
			res := results[xi*len(schemes)+si]
			accCells = append(accCells, res.Access.Mean())
			if s != "flat" {
				tunCells = append(tunCells, res.Tuning.Mean())
			}
			req := float64(res.Requests)
			recCells = append(recCells, float64(res.Restarts)/req, float64(res.WastedBytes)/req)
		}
		acc.AddRow(x, accCells...)
		tun.AddRow(x, tunCells...)
		rec.AddRow(x, recCells...)
	}
	return []*Table{acc, tun, rec}, nil
}
