package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/multichannel"
)

// TestMultiK1ReproducesFigures is the subsystem's differential anchor
// (mirrored by the CI gate): a one-channel replicated allocation with
// zero switch cost, routed through Options like the CLI flag, reproduces
// the existing figure tables byte for byte.
func TestMultiK1ReproducesFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig4 and fig5 twice")
	}
	withMulti := fast
	withMulti.Multi = multichannel.Config{Channels: 1}
	for _, id := range []string{"fig4a", "fig5a"} {
		base := csvBytes(t, id, fast)
		multi := csvBytes(t, id, withMulti)
		if !bytes.Equal(base, multi) {
			t.Errorf("%s: K=1 replicated allocation changed the CSV bytes:\nbase:\n%s\nmulti:\n%s", id, base, multi)
		}
	}
}

// TestMultichSweepShapes pins the family's qualitative results: the
// dozing schemes' access time falls with K on free switches, a nonzero
// switch cost never improves a row, the serial schemes stay flat, and
// tuning time stays flat in K for every scheme.
func TestMultichSweepShapes(t *testing.T) {
	ts, err := MultichSweep(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].ID != "multich-at" || ts[1].ID != "multich-tt" {
		t.Fatalf("multich family shape wrong: %v", ts)
	}
	acc, tun := ts[0], ts[1]
	last := len(acc.Rows) - 1

	for _, s := range []string{"(1,m)", "distributed", "hashing"} {
		free := col(t, acc, s+" sw0")
		if free[last] >= 0.8*free[0] {
			t.Errorf("%s: K=8 free-switch access %v not clearly below K=1 %v", s, free[last], free[0])
		}
		costly := col(t, acc, s+" sw1024")
		for i := range free {
			if costly[i] < free[i]*0.98 {
				t.Errorf("%s row %d: switch cost improved access: %v < %v", s, i, costly[i], free[i])
			}
		}
		tt := col(t, tun, s+" sw0")
		for i := 1; i < len(tt); i++ {
			if !within(tt[i], tt[0], 0.05) {
				t.Errorf("%s: tuning not flat in K: %v", s, tt)
			}
		}
	}
	for _, s := range []string{"flat", "signature"} {
		free := col(t, acc, s+" sw0")
		for i := 1; i < len(free); i++ {
			if !within(free[i], free[0], 0.05) {
				t.Errorf("%s: serial scheme access varies with K: %v", s, free)
			}
		}
	}
}

// TestMultichSweepDeterministic: the family is a pure function of
// (Seed, Shards, allocation) — repeated runs produce identical tables.
func TestMultichSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the multich sweep twice")
	}
	opt := fast
	opt.Shards = 2
	a, err := MultichSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MultichSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated multich sweep differed")
	}
}

// TestMultichAgreesWithAnalysis validates the K-channel closed forms
// against the simulation at the same 20% tolerance the single-channel
// curves meet: replicated allocation for all five comparison schemes at
// K in {2,4}, and the index/data allocation for the indexed schemes.
func TestMultichAgreesWithAnalysis(t *testing.T) {
	nr := fast.ComparisonRecords()
	check := func(label, scheme string, mc multichannel.Config) {
		cfg := fast.BaseConfig(scheme, nr)
		cfg.Multi = mc
		res, err := core.RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		aAt, aTt := analytic(cfg, res)
		sAt, sTt := res.Access.Mean(), res.Tuning.Mean()
		if !within(sAt, aAt, 0.2) {
			t.Errorf("%s %s: access sim %.0f vs analytical %.0f beyond 20%%", label, scheme, sAt, aAt)
		}
		if scheme != "flat" && !within(sTt, aTt, 0.2) {
			t.Errorf("%s %s: tuning sim %.0f vs analytical %.0f beyond 20%%", label, scheme, sTt, aTt)
		}
	}
	for _, k := range []int{2, 4, 8} {
		for _, s := range []string{"flat", "signature", "(1,m)", "distributed", "hashing"} {
			check(fmt.Sprintf("replicated K=%d", k), s, multichannel.Config{Channels: k})
		}
	}
	for _, s := range []string{"(1,m)", "distributed"} {
		check("indexdata K=3", s, multichannel.Config{Channels: 3, Policy: multichannel.PolicyIndexData})
	}
}
