// Package experiments names the paper's experiment families and runs
// them. Every simulation family is a compiled airql scenario: the runner
// fetches the family's script from the embedded scenarios package,
// compiles it with internal/airql, and executes it — the scripts under
// scenarios/ are the single source of truth for the sweeps, and
// `cmd/airql` runs the very same texts. Only Table 1 (a constants table,
// not a sweep) is assembled natively.
package experiments

import (
	"fmt"
	"sort"

	"github.com/airindex/airindex/internal/airql"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/scenarios"
)

// Options tunes how experiments run. It is the scenario executor's
// options type: session-wide flags (profile, seed, shards, engine,
// fault and multichannel layers) that merge with each script's RUN
// stage, session side winning.
type Options = airql.Options

// Table is one experiment result table; Row is one of its rows.
type Table = airql.Table

// Row is one x-labelled result row of a Table.
type Row = airql.Row

// analytic returns the paper's model predictions in bytes for a finished
// run, or NaNs when the paper gives no closed form for the setting. The
// implementation lives with the scenario executor, which serves it as
// the analytic(...) metric.
func analytic(cfg core.Config, res *core.Result) (accessBytes, tuningBytes float64) {
	return airql.Analytic(cfg, res)
}

// Runner is one experiment: it produces one or more tables.
type Runner func(Options) ([]*Table, error)

// runScenario compiles and executes one embedded scenario script.
func runScenario(name string, opt Options) ([]*Table, error) {
	file := name + ".airql"
	src, err := scenarios.Source(file)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	prog, err := airql.Compile(file, src)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return airql.Execute(prog, opt)
}

// scenario adapts an embedded script name to a Runner.
func scenario(name string) Runner {
	return func(opt Options) ([]*Table, error) { return runScenario(name, opt) }
}

// Fig4 reproduces the paper's Figure 4 (access and tuning time vs.
// database size) from scenarios/fig4.airql.
func Fig4(opt Options) ([]*Table, error) { return runScenario("fig4", opt) }

// Fig5 reproduces Figure 5 (data availability sweep).
func Fig5(opt Options) ([]*Table, error) { return runScenario("fig5", opt) }

// Fig6 reproduces Figure 6 (record size / key size ratio sweep).
func Fig6(opt Options) ([]*Table, error) { return runScenario("fig6", opt) }

// AblateReplication sweeps the distributed scheme's replication depth r.
func AblateReplication(opt Options) ([]*Table, error) { return runScenario("ablate-r", opt) }

// AblateM sweeps the (1,m) scheme's index repetition count m.
func AblateM(opt Options) ([]*Table, error) { return runScenario("ablate-m", opt) }

// AblateSignatureLength sweeps the signature size in bytes.
func AblateSignatureLength(opt Options) ([]*Table, error) { return runScenario("ablate-sig", opt) }

// AblateHashAllocation sweeps the hashing scheme's load factor.
func AblateHashAllocation(opt Options) ([]*Table, error) { return runScenario("ablate-hash", opt) }

// AblateErrorRate sweeps the legacy bit-error layer for the two
// selective schemes. The script clears any session-wide fault model
// (the two layers are mutually exclusive).
func AblateErrorRate(opt Options) ([]*Table, error) { return runScenario("ablate-errors", opt) }

// FaultSweep sweeps the deterministic unreliable-channel layer's loss
// rate over all five comparison schemes.
func FaultSweep(opt Options) ([]*Table, error) { return runScenario("faults", opt) }

// MultichSweep sweeps the K-channel allocation over all five comparison
// schemes for free and one-page channel switches.
func MultichSweep(opt Options) ([]*Table, error) { return runScenario("multich", opt) }

// ExtSignatureFamily runs the signature-variant extension family.
func ExtSignatureFamily(opt Options) ([]*Table, error) { return runScenario("ext-signatures", opt) }

// ExtBroadcastDisks runs the broadcast-disks-vs-flat extension family.
func ExtBroadcastDisks(opt Options) ([]*Table, error) { return runScenario("ext-bdisk", opt) }

// ExtMultiAttribute runs the attribute-query extension family.
func ExtMultiAttribute(opt Options) ([]*Table, error) { return runScenario("ext-multiattr", opt) }

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"table1":         Table1,
	"fig4":           scenario("fig4"),
	"fig5":           scenario("fig5"),
	"fig6":           scenario("fig6"),
	"ablate-r":       scenario("ablate-r"),
	"ablate-m":       scenario("ablate-m"),
	"ablate-sig":     scenario("ablate-sig"),
	"ablate-hash":    scenario("ablate-hash"),
	"ablate-errors":  scenario("ablate-errors"),
	"faults":         scenario("faults"),
	"multich":        scenario("multich"),
	"ext-signatures": scenario("ext-signatures"),
	"ext-bdisk":      scenario("ext-bdisk"),
	"ext-multiattr":  scenario("ext-multiattr"),
}

// tableAliases name a single table of a multi-table experiment, so e.g.
// `airbench fig4a` runs Fig4 and keeps only its access-time table.
var tableAliases = map[string]string{
	"fig4a": "fig4", "fig4b": "fig4",
	"fig5a": "fig5", "fig5b": "fig5",
	"fig6a": "fig6", "fig6b": "fig6",
	"faults-at": "faults", "faults-tt": "faults", "faults-recovery": "faults",
	"multich-at": "multich", "multich-tt": "multich",
}

// IDs lists the available experiment IDs, sorted. Table aliases (fig4a,
// fig5b, ...) are accepted by Run but not listed, so RunAll never runs an
// experiment twice.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID or single-table alias.
func Run(id string, opt Options) ([]*Table, error) {
	if base, ok := tableAliases[id]; ok {
		ts, err := registry[base](opt)
		if err != nil {
			return nil, err
		}
		for _, tb := range ts {
			if tb.ID == id {
				return []*Table{tb}, nil
			}
		}
		return nil, fmt.Errorf("experiments: %s produced no table %q", base, id)
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v and table aliases fig4a...fig6b)", id, IDs())
	}
	return r(opt)
}

// RunAll executes every experiment in ID order.
func RunAll(opt Options) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		ts, err := Run(id, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// Table1 reproduces the paper's Table 1: the common simulation settings.
// The table always states the paper's constants — 7,000–34,000 records,
// 500-request rounds, 0.99 confidence, 0.01 accuracy — whatever profile
// the session runs with; the active profile is a note, not the data.
func Table1(opt Options) ([]*Table, error) {
	paper := Options{}
	cfg := paper.BaseConfig("distributed", 34000)
	t := &Table{
		ID:     "table1",
		Title:  "Simulation settings (paper Table 1)",
		XLabel: "#",
		YLabel: "value",
		Columns: []string{
			"records_min", "records_max", "record_bytes", "key_bytes",
			"round_requests", "confidence", "accuracy", "max_requests",
		},
	}
	sweep := paper.RecordSweep()
	t.AddRow(1,
		float64(sweep[0]), float64(sweep[len(sweep)-1]),
		float64(cfg.Data.RecordSize), float64(cfg.Data.KeySize),
		float64(cfg.RoundSize), cfg.Confidence, cfg.Accuracy,
		float64(cfg.MaxRequests))
	t.Note("data type: text (synthetic dictionary); request interval: exponential distribution")
	t.Note("access and tuning time measured in bytes read, per paper §4.1")
	if opt.Fast {
		fastCfg := opt.BaseConfig("distributed", 34000)
		fastSweep := opt.RecordSweep()
		t.Note("active profile: fast — records %d–%d, rounds of %d, accuracy %g, max %d requests",
			fastSweep[0], fastSweep[len(fastSweep)-1],
			fastCfg.RoundSize, fastCfg.Accuracy, fastCfg.MaxRequests)
	}
	return []*Table{t}, nil
}
