package experiments

import (
	"fmt"
	"sort"

	"github.com/airindex/airindex/internal/analytical"
	"github.com/airindex/airindex/internal/core"
	"github.com/airindex/airindex/internal/faults"
	"github.com/airindex/airindex/internal/multichannel"
	"github.com/airindex/airindex/internal/schemes/dist"
	"github.com/airindex/airindex/internal/schemes/flat"
	"github.com/airindex/airindex/internal/schemes/hashing"
	"github.com/airindex/airindex/internal/schemes/onem"
	"github.com/airindex/airindex/internal/schemes/signature"
	"github.com/airindex/airindex/internal/units"
	"github.com/airindex/airindex/internal/wire"
)

// Options tunes how experiments run.
type Options struct {
	// Fast shrinks workloads and relaxes the stopping rule for test and
	// benchmark runs; the full mode uses the paper's Table 1 settings.
	Fast bool
	// Seed overrides the run seed (0 keeps the default).
	Seed int64
	// Shards forwards core.Config.Shards to every point: each run's
	// accuracy-control rounds execute across this many deterministic RNG
	// substreams (0 keeps the single-shard default). Results depend on
	// (Seed, Shards) but not on scheduling; see DESIGN.md §7.
	Shards int
	// Engine forwards core.Config.Engine to every point: "" or "events"
	// keeps the reference event-driven engine, "cohort" batches each
	// point's requests through the columnar engine. The tables are
	// bit-identical either way (the cohort engine's differential
	// guarantee); only the wall-clock changes.
	Engine string
	// Faults applies the deterministic unreliable-channel layer
	// (internal/faults) to every point. The zero value keeps the perfect
	// channel; a zero-rate model reproduces the perfect channel's tables
	// byte for byte, because the fault process draws from its own RNG
	// substream. Experiments that sweep an error layer themselves
	// (ablate-errors, faults) override this per point.
	Faults faults.Config
	// Multi applies the K-channel broadcast subsystem to every point. The
	// zero value keeps the paper's single channel; a one-channel
	// replicated allocation with zero switch cost reproduces the
	// single-channel tables byte for byte (the hopping walkers consume no
	// RNG). The multich experiment sweeps its own allocations per point.
	Multi multichannel.Config
	// Progress, when non-nil, receives one line per completed point.
	Progress func(format string, args ...any)
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// baseConfig applies the stopping-rule profile to a scheme/record pair.
func (o Options) baseConfig(scheme string, records int) core.Config {
	cfg := core.DefaultConfig(scheme, records)
	if o.Fast {
		cfg.RoundSize = 250
		cfg.Accuracy = 0.02
		cfg.MinRequests = 1500
		cfg.MaxRequests = 20000
	} else {
		// Table 1: 0.99 confidence, 0.01 accuracy, 500-request rounds.
		cfg.MinRequests = 5000
		cfg.MaxRequests = 60000
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	if o.Shards > 0 {
		cfg.Shards = o.Shards
	}
	cfg.Engine = o.Engine
	cfg.Faults = o.Faults
	cfg.Multi = o.Multi
	return cfg
}

// recordSweep is the x axis of Figure 4 (Table 1: 7,000–34,000 records).
func (o Options) recordSweep() []int {
	if o.Fast {
		// Past 1,728 records the default geometry's tree reaches the same
		// depth regime as the paper's sweep, so the Figure 4 orderings hold.
		return []int{2000, 2500, 3000, 3500}
	}
	return []int{7000, 11500, 16000, 20500, 25000, 29500, 34000}
}

// comparisonRecords sizes the Figures 5 and 6 workloads.
func (o Options) comparisonRecords() int {
	if o.Fast {
		// Above 13^3 = 2,197 records the default geometry's tree has four
		// levels, the regime where the paper's tuning orderings hold.
		return 2500
	}
	return 10000
}

// Runner is one experiment: it produces one or more tables.
type Runner func(Options) ([]*Table, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"table1":         Table1,
	"fig4":           Fig4,
	"fig5":           Fig5,
	"fig6":           Fig6,
	"ablate-r":       AblateReplication,
	"ablate-m":       AblateM,
	"ablate-sig":     AblateSignatureLength,
	"ablate-hash":    AblateHashAllocation,
	"ablate-errors":  AblateErrorRate,
	"faults":         FaultSweep,
	"multich":        MultichSweep,
	"ext-signatures": ExtSignatureFamily,
	"ext-bdisk":      ExtBroadcastDisks,
	"ext-multiattr":  ExtMultiAttribute,
}

// tableAliases name a single table of a multi-table experiment, so e.g.
// `airbench fig4a` runs Fig4 and keeps only its access-time table.
var tableAliases = map[string]string{
	"fig4a": "fig4", "fig4b": "fig4",
	"fig5a": "fig5", "fig5b": "fig5",
	"fig6a": "fig6", "fig6b": "fig6",
	"faults-at": "faults", "faults-tt": "faults", "faults-recovery": "faults",
	"multich-at": "multich", "multich-tt": "multich",
}

// IDs lists the available experiment IDs, sorted. Table aliases (fig4a,
// fig5b, ...) are accepted by Run but not listed, so RunAll never runs an
// experiment twice.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID or single-table alias.
func Run(id string, opt Options) ([]*Table, error) {
	if base, ok := tableAliases[id]; ok {
		ts, err := registry[base](opt)
		if err != nil {
			return nil, err
		}
		for _, tb := range ts {
			if tb.ID == id {
				return []*Table{tb}, nil
			}
		}
		return nil, fmt.Errorf("experiments: %s produced no table %q", base, id)
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v and table aliases fig4a...fig6b)", id, IDs())
	}
	return r(opt)
}

// RunAll executes every experiment in ID order.
func RunAll(opt Options) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		ts, err := Run(id, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// analytic returns the paper's model predictions in bytes for a finished
// run, or NaNs when the paper gives no closed form for the setting.
func analytic(cfg core.Config, res *core.Result) (accessBytes, tuningBytes float64) {
	if cfg.Multi.Enabled() {
		return analyticMulti(cfg, res)
	}
	nan := func() (float64, float64) { return nanF, nanF }
	p := res.Params
	switch cfg.Scheme {
	case flat.Name:
		bucket := float64(wire.HeaderSize + units.Bytes(cfg.Data.RecordSize))
		return analytical.FlatAccess(cfg.Data.NumRecords) * bucket,
			analytical.FlatTuning(cfg.Data.NumRecords) * bucket
	case dist.Name:
		tp := analytical.TreeParams{
			Fanout:     int(p["fanout"]),
			Levels:     analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
			Replicated: int(p["r"]),
			Records:    cfg.Data.NumRecords,
		}
		return analytical.DistAccess(tp) * p["bucket_size"],
			analytical.DistTuning(tp) * p["bucket_size"]
	case onem.Name:
		tp := analytical.TreeParams{
			Fanout:  int(p["fanout"]),
			Levels:  analytical.LevelsFor(int(p["fanout"]), cfg.Data.NumRecords),
			Records: cfg.Data.NumRecords,
		}
		return analytical.OneMAccess(tp, int(p["m"])) * p["bucket_size"],
			analytical.OneMTuning(tp) * p["bucket_size"]
	case hashing.Name:
		hp := analytical.HashParams{
			Allocated: p["Na"],
			Colliding: p["Nc"],
			Records:   float64(cfg.Data.NumRecords),
		}
		// Cycle buckets = Na + Nc (every record plus one filler per empty
		// position), all uniform size.
		bucket := float64(res.CycleBytes) / (p["Na"] + p["Nc"])
		return analytical.HashingAccess(hp) * bucket,
			analytical.HashingTuning(hp) * bucket
	case signature.Name:
		dataBytes := float64(wire.HeaderSize + units.Bytes(cfg.Data.RecordSize))
		sigBytes := float64(wire.HeaderSize + units.Bytes(cfg.Signature.SigBytes))
		fields := cfg.Data.NumAttributes + 1
		fd := analytical.SignatureExpectedFalseDrops(cfg.Data.NumRecords,
			cfg.Signature.SigBytes, cfg.Signature.BitsPerField, fields)
		return analytical.SignatureAccess(cfg.Data.NumRecords, dataBytes, sigBytes),
			analytical.SignatureTuning(cfg.Data.NumRecords, dataBytes, sigBytes, fd)
	default:
		// Extension schemes (bdisk, hybrid, the signature variants) have
		// no closed form in the paper; the registry accepts any name, so
		// an unlisted scheme is expected here, not a bug.
		return nan()
	}
}

var nanF = func() float64 {
	var z float64
	return z / z // quiet NaN without importing math here
}()

// Table1 reproduces the paper's Table 1: the common simulation settings.
// The table always states the paper's constants — 7,000–34,000 records,
// 500-request rounds, 0.99 confidence, 0.01 accuracy — whatever profile
// the session runs with; the active profile is a note, not the data.
func Table1(opt Options) ([]*Table, error) {
	paper := Options{}
	cfg := paper.baseConfig("distributed", 34000)
	t := &Table{
		ID:     "table1",
		Title:  "Simulation settings (paper Table 1)",
		XLabel: "#",
		YLabel: "value",
		Columns: []string{
			"records_min", "records_max", "record_bytes", "key_bytes",
			"round_requests", "confidence", "accuracy", "max_requests",
		},
	}
	sweep := paper.recordSweep()
	t.AddRow(1,
		float64(sweep[0]), float64(sweep[len(sweep)-1]),
		float64(cfg.Data.RecordSize), float64(cfg.Data.KeySize),
		float64(cfg.RoundSize), cfg.Confidence, cfg.Accuracy,
		float64(cfg.MaxRequests))
	t.Note("data type: text (synthetic dictionary); request interval: exponential distribution")
	t.Note("access and tuning time measured in bytes read, per paper §4.1")
	if opt.Fast {
		fastCfg := opt.baseConfig("distributed", 34000)
		fastSweep := opt.recordSweep()
		t.Note("active profile: fast — records %d–%d, rounds of %d, accuracy %g, max %d requests",
			fastSweep[0], fastSweep[len(fastSweep)-1],
			fastCfg.RoundSize, fastCfg.Accuracy, fastCfg.MaxRequests)
	}
	return []*Table{t}, nil
}
