package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/airindex/airindex/internal/faults"
)

// csvBytes renders every table of one experiment run to CSV.
func csvBytes(t *testing.T, id string, opt Options) []byte {
	t.Helper()
	ts, err := Run(id, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range ts {
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestZeroRateFaultsReproduceFigures is the PR's differential anchor: a
// zero-rate fault model routed through Options reproduces the existing
// figure tables byte for byte, because the fault substream never touches
// the arrival RNG and zero-rate injection never fires.
func TestZeroRateFaultsReproduceFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig4 and fig5 twice")
	}
	withFaults := fast
	withFaults.Faults = faults.FromRate(faults.ModelDrop, 0)
	for _, id := range []string{"fig4a", "fig5a"} {
		base := csvBytes(t, id, fast)
		faulted := csvBytes(t, id, withFaults)
		if !bytes.Equal(base, faulted) {
			t.Errorf("%s: zero-rate faults changed the CSV bytes:\nbase:\n%s\nfaulted:\n%s", id, base, faulted)
		}
	}
}

// TestFaultSweepShapes pins the faults family's qualitative results:
// access and tuning degrade monotonically with the error rate for every
// scheme, the zero-rate row has zero recovery cost, and nonzero rates
// show restarts.
func TestFaultSweepShapes(t *testing.T) {
	ts, err := FaultSweep(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0].ID != "faults-at" || ts[1].ID != "faults-tt" || ts[2].ID != "faults-recovery" {
		t.Fatalf("faults family shape wrong: %v", ts)
	}
	acc, tun, rec := ts[0], ts[1], ts[2]
	last := len(acc.Rows) - 1

	nonDecreasing := func(v []float64) bool {
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1] {
				return false
			}
		}
		return true
	}
	for _, s := range []string{"flat", "signature", "(1,m)", "distributed", "hashing"} {
		a := col(t, acc, s)
		if !nonDecreasing(a) {
			t.Errorf("%s access not monotone in error rate: %v", s, a)
		}
		if a[last] <= a[0] {
			t.Errorf("%s access shows no degradation at 10%% loss: %v", s, a)
		}
		if s != "flat" {
			if tt := col(t, tun, s); !nonDecreasing(tt) {
				t.Errorf("%s tuning not monotone in error rate: %v", s, tt)
			}
		}
		restarts := col(t, rec, s+" restarts/req")
		wasted := col(t, rec, s+" wasted/req")
		if restarts[0] != 0 || wasted[0] != 0 {
			t.Errorf("%s: zero-rate row has recovery cost: restarts %v wasted %v", s, restarts[0], wasted[0])
		}
		if restarts[last] == 0 || wasted[last] == 0 {
			t.Errorf("%s: 10%% loss shows no recovery cost", s)
		}
		if !nonDecreasing(restarts) {
			t.Errorf("%s restarts/req not monotone: %v", s, restarts)
		}
	}
}

// TestFaultSweepDeterministic: the family is a pure function of
// (Seed, Shards, rates) — repeated runs produce identical tables, sharded
// or not.
func TestFaultSweepDeterministic(t *testing.T) {
	opt := fast
	opt.Shards = 2
	a, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated faults sweep differed")
	}
}

// TestAblateErrorsIgnoresSessionFaults: the legacy BitErrorRate ablation
// clears any session-wide Options.Faults (the two layers are mutually
// exclusive), so `airbench -fault-model ... all` still runs.
func TestAblateErrorsIgnoresSessionFaults(t *testing.T) {
	opt := fast
	opt.Faults = faults.FromRate(faults.ModelIID, 0.01)
	if _, err := AblateErrorRate(opt); err != nil {
		t.Fatalf("ablate-errors rejected a session-wide faults option: %v", err)
	}
}
