package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/airindex/airindex/internal/core"
)

// runPoints executes one simulation per config concurrently (bounded by
// GOMAXPROCS) and returns results in input order. Every run is seeded by
// its own config, so the output is identical to a sequential sweep.
//
// This file is the testbed's only sanctioned concurrency layer: the
// confinement analyzer (internal/lint) rejects goroutines, WaitGroups and
// channel construction everywhere else, so the simulation kernel below
// this point is single-threaded by construction.
func runPoints(opt Options, cfgs []core.Config) ([]*core.Result, error) {
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var progressMu sync.Mutex
	// Acquire the semaphore slot before spawning: at most GOMAXPROCS
	// goroutines exist at a time, so the large per-run state core.RunOne
	// allocates (broadcast image, client pools) is bounded the same way.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range cfgs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := cfgs[i]
			res, err := core.RunOne(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s @ %d records: %w", cfg.Scheme, cfg.Data.NumRecords, err)
				return
			}
			results[i] = res
			progressMu.Lock()
			opt.progress("%-22s records=%-6d avail=%.0f%% access=%.0f tuning=%.0f requests=%d",
				cfg.Scheme, cfg.Data.NumRecords, cfg.Availability*100,
				res.Access.Mean(), res.Tuning.Mean(), res.Requests)
			progressMu.Unlock()
		}(i)
	}
	wg.Wait()
	// errors.Join keeps input order, so the first failing point leads the
	// message and no failure is silently dropped.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}
