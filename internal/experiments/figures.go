package experiments

import (
	"fmt"

	"github.com/airindex/airindex/internal/core"
)

// point runs one (scheme, config) simulation; sequential helper used by
// the smaller ablation sweeps.
func point(opt Options, cfg core.Config) (*core.Result, error) {
	res, err := core.RunOne(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s @ %d records: %w", cfg.Scheme, cfg.Data.NumRecords, err)
	}
	opt.progress("%-22s records=%-6d avail=%.0f%% access=%.0f tuning=%.0f requests=%d",
		cfg.Scheme, cfg.Data.NumRecords, cfg.Availability*100,
		res.Access.Mean(), res.Tuning.Mean(), res.Requests)
	return res, nil
}

// Fig4 reproduces Figure 4: access time (a) and tuning time (b) versus the
// number of broadcast data records, simulated (S) against analytical (A),
// for flat broadcast, distributed indexing, simple hashing and signature
// indexing.
func Fig4(opt Options) ([]*Table, error) {
	schemes := []string{"flat", "distributed", "hashing", "signature"}
	acc := &Table{
		ID:     "fig4a",
		Title:  "Access time vs. number of data records",
		XLabel: "records",
		YLabel: "access time (bytes)",
	}
	tun := &Table{
		ID:     "fig4b",
		Title:  "Tuning time vs. number of data records",
		XLabel: "records",
		YLabel: "tuning time (bytes)",
	}
	for _, s := range schemes {
		acc.Columns = append(acc.Columns, s+" (S)", s+" (A)")
		// The paper's Figure 4(b) omits flat broadcast (its tuning equals
		// its access time and dwarfs the others); keep the same legend.
		if s != "flat" {
			tun.Columns = append(tun.Columns, s+" (S)", s+" (A)")
		}
	}
	sweep := opt.recordSweep()
	var cfgs []core.Config
	for _, nr := range sweep {
		for _, s := range schemes {
			cfgs = append(cfgs, opt.baseConfig(s, nr))
		}
	}
	results, err := runPoints(opt, cfgs)
	if err != nil {
		return nil, err
	}
	for xi, nr := range sweep {
		accCells := make([]float64, 0, len(acc.Columns))
		tunCells := make([]float64, 0, len(tun.Columns))
		for si, s := range schemes {
			res := results[xi*len(schemes)+si]
			aA, aT := analytic(cfgs[xi*len(schemes)+si], res)
			accCells = append(accCells, res.Access.Mean(), aA)
			if s != "flat" {
				tunCells = append(tunCells, res.Tuning.Mean(), aT)
			}
		}
		acc.AddRow(float64(nr), accCells...)
		tun.AddRow(float64(nr), tunCells...)
	}
	return []*Table{acc, tun}, nil
}

// comparisonSweep runs the Figure 5/6 style experiments: for every x value
// it configures all five schemes via mutate, and splits results into an
// access table (all schemes) and tuning table (flat excluded, as in the
// paper's figures).
func comparisonSweep(opt Options, acc, tun *Table, xs []float64, mutate func(cfg *core.Config, x float64)) error {
	accSchemes := []string{"flat", "signature", "(1,m)", "distributed", "hashing"}
	for _, s := range accSchemes {
		acc.Columns = append(acc.Columns, s)
		if s != "flat" {
			tun.Columns = append(tun.Columns, s)
		}
	}
	nr := opt.comparisonRecords()
	var cfgs []core.Config
	for _, x := range xs {
		for _, s := range accSchemes {
			cfg := opt.baseConfig(s, nr)
			mutate(&cfg, x)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runPoints(opt, cfgs)
	if err != nil {
		return err
	}
	for xi, x := range xs {
		accCells := make([]float64, 0, len(accSchemes))
		tunCells := make([]float64, 0, len(accSchemes)-1)
		for si, s := range accSchemes {
			res := results[xi*len(accSchemes)+si]
			accCells = append(accCells, res.Access.Mean())
			if s != "flat" {
				tunCells = append(tunCells, res.Tuning.Mean())
			}
		}
		acc.AddRow(x, accCells...)
		tun.AddRow(x, tunCells...)
	}
	return nil
}

// Fig5 reproduces Figure 5: access time (a) and tuning time (b) versus
// data availability for plain broadcast, signature indexing, (1,m)
// indexing, distributed indexing and hashing.
func Fig5(opt Options) ([]*Table, error) {
	acc := &Table{
		ID:     "fig5a",
		Title:  "Access time vs. data availability",
		XLabel: "availability%",
		YLabel: "access time (bytes)",
	}
	tun := &Table{
		ID:     "fig5b",
		Title:  "Tuning time vs. data availability",
		XLabel: "availability%",
		YLabel: "tuning time (bytes)",
	}
	acc.Note("workload: %d records; paper legend name for flat is 'plain broadcast'", opt.comparisonRecords())
	xs := []float64{0, 20, 40, 60, 80, 100}
	err := comparisonSweep(opt, acc, tun, xs, func(cfg *core.Config, x float64) {
		cfg.Availability = x / 100
	})
	if err != nil {
		return nil, err
	}
	return []*Table{acc, tun}, nil
}

// Fig6 reproduces Figure 6: access time (a) and tuning time (b) versus the
// record/key ratio (record size fixed at 500 bytes, key size = record
// size/ratio), availability 100%.
func Fig6(opt Options) ([]*Table, error) {
	acc := &Table{
		ID:     "fig6a",
		Title:  "Access time vs. record/key ratio",
		XLabel: "ratio",
		YLabel: "access time (bytes)",
	}
	tun := &Table{
		ID:     "fig6b",
		Title:  "Tuning time vs. record/key ratio",
		XLabel: "ratio",
		YLabel: "tuning time (bytes)",
	}
	acc.Note("workload: %d records of 500 bytes; key size = 500/ratio", opt.comparisonRecords())
	xs := []float64{5, 10, 20, 30, 40, 50, 60, 80, 100}
	err := comparisonSweep(opt, acc, tun, xs, func(cfg *core.Config, x float64) {
		keySize := int(500 / x)
		if keySize < 4 {
			keySize = 4
		}
		cfg.Data.RecordSize = 500
		cfg.Data.KeySize = keySize
	})
	if err != nil {
		return nil, err
	}
	return []*Table{acc, tun}, nil
}
