package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var fast = Options{Fast: true}

func col(t *testing.T, tb *Table, name string) []float64 {
	t.Helper()
	v, ok := tb.Column(name)
	if !ok {
		t.Fatalf("table %s has no column %q (have %v)", tb.ID, name, tb.Columns)
	}
	return v
}

func increasing(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			return false
		}
	}
	return true
}

func within(a, b, relTol float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b)/math.Abs(b) <= relTol
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", XLabel: "n", YLabel: "y", Columns: []string{"a", "b"}}
	tb.AddRow(1, 10, math.NaN())
	tb.AddRow(2, 20, 4.5)
	tb.Note("hello")
	var text, csvOut bytes.Buffer
	if err := tb.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "hello") {
		t.Fatalf("text output incomplete:\n%s", text.String())
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 || lines[0] != "n,a,b" || !strings.HasPrefix(lines[1], "1,10,") {
		t.Fatalf("csv output wrong:\n%s", csvOut.String())
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tb := &Table{Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong arity")
		}
	}()
	tb.AddRow(1, 2, 3)
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", fast); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := strings.Join(IDs(), ",")
	for _, want := range []string{"table1", "fig4", "fig5", "fig6", "ablate-r", "ablate-m", "ablate-sig", "ablate-hash", "ablate-errors"} {
		if !strings.Contains(ids, want) {
			t.Fatalf("missing experiment %q in %s", want, ids)
		}
	}
}

func TestTable1(t *testing.T) {
	ts, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].ID != "table1" {
		t.Fatal("table1 shape wrong")
	}
	if v := col(t, ts[0], "confidence"); v[0] != 0.99 {
		t.Fatalf("confidence %v, want 0.99", v[0])
	}
	if v := col(t, ts[0], "accuracy"); v[0] != 0.01 {
		t.Fatalf("accuracy %v, want 0.01", v[0])
	}
	if v := col(t, ts[0], "record_bytes"); v[0] != 500 {
		t.Fatalf("record bytes %v, want 500", v[0])
	}
}

// TestTable1FastProfileStillPaperConstants pins the labelling bugfix:
// Table 1 claims to be "paper Table 1", so its cells must hold the
// paper's constants (7,000–34,000 records, 500-request rounds, 0.99/0.01,
// 60,000-request cap) even when the session runs the fast profile — which
// is instead described in a table note.
func TestTable1FastProfileStillPaperConstants(t *testing.T) {
	for _, opt := range []Options{{}, {Fast: true}} {
		ts, err := Table1(opt)
		if err != nil {
			t.Fatal(err)
		}
		tb := ts[0]
		for _, c := range []struct {
			col  string
			want float64
		}{
			{"records_min", 7000},
			{"records_max", 34000},
			{"round_requests", 500},
			{"confidence", 0.99},
			{"accuracy", 0.01},
			{"max_requests", 60000},
		} {
			if v := col(t, tb, c.col); v[0] != c.want {
				t.Errorf("fast=%v: %s = %v, want %v (paper constant)", opt.Fast, c.col, v[0], c.want)
			}
		}
		notes := strings.Join(tb.Notes, "\n")
		if opt.Fast && !strings.Contains(notes, "fast") {
			t.Error("fast profile should be declared in a table note")
		}
		if !opt.Fast && strings.Contains(notes, "fast") {
			t.Error("full profile run mentions the fast profile")
		}
	}
}

// TestTableAliases: single-table IDs run the parent experiment and keep
// only the requested table.
func TestTableAliases(t *testing.T) {
	ts, err := Run("fig4a", fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].ID != "fig4a" {
		t.Fatalf("alias fig4a returned %d tables, first ID %q", len(ts), ts[0].ID)
	}
}

// TestOptionsShardsForwarded: the Shards option reaches every point's
// core config.
func TestOptionsShardsForwarded(t *testing.T) {
	opt := Options{Fast: true, Shards: 4}
	if cfg := opt.BaseConfig("flat", 100); cfg.Shards != 4 {
		t.Fatalf("baseConfig dropped Shards: %+v", cfg.Shards)
	}
	if cfg := (Options{Fast: true}).BaseConfig("flat", 100); cfg.Shards != 1 {
		t.Fatalf("default config should stay single-shard, got %d", cfg.Shards)
	}
}

// TestFig4Shapes pins the paper's Figure 4 qualitative results in fast
// mode: access ordering flat < signature < distributed < hashing, tuning
// ordering hashing < distributed < signature, simulation close to the
// analytical model, linear growth for the serial schemes, near-flat
// hashing tuning.
func TestFig4Shapes(t *testing.T) {
	ts, err := Fig4(fast)
	if err != nil {
		t.Fatal(err)
	}
	acc, tun := ts[0], ts[1]

	flatS := col(t, acc, "flat (S)")
	sigS := col(t, acc, "signature (S)")
	distS := col(t, acc, "distributed (S)")
	hashS := col(t, acc, "hashing (S)")
	for i := range flatS {
		if !(flatS[i] < sigS[i] && sigS[i] < distS[i] && distS[i] < hashS[i]) {
			t.Errorf("row %d: access ordering broken: flat=%.0f sig=%.0f dist=%.0f hash=%.0f",
				i, flatS[i], sigS[i], distS[i], hashS[i])
		}
	}
	if !increasing(flatS) || !increasing(sigS) || !increasing(hashS) {
		t.Error("access times should grow with record count")
	}

	hashT := col(t, tun, "hashing (S)")
	distT := col(t, tun, "distributed (S)")
	sigT := col(t, tun, "signature (S)")
	for i := range hashT {
		// At the fast-mode scale the shallow tree puts hashing and
		// distributed within a percent of each other; the strict ordering
		// emerges at the paper's 7,000+ records (see EXPERIMENTS.md).
		if !(hashT[i] < 1.05*distT[i] && distT[i] < sigT[i]) {
			t.Errorf("row %d: tuning ordering broken: hash=%.0f dist=%.0f sig=%.0f",
				i, hashT[i], distT[i], sigT[i])
		}
	}
	if !increasing(sigT) {
		t.Error("signature tuning should grow linearly with record count")
	}
	// Hashing tuning stays within a couple of buckets across the sweep.
	if hashT[len(hashT)-1]-hashT[0] > 2*518 {
		t.Errorf("hashing tuning not flat: %v", hashT)
	}

	// Simulation vs analytical agreement (the paper: "the simulation
	// results match the analytical results very well").
	for _, pair := range [][2]string{
		{"flat (S)", "flat (A)"},
		{"signature (S)", "signature (A)"},
		{"distributed (S)", "distributed (A)"},
		{"hashing (S)", "hashing (A)"},
	} {
		s := col(t, acc, pair[0])
		a := col(t, acc, pair[1])
		for i := range s {
			if !within(s[i], a[i], 0.2) {
				t.Errorf("%s row %d: sim %.0f vs analytical %.0f beyond 20%%", pair[0], i, s[i], a[i])
			}
		}
	}
}

// TestFig5Shapes pins Figure 5: hashing access nearly availability-
// independent; tree schemes' access improves as availability falls while
// flat/signature degrade; tree schemes' tuning is best at low
// availability, hashing best at high.
func TestFig5Shapes(t *testing.T) {
	ts, err := Fig5(fast)
	if err != nil {
		t.Fatal(err)
	}
	acc, tun := ts[0], ts[1]
	rows := len(acc.Rows) // availability 0 ... 100
	last := rows - 1

	flatA := col(t, acc, "flat")
	sigA := col(t, acc, "signature")
	onemA := col(t, acc, "(1,m)")
	distA := col(t, acc, "distributed")
	hashA := col(t, acc, "hashing")

	// Hashing: little impact (within 20% across the whole sweep).
	for i := range hashA {
		if !within(hashA[i], hashA[last], 0.2) {
			t.Errorf("hashing access varies with availability: %v", hashA)
		}
	}
	// Flat and signature: worst at 0%, best at 100%.
	if flatA[0] <= flatA[last] || sigA[0] <= sigA[last] {
		t.Error("serial schemes should degrade as availability falls")
	}
	// Tree schemes: better at 0% than at 100%.
	if onemA[0] >= onemA[last] || distA[0] >= distA[last] {
		t.Error("tree schemes should improve as availability falls")
	}
	// At 0% tree schemes beat everything on access.
	if !(distA[0] < hashA[0] && onemA[0] < hashA[0] && distA[0] < flatA[0] && distA[0] < sigA[0]) {
		t.Errorf("at 0%% availability tree schemes should win access: dist=%.0f onem=%.0f hash=%.0f flat=%.0f sig=%.0f",
			distA[0], onemA[0], hashA[0], flatA[0], sigA[0])
	}

	sigT := col(t, tun, "signature")
	onemT := col(t, tun, "(1,m)")
	distT := col(t, tun, "distributed")
	hashT := col(t, tun, "hashing")
	// Tuning: tree schemes' grows with availability; signature's falls.
	if onemT[0] >= onemT[last] || distT[0] >= distT[last] {
		t.Error("tree tuning should grow with availability")
	}
	if sigT[0] <= sigT[last] {
		t.Error("signature tuning should fall with availability")
	}
	// Tree schemes beat hashing at 0%; hashing wins at 100%.
	if !(onemT[0] < hashT[0] && distT[0] < hashT[0]) {
		t.Errorf("at 0%% availability tree tuning should beat hashing: onem=%.0f dist=%.0f hash=%.0f",
			onemT[0], distT[0], hashT[0])
	}
	if !(hashT[last] < 1.05*onemT[last] && hashT[last] < 1.05*distT[last] && hashT[last] < sigT[last]) {
		t.Errorf("at 100%% availability hashing tuning should win: hash=%.0f onem=%.0f dist=%.0f sig=%.0f",
			hashT[last], onemT[last], distT[last], sigT[last])
	}
}

// TestFig6Shapes pins Figure 6: the record/key ratio matters mostly for
// the tree schemes — huge access/tuning at ratio 5, approaching the others
// as the ratio grows — while flat/signature/hashing stay nearly flat.
func TestFig6Shapes(t *testing.T) {
	ts, err := Fig6(fast)
	if err != nil {
		t.Fatal(err)
	}
	acc, tun := ts[0], ts[1]
	last := len(acc.Rows) - 1

	onemA := col(t, acc, "(1,m)")
	distA := col(t, acc, "distributed")
	flatA := col(t, acc, "flat")
	hashA := col(t, acc, "hashing")

	// Strong ratio dependence for tree schemes only. Distributed indexing
	// adapts its replication depth, so its drop is shallower than (1,m)'s.
	if onemA[0] < 1.5*onemA[last] || distA[0] < 1.3*distA[last] {
		t.Errorf("tree access should fall sharply with ratio: onem %v dist %v", onemA, distA)
	}
	for i := range flatA {
		if !within(flatA[i], flatA[last], 0.15) || !within(hashA[i], hashA[last], 0.25) {
			t.Errorf("flat/hashing access should be nearly ratio-independent")
			break
		}
	}
	// Tree schemes cross below hashing at large ratios.
	if !(distA[last] < hashA[last] && onemA[last] < hashA[last]) {
		t.Errorf("at ratio 100 tree schemes should beat hashing: dist=%.0f onem=%.0f hash=%.0f",
			distA[last], onemA[last], hashA[last])
	}

	distT := col(t, tun, "distributed")
	onemT := col(t, tun, "(1,m)")
	hashT := col(t, tun, "hashing")
	// Tree tuning falls toward hashing's flat low line as ratio grows.
	if distT[0] <= distT[last] || onemT[0] <= onemT[last] {
		t.Errorf("tree tuning should fall with ratio: dist %v onem %v", distT, onemT)
	}
	// Paper §5.2: at large ratios the tree schemes "exhibit similar
	// performance to hashing" — allow a 10% margin around the floor.
	if !(hashT[last] <= 1.1*distT[last] && hashT[last] <= 1.1*onemT[last]) {
		t.Errorf("hashing tuning should stay at or near the floor: hash=%.0f dist=%.0f onem=%.0f",
			hashT[last], distT[last], onemT[last])
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablate-r", "ablate-m", "ablate-sig", "ablate-hash", "ablate-errors"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ts, err := Run(id, fast)
			if err != nil {
				t.Fatal(err)
			}
			if len(ts) != 1 || len(ts[0].Rows) < 2 {
				t.Fatalf("%s produced no usable table", id)
			}
		})
	}
}

func TestAblateSigTradeoff(t *testing.T) {
	ts, err := AblateSignatureLength(fast)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	accS := col(t, tb, "access (S)")
	probes := col(t, tb, "mean_probes")
	// Access grows with signature length (longer cycle).
	if accS[len(accS)-1] <= accS[0] {
		t.Errorf("access should grow with signature length: %v", accS)
	}
	// Probes (false drops) shrink as signatures grow.
	if probes[0] <= probes[len(probes)-1] {
		t.Errorf("probes should fall with signature length: %v", probes)
	}
}

func TestAblateErrorsMonotone(t *testing.T) {
	ts, err := AblateErrorRate(fast)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	restarts := col(t, tb, "distributed restarts/req")
	if restarts[0] != 0 {
		t.Errorf("zero error rate should have zero restarts: %v", restarts)
	}
	if !increasing(restarts) {
		t.Errorf("restarts should grow with error rate: %v", restarts)
	}
	tunD := col(t, tb, "distributed tuning")
	if tunD[len(tunD)-1] <= tunD[0] {
		t.Errorf("distributed tuning should degrade with errors: %v", tunD)
	}
}

func TestExtSignatureFamily(t *testing.T) {
	ts, err := ExtSignatureFamily(fast)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	simpleT := col(t, tb, "signature tuning")
	mlT := col(t, tb, "signature-multilevel tuning")
	hyT := col(t, tb, "hybrid tuning")
	distT := col(t, tb, "distributed tuning")
	for i := range simpleT {
		// Group skipping must beat the simple scheme; the hybrid's tree
		// descent must beat every pure signature scheme and sit within a
		// small factor of the pure tree.
		if mlT[i] >= simpleT[i] {
			t.Errorf("row %d: multilevel tuning %.0f not below simple %.0f", i, mlT[i], simpleT[i])
		}
		if hyT[i] >= mlT[i] {
			t.Errorf("row %d: hybrid tuning %.0f not below multilevel %.0f", i, hyT[i], mlT[i])
		}
		if hyT[i] > 5*distT[i] {
			t.Errorf("row %d: hybrid tuning %.0f too far above distributed %.0f", i, hyT[i], distT[i])
		}
	}
}

func TestExtBroadcastDisksSkewCrossover(t *testing.T) {
	ts, err := ExtBroadcastDisks(fast)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	ratio := col(t, tb, "bdisk/flat ratio")
	// Uniform demand: broadcast disks pay for the repeated hot slots.
	if ratio[0] <= 1 {
		t.Errorf("uniform workload should favour flat, ratio %v", ratio[0])
	}
	// Heavy skew: broadcast disks win outright.
	last := len(ratio) - 1
	if ratio[last] >= 1 {
		t.Errorf("heavy skew should favour broadcast disks, ratio %v", ratio[last])
	}
	// Monotone improvement with skew.
	for i := 1; i < len(ratio); i++ {
		if ratio[i] >= ratio[i-1] {
			t.Errorf("ratio should fall with skew: %v", ratio)
			break
		}
	}
}

func TestExtMultiAttribute(t *testing.T) {
	ts, err := ExtMultiAttribute(fast)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	ratio := col(t, tb, "tuning ratio")
	for i, r := range ratio {
		// Signatures should filter attribute queries an order of magnitude
		// more cheaply than flat record scans.
		if r > 0.15 {
			t.Errorf("row %d: signature/flat tuning ratio %.3f, want < 0.15", i, r)
		}
	}
	fAcc := col(t, tb, "flat access")
	sAcc := col(t, tb, "signature access")
	for i := range fAcc {
		// Access time stays comparable: the signature cycle is only ~4% longer.
		if sAcc[i] > 1.2*fAcc[i] {
			t.Errorf("row %d: signature access %.0f too far above flat %.0f", i, sAcc[i], fAcc[i])
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", XLabel: "n", YLabel: "y", Columns: []string{"a"}}
	tb.AddRow(1, 2)
	tb.Note("a note")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| n | a |", "|---|---|", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWritePlot(t *testing.T) {
	tb := &Table{ID: "p", Title: "plot demo", XLabel: "n", YLabel: "bytes", Columns: []string{"up", "flat", "gone"}}
	for i := 1; i <= 8; i++ {
		tb.AddRow(float64(i), float64(i*1000), 3000, math.NaN())
	}
	var buf bytes.Buffer
	if err := tb.WritePlot(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ flat") {
		t.Fatalf("legend incomplete:\n%s", out)
	}
	if strings.Contains(out, "gone") {
		t.Fatalf("all-NaN series should be skipped:\n%s", out)
	}
	// The rising series must put glyphs on several distinct rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") && strings.Contains(line, "|") {
			rows++
		}
	}
	if rows < 4 {
		t.Fatalf("rising series occupies %d rows, want >= 4:\n%s", rows, out)
	}
}

func TestWritePlotDegenerate(t *testing.T) {
	empty := &Table{ID: "e", Columns: []string{"a"}}
	var buf bytes.Buffer
	if err := empty.WritePlot(&buf, 20, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty table should say so")
	}
	constant := &Table{ID: "c", Columns: []string{"a"}}
	constant.AddRow(1, 5)
	constant.AddRow(2, 5)
	buf.Reset()
	if err := constant.WritePlot(&buf, 20, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("constant series should still plot")
	}
}
